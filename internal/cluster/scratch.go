package cluster

import "sync/atomic"

// Scratch is a bundle of reusable buffers for the clustering hot path.
// Passing the same Scratch to successive MeanShift calls (via
// MeanShiftConfig.Scratch) makes the per-call allocation count
// essentially independent of the input size: the flattened coordinate
// store, the seed trajectories, the grid index, and the mode-merge
// working set all live in the scratch and are grown geometrically, never
// shrunk.
//
// A Scratch is NOT safe for concurrent use; give each goroutine its own
// (internal/core keeps them in a sync.Pool, one per categorization
// worker). The zero value is not usable — call NewScratch.
type Scratch struct {
	coords  []float64 // flattened input points
	seeds   []float64 // seed positions, mutated in place
	next    []float64 // next-round positions
	modes   []float64 // memoized converged modes (bin-seeded runs)
	centers []float64 // merge-phase center accumulator
	ptsBack []float64 // backing store handed out by Points
	pts     []Point   // point headers handed out by Points
	weights []int32   // merge-phase member counts
	active  []int32   // active seed worklist
	seedLab []int32   // per-seed labels (bin-seeded runs)
	cellIDs []int32   // grid build: per-point cell id
	starts  []int32   // grid CSR starts
	items   []int32   // grid CSR items
	cursor  []int32   // grid build cursor
	qs      []int64   // quantization scratch
	probes  []int64   // per-chunk neighbor-probe odometers
	cellMap map[uint64]int32
}

// NewScratch returns an empty scratch ready for reuse across MeanShift
// calls.
func NewScratch() *Scratch { return &Scratch{} }

// Points returns a slice of n d-dimensional points backed by one
// contiguous scratch-owned float64 array. Callers fill the coordinates
// in place; the memory is reused by the next Points call, so the slice
// must not outlive the current clustering run.
func (s *Scratch) Points(n, d int) []Point {
	back := growF64(&s.ptsBack, n*d)
	if cap(s.pts) >= n {
		s.pts = s.pts[:n]
	} else {
		s.pts = make([]Point, n)
	}
	for i := 0; i < n; i++ {
		s.pts[i] = back[i*d : (i+1)*d : (i+1)*d]
	}
	return s.pts
}

// growF64 resizes *buf to length n, reusing capacity when possible.
func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]float64, n, n+n/2)
	}
	return *buf
}

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]int32, n, n+n/2)
	}
	return *buf
}

func growI64(buf *[]int64, n int) []int64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]int64, n, n+n/2)
	}
	return *buf
}

// MeanShiftStats reports the cost profile of one MeanShift call when a
// pointer to it is attached to MeanShiftConfig.Stats. The same figures
// are accumulated into package-wide totals (see TotalStats) that
// internal/telemetry exports as mosaic_cluster_* metrics.
type MeanShiftStats struct {
	Points     int  // input points
	Seeds      int  // shifted seeds (== Points unless BinSeeding)
	GridCells  int  // occupied grid cells (0 on the dense path)
	Rounds     int  // lockstep iteration rounds executed
	Iterations int  // total kernel-mean evaluations across all seeds
	EarlyStops int  // seeds snapped onto an already-converged mode
	Parallel   bool // whether any round ran on multiple goroutines
	Accelerated bool // whether the grid index was used
}

// Package-wide clustering cost counters, exported to /metrics through
// internal/telemetry (RegisterClusterMetrics). Atomic: MeanShift may run
// on many categorization workers at once.
var clusterTotals struct {
	runs, seeds, gridCells, iterations, earlyStops, parallelRuns atomic.Int64
}

// Totals is a snapshot of the package-wide clustering counters.
type Totals struct {
	Runs         int64 // MeanShift invocations
	Seeds        int64 // seeds shifted
	GridCells    int64 // occupied grid cells across runs
	Iterations   int64 // kernel-mean evaluations
	EarlyStops   int64 // basin-of-attraction memoization hits
	ParallelRuns int64 // runs that used multiple goroutines
}

// TotalStats returns the current package-wide clustering counters.
func TotalStats() Totals {
	return Totals{
		Runs:         clusterTotals.runs.Load(),
		Seeds:        clusterTotals.seeds.Load(),
		GridCells:    clusterTotals.gridCells.Load(),
		Iterations:   clusterTotals.iterations.Load(),
		EarlyStops:   clusterTotals.earlyStops.Load(),
		ParallelRuns: clusterTotals.parallelRuns.Load(),
	}
}

func recordTotals(st *MeanShiftStats) {
	clusterTotals.runs.Add(1)
	clusterTotals.seeds.Add(int64(st.Seeds))
	clusterTotals.gridCells.Add(int64(st.GridCells))
	clusterTotals.iterations.Add(int64(st.Iterations))
	clusterTotals.earlyStops.Add(int64(st.EarlyStops))
	if st.Parallel {
		clusterTotals.parallelRuns.Add(1)
	}
}
