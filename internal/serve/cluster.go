package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Cluster mode: with Config.Cluster set, the server becomes one node of
// a sharded, replicated cluster. Each trace's SHA-256 content address
// places it on a consistent-hash ring (internal/ring); the node an
// ingest lands on routes every trace to its ring owner, the owner
// persists it (group-committed fsync), replicates it to its followers
// — waiting for ReplicaAck durable follower copies before the client
// is acknowledged — and categorizes it exactly once, pushing the result
// to the replicas. Queries and stats scatter to every live peer and
// gather; result reads route to the replica set with hedging. The
// wiring lives in clusterNode, the serve-side implementation of
// ring.Backend.

// routedItem is one decoded ingest upload annotated with its position
// in the response, so routing can fan items out per owner and still
// answer in request order.
type routedItem struct {
	idx  int // position in the items slice
	name string
	id   store.TraceID // content address of blob, computed once at the entry node
	job  *darshan.Job
	blob []byte // canonical encoding; on the inbound RPC path it aliases the
	// connection read buffer and is only valid until the handler returns —
	// anything shipped asynchronously copies it first (see replicate).
}

// clusterNode binds a Server to its ring.Cluster: it implements
// ring.Backend for inbound peer RPCs and owns the routing/replication
// logic of outbound ones, plus the follower repair loop.
type clusterNode struct {
	s    *Server
	ring *ring.Cluster

	mu     sync.Mutex
	repair map[store.TraceID]time.Time // replicated traces awaiting the owner's result push

	wg sync.WaitGroup
}

func newClusterNode(s *Server, rcfg ring.Config) (*clusterNode, error) {
	if rcfg.Log == nil {
		rcfg.Log = s.log
	}
	if rcfg.Registry == nil {
		rcfg.Registry = s.reg
	}
	if rcfg.Flight == nil {
		rcfg.Flight = s.flight
	}
	if rcfg.Events == nil {
		rcfg.Events = s.events
	}
	cn := &clusterNode{s: s, repair: make(map[store.TraceID]time.Time)}
	c, err := ring.NewCluster(rcfg, cn)
	if err != nil {
		return nil, err
	}
	cn.ring = c
	cn.wg.Add(1)
	go cn.repairLoop()
	return cn, nil
}

func (cn *clusterNode) shutdown(ctx context.Context) error {
	err := cn.ring.Shutdown(ctx)
	cn.wg.Wait()
	return err
}

// ---- ingest routing (outbound) ----

// ingestRouted is the clustered ingest path shared by the single and
// batch endpoints: decode every upload, group the readable traces by
// the first live node of their replica set (the owner when it is up),
// ingest the local group directly and forward the rest — re-routing to
// the next replica, and finally to this node (sloppy), when an owner
// fails mid-request.
func (cn *clusterNode) ingestRouted(ctx context.Context, reqID string, ups []upload) []IngestItem {
	items := make([]IngestItem, len(ups))
	var routed []*routedItem
	for i, up := range ups {
		job, err := decodeBlob(up.data)
		if err != nil {
			items[i] = IngestItem{Name: up.name, Status: StatusUnreadable, Error: err.Error()}
			continue
		}
		id, canonical, err := store.TraceKey(job)
		if err != nil {
			items[i] = IngestItem{Name: up.name, Status: StatusUnreadable, Error: err.Error()}
			continue
		}
		routed = append(routed, &routedItem{idx: i, name: up.name, id: id, job: job, blob: canonical})
	}
	groups := make(map[string][]*routedItem)
	var local []*routedItem
	self := cn.ring.Self().ID
	for _, it := range routed {
		switch target := cn.routeTarget(string(it.id), nil); target {
		case self, "":
			local = append(local, it)
		default:
			groups[target] = append(groups[target], it)
		}
	}
	// Fan out concurrently: each per-owner group writes disjoint items
	// slots, and every branch chains durable waits (owner persist fsync,
	// then its sync-replication fsync) that would otherwise serialize
	// across owners — the batch's ack latency is the slowest branch, not
	// the sum of all of them.
	var wg sync.WaitGroup
	if len(local) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cn.ingestOwned(ctx, reqID, local, items)
		}()
	}
	for pid, group := range groups {
		wg.Add(1)
		go func(pid string, group []*routedItem) {
			defer wg.Done()
			cn.forwardGroup(ctx, reqID, pid, group, map[string]bool{}, items)
		}(pid, group)
	}
	wg.Wait()
	return items
}

// routeTarget picks the node a trace should be ingested on: the first
// live, untried member of its replica set, "" when every one is down
// or tried (the caller falls back to a local sloppy write).
func (cn *clusterNode) routeTarget(key string, tried map[string]bool) string {
	for _, n := range cn.ring.Table().Replicas(key) {
		if tried[n.ID] {
			continue
		}
		if n.ID == cn.ring.Self().ID || cn.ring.Healthy(n.ID) {
			return n.ID
		}
	}
	return ""
}

// forwardGroup ships one owner's worth of traces to that peer. On
// failure (which marks the peer down when it was a transport error)
// each item is re-routed to its next untried replica; a trace with no
// replicas left is ingested locally — the sloppy write that keeps an
// ingest succeeding through any single-node failure.
func (cn *clusterNode) forwardGroup(ctx context.Context, reqID, peerID string, group []*routedItem, tried map[string]bool, items []IngestItem) {
	ids := make([]string, len(group))
	blobs := make([][]byte, len(group))
	for i, it := range group {
		ids[i] = string(it.id)
		blobs[i] = it.blob
	}
	sts, err := cn.ring.ForwardIngest(ctx, reqID, peerID, ids, blobs)
	if err == nil {
		for i, st := range sts {
			item := IngestItem{Name: group[i].name, ID: store.TraceID(st.ID), Status: st.Status, Error: st.Error}
			if item.ID == "" {
				item.ID = group[i].id
			}
			items[group[i].idx] = item
		}
		return
	}
	if log := cn.s.log; log != nil {
		log.Warn("cluster: ingest forward failed, re-routing",
			"request_id", reqID, "peer", peerID, "traces", len(group), "err", err)
	}
	tried[peerID] = true
	regroups := make(map[string][]*routedItem)
	var local []*routedItem
	self := cn.ring.Self().ID
	for _, it := range group {
		switch target := cn.routeTarget(string(it.id), tried); target {
		case self, "":
			local = append(local, it)
		default:
			regroups[target] = append(regroups[target], it)
		}
	}
	if len(local) > 0 {
		cn.ingestOwned(ctx, reqID, local, items)
	}
	for pid, g := range regroups {
		cn.forwardGroup(ctx, reqID, pid, g, tried, items)
	}
}

// ingestOwned ingests traces this node takes responsibility for:
// persist the whole group in one batch (one group-committed fsync),
// queue categorization, then replicate — synchronously to the first
// ReplicaAck live followers of each trace (their fsync happens before
// the caller acknowledges), asynchronously to the rest, hints for the
// down ones.
func (cn *clusterNode) ingestOwned(ctx context.Context, reqID string, group []*routedItem, items []IngestItem) {
	s := cn.s
	ids := make([]store.TraceID, len(group))
	blobs := make([][]byte, len(group))
	for i, it := range group {
		ids[i] = it.id
		blobs[i] = it.blob
	}
	if _, err := s.st.PutTraceBatchKeyedCtx(ctx, ids, blobs); err != nil {
		for _, it := range group {
			items[it.idx] = IngestItem{Name: it.name, ID: it.id, Status: StatusRejected, Error: err.Error()}
		}
		return
	}
	for _, it := range group {
		items[it.idx] = s.queueTrace(ctx, it.name, it.id, it.job, reqID)
	}
	cn.replicate(ctx, reqID, group)
}

// replicate ships follower copies of a just-persisted group, grouped
// per peer so each follower pays one RPC and one fsync.
func (cn *clusterNode) replicate(ctx context.Context, reqID string, group []*routedItem) {
	type repGroup struct {
		ids   []string
		blobs [][]byte
	}
	self := cn.ring.Self().ID
	ackN := cn.ring.ReplicaAck()
	syncG := make(map[string]*repGroup)
	asyncG := make(map[string]*repGroup)
	add := func(m map[string]*repGroup, pid string, it *routedItem) {
		g := m[pid]
		if g == nil {
			g = &repGroup{}
			m[pid] = g
		}
		g.ids = append(g.ids, string(it.id))
		g.blobs = append(g.blobs, it.blob)
	}
	met := cn.ring.Metrics()
	for _, it := range group {
		acks := 0
		for _, n := range cn.ring.Table().Replicas(string(it.id)) {
			if n.ID == self {
				continue
			}
			switch {
			case !cn.ring.Healthy(n.ID):
				cn.ring.Hint(n.ID, []string{string(it.id)})
			case acks < ackN:
				add(syncG, n.ID, it)
				acks++
			default:
				add(asyncG, n.ID, it)
			}
		}
		if acks < ackN {
			met.DegradedAcks.Inc()
			cn.emitDegradedAck(reqID, 1, "not enough live followers")
		}
	}
	// Sync groups in parallel: each blocks on the follower's fsync, so
	// waiting them out one peer at a time would stack the durability
	// latencies.
	var wg sync.WaitGroup
	for pid, g := range syncG {
		wg.Add(1)
		go func(pid string, g *repGroup) {
			defer wg.Done()
			if err := cn.ring.Replicate(ctx, reqID, pid, g.ids, g.blobs); err != nil {
				// Replicate hinted the IDs; the ack goes out with fewer
				// durable copies than configured.
				met.DegradedAcks.Add(int64(len(g.ids)))
				cn.emitDegradedAck(reqID, len(g.ids), "sync replication failed: "+err.Error())
				if log := cn.s.log; log != nil {
					log.Warn("cluster: sync replication failed, ack degraded",
						"request_id", reqID, "peer", pid, "traces", len(g.ids), "err", err)
				}
			}
		}(pid, g)
	}
	wg.Wait()
	for pid, g := range asyncG {
		// Best-effort copies outlive the request: on the inbound RPC path
		// the blobs alias a connection read buffer that is reused as soon
		// as the handler returns.
		blobs := make([][]byte, len(g.blobs))
		for i, b := range g.blobs {
			blobs[i] = append([]byte(nil), b...)
		}
		go cn.ring.Replicate(context.Background(), reqID, pid, g.ids, blobs) //nolint:errcheck // failure hints for replay
	}
}

// pushResult ships a freshly computed result to the trace's other
// replicas (called by the worker after the result is durable).
func (cn *clusterNode) pushResult(reqID string, id store.TraceID) {
	data, ok, err := cn.s.st.GetResultBytes(id, cn.s.fp)
	if err != nil || !ok {
		return
	}
	var peers []string
	for _, n := range cn.ring.Table().Replicas(string(id)) {
		if n.ID != cn.ring.Self().ID {
			peers = append(peers, n.ID)
		}
	}
	if len(peers) > 0 {
		cn.ring.PushResult(reqID, string(id), cn.s.fp, data, peers)
	}
}

// repairLoop is the replica's safety net against owner death: a
// replicated trace whose result push has not arrived within
// RepairAfter is categorized locally through the normal worker queue.
// Pushes that do arrive clear their entry, so in the healthy case the
// loop wakes, finds nothing due, and goes back to sleep.
func (cn *clusterNode) repairLoop() {
	defer cn.wg.Done()
	after := cn.ring.RepairAfter()
	tick := time.NewTicker(max(after/2, 100*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-cn.s.quit:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-after)
		var due []store.TraceID
		cn.mu.Lock()
		for id, at := range cn.repair {
			if at.Before(cutoff) {
				due = append(due, id)
				delete(cn.repair, id)
			}
		}
		cn.mu.Unlock()
		for _, id := range due {
			if cn.s.st.HasResult(id, cn.s.fp) {
				continue
			}
			job, ok, err := cn.s.st.GetTrace(id)
			if err != nil || !ok {
				continue
			}
			it := cn.s.queueTrace(context.Background(), "", id, job, "repair")
			if log := cn.s.log; log != nil {
				log.Info("cluster: repairing replica without result", "id", string(id), "status", it.Status)
			}
		}
	}
}

// ---- ring.Backend (inbound peer RPCs) ----

// HandleIngest serves a peer-forwarded ingest: this node is (or stands
// in for) the ring owner of every blob in the group. Protocol
// invariant: the forwarding node canonicalized each upload and ships
// the blob with its content address, so nothing is re-encoded or
// re-hashed here — only decoded for categorization.
func (cn *clusterNode) HandleIngest(ctx context.Context, reqID string, ids []string, blobs [][]byte) []ring.ItemStatus {
	items := make([]IngestItem, len(blobs))
	if cn.s.draining.Load() {
		for i := range items {
			items[i] = IngestItem{Status: StatusRejected, Error: "server is draining"}
		}
		return toItemStatuses(items)
	}
	var group []*routedItem
	for i, blob := range blobs {
		id := store.TraceID(ids[i])
		if !id.Valid() {
			items[i] = IngestItem{Status: StatusUnreadable, Error: "malformed trace ID"}
			continue
		}
		job, err := decodeBlob(blob)
		if err != nil {
			items[i] = IngestItem{Status: StatusUnreadable, Error: err.Error()}
			continue
		}
		group = append(group, &routedItem{idx: i, id: id, job: job, blob: blob})
	}
	if len(group) > 0 {
		cn.ingestOwned(ctx, reqID, group, items)
	}
	return toItemStatuses(items)
}

func toItemStatuses(items []IngestItem) []ring.ItemStatus {
	out := make([]ring.ItemStatus, len(items))
	for i, it := range items {
		out[i] = ring.ItemStatus{Name: it.Name, ID: string(it.ID), Status: it.Status, Error: it.Error}
	}
	return out
}

// HandleReplicate persists follower copies durably — one batch, one
// group-committed fsync — without categorizing: the owner pushes the
// result, and the repair loop covers an owner that dies first. The
// blobs alias the RPC read buffer; the keyed put copies them into the
// store's staging buffer before this returns, so no copy is needed.
func (cn *clusterNode) HandleReplicate(ctx context.Context, reqID string, rawIDs []string, blobs [][]byte) error {
	ids := make([]store.TraceID, len(rawIDs))
	for i, id := range rawIDs {
		ids[i] = store.TraceID(id)
	}
	if _, err := cn.s.st.PutTraceBatchKeyedCtx(ctx, ids, blobs); err != nil {
		return err
	}
	now := time.Now()
	cn.mu.Lock()
	for _, id := range ids {
		if !cn.s.st.HasResult(id, cn.s.fp) {
			cn.repair[id] = now
		}
	}
	cn.mu.Unlock()
	return nil
}

// HandleResultPush stores an owner-computed result and indexes it,
// sparing this replica the categorization.
func (cn *clusterNode) HandleResultPush(ctx context.Context, id, fp string, result []byte) error {
	tid := store.TraceID(id)
	if !tid.Valid() {
		return fmt.Errorf("serve: result push with invalid trace ID %q", id)
	}
	res, err := store.DecodeResult(result)
	if err != nil {
		return err
	}
	// Copy: result aliases the connection read buffer and the store's
	// read cache retains the value slice.
	if err := cn.s.st.PutResultBytesCtx(ctx, tid, fp, append([]byte(nil), result...)); err != nil {
		return err
	}
	if fp == cn.s.fp {
		cn.s.ix.AddCtx(ctx, tid, res.Categories)
		cn.mu.Lock()
		delete(cn.repair, tid)
		cn.mu.Unlock()
	}
	return nil
}

// HandleQuery answers a scatter-gather query over the local shard.
// The index materializes plain strings directly — no per-ID
// conversion copy on the RPC path.
func (cn *clusterNode) HandleQuery(ctx context.Context, q string) ([]string, error) {
	return cn.s.ix.QueryIDs(q)
}

// HandleStats reports this node's shard statistics.
func (cn *clusterNode) HandleStats(ctx context.Context) ring.NodeStats {
	return cn.localStats()
}

func (cn *clusterNode) localStats() ring.NodeStats {
	s := cn.s
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	st := s.st.Stats()
	return ring.NodeStats{
		Node:       cn.ring.Self().ID,
		Up:         true,
		Indexed:    s.ix.Len(),
		QueueDepth: len(s.queue),
		Pending:    pending,
		Traces:     int64(st.Traces),
		Results:    int64(st.Results),
	}
}

// HandleStatus reports this node's self-assessed health — the per-node
// entry a peer's /v1/cluster/health scatter-gathers.
func (cn *clusterNode) HandleStatus(ctx context.Context) ring.StatusSnapshot {
	return cn.s.localStatus()
}

// HandleMetrics serves this node's full metrics registry as JSON family
// snapshots — the federation payload /v1/cluster/metrics merges.
func (cn *clusterNode) HandleMetrics(ctx context.Context) ([]byte, error) {
	return json.Marshal(cn.s.reg.Export())
}

// emitDegradedAck journals an ingest acknowledged with fewer durable
// copies than configured.
func (cn *clusterNode) emitDegradedAck(reqID string, traces int, reason string) {
	if ev := cn.s.events; ev != nil {
		ev.Emit(events.SevWarn, events.TypeDegradedAck, "ingest acked with degraded durability",
			"request_id", reqID, "traces", strconv.Itoa(traces), "reason", reason)
	}
}

// HandleResult serves a trace's stored result bytes to a peer (routed
// or hedged read).
func (cn *clusterNode) HandleResult(ctx context.Context, id string) ([]byte, bool, error) {
	tid := store.TraceID(id)
	if !tid.Valid() {
		return nil, false, fmt.Errorf("serve: result fetch with invalid trace ID %q", id)
	}
	return cn.s.st.GetResultBytes(tid, cn.s.fp)
}

// FetchTrace reads a stored trace blob — the hinted-handoff replay
// source.
func (cn *clusterNode) FetchTrace(id string) ([]byte, bool, error) {
	return cn.s.st.GetTraceBytes(store.TraceID(id))
}

// ---- public surface on Server ----

// Cluster returns the ring cluster runtime, nil in single-node mode.
func (s *Server) Cluster() *ring.Cluster {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.ring
}

// ServeCluster accepts inbound cluster RPCs on l (cluster mode only).
// It blocks; a clean shutdown returns nil.
func (s *Server) ServeCluster(l net.Listener) error {
	if s.cluster == nil {
		return fmt.Errorf("serve: not in cluster mode")
	}
	return s.cluster.ring.Serve(l)
}

// Kill crashes the server in place — the in-process stand-in for
// SIGKILL in failure tests: the cluster listener and every inter-node
// connection close mid-flight, workers stop without draining, nothing
// is flushed beyond what the store already made durable. A killed
// node's acked traces survive by construction: their blobs (and, per
// ReplicaAck, their follower copies) were fsynced before the ack.
func (s *Server) Kill() {
	if s.draining.Swap(true) {
		return
	}
	close(s.quit)
	if s.alerts != nil {
		s.alerts.Stop()
	}
	if s.cluster != nil {
		s.cluster.ring.Kill()
	}
	s.runCancel()
}

// handleCluster serves the versioned routing table: membership, ring
// parameters, per-peer health, and the table version clients use to
// detect disagreeing nodes.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.ring.Info())
}
