package cluster_test

// Benchmarks of the accelerated Mean Shift engine. The pinned sub-
// benchmarks (BenchmarkMeanShift/n=.../...) are defined once in
// internal/benchsuite and shared with `mosaic-bench -bench-json`, which
// records them into the committed BENCH_meanshift.json baseline that CI's
// regression gate compares against.
//
// Run locally with:
//
//	go test ./internal/cluster -bench BenchmarkMeanShift -run ^$

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/benchsuite"
	"github.com/mosaic-hpc/mosaic/internal/cluster"
)

func BenchmarkMeanShift(b *testing.B) {
	for _, size := range benchsuite.MeanShiftSizes() {
		for _, mode := range benchsuite.MeanShiftModes(size.N) {
			mode := mode
			cfg := mode.Cfg
			cfg.Bandwidth = 0.05
			cfg.Scratch = cluster.NewScratch()
			pts := benchsuite.Points(size.N)
			b.Run("n="+size.Label+"/"+mode.Label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cluster.MeanShift(pts, cfg)
					if err != nil || len(res.Centers) == 0 {
						b.Fatalf("centers=%d err=%v", len(res.Centers), err)
					}
				}
			})
		}
	}
}

// BenchmarkEstimateBandwidth covers both regimes of the estimator: the
// exact all-pairs quickselect below the cutoff and pair sampling above.
func BenchmarkEstimateBandwidth(b *testing.B) {
	for _, n := range []int{200, 5000} {
		pts := benchsuite.Points(n)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bw := cluster.EstimateBandwidth(pts, 0.3); bw <= 0 {
					b.Fatal("bandwidth must be positive")
				}
			}
		})
	}
}

func itoa(v int) string {
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
