package engine

import (
	"strings"
	"testing"
	"time"
)

// recObserver appends a tagged line per event to a shared log, so fan-out
// order across observers is checkable.
type recObserver struct {
	tag string
	log *[]string
}

func (r recObserver) StageStarted(s StageID)  { *r.log = append(*r.log, r.tag+":started:"+string(s)) }
func (r recObserver) StageFinished(s StageID) { *r.log = append(*r.log, r.tag+":finished:"+string(s)) }
func (r recObserver) ItemIn(s StageID)        { *r.log = append(*r.log, r.tag+":in:"+string(s)) }
func (r recObserver) ItemOut(s StageID)       { *r.log = append(*r.log, r.tag+":out:"+string(s)) }
func (r recObserver) ItemError(s StageID, _ error) {
	*r.log = append(*r.log, r.tag+":err:"+string(s))
}

// recSpanObserver additionally records spans.
type recSpanObserver struct{ recObserver }

func (r recSpanObserver) ItemSpan(s StageID, name string, _ time.Time, _ time.Duration) {
	*r.log = append(*r.log, r.tag+":span:"+string(s)+":"+name)
}

func TestMultiObserverFanOutOrdering(t *testing.T) {
	var log []string
	a := recObserver{tag: "a", log: &log}
	b := recObserver{tag: "b", log: &log}
	m := MultiObserver(a, b)

	m.StageStarted(StageDecode)
	m.ItemIn(StageDecode)
	m.ItemOut(StageDecode)
	m.ItemError(StageDecode, nil)
	m.StageFinished(StageDecode)

	want := []string{
		"a:started:decode", "b:started:decode",
		"a:in:decode", "b:in:decode",
		"a:out:decode", "b:out:decode",
		"a:err:decode", "b:err:decode",
		"a:finished:decode", "b:finished:decode",
	}
	if len(log) != len(want) {
		t.Fatalf("events = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (argument-order fan-out broken)", i, log[i], want[i])
		}
	}
}

func TestMultiObserverSpanPromotion(t *testing.T) {
	var log []string
	plain := recObserver{tag: "plain", log: &log}
	spanful := recSpanObserver{recObserver{tag: "spanful", log: &log}}

	// No member implements SpanObserver → the composite must not either,
	// so the engine skips per-item clock reads entirely.
	if _, ok := MultiObserver(plain, plain).(SpanObserver); ok {
		t.Fatal("composite of plain observers advertises SpanObserver")
	}

	// One member implements it → composite forwards spans to it only.
	m := MultiObserver(plain, spanful)
	so, ok := m.(SpanObserver)
	if !ok {
		t.Fatal("composite with a span-capable member lacks SpanObserver")
	}
	so.ItemSpan(StageCategorize, "u/app", time.Now(), time.Millisecond)
	if len(log) != 1 || !strings.HasPrefix(log[0], "spanful:span:categorize") {
		t.Fatalf("span fan-out = %v, want exactly one spanful event", log)
	}
}

func TestStatsWriteTable(t *testing.T) {
	st := NewStats()
	st.StageStarted(StageDecode)
	st.ItemIn(StageDecode)
	st.ItemOut(StageDecode)
	st.StageFinished(StageDecode)

	var b strings.Builder
	st.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"stage", "items/s", "decode"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Snapshot carries the JSON rate field.
	snap := st.Stage(StageDecode)
	if snap.ItemsPerSec != snap.Throughput() {
		t.Fatalf("ItemsPerSec = %v, Throughput = %v; want equal", snap.ItemsPerSec, snap.Throughput())
	}
}
