package store

import (
	"context"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/explain"
)

func testExplained(t *testing.T, seed int) (*core.Result, *explain.Explanation) {
	t.Helper()
	res, expl, err := core.CategorizeExplained(testJob(seed), core.DefaultConfig(), explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, expl
}

func TestStoreExplanationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := testJob(3)
	id, _, err := TraceKey(j)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.DefaultConfig().Fingerprint()
	if s.HasExplanation(id, fp) {
		t.Fatal("explanation present before put")
	}
	if _, ok, err := s.GetExplanation(id, fp); err != nil || ok {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	_, expl := testExplained(t, 3)
	n, err := s.PutExplanation(id, fp, expl)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("PutExplanation size = %d, want > 0", n)
	}
	if !s.HasExplanation(id, fp) {
		t.Fatal("HasExplanation false after put")
	}
	back, ok, err := s.GetExplanation(id, fp)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if back.EvidenceCount() != expl.EvidenceCount() || len(back.Labels) != len(expl.Labels) {
		t.Fatal("explanation round trip lost evidence")
	}
	if st := s.Stats(); st.Explanations != 1 {
		t.Fatalf("Stats.Explanations = %d, want 1", st.Explanations)
	}
	// A different fingerprint is a different record.
	if s.HasExplanation(id, "cfg-other") {
		t.Fatal("explanation leaked across fingerprints")
	}
}

func TestStoreExplanationSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(5)
	id, _, err := TraceKey(j)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.DefaultConfig().Fingerprint()
	_, expl := testExplained(t, 5)
	if _, err := s.PutExplanation(id, fp, expl); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	back, ok, err := s2.GetExplanation(id, fp)
	if err != nil || !ok {
		t.Fatalf("explanation lost across reopen: ok=%v err=%v", ok, err)
	}
	if back.EvidenceCount() != expl.EvidenceCount() {
		t.Fatal("reopened explanation differs")
	}
	if st := s2.Stats(); st.Explanations != 1 {
		t.Fatalf("reopened Stats.Explanations = %d, want 1", st.Explanations)
	}
}

func TestCachingExecutorExplained(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exec := NewCachingExecutor(s, engine.Local{Workers: 2})
	cfg := core.DefaultConfig()
	j := testJob(7)
	ctx := context.Background()

	res1, expl1, err := exec.CategorizeExplained(ctx, j, cfg, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if expl1 == nil || expl1.EvidenceCount() == 0 {
		t.Fatal("cold run returned no explanation")
	}
	if exec.Hits() != 0 || exec.Misses() != 1 {
		t.Fatalf("after cold run: hits=%d misses=%d", exec.Hits(), exec.Misses())
	}
	res2, expl2, err := exec.CategorizeExplained(ctx, j, cfg, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Hits() != 1 || exec.Misses() != 1 {
		t.Fatalf("after warm run: hits=%d misses=%d", exec.Hits(), exec.Misses())
	}
	if !res1.Categories.Equal(res2.Categories) {
		t.Fatal("warm result categories differ")
	}
	if expl2.EvidenceCount() != expl1.EvidenceCount() {
		t.Fatal("warm explanation differs from cold one")
	}
}

// A result stored without an explanation (plain Categorize path, or a
// pre-explain corpus) is not a warm hit for the explained path: both
// are recomputed, only the missing explanation is written back, and
// the stored result stays authoritative.
func TestCachingExecutorBackfillsExplanation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exec := NewCachingExecutor(s, engine.Local{Workers: 2})
	cfg := core.DefaultConfig()
	j := testJob(9)
	ctx := context.Background()
	id, _, err := TraceKey(j)
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()

	// Plain path stores only the result.
	if _, err := exec.Categorize(ctx, j, cfg); err != nil {
		t.Fatal(err)
	}
	if s.HasExplanation(id, fp) {
		t.Fatal("plain path stored an explanation")
	}
	// Explained path misses (no explanation), recomputes, backfills.
	_, expl, err := exec.CategorizeExplained(ctx, j, cfg, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if expl == nil {
		t.Fatal("backfill returned no explanation")
	}
	if exec.Misses() != 2 {
		t.Fatalf("explanation backfill should count as a miss: misses=%d", exec.Misses())
	}
	if !s.HasExplanation(id, fp) {
		t.Fatal("explanation not backfilled")
	}
	// Second explained call is now fully warm.
	if _, _, err := exec.CategorizeExplained(ctx, j, cfg, explain.Options{}); err != nil {
		t.Fatal(err)
	}
	if exec.Hits() != 1 {
		t.Fatalf("after backfill: hits=%d, want 1", exec.Hits())
	}
}

func TestCachingExecutorExplainDegradesWithoutCapability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exec := NewCachingExecutor(s, noExplainExec{engine.Local{Workers: 1}})
	res, expl, err := exec.CategorizeExplained(context.Background(), testJob(11), core.DefaultConfig(), explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result from degraded path")
	}
	if expl != nil {
		t.Fatal("capability-less inner executor produced an explanation")
	}
}

// noExplainExec wraps Local but only exposes the plain Executor
// interface, standing in for an executor (e.g. an old remote master)
// that cannot collect evidence.
type noExplainExec struct{ inner engine.Local }

func (n noExplainExec) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	return n.inner.Categorize(ctx, j, cfg)
}

func (n noExplainExec) Concurrency() int { return n.inner.Concurrency() }
