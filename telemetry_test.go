package mosaic_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

// telemetryJobs builds a small deterministic corpus for facade-level
// telemetry tests.
func telemetryJobs(n int) []*mosaic.Job {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]*mosaic.Job, 0, n)
	for i := 0; i < n; i++ {
		b := mosaic.NewTraceBuilder(rng, fmt.Sprintf("u%d", i%2), fmt.Sprintf("/bin/app%d", i%3), uint64(i+1), 8, 3600)
		b.Burst(mosaic.BurstSpec{At: 30, Duration: 60, Bytes: 1 << 30, Records: 4})
		jobs = append(jobs, b.Job())
	}
	return jobs
}

func TestOptionsTelemetryInstrumentsRun(t *testing.T) {
	tel := mosaic.NewTelemetry(mosaic.TelemetryConfig{Spans: true, SlowK: 3})
	stats := mosaic.NewStageStats() // a second observer, composed by the facade
	jobs := telemetryJobs(12)
	analysis, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{
		Workers:   2,
		Observer:  stats,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.Apps) == 0 {
		t.Fatal("no apps analyzed")
	}

	// Both observers saw the run.
	if got := stats.Stage(mosaic.StageDecode).Out; got != int64(len(jobs)) {
		t.Fatalf("user observer decode out = %d, want %d", got, len(jobs))
	}
	if got := tel.Stats().Stage(mosaic.StageDecode).Out; got != int64(len(jobs)) {
		t.Fatalf("telemetry decode out = %d, want %d", got, len(jobs))
	}
	// Spans were recorded, including per-trace decode spans.
	if tel.Spans().Len() == 0 {
		t.Fatal("no spans recorded through the facade knob")
	}

	// The debug server serves the bundle's state over HTTP.
	srv, err := mosaic.StartDebugServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/engine")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		Stages []mosaic.StageSnapshot `json:"stages"`
	}
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatalf("/debug/engine invalid JSON: %v", err)
	}
	if len(state.Stages) == 0 {
		t.Fatal("/debug/engine reports no stages after a run")
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "mosaic_engine_items_out_total") {
		t.Fatalf("/metrics lacks engine families:\n%s", metrics)
	}
}
