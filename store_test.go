package mosaic_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func storeTestJobs(n int) []*mosaic.Job {
	jobs := make([]*mosaic.Job, n)
	for i := range jobs {
		jobs[i] = &mosaic.Job{
			JobID: uint64(100 + i), User: "u", Exe: fmt.Sprintf("/bin/app%d", i),
			NProcs: 4, Runtime: 100, End: 100,
			Records: []mosaic.FileRecord{{
				Module: mosaic.ModPOSIX, Path: "/out", Rank: -1,
				C: mosaic.Counters{
					Opens: 1, Closes: 1, Writes: 10, BytesWritten: 200 << 20,
					OpenStart: 1, OpenEnd: 2, WriteStart: 90, WriteEnd: 99,
					CloseStart: 99, CloseEnd: 100,
				},
			}},
		}
	}
	return jobs
}

// TestOptionsStoreWarmStart exercises the facade warm-start path: the
// first run fills the store, the second is served from it entirely.
func TestOptionsStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := mosaic.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := storeTestJobs(4)

	cold, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Apps) != 4 {
		t.Fatalf("cold run categorized %d apps, want 4", len(cold.Apps))
	}
	s := st.Stats()
	if s.Hits != 0 || s.Misses != 4 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/4", s.Hits, s.Misses)
	}

	warm, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Apps) != 4 {
		t.Fatalf("warm run categorized %d apps, want 4", len(warm.Apps))
	}
	s = st.Stats()
	if s.Hits != 4 || s.Misses != 4 {
		t.Fatalf("warm run: hits=%d misses=%d, want 4/4", s.Hits, s.Misses)
	}
	// Warm results carry the same labels as cold ones.
	for i := range warm.Apps {
		if fmt.Sprint(warm.Apps[i].Result.Labels) != fmt.Sprint(cold.Apps[i].Result.Labels) {
			t.Fatalf("warm labels diverge for app %d: %v != %v",
				i, warm.Apps[i].Result.Labels, cold.Apps[i].Result.Labels)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: persistence survives the process boundary.
	st2, err := mosaic.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reopened, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reopened.Apps) != 4 {
		t.Fatalf("reopened run categorized %d apps, want 4", len(reopened.Apps))
	}
	s = st2.Stats()
	if s.Hits != 4 || s.Misses != 0 {
		t.Fatalf("reopened run: hits=%d misses=%d, want 4/0", s.Hits, s.Misses)
	}
}

// TestOptionsStoreFingerprintIsolation: results cached under one
// threshold set must not leak into a run with different thresholds.
func TestOptionsStoreFingerprintIsolation(t *testing.T) {
	st, err := mosaic.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs := storeTestJobs(2)
	if _, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	cfg := mosaic.DefaultConfig()
	cfg.SignificanceBytes = 1 << 20 // different fingerprint
	if _, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Store: st, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Hits != 0 || s.Misses != 4 {
		t.Fatalf("changed config must re-categorize: hits=%d misses=%d, want 0/4", s.Hits, s.Misses)
	}
}
