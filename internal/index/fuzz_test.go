package index

import (
	"sort"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// fuzzIndex builds a small index spanning every category, so term
// expansion and NOT-against-the-universe both have material to chew on.
func fuzzIndex() *Index {
	ix := New()
	all := category.All()
	for i, c := range all {
		id := store.TraceID(strings.Repeat("0", 60) + string(rune('a'+i%26)) + "fff")
		ix.Add(id, category.NewSet(c, all[(i+7)%len(all)]))
	}
	return ix
}

// FuzzQueryParse hammers the boolean query parser: queries now arrive
// over the peer RPC as well as the public API, so arbitrary input must
// never panic or overflow the stack, Parse and Query must agree on
// validity, and every accepted query must evaluate to a sorted,
// deduplicated ID list.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"read_periodic",
		"read_periodic AND write_aperiodic",
		"read_periodic OR write_aperiodic",
		"NOT metadata_insignificant_load",
		"read NOT write",
		"(read OR write) AND NOT metadata",
		"((read))",
		"read write",              // juxtaposition = AND
		"rEaD oR wRiTe",           // case-insensitive keywords
		"read,write",              // comma separator
		"read AND",                // dangling operator
		"AND read",                // leading operator
		"(read",                   // unclosed paren
		"read)",                   // stray close
		"zzz_no_such_category",    // term matching nothing
		"NOT NOT NOT read",        // stacked negation
		strings.Repeat("(", 600) + "read" + strings.Repeat(")", 600), // past the depth cap
		"read\t\nwrite\r",
		"()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	ix := fuzzIndex()
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 1<<16 {
			return // bound tokenizer work, not a parser property
		}
		parseErr := Parse(q)
		ids, queryErr := ix.Query(q)
		if (parseErr == nil) != (queryErr == nil) {
			t.Fatalf("Parse err %v but Query err %v for %q", parseErr, queryErr, q)
		}
		if queryErr != nil {
			return
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("Query(%q) output unsorted or duplicated at %d: %q >= %q", q, i, ids[i-1], ids[i])
			}
		}
	})
}

// FuzzMergeSorted checks the scatter-gather reduce step: any partition
// of ID lists — sorted or not — must merge to the sorted, deduplicated
// union.
func FuzzMergeSorted(f *testing.F) {
	f.Add("a,b,c|b,c,d", "")
	f.Add("", "a|a|a")
	f.Add("c,b,a", "x,y")
	f.Fuzz(func(t *testing.T, one, two string) {
		split := func(s string) [][]string {
			var out [][]string
			for _, part := range strings.Split(s, "|") {
				if part == "" {
					out = append(out, nil)
					continue
				}
				out = append(out, strings.Split(part, ","))
			}
			return out
		}
		lists := append(split(one), split(two)...)
		got := MergeSorted(lists...)
		want := map[string]struct{}{}
		for _, l := range lists {
			for _, id := range l {
				want[id] = struct{}{}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("merge of %q|%q lost or duplicated IDs: %d != %d", one, two, len(got), len(want))
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("merge of %q|%q is unsorted", one, two)
		}
		for _, id := range got {
			if _, ok := want[id]; !ok {
				t.Fatalf("merge invented ID %q", id)
			}
		}
	})
}
