package report

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"github.com/mosaic-hpc/mosaic/internal/category"
)

// PNG figure rendering with the standard library only: a viridis-like
// color ramp over the Jaccard matrix (Figure 5) and horizontal bars for
// the metadata distribution (Figure 4). Cells are drawn as flat blocks —
// no text labels (the CSV/JSON exports carry the labels); the images are
// meant as quick visual artifacts of an analysis run.

// ramp maps v in [0,1] onto a perceptually ordered blue→green→yellow ramp.
func ramp(v float64) color.RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Three-stop linear ramp: #440f54 -> #21918c -> #fde725.
	type stop struct{ r, g, b float64 }
	stops := []stop{{0x44, 0x0f, 0x54}, {0x21, 0x91, 0x8c}, {0xfd, 0xe7, 0x25}}
	pos := v * 2
	i := int(pos)
	if i >= 2 {
		i = 1
		pos = 2
	}
	f := pos - float64(i)
	a, b := stops[i], stops[i+1]
	return color.RGBA{
		R: uint8(a.r + (b.r-a.r)*f),
		G: uint8(a.g + (b.g-a.g)*f),
		B: uint8(a.b + (b.b-a.b)*f),
		A: 255,
	}
}

// HeatmapPNG renders the pairwise Jaccard matrix of every category whose
// application rate reaches minRate, with cell pixels per matrix entry.
func HeatmapPNG(w io.Writer, agg *Aggregator, minRate float64, cell int) error {
	if cell < 1 {
		cell = 12
	}
	co := agg.Co()
	var labels []category.Category
	for _, l := range co.Labels {
		if agg.SingleRate(l) >= minRate && co.Count(l) > 0 {
			labels = append(labels, l)
		}
	}
	n := len(labels)
	if n == 0 {
		return fmt.Errorf("report: no categories at rate >= %g", minRate)
	}
	const pad = 2
	size := n*cell + (n+1)*pad
	img := image.NewRGBA(image.Rect(0, 0, size, size))
	bg := color.RGBA{245, 245, 245, 255}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			img.SetRGBA(x, y, bg)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := ramp(co.Jaccard(labels[i], labels[j]))
			x0 := pad + j*(cell+pad)
			y0 := pad + i*(cell+pad)
			for y := y0; y < y0+cell; y++ {
				for x := x0; x < x0+cell; x++ {
					img.SetRGBA(x, y, c)
				}
			}
		}
	}
	return png.Encode(w, img)
}

// BarsPNG renders a horizontal bar chart of (label, value) pairs with
// values in [0,1]: one row per pair, bar length proportional to value.
func BarsPNG(w io.Writer, values []float64, barH, width int) error {
	if len(values) == 0 {
		return fmt.Errorf("report: no values to chart")
	}
	if barH < 2 {
		barH = 16
	}
	if width < 10 {
		width = 360
	}
	const pad = 4
	height := len(values)*(barH+pad) + pad
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	bg := color.RGBA{255, 255, 255, 255}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.SetRGBA(x, y, bg)
		}
	}
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		c := ramp(0.25 + v/2)
		y0 := pad + i*(barH+pad)
		barW := int(v * float64(width-2*pad))
		for y := y0; y < y0+barH; y++ {
			for x := pad; x < pad+barW; x++ {
				img.SetRGBA(x, y, c)
			}
		}
	}
	return png.Encode(w, img)
}

// MetadataBarsPNG renders Figure 4 as PNG: the four metadata categories,
// single-run and all-runs rates interleaved.
func MetadataBarsPNG(w io.Writer, agg *Aggregator) error {
	single, all := agg.MetadataDist()
	order := []category.Category{
		category.MetaHighSpike, category.MetaMultipleSpikes,
		category.MetaHighDensity, category.MetaInsignificantLoad,
	}
	var values []float64
	for _, c := range order {
		values = append(values, single[c], all[c])
	}
	return BarsPNG(w, values, 18, 420)
}
