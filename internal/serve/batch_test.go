package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// batchBody encodes blobs as a length-prefixed batch request body.
func batchBody(blobs ...[]byte) *bytes.Reader {
	var body []byte
	for _, b := range blobs {
		body = AppendBatchFrame(body, b)
	}
	return bytes.NewReader(body)
}

type ingestResponse struct {
	Results []IngestItem `json:"results"`
}

func postBatch(t *testing.T, url, contentType string, body io.Reader) (*http.Response, ingestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/traces:batch", contentType, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ir ingestResponse
	if err := json.Unmarshal(raw, &ir); err != nil && resp.StatusCode < 500 {
		// Error responses are {"error": ...}; leave Results empty.
		ir = ingestResponse{}
	}
	return resp, ir
}

func TestServeBatchIngestFramed(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blobs := [][]byte{
		encodeJob(t, testJob(1)),
		encodeJob(t, testJob(2)),
		[]byte("MOSDgarbage"),          // unreadable rides along
		encodeJob(t, testJob(1)),       // duplicate of the first frame
		[]byte(`{"nprocs": "broken"!`), // unreadable JSON
		encodeJob(t, testJob(3)),
	}
	resp, ir := postBatch(t, ts.URL, BatchContentType, batchBody(blobs...))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch ingest: status %d", resp.StatusCode)
	}
	if len(ir.Results) != len(blobs) {
		t.Fatalf("batch answered %d items for %d frames", len(ir.Results), len(blobs))
	}
	byStatus := map[string]int{}
	for _, it := range ir.Results {
		byStatus[it.Status]++
	}
	// The duplicate decodes to the same content address: one of the two
	// is accepted, the other is deduplicated as pending.
	if byStatus[StatusUnreadable] != 2 {
		t.Fatalf("unreadable = %d, want 2 (%v)", byStatus[StatusUnreadable], byStatus)
	}
	if byStatus[StatusAccepted]+byStatus[StatusPending]+byStatus[StatusCached] != 4 {
		t.Fatalf("readable frames unaccounted: %v", byStatus)
	}
	for i := 1; i <= 3; i++ {
		id, _, err := store.TraceKey(testJob(i))
		if err != nil {
			t.Fatal(err)
		}
		waitResult(t, ts.URL, id)
	}
}

func TestServeBatchIngestMultipart(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i := 1; i <= 3; i++ {
		fw, err := mw.CreateFormFile("trace", fmt.Sprintf("job%d.mosd", i))
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(encodeJob(t, testJob(i)))
	}
	mw.Close()
	resp, ir := postBatch(t, ts.URL, mw.FormDataContentType(), &buf)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart batch: status %d", resp.StatusCode)
	}
	if len(ir.Results) != 3 {
		t.Fatalf("multipart batch answered %d items, want 3", len(ir.Results))
	}
	for _, it := range ir.Results {
		if it.Status != StatusAccepted {
			t.Fatalf("part %q: status %q, want accepted", it.Name, it.Status)
		}
	}
	for i := 1; i <= 3; i++ {
		id, _, _ := store.TraceKey(testJob(i))
		waitResult(t, ts.URL, id)
	}
}

func TestServeBatchIngestErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4, NoBackfill: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wrong content type.
	resp, _ := postBatch(t, ts.URL, "text/plain", strings.NewReader("hi"))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain batch: status %d, want 415", resp.StatusCode)
	}
	// Empty body.
	resp, _ = postBatch(t, ts.URL, BatchContentType, bytes.NewReader(nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	// Torn frame: length prefix promises more bytes than the body holds.
	torn := AppendBatchFrame(nil, encodeJob(t, testJob(1)))
	torn = append(torn, 0xFF, 0xFF, 0x00, 0x00) // 64 KiB frame, no payload
	resp, _ = postBatch(t, ts.URL, BatchContentType, bytes.NewReader(torn))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn batch: status %d, want 400", resp.StatusCode)
	}
	// A frame above the upload limit is rejected outright.
	s2, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxUploadBytes: 64, NoBackfill: true})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, _ = postBatch(t, ts2.URL, BatchContentType, batchBody(encodeJob(t, testJob(1))))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized frame: status %d, want 400", resp.StatusCode)
	}
}

func TestServeBatchBackpressure(t *testing.T) {
	// One worker, a tiny queue, and a batch bigger than both: the
	// overflow must answer 429 with per-item rejected statuses while
	// accepted items survive.
	exec := &blockingExec{release: make(chan struct{}), inner: engine.Local{Workers: 1}}
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2, NoBackfill: true, Executor: exec})
	defer func() {
		close(exec.release)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var blobs [][]byte
	for i := 0; i < 8; i++ {
		blobs = append(blobs, encodeJob(t, testJob(100+i)))
	}
	resp, ir := postBatch(t, ts.URL, BatchContentType, batchBody(blobs...))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	accepted, rejected := 0, 0
	for _, it := range ir.Results {
		switch it.Status {
		case StatusAccepted:
			accepted++
		case StatusRejected:
			rejected++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("want a mix of accepted and rejected, got %d/%d", accepted, rejected)
	}
	// Every blob — accepted or rejected — is already durable: batch
	// persistence happens before queueing.
	for i := range blobs {
		id := store.HashBytes(blobs[i])
		if !s.st.HasTrace(id) {
			t.Fatalf("blob %d not persisted despite queue overflow", i)
		}
	}
}
