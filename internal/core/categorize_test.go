package core

import (
	"encoding/json"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// checkpointJob builds the paper's flagship example: read on start,
// periodic checkpoints, final result write.
func checkpointJob() *darshan.Job {
	j := &darshan.Job{
		JobID: 1, User: "alice", Exe: "/bin/sim", NProcs: 64,
		Start: 0, End: 7200, Runtime: 7200,
	}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/in",
		C: darshan.Counters{
			Opens: 64, Closes: 64, Seeks: 64,
			Reads: 10, BytesRead: 4 << 30,
			OpenStart: 4, OpenEnd: 5, ReadStart: 5, ReadEnd: 90,
			CloseStart: 91, CloseEnd: 92,
		},
	})
	for ts := 600.0; ts+40 < 7200; ts += 600 {
		j.Records = append(j.Records, darshan.FileRecord{
			Module: darshan.ModPOSIX, Path: "/ckpt",
			C: darshan.Counters{
				Opens: 64, Closes: 64, Seeks: 64,
				Writes: 10, BytesWritten: 1 << 30,
				OpenStart: ts - 1, OpenEnd: ts, WriteStart: ts, WriteEnd: ts + 30,
				CloseStart: ts + 31, CloseEnd: ts + 32,
			},
		})
	}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/result",
		C: darshan.Counters{
			Opens: 64, Closes: 64, Seeks: 64,
			Writes: 10, BytesWritten: 10 << 30,
			OpenStart: 7049, OpenEnd: 7050, WriteStart: 7050, WriteEnd: 7150,
			CloseStart: 7151, CloseEnd: 7152,
		},
	})
	return j
}

func TestCategorizeFlagshipExample(t *testing.T) {
	res, err := Categorize(checkpointJob(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// "A numerical simulation performing regular checkpoints throughout
	// its execution and writing a final result before finishing will be
	// identified as periodic and write on end."
	for _, want := range []category.Category{
		category.Periodic(category.DirWrite),
		category.PeriodicMagnitude(category.DirWrite, category.MagMinute),
		category.PeriodicBusy(category.DirWrite, false),
		category.Temporal(category.DirWrite, category.OnEnd),
		category.Temporal(category.DirRead, category.OnStart),
	} {
		if !res.Categories.Has(want) {
			t.Errorf("missing %q in %v", want, res.Categories)
		}
	}
	if !res.Write.Periodic() {
		t.Fatal("write direction not periodic")
	}
	if p := res.Write.DominantPeriod(); p < 500 || p > 700 {
		t.Fatalf("dominant period = %g, want ~600", p)
	}
	if res.Read.Periodic() {
		t.Fatal("read direction should not be periodic")
	}
	if len(res.Labels) != len(res.Categories) {
		t.Fatal("Labels not synced with Categories")
	}
}

func TestCategorizeMergesDesynchronizedRanks(t *testing.T) {
	// 16 ranks writing the same phase slightly desynchronized must merge
	// into a single logical operation.
	j := &darshan.Job{
		JobID: 2, User: "bob", Exe: "/bin/x", NProcs: 16,
		Start: 0, End: 1000, Runtime: 1000,
	}
	for r := 0; r < 16; r++ {
		off := float64(r) * 0.5
		j.Records = append(j.Records, darshan.FileRecord{
			Module: darshan.ModPOSIX, Path: "/shared", Rank: int32(r),
			C: darshan.Counters{
				Opens: 1, Closes: 1, Seeks: 1,
				Writes: 5, BytesWritten: 20 << 20,
				OpenStart: 499 + off, OpenEnd: 500 + off,
				WriteStart: 500 + off, WriteEnd: 520 + off,
				CloseStart: 521 + off, CloseEnd: 522 + off,
			},
		})
	}
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.RawOps != 16 || res.Write.MergedOps != 1 {
		t.Fatalf("raw=%d merged=%d, want 16 -> 1", res.Write.RawOps, res.Write.MergedOps)
	}
	if res.Write.TotalBytes != 16*(20<<20) {
		t.Fatalf("merged bytes = %d", res.Write.TotalBytes)
	}
}

func TestCategorizeEmptyJob(t *testing.T) {
	j := &darshan.Job{JobID: 3, User: "c", Exe: "/bin/idle", NProcs: 8, Runtime: 100, End: 100}
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := category.NewSet(
		category.Temporal(category.DirRead, category.Insignificant),
		category.Temporal(category.DirWrite, category.Insignificant),
		category.MetaInsignificantLoad,
	)
	if !res.Categories.Equal(want) {
		t.Fatalf("categories = %v, want %v", res.Categories, want)
	}
}

func TestCategorizeIndependentDirections(t *testing.T) {
	// Significant reads + insignificant writes: directions evaluated
	// independently (a trace can be read-categorized and
	// write-insignificant at once).
	j := &darshan.Job{JobID: 4, User: "d", Exe: "/bin/r", NProcs: 8, Runtime: 1000, End: 1000}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/in",
		C: darshan.Counters{
			Reads: 10, BytesRead: 1 << 30,
			ReadStart: 10, ReadEnd: 50,
		},
	})
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/log",
		C: darshan.Counters{
			Writes: 1, BytesWritten: 1 << 20,
			WriteStart: 900, WriteEnd: 910,
		},
	})
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Categories.Has(category.Temporal(category.DirRead, category.OnStart)) {
		t.Fatalf("categories = %v", res.Categories)
	}
	if !res.Categories.Has(category.Temporal(category.DirWrite, category.Insignificant)) {
		t.Fatalf("categories = %v", res.Categories)
	}
	if res.Write.Significant() || !res.Read.Significant() {
		t.Fatal("Significant() predicates wrong")
	}
}

func TestCategorizeConfigurableThreshold(t *testing.T) {
	// Lowering the significance threshold brings small traces into
	// characterization — "the threshold can be modified in MOSAIC".
	j := &darshan.Job{JobID: 5, User: "e", Exe: "/bin/s", NProcs: 2, Runtime: 1000, End: 1000}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/f",
		C: darshan.Counters{
			Writes: 1, BytesWritten: 10 << 20, // 10 MB
			WriteStart: 950, WriteEnd: 960,
		},
	})
	cfg := DefaultConfig()
	res, _ := Categorize(j, cfg)
	if !res.Categories.Has(category.Temporal(category.DirWrite, category.Insignificant)) {
		t.Fatal("10 MB should be insignificant at default threshold")
	}
	cfg.SignificanceBytes = 1 << 20
	res, _ = Categorize(j, cfg)
	if !res.Categories.Has(category.Temporal(category.DirWrite, category.OnEnd)) {
		t.Fatalf("lowered threshold: %v", res.Categories)
	}
}

func TestCategorizeClipsOutOfRangeOps(t *testing.T) {
	// A record slightly exceeding the runtime (within validation slack)
	// must be clipped, not dropped.
	j := &darshan.Job{JobID: 6, User: "f", Exe: "/bin/t", NProcs: 2, Runtime: 100, End: 100}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/f",
		C: darshan.Counters{
			Writes: 1, BytesWritten: 200 << 20,
			WriteStart: 95, WriteEnd: 100.5,
		},
	})
	if err := darshan.Validate(j); err != nil {
		t.Fatalf("job should be within slack: %v", err)
	}
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Categories.Has(category.Temporal(category.DirWrite, category.OnEnd)) {
		t.Fatalf("clipped op lost: %v", res.Categories)
	}
}

func TestResultJSONSerializable(t *testing.T) {
	res, err := Categorize(checkpointJob(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Labels) != len(res.Labels) || back.JobID != res.JobID {
		t.Fatal("JSON round trip lost data")
	}
	if back.Read.TemporalS != "on_start" {
		t.Fatalf("temporality string = %q", back.Read.TemporalS)
	}
}

func TestDominantPeriodEmpty(t *testing.T) {
	var d DirectionReport
	if d.DominantPeriod() != 0 || d.Periodic() {
		t.Fatal("empty direction report")
	}
}
