package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Ingest throughput: one request per trace vs. /v1/traces:batch, both
// over a Sync store so every acknowledgment implies durability. The
// batch path amortizes sniffing, decode, and — dominating everything —
// the fsync across the group, which is where the ≥10× comes from.
// These numbers are fsync-bound and therefore disk-dependent, so they
// are reported here rather than pinned in the bench-regression gate.

// benchBlobs returns n distinct canonical trace encodings.
func benchBlobs(b *testing.B, n int) [][]byte {
	b.Helper()
	blobs := make([][]byte, n)
	for i := range blobs {
		j := testJob(i)
		j.JobID = uint64(1_000_000 + i)
		data, err := darshan.MarshalBinary(j)
		if err != nil {
			b.Fatal(err)
		}
		blobs[i] = data
	}
	return blobs
}

// benchServer builds a serve stack over a Sync store with a result
// pre-stored for every blob, so ingests resolve as cache hits and the
// async categorization queue stays idle: what the timed loop measures
// is the ingest path itself — sniff, decode, content-address, durable
// persist — not the engine work both modes share.
func benchServer(b *testing.B, blobs [][]byte) (*Server, *httptest.Server) {
	b.Helper()
	dir := b.TempDir()
	st0, err := store.Open(dir, store.Options{}) // no Sync: fast pre-store
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{}.Normalized()
	fp := cfg.Fingerprint()
	j, err := darshan.UnmarshalBinary(blobs[0])
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Categorize(j, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, blob := range blobs {
		if err := st0.PutResult(store.HashBytes(blob), fp, res); err != nil {
			b.Fatal(err)
		}
	}
	if err := st0.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 16, NoBackfill: true})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		st.Close()
	})
	return s, ts
}

func post(b *testing.B, url, contentType string, body io.Reader) {
	b.Helper()
	resp, err := http.Post(url, contentType, body)
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		b.Fatalf("ingest answered %d", resp.StatusCode)
	}
}

// BenchmarkIngestSingleHTTP ingests one trace per request: every
// request pays its own sniff, decode, store write, and fsync.
func BenchmarkIngestSingleHTTP(b *testing.B) {
	blobs := benchBlobs(b, b.N)
	_, ts := benchServer(b, blobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(blobs[i]))
	}
}

// BenchmarkIngestBatchHTTP ingests the same traces 128 per request via
// the length-prefixed batch framing; ns/op stays per-trace because b.N
// counts traces, not requests.
func BenchmarkIngestBatchHTTP(b *testing.B) {
	const batch = 128
	blobs := benchBlobs(b, b.N)
	_, ts := benchServer(b, blobs)
	b.ResetTimer()
	var body []byte
	for i := 0; i < b.N; i += batch {
		end := i + batch
		if end > b.N {
			end = b.N
		}
		body = body[:0]
		for _, blob := range blobs[i:end] {
			body = AppendBatchFrame(body, blob)
		}
		post(b, ts.URL+"/v1/traces:batch", BatchContentType, bytes.NewReader(body))
	}
}

// BenchmarkPutTraceBatch measures the store half alone: content
// addressing, framing, one staged write and one group-committed fsync
// per batch of 64, no HTTP in the way.
func BenchmarkPutTraceBatch(b *testing.B) {
	const batch = 64
	st, err := store.Open(b.TempDir(), store.Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	blobs := benchBlobs(b, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		end := i + batch
		if end > b.N {
			end = b.N
		}
		if _, _, err := st.PutTraceBatch(blobs[i:end]); err != nil {
			b.Fatal(err)
		}
	}
}
