package ring

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
)

// ErrNotFound is the typed miss: a handler returns it (or wraps it) to
// answer StatusNotFound, and Client.Call returns it when a peer
// answered that way — so "the peer doesn't have it" is distinguishable
// from "the peer failed".
var ErrNotFound = errors.New("ring: not found")

// RemoteError is a peer's application-level failure (StatusError): the
// peer was reachable and answered, its handler failed. Callers use the
// distinction for health tracking — a RemoteError must not mark the
// peer down, a transport error should.
type RemoteError struct {
	Op   string
	Peer string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("ring: %s: peer %s: %s", e.Op, e.Peer, e.Msg)
}

// Handler serves one operation. The context carries a request trace
// (adopted from the frame's traceparent) when the server has a flight
// recorder; the frame's RequestID names the originating client
// request. The returned body is the response payload; returning an
// error that Is(ErrNotFound) answers StatusNotFound, any other error
// StatusError with the message as body.
type Handler func(ctx context.Context, req *Frame) ([]byte, error)

// ServerOptions configures a frame-RPC server.
type ServerOptions struct {
	// Log receives connection lifecycle events (nil: silent).
	Log *slog.Logger
	// Flight, when non-nil, turns on server-side request tracing: each
	// inbound frame becomes a root span (adopting the propagated
	// traceparent, so the trace ID matches the originating request) and
	// the completed trace lands in this recorder.
	Flight *reqtrace.Recorder
	// Hello is the OpPing response body ({"ok":true} when empty) —
	// clusters answer it with their identity and routing-table version.
	Hello []byte
}

// Server accepts frame-RPC connections and dispatches frames to
// registered handlers, one connection per goroutine, frames on a
// connection served in order. Shutdown drains like dist.Server; Kill
// is the crash path used by failure tests.
type Server struct {
	opts     ServerOptions
	handlers [256]Handler
	opNames  [256]string

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  bool
	drained  sync.WaitGroup
	frames   sync.WaitGroup // in-flight dispatches (drain unit: Shutdown)
}

// NewServer returns a server with OpPing pre-registered.
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, conns: make(map[net.Conn]struct{})}
	hello := opts.Hello
	if len(hello) == 0 {
		hello = []byte(`{"ok":true}`)
	}
	s.Handle(OpPing, "ping", func(context.Context, *Frame) ([]byte, error) {
		return hello, nil
	})
	return s
}

// Handle registers the handler for one op code. Call before Serve.
func (s *Server) Handle(op byte, name string, h Handler) {
	s.handlers[op] = h
	s.opNames[op] = name
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	s.conns[c] = struct{}{}
	s.drained.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.drained.Done()
	}
	s.mu.Unlock()
}

// Serve accepts connections on l until the listener closes. It blocks;
// a clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		go func(c net.Conn) {
			defer s.untrack(c)
			defer c.Close()
			if err := s.serveConn(c); err != nil && s.opts.Log != nil {
				s.opts.Log.Debug("ring: connection closed", "remote", c.RemoteAddr().String(), "err", err)
			}
		}(conn)
	}
}

// serveConn reads frames off one connection and answers each in order.
// The read buffer grows to the largest frame seen and parses
// incrementally, so a slow peer trickling a large replication batch
// costs no re-scans.
func (s *Server) serveConn(c net.Conn) error {
	buf := make([]byte, 0, 16<<10)
	var out []byte
	for {
		f, n, err := ParseFrame(buf)
		if err != nil {
			return err
		}
		if n == 0 {
			if len(buf) == cap(buf) {
				grown := make([]byte, len(buf), cap(buf)*2)
				copy(grown, buf)
				buf = grown
			}
			r, err := c.Read(buf[len(buf):cap(buf)])
			if r > 0 {
				buf = buf[:len(buf)+r]
				continue
			}
			if err == io.EOF {
				return nil
			}
			return err
		}
		s.frames.Add(1)
		out = s.dispatch(out[:0], &f)
		_, err = c.Write(out)
		s.frames.Done()
		if err != nil {
			return err
		}
		buf = append(buf[:0], buf[n:]...)
	}
}

// dispatch runs one frame through its handler — opening and finishing
// a request trace around it when the server records flights — and
// appends the response frame to out.
func (s *Server) dispatch(out []byte, f *Frame) []byte {
	h := s.handlers[f.Op]
	name := s.opNames[f.Op]
	if name == "" {
		name = fmt.Sprintf("op%d", f.Op)
	}
	if h == nil {
		return AppendFrame(out, &Frame{Op: f.Op, Status: StatusError,
			RequestID: f.RequestID, Body: []byte("ring: unknown op " + name)})
	}
	ctx := context.Background()
	var t *reqtrace.Trace
	if s.opts.Flight != nil {
		t = reqtrace.New(reqtrace.StartOptions{
			Traceparent: f.Traceparent,
			RequestID:   f.RequestID,
			Method:      "RPC",
			Route:       name,
			OnDone:      s.opts.Flight.Complete,
		})
		ctx = reqtrace.NewContext(ctx, t)
	}
	body, err := h(ctx, f)
	resp := Frame{Op: f.Op, RequestID: f.RequestID, Body: body}
	status := 200
	switch {
	case errors.Is(err, ErrNotFound):
		resp.Status, status = StatusNotFound, 404
	case err != nil:
		resp.Status, status = StatusError, 500
		resp.Body = []byte(err.Error())
		if t != nil {
			t.SetError(err.Error())
		}
	}
	if t != nil {
		t.FinishRoot(status)
	}
	return AppendFrame(out, &resp)
}

// Shutdown stops accepting, waits for in-flight frames to finish (or
// ctx to expire), then closes every connection. Peers hold pooled
// persistent connections that never close on their own, so the drain
// unit is the frame, not the connection.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.frames.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.drained.Wait()
	return err
}

// Kill closes the listener and every open connection immediately — the
// in-process stand-in for SIGKILL in failure tests: in-flight frames
// die mid-write, exactly what peers must tolerate.
func (s *Server) Kill() {
	s.mu.Lock()
	s.closing = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Client is a frame-RPC client for one peer address: a lazy pool of
// connections, one checked out per in-flight call, so concurrent
// scatter-gather calls to the same peer never serialize on a socket.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

type clientConn struct {
	c   net.Conn
	buf []byte
}

// NewClient returns a client for addr. timeout bounds dial and —
// absent a context deadline — each call's round trip (<= 0: 10s).
// Connections are opened on first use.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{addr: addr, timeout: timeout}
}

// Addr returns the peer address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) get(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("ring: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("ring: dialing %s: %w", c.addr, err)
	}
	return &clientConn{c: conn, buf: make([]byte, 0, 16<<10)}, nil
}

func (c *Client) put(cc *clientConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < 4 {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.c.Close()
}

// Close releases all pooled connections; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
	return nil
}

// Call performs one round trip: request out, response in. The hop is
// recorded as an "rpc.<opName>" span when ctx carries a request trace,
// and the frame propagates the trace context (the span becomes the
// remote root's parent) plus the request ID — so a flight-recorder
// dump on either node shows the same trace ID with the cross-node
// parent/child edge intact. A peer's StatusNotFound surfaces as
// ErrNotFound, StatusError as an error carrying the peer's message.
func (c *Client) Call(ctx context.Context, op byte, opName, reqID string, body []byte) ([]byte, error) {
	sp := reqtrace.StartLeaf(ctx, "rpc."+opName, reqtrace.Str("peer", c.addr))
	defer sp.End()
	tp := ""
	if t, _, ok := reqtrace.FromContext(ctx); ok {
		tp = reqtrace.FormatTraceparent(t.ID(), sp.ID())
	}
	resp, err := c.roundTrip(ctx, &Frame{Op: op, RequestID: reqID, Traceparent: tp, Body: body})
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Body, nil
	case StatusNotFound:
		sp.SetAttr(reqtrace.Str("status", "notfound"))
		return nil, ErrNotFound
	default:
		err := &RemoteError{Op: opName, Peer: c.addr, Msg: string(resp.Body)}
		sp.SetError(err)
		return nil, err
	}
}

// roundTrip writes one frame and reads one response on a pooled
// connection. Transport errors close the connection; protocol-level
// errors (StatusError) keep it pooled.
func (c *Client) roundTrip(ctx context.Context, req *Frame) (Frame, error) {
	cc, err := c.get(ctx)
	if err != nil {
		return Frame{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := cc.c.SetDeadline(deadline); err != nil {
		cc.c.Close()
		return Frame{}, err
	}
	out := AppendFrame(cc.buf[:0], req)
	// Keep the grown storage with the pooled connection: a client that
	// ships 1 MB ingest batches would otherwise re-grow the frame buffer
	// from scratch on every call.
	cc.buf = out[:0]
	if _, err := cc.c.Write(out); err != nil {
		cc.c.Close()
		return Frame{}, fmt.Errorf("ring: writing to %s: %w", c.addr, err)
	}
	buf := cc.buf[:0]
	for {
		f, n, perr := ParseFrame(buf)
		if perr != nil {
			cc.c.Close()
			return Frame{}, perr
		}
		if n != 0 {
			// Copy the body out of the pooled buffer before the
			// connection is reused.
			f.Body = append([]byte(nil), f.Body...)
			cc.buf = buf[:0]
			c.put(cc)
			return f, nil
		}
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), cap(buf)*2)
			copy(grown, buf)
			buf = grown
		}
		r, rerr := cc.c.Read(buf[len(buf):cap(buf)])
		if r > 0 {
			buf = buf[:len(buf)+r]
			continue
		}
		cc.c.Close()
		if rerr == nil || rerr == io.EOF {
			rerr = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("ring: reading from %s: %w", c.addr, rerr)
	}
}
