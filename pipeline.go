package mosaic

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
	"github.com/mosaic-hpc/mosaic/internal/report"
)

// Options configures the corpus pipeline.
type Options struct {
	// Config holds the detection thresholds; zero value means
	// DefaultConfig.
	Config Config
	// Workers is the categorization parallelism (<= 0: one per CPU).
	Workers int
}

func (o Options) config() Config {
	if o.Config == (Config{}) {
		return DefaultConfig()
	}
	return o.Config
}

// AppResult pairs an application's categorization with its execution
// count, the unit of the "all runs" statistics.
type AppResult struct {
	Result *Result `json:"result"`
	Runs   int     `json:"runs"`
}

// Analysis is the outcome of a corpus run: the pre-processing funnel, one
// result per deduplicated application, and the aggregate distributions.
type Analysis struct {
	Funnel    FunnelStats
	Apps      []AppResult
	Aggregate *Aggregator
}

// AnalyzeJobs runs the full pipeline over in-memory traces: funnel
// (validation + deduplication), parallel categorization of each
// application's heaviest run, and aggregation.
func AnalyzeJobs(jobs []*Job, opt Options) (*Analysis, error) {
	pre := core.NewPreprocessor()
	for _, j := range jobs {
		pre.Add(j, nil)
	}
	return analyzeGroups(pre, opt)
}

// AnalyzeCorpus streams every trace under dir through the pipeline.
// Decode failures count as corrupted traces, like damaged logs in the
// Blue Waters dataset.
func AnalyzeCorpus(dir string, opt Options) (*Analysis, error) {
	entries, err := darshan.StreamCorpusParallel(dir, opt.Workers)
	if err != nil {
		return nil, err
	}
	pre := core.NewPreprocessor()
	for e := range entries {
		pre.Add(e.Job, e.Err)
	}
	return analyzeGroups(pre, opt)
}

func analyzeGroups(pre *core.Preprocessor, opt Options) (*Analysis, error) {
	cfg := opt.config()
	groups := pre.Groups()
	results := make([]AppResult, len(groups))
	var firstErr error
	var mu sync.Mutex
	parallel.ForEach(opt.Workers, len(groups), func(i int) {
		res, err := core.Categorize(groups[i].Heaviest, cfg)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("mosaic: app %s/%s: %w", groups[i].User, groups[i].App, err)
			}
			mu.Unlock()
			return
		}
		results[i] = AppResult{Result: res, Runs: groups[i].Runs}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	agg := report.NewAggregator()
	for _, r := range results {
		agg.Add(r.Result, r.Runs)
	}
	return &Analysis{Funnel: pre.Stats(), Apps: results, Aggregate: agg}, nil
}

// CategorizeAll runs Categorize over many traces in parallel, preserving
// input order. Invalid traces yield a nil Result (with validation applied
// first); pipeline errors abort.
func CategorizeAll(ctx context.Context, jobs []*Job, opt Options) ([]*Result, error) {
	cfg := opt.config()
	out := make([]*Result, len(jobs))
	var firstErr error
	var mu sync.Mutex
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallel.ForEach(workers, len(jobs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		if err := darshan.Validate(jobs[i]); err != nil {
			return // corrupted: nil result
		}
		res, err := core.Categorize(jobs[i], cfg)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		out[i] = res
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// WriteReport renders the complete text report of an analysis: funnel,
// periodicity and temporality tables, metadata distribution, correlations
// and the Jaccard pair list.
func (a *Analysis) WriteReport(w io.Writer) {
	report.WriteFunnel(w, a.Funnel)
	fmt.Fprintln(w)
	report.WritePeriodicity(w, a.Aggregate, category.DirWrite)
	report.WritePeriodicity(w, a.Aggregate, category.DirRead)
	fmt.Fprintln(w)
	report.WriteTemporality(w, a.Aggregate)
	fmt.Fprintln(w)
	report.WriteMetadata(w, a.Aggregate)
	fmt.Fprintln(w)
	report.WriteCorrelations(w, a.Aggregate.Correlations())
	fmt.Fprintln(w)
	report.WriteJaccard(w, a.Aggregate, 0.01)
}

// TopCategories returns the categories sorted by decreasing application
// rate, for quick summaries.
func (a *Analysis) TopCategories() []Category {
	agg := a.Aggregate
	cats := AllCategories()
	sort.Slice(cats, func(i, j int) bool {
		return agg.SingleRate(cats[i]) > agg.SingleRate(cats[j])
	})
	var out []Category
	for _, c := range cats {
		if agg.SingleRate(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Explain renders the detection walkthrough of one result — merged
// operation counts, per-chunk volumes, periodic groups and metadata rates
// (the Figure 2 view of the paper).
func Explain(w io.Writer, res *Result) { report.WriteResult(w, res) }

// WriteHeatmap renders the Jaccard co-occurrence grid over all categories
// whose application rate is at least minRate.
func WriteHeatmap(w io.Writer, agg *Aggregator, minRate float64) {
	report.WriteHeatmap(w, agg, minRate)
}

// WriteTimeline renders the ASCII timeline of one trace — raw vs merged
// operations, periodic groups, and chunk volumes (the Figure 2 view).
func WriteTimeline(w io.Writer, j *Job, res *Result, cfg Config) {
	report.WriteTimeline(w, j, res, cfg)
}
