package darshan

import (
	"errors"
	"math"
	"testing"
)

func TestValidateAcceptsSample(t *testing.T) {
	if err := Validate(sampleJob()); err != nil {
		t.Fatalf("sample job should validate: %v", err)
	}
}

func TestValidateHeader(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		kind   CorruptionKind
	}{
		{"nil runtime", func(j *Job) { j.Runtime = 0 }, CorruptBadHeader},
		{"negative runtime", func(j *Job) { j.Runtime = -5 }, CorruptBadHeader},
		{"nan runtime", func(j *Job) { j.Runtime = math.NaN() }, CorruptBadHeader},
		{"inf runtime", func(j *Job) { j.Runtime = math.Inf(1) }, CorruptBadHeader},
		{"end before start", func(j *Job) { j.End = j.Start - 1 }, CorruptBadHeader},
		{"zero nprocs", func(j *Job) { j.NProcs = 0 }, CorruptBadHeader},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := sampleJob()
			c.mutate(j)
			err := Validate(j)
			if err == nil {
				t.Fatal("expected validation failure")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v is not a ValidationError", err)
			}
			if verr.Kind != c.kind {
				t.Fatalf("kind = %v, want %v", verr.Kind, c.kind)
			}
			if !IsCorrupted(err) {
				t.Fatal("IsCorrupted should be true")
			}
		})
	}
	if Validate(nil) == nil {
		t.Fatal("nil job must be rejected")
	}
}

func TestValidateRecords(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		kind   CorruptionKind
	}{
		{"bad module", func(j *Job) { j.Records[0].Module = Module(99) }, CorruptBadModule},
		{"negative bytes", func(j *Job) { j.Records[0].C.BytesRead = -1 }, CorruptNegativeCount},
		{"negative opens", func(j *Job) { j.Records[0].C.Opens = -3 }, CorruptNegativeCount},
		{"nan timestamp", func(j *Job) { j.Records[0].C.ReadStart = math.NaN() }, CorruptBadTimestamps},
		{"negative timestamp", func(j *Job) { j.Records[0].C.ReadStart = -4 }, CorruptBadTimestamps},
		{"inverted read", func(j *Job) { j.Records[0].C.ReadEnd = 1 }, CorruptInverted},
		{"activity after end", func(j *Job) { j.Records[1].C.WriteEnd = 9999 }, CorruptAfterEnd},
		{
			// The paper's canonical corruption: deallocation before the
			// end of the record's I/O.
			"early deallocation",
			func(j *Job) { j.Records[1].C.CloseStart, j.Records[1].C.CloseEnd = 3050, 3051 },
			CorruptEarlyDealloc,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := sampleJob()
			c.mutate(j)
			err := Validate(j)
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("expected ValidationError, got %v", err)
			}
			if verr.Kind != c.kind {
				t.Fatalf("kind = %v, want %v (%v)", verr.Kind, c.kind, err)
			}
			if verr.Record < 0 {
				t.Fatal("record index should be set for record problems")
			}
		})
	}
}

func TestValidateTimestampSlack(t *testing.T) {
	// Activity up to tsSlack past the end is tolerated (clock skew).
	j := sampleJob()
	j.Records[1].C.WriteEnd = j.Runtime + tsSlack/2
	j.Records[1].C.CloseStart = j.Records[1].C.WriteEnd
	j.Records[1].C.CloseEnd = j.Records[1].C.WriteEnd + 0.1
	if err := Validate(j); err != nil {
		t.Fatalf("slack not honored: %v", err)
	}
}

func TestValidateInactivePairsIgnored(t *testing.T) {
	// A record with no read activity may carry zero read timestamps.
	j := sampleJob()
	j.Records[1].C.ReadStart, j.Records[1].C.ReadEnd = 0, 0
	if err := Validate(j); err != nil {
		t.Fatalf("inactive timestamps should be ignored: %v", err)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	err := &ValidationError{Kind: CorruptEarlyDealloc, Record: 3, Detail: "closed early"}
	if !contains(err.Error(), "early_deallocation") || !contains(err.Error(), "record 3") {
		t.Fatalf("unhelpful error: %q", err.Error())
	}
	hdr := &ValidationError{Kind: CorruptBadHeader, Record: -1, Detail: "x"}
	if contains(hdr.Error(), "record") {
		t.Fatalf("header error should not mention a record: %q", hdr.Error())
	}
}

func TestCorruptionKindString(t *testing.T) {
	kinds := []CorruptionKind{
		CorruptNone, CorruptBadHeader, CorruptBadTimestamps, CorruptEarlyDealloc,
		CorruptAfterEnd, CorruptNegativeCount, CorruptInverted, CorruptBadModule,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if CorruptionKind(200).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
