package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

func complexApproxEqual(a, b []complex128, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		if !complexApproxEqual(got, want, 1e-9*float64(n)) {
			t.Fatalf("n=%d: FFT != naive DFT", n)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Fatalf("err = %v", err)
	}
	if err := FFT(nil); err != nil {
		t.Fatal("empty FFT should be a no-op")
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	orig := append([]complex128(nil), x...)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	if !complexApproxEqual(x, orig, 1e-9) {
		t.Fatal("IFFT(FFT(x)) != x")
	}
}

// Property: Parseval's theorem — energy is preserved (up to 1/N scaling).
func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 << (3 + rng.Intn(5))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoHelpers(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(1024) || IsPowerOfTwo(0) || IsPowerOfTwo(3) || IsPowerOfTwo(-4) {
		t.Fatal("IsPowerOfTwo")
	}
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPeriodogramFindsSinusoid(t *testing.T) {
	const (
		n          = 1024
		sampleRate = 100.0 // Hz
		f0         = 5.0   // Hz
	)
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = 3 + math.Sin(2*math.Pi*f0*float64(i)/sampleRate) // offset must not matter
	}
	power, freq := Periodogram(signal, sampleRate)
	peakK := 0
	for k := 1; k < len(power); k++ {
		if power[k] > power[peakK] {
			peakK = k
		}
	}
	if math.Abs(freq[peakK]-f0) > sampleRate/n {
		t.Fatalf("peak at %g Hz, want %g", freq[peakK], f0)
	}
	if p, f := Periodogram(nil, 1); p != nil || f != nil {
		t.Fatal("empty periodogram")
	}
}

func TestAutocorrelationOfPeriodicSignal(t *testing.T) {
	const n = 500
	signal := make([]float64, n)
	for i := range signal {
		if i%50 < 5 {
			signal[i] = 1
		}
	}
	r := Autocorrelation(signal, 200)
	if math.Abs(r[0]-1) > 1e-9 {
		t.Fatalf("r[0] = %g, want 1", r[0])
	}
	// Strong correlation at the true period.
	if r[50] < 0.7 {
		t.Fatalf("r[50] = %g, want high", r[50])
	}
	// Much weaker off-period.
	if r[25] > r[50]/2 {
		t.Fatalf("r[25] = %g vs r[50] = %g", r[25], r[50])
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if r := Autocorrelation(nil, 5); r != nil {
		t.Fatal("nil signal")
	}
	r := Autocorrelation([]float64{3, 3, 3}, 2)
	if r[1] != 0 || r[2] != 0 {
		t.Fatalf("constant signal autocorrelation = %v", r)
	}
	// maxLag beyond signal length is clamped.
	r = Autocorrelation([]float64{1, 2}, 100)
	if len(r) != 2 {
		t.Fatalf("clamped length = %d", len(r))
	}
}

func mkPeriodicOps(period, opDur float64, count int, bytes int64) []interval.Interval {
	var ops []interval.Interval
	for i := 0; i < count; i++ {
		s := float64(i)*period + period/2
		ops = append(ops, interval.Interval{Start: s, End: s + opDur, Bytes: bytes})
	}
	return ops
}

func TestBinned(t *testing.T) {
	ops := []interval.Interval{{Start: 0, End: 50, Bytes: 100}}
	sig := Binned(ops, 100, 10)
	var total float64
	for _, v := range sig {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("binned volume = %g, want 100", total)
	}
	if sig[7] != 0 {
		t.Fatalf("volume leaked past op end: %v", sig)
	}
	if s := Binned(nil, 0, 10); len(s) != 10 {
		t.Fatal("zero runtime")
	}
}

func TestDetectPeriodicityOnCheckpointTrain(t *testing.T) {
	ops := mkPeriodicOps(100, 5, 50, 1<<20) // period 100s over 5000s
	det := DetectPeriodicity(ops, 5000, DetectorConfig{})
	if !det.Periodic {
		t.Fatalf("periodic train not detected: %+v", det)
	}
	if math.Abs(det.Period-100)/100 > 0.15 {
		t.Fatalf("period = %g, want ~100", det.Period)
	}
}

func TestDetectPeriodicityRejectsAperiodic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ops []interval.Interval
	// Two isolated bursts: on-start and on-end, nothing periodic.
	ops = append(ops, interval.Interval{Start: 10, End: 60, Bytes: 1 << 30})
	ops = append(ops, interval.Interval{Start: 4800, End: 4900, Bytes: 1 << 30})
	det := DetectPeriodicity(ops, 5000, DetectorConfig{})
	if det.Periodic {
		t.Fatalf("aperiodic trace detected periodic: %+v", det)
	}
	_ = rng
	if DetectPeriodicity(nil, 100, DetectorConfig{}).Periodic {
		t.Fatal("empty trace periodic")
	}
	if DetectPeriodicity(ops, 0, DetectorConfig{}).Periodic {
		t.Fatal("zero runtime periodic")
	}
}

func TestDetectByAutocorrelationOnCheckpointTrain(t *testing.T) {
	ops := mkPeriodicOps(100, 5, 50, 1<<20)
	det := DetectByAutocorrelation(ops, 5000, DetectorConfig{})
	if !det.Periodic {
		t.Fatalf("autocorr missed periodic train: %+v", det)
	}
	if math.Abs(det.Period-100)/100 > 0.2 {
		t.Fatalf("autocorr period = %g, want ~100", det.Period)
	}
}

// The paper's criticism of frequency techniques: two interleaved periodic
// behaviours produce a single dominant frequency, losing one of them.
func TestDFTSinglePeriodLimitation(t *testing.T) {
	ops := append(mkPeriodicOps(100, 4, 50, 1<<20), mkPeriodicOps(173, 4, 28, 64<<20)...)
	interval.SortByStart(ops)
	det := DetectPeriodicity(ops, 5000, DetectorConfig{})
	// The detector returns at most one period — whichever dominates.
	if det.Periodic {
		near100 := math.Abs(det.Period-100)/100 < 0.2
		near173 := math.Abs(det.Period-173)/173 < 0.2
		if near100 && near173 {
			t.Fatal("impossible")
		}
	}
	// Either way, it cannot report both; that is the point the ablation
	// bench quantifies against Mean Shift segmentation.
}

func TestDetectorConfigDefaults(t *testing.T) {
	c := DetectorConfig{}.withDefaults()
	if c.Bins != 1024 || c.MinConfidence != 8 || c.MinCycles != 3 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestDetectMultiplePeriodicities(t *testing.T) {
	// Two well-separated periods of comparable volume: peeling recovers
	// both.
	ops := append(mkPeriodicOps(100, 4, 50, 4<<20), mkPeriodicOps(173, 4, 28, 8<<20)...)
	interval.SortByStart(ops)
	det := DetectMultiplePeriodicities(ops, 5000, 3, DetectorConfig{})
	if !det.Periodic() {
		t.Fatal("nothing detected")
	}
	found100, found173 := false, false
	for _, p := range det.Periods {
		if math.Abs(p-100)/100 < 0.15 {
			found100 = true
		}
		if math.Abs(p-173)/173 < 0.15 {
			found173 = true
		}
	}
	if !found100 || !found173 {
		t.Fatalf("periods missed (want ~100 and ~173): %v", det.Periods)
	}
	if len(det.Periods) != len(det.Confidences) {
		t.Fatal("confidences misaligned")
	}
}

// Documented limitation: when one periodic operation moves orders of
// magnitude more data, its spectral leakage buries the weaker train and
// peeling cannot recover it — the segmentation detector, which clusters
// on (duration, volume) pairs, is unaffected (see the ablation bench).
func TestDetectMultipleAmplitudeDisparityLimitation(t *testing.T) {
	ops := append(mkPeriodicOps(100, 4, 50, 1<<20), mkPeriodicOps(173, 4, 28, 64<<20)...)
	interval.SortByStart(ops)
	det := DetectMultiplePeriodicities(ops, 5000, 3, DetectorConfig{})
	found100 := false
	for _, p := range det.Periods {
		if math.Abs(p-100)/100 < 0.15 {
			found100 = true
		}
	}
	if found100 {
		t.Log("weak train recovered despite disparity — peeling did better than documented")
	}
}

func TestDetectMultipleSinglePeriodNoDuplicates(t *testing.T) {
	ops := mkPeriodicOps(100, 4, 50, 1<<20)
	det := DetectMultiplePeriodicities(ops, 5000, 4, DetectorConfig{})
	if len(det.Periods) == 0 {
		t.Fatal("single period missed")
	}
	// Harmonics of the single true period must not be reported as
	// separate periodicities.
	for i, p := range det.Periods {
		for j := i + 1; j < len(det.Periods); j++ {
			q := det.Periods[j]
			ratio := p / q
			if ratio < 1 {
				ratio = 1 / ratio
			}
			frac := math.Mod(ratio, 1)
			if frac < 0.1 || frac > 0.9 {
				t.Fatalf("harmonic duplicate: %v", det.Periods)
			}
		}
	}
}

func TestDetectMultipleEdgeCases(t *testing.T) {
	if DetectMultiplePeriodicities(nil, 100, 2, DetectorConfig{}).Periodic() {
		t.Fatal("empty ops")
	}
	ops := []interval.Interval{{Start: 1, End: 2, Bytes: 5}, {Start: 90, End: 95, Bytes: 5}}
	if det := DetectMultiplePeriodicities(ops, 0, 2, DetectorConfig{}); det.Periodic() {
		t.Fatal("zero runtime")
	}
}
