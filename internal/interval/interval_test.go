package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func iv(start, end float64, bytes int64) Interval {
	return Interval{Start: start, End: end, Bytes: bytes}
}

func TestDuration(t *testing.T) {
	if got := iv(1, 3.5, 0).Duration(); got != 2.5 {
		t.Fatalf("Duration = %g, want 2.5", got)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		name string
		in   Interval
		want bool
	}{
		{"ok", iv(0, 1, 10), true},
		{"zero-length", iv(1, 1, 0), true},
		{"inverted", iv(2, 1, 0), false},
		{"nan-start", Interval{Start: math.NaN(), End: 1}, false},
		{"nan-end", Interval{Start: 0, End: math.NaN()}, false},
		{"inf", Interval{Start: 0, End: math.Inf(1)}, false},
		{"negative-bytes", Interval{Start: 0, End: 1, Bytes: -1}, false},
		{"negative-meta", Interval{Start: 0, End: 1, Meta: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.in.Valid(); got != c.want {
				t.Fatalf("Valid(%v) = %v, want %v", c.in, got, c.want)
			}
			if err := c.in.Check(); (err == nil) != c.want {
				t.Fatalf("Check(%v) = %v", c.in, err)
			}
		})
	}
}

func TestOverlaps(t *testing.T) {
	a := iv(0, 2, 0)
	cases := []struct {
		b    Interval
		want bool
	}{
		{iv(1, 3, 0), true},
		{iv(2, 3, 0), false}, // touching is not overlapping
		{iv(-1, 0, 0), false},
		{iv(0.5, 1.5, 0), true}, // contained
		{iv(-1, 5, 0), true},    // containing
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps symmetric (%v, %v) = %v, want %v", c.b, a, got, c.want)
		}
	}
}

func TestGap(t *testing.T) {
	a := iv(0, 2, 0)
	if g := a.Gap(iv(5, 6, 0)); g != 3 {
		t.Fatalf("Gap = %g, want 3", g)
	}
	if g := iv(5, 6, 0).Gap(a); g != 3 {
		t.Fatalf("Gap reversed = %g, want 3", g)
	}
	if g := a.Gap(iv(1, 3, 0)); g != 0 {
		t.Fatalf("Gap overlapping = %g, want 0", g)
	}
	if g := a.Gap(iv(2, 3, 0)); g != 0 {
		t.Fatalf("Gap touching = %g, want 0", g)
	}
}

func TestUnionSumsVolumes(t *testing.T) {
	a := Interval{Start: 0, End: 2, Bytes: 10, Meta: 1}
	b := Interval{Start: 1, End: 5, Bytes: 20, Meta: 2}
	u := a.Union(b)
	if u.Start != 0 || u.End != 5 || u.Bytes != 30 || u.Meta != 3 {
		t.Fatalf("Union = %v", u)
	}
}

func TestMergeConcurrentBasic(t *testing.T) {
	in := []Interval{iv(0, 2, 1), iv(1, 3, 1), iv(5, 6, 1)}
	out := MergeConcurrent(in)
	if len(out) != 2 {
		t.Fatalf("merged to %d intervals, want 2: %v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 3 || out[0].Bytes != 2 {
		t.Fatalf("first merged = %v", out[0])
	}
}

func TestMergeConcurrentAbutting(t *testing.T) {
	out := MergeConcurrent([]Interval{iv(0, 1, 1), iv(1, 2, 1)})
	if len(out) != 1 {
		t.Fatalf("abutting intervals should merge, got %v", out)
	}
}

func TestMergeConcurrentUnsortedInput(t *testing.T) {
	in := []Interval{iv(5, 6, 1), iv(0, 2, 1), iv(1, 3, 1)}
	out := MergeConcurrent(in)
	if len(out) != 2 || out[0].Start != 0 {
		t.Fatalf("unsorted input mishandled: %v", out)
	}
	// Input must not be reordered.
	if in[0].Start != 5 {
		t.Fatal("input slice was modified")
	}
}

func TestMergeConcurrentEmpty(t *testing.T) {
	if out := MergeConcurrent(nil); out != nil {
		t.Fatalf("MergeConcurrent(nil) = %v", out)
	}
}

func TestMergeNeighborsRuntimeFraction(t *testing.T) {
	// Gap of 0.5s over a 1000s run: 0.05% < 0.1% threshold -> merge.
	p := DefaultNeighborPolicy()
	out := MergeNeighbors([]Interval{iv(0, 1, 1), iv(1.5, 2.5, 1)}, 1000, p)
	if len(out) != 1 {
		t.Fatalf("negligible gap not merged: %v", out)
	}
	// Gap of 5s over a 1000s run: 0.5% > 0.1%, and 5 > 1% of 1s -> keep.
	out = MergeNeighbors([]Interval{iv(0, 1, 1), iv(6, 7, 1)}, 1000, p)
	if len(out) != 2 {
		t.Fatalf("significant gap merged: %v", out)
	}
}

func TestMergeNeighborsNeighborFraction(t *testing.T) {
	// Long op (200s) followed after a 1.5s gap: 1.5 < 1% of 200 -> merge
	// even though 1.5s > 0.1% of the 1000s runtime (1s).
	p := DefaultNeighborPolicy()
	out := MergeNeighbors([]Interval{iv(0, 200, 1), iv(201.5, 202, 1)}, 1000, p)
	if len(out) != 1 {
		t.Fatalf("gap within neighbor fraction not merged: %v", out)
	}
}

func TestMergeNeighborsChainGrowth(t *testing.T) {
	// Merging grows the current op; later gaps compare against the grown
	// duration.
	p := NeighborPolicy{RuntimeFraction: 0, NeighborFraction: 0.1}
	in := []Interval{iv(0, 10, 1), iv(10.5, 20, 1), iv(21.5, 22, 1)}
	// After merging the first two (gap 0.5 < 1), cur spans [0,20) dur 20;
	// gap 1.5 < 2 -> merge again.
	out := MergeNeighbors(in, 1000, p)
	if len(out) != 1 {
		t.Fatalf("chained merge failed: %v", out)
	}
}

func TestMergePreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in []Interval
	for i := 0; i < 200; i++ {
		s := rng.Float64() * 1000
		in = append(in, Interval{Start: s, End: s + rng.Float64()*50, Bytes: rng.Int63n(1e6), Meta: rng.Int63n(10)})
	}
	out := Merge(in, 1000, DefaultNeighborPolicy())
	if TotalBytes(out) != TotalBytes(in) {
		t.Fatalf("bytes not preserved: %d != %d", TotalBytes(out), TotalBytes(in))
	}
	if TotalMeta(out) != TotalMeta(in) {
		t.Fatalf("meta not preserved")
	}
	if !Sorted(out) || !Disjoint(out) {
		t.Fatalf("output not sorted+disjoint")
	}
}

// Property: MergeConcurrent always yields sorted, disjoint intervals with
// preserved byte totals, for arbitrary inputs.
func TestMergeConcurrentProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		var in []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			s := float64(raw[i]) / 10
			d := float64(raw[i+1]) / 100
			in = append(in, Interval{Start: s, End: s + d, Bytes: int64(raw[i]) + 1})
		}
		if len(in) == 0 {
			return MergeConcurrent(in) == nil
		}
		out := MergeConcurrent(in)
		return Sorted(out) && Disjoint(out) && TotalBytes(out) == TotalBytes(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbor merging never increases the operation count and
// preserves the span.
func TestMergeNeighborsProperties(t *testing.T) {
	f := func(raw []uint16, rf, nf uint8) bool {
		var in []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			s := float64(raw[i]) / 10
			in = append(in, Interval{Start: s, End: s + float64(raw[i+1])/100, Bytes: 1})
		}
		in = MergeConcurrent(in)
		if in == nil {
			return true
		}
		p := NeighborPolicy{RuntimeFraction: float64(rf) / 1000, NeighborFraction: float64(nf) / 100}
		out := MergeNeighbors(in, 7000, p)
		if len(out) > len(in) {
			return false
		}
		return Span(out) == Span(in).Union(Interval{Start: Span(in).Start, End: Span(in).End}) ||
			(Span(out).Start == Span(in).Start && Span(out).End == Span(in).End)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClip(t *testing.T) {
	in := []Interval{iv(-5, -1, 1), iv(-1, 2, 2), iv(5, 8, 3), iv(9, 15, 4), iv(20, 30, 5)}
	out := Clip(in, 10)
	if len(out) != 3 {
		t.Fatalf("Clip kept %d, want 3: %v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 2 {
		t.Fatalf("first clipped = %v", out[0])
	}
	if out[2].End != 10 {
		t.Fatalf("last clipped = %v", out[2])
	}
}

func TestSpanBusyTotals(t *testing.T) {
	in := []Interval{iv(2, 4, 10), iv(6, 7, 5)}
	sp := Span(in)
	if sp.Start != 2 || sp.End != 7 {
		t.Fatalf("Span = %v", sp)
	}
	if bt := BusyTime(in); bt != 3 {
		t.Fatalf("BusyTime = %g, want 3", bt)
	}
	if Span(nil) != (Interval{}) {
		t.Fatal("Span(nil) not zero")
	}
}

func TestSortByStart(t *testing.T) {
	in := []Interval{iv(3, 4, 0), iv(1, 5, 0), iv(1, 2, 0)}
	SortByStart(in)
	if in[0].End != 2 || in[1].End != 5 || in[2].Start != 3 {
		t.Fatalf("sorted = %v", in)
	}
}
