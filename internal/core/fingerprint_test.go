package core

import "testing"

// pinnedDefaultFingerprint is the regression pin for the effective
// default configuration. If this test fails because Config grew a
// field (and Fingerprint was correctly extended), update the pin — the
// change intentionally invalidates stored results.
const pinnedDefaultFingerprint = "cfg-440ce09f936a6682"

func TestFingerprintNormalizesFirst(t *testing.T) {
	zero := Config{}
	def := DefaultConfig()
	if got := zero.Fingerprint(); got != def.Fingerprint() {
		t.Fatalf("zero config fingerprint %s != default %s; fingerprinting must go through Normalized()", got, def.Fingerprint())
	}
	// A config that clamps back to defaults must also hash identically:
	// normalization, not raw field values, defines result identity.
	clamped := DefaultConfig()
	clamped.ChunkCount = 1       // sane() clamps to 4
	clamped.DominanceFactor = -3 // sane() clamps to 2
	if got := clamped.Fingerprint(); got != def.Fingerprint() {
		t.Fatalf("clamped config fingerprint %s != default %s", got, def.Fingerprint())
	}
}

func TestFingerprintPinned(t *testing.T) {
	if got := DefaultConfig().Fingerprint(); got != pinnedDefaultFingerprint {
		t.Fatalf("DefaultConfig().Fingerprint() = %s, want pinned %s (did Config grow a field? update the pin deliberately)", got, pinnedDefaultFingerprint)
	}
	if got := (Config{}).Fingerprint(); got != pinnedDefaultFingerprint {
		t.Fatalf("zero Config fingerprint = %s, want pinned %s", got, pinnedDefaultFingerprint)
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.SignificanceBytes = 1 << 20
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different significance thresholds must fingerprint differently")
	}
	c := DefaultConfig()
	c.DisableDXT = true
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("DisableDXT must participate in the fingerprint")
	}
}
