// Distributed categorization over loopback RPC: start two in-process
// workers (stand-ins for mosaic-worker daemons on other hosts), stream a
// synthetic corpus through a master, and aggregate the results — the
// Dispy-style deployment of the paper's Section IV-E, in Go.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"

	"github.com/mosaic-hpc/mosaic"
)

func main() {
	// Start two workers on ephemeral loopback ports.
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		go func() {
			if err := mosaic.ServeWorker(l); err != nil {
				log.Println("worker:", err)
			}
		}()
	}
	fmt.Println("workers listening on", addrs)

	// Connect the master.
	var clients []*mosaic.WorkerClient
	for _, a := range addrs {
		c, err := mosaic.DialWorker(a)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	master := mosaic.NewMaster(clients, mosaic.DefaultConfig())

	// Stream a small corpus through the cluster.
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 30
	profile.Seed = 11
	corpus := mosaic.PlanCorpus(profile)

	jobs := make(chan *mosaic.Job, 16)
	go func() {
		defer close(jobs)
		n := 0
		corpus.Each(func(r mosaic.CorpusRun) bool {
			jobs <- r.Job
			n++
			return n < 400
		})
	}()

	agg := mosaic.NewAggregator()
	var processed, evicted, failed int
	for out := range master.Run(jobs, 4) {
		switch {
		case out.Err != nil:
			failed++
		case out.Result == nil:
			evicted++ // corrupted trace, rejected by the worker's validation
		default:
			processed++
			agg.Add(out.Result, 1)
		}
	}
	fmt.Printf("processed %d traces on %d workers (%d corrupted evicted, %d errors)\n",
		processed, len(clients), evicted, failed)

	fmt.Println("\ncategory rates over the distributed run:")
	for _, c := range []mosaic.Category{
		mosaic.Temporal(mosaic.DirRead, mosaic.OnStart),
		mosaic.Temporal(mosaic.DirWrite, mosaic.OnEnd),
		mosaic.Periodic(mosaic.DirWrite),
		mosaic.MetaHighSpike,
	} {
		fmt.Printf("  %-28s %5.1f%%\n", c, agg.SingleRate(c)*100)
	}
}
