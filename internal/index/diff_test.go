package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Differential tests: the posting-list engine and the map-based
// Oracle must give byte-identical answers on every query, plus
// identical Len/Count/Categories/AxisCounts views, across archetype
// corpora, random corpora with churn, and store rebuilds.

// diffQueries is the query battery: every operator, lazy-NOT shapes,
// nesting, juxtaposition, substring expansion, and degenerate forms.
var diffQueries = []string{
	"write_on_end",
	"read_on_start",
	"periodic_minute",
	"metadata_high_spike",
	"write_on_end AND metadata_high_spike",
	"periodic_minute AND write_on_end",
	"write_on_end OR read_on_start",
	"write_on_end read_on_start",
	"write_on_end NOT metadata_high_spike",
	"NOT write_on_end",
	"NOT NOT write_on_end",
	"NOT (write_on_end OR read_on_start)",
	"(write_on_end OR read_on_start) AND NOT metadata_high_spike",
	"NOT write_on_end AND NOT read_on_start",
	"NOT write_on_end OR NOT read_on_start",
	"write_on_end OR NOT write_on_end",
	"write_on_end AND NOT write_on_end",
	"(periodic_minute OR periodic_hour) AND (write_on_end NOT metadata_insignificant_load)",
	"read_periodic_minute OR (write_periodic_minute NOT write_on_end)",
	"metadata AND periodic",
	"busy",
	"NOT busy",
	"write AND NOT read",
	"(NOT (read_on_start AND write_on_end)) OR metadata_high_spike",
	"steady OR spike NOT single",
}

// checkAgree asserts every observable view of the two engines matches.
func checkAgree(t *testing.T, ix *Index, or *Oracle, queries []string) {
	t.Helper()
	if got, want := ix.Len(), or.Len(); got != want {
		t.Fatalf("Len: engine=%d oracle=%d", got, want)
	}
	for _, c := range category.All() {
		if got, want := ix.Count(c), or.Count(c); got != want {
			t.Fatalf("Count(%s): engine=%d oracle=%d", c, got, want)
		}
	}
	if got, want := ix.AxisCounts(), or.AxisCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AxisCounts:\nengine=%v\noracle=%v", got, want)
	}
	for _, q := range queries {
		got, gerr := ix.Query(q)
		want, werr := or.Query(q)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("Query(%q): engine err=%v oracle err=%v", q, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Query(%q): engine %d ids, oracle %d ids\nengine=%.6v\noracle=%.6v",
				q, len(got), len(want), got, want)
		}
	}
}

// TestDifferentialArchetypes runs real categorization over every
// default archetype and checks the engines agree on the resulting
// corpus — the all-archetype acceptance gate.
func TestDifferentialArchetypes(t *testing.T) {
	cfg := core.DefaultConfig()
	ix, or := New(), NewOracle()
	n := 0
	for ai, arch := range gen.DefaultArchetypes() {
		for run := 0; run < 3; run++ {
			rng := rand.New(rand.NewSource(int64(ai*31 + run)))
			p := arch.Params(rng)
			b := gen.NewBuilder(rng, "u", arch.Exe, uint64(n+1), p.Ranks, p.RuntimeBase)
			arch.Build(b, p)
			res, err := core.Categorize(b.Job(), cfg)
			if err != nil {
				t.Fatalf("categorize %s run %d: %v", arch.Name, run, err)
			}
			tid := id(n)
			ix.Add(tid, res.Categories)
			or.Add(tid, res.Categories)
			cats := ix.Categories(tid)
			if want := or.Categories(tid); !reflect.DeepEqual(cats, want) && (len(cats) != 0 || len(want) != 0) {
				t.Fatalf("Categories(%s): engine=%v oracle=%v", tid, cats, want)
			}
			n++
		}
	}
	checkAgree(t, ix, or, diffQueries)
}

// randomCorpus drives both engines through a deterministic mutation
// history: adds with random category sets, plus removes and re-adds
// of earlier traces so the delta log sees tombstones and overrides.
func randomCorpus(seed int64, n int, ix *Index, or *Oracle) {
	rng := rand.New(rand.NewSource(seed))
	all := category.All()
	randSet := func() category.Set {
		s := category.NewSet()
		for _, c := range all {
			if rng.Intn(5) == 0 {
				s.Add(c)
			}
		}
		return s
	}
	for i := 0; i < n; i++ {
		tid := id(i)
		s := randSet()
		ix.Add(tid, s)
		or.Add(tid, s)
		switch rng.Intn(8) {
		case 0: // remove an earlier trace
			victim := id(rng.Intn(i + 1))
			ix.Remove(victim)
			or.Remove(victim)
		case 1: // re-categorize an earlier trace
			victim := id(rng.Intn(i + 1))
			s2 := randSet()
			ix.Add(victim, s2)
			or.Add(victim, s2)
		}
	}
}

func TestDifferentialRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ix, or := New(), NewOracle()
			ix.compactMin = 64 // force many background folds mid-history
			randomCorpus(seed, 3000, ix, or)
			ix.waitCompact()
			checkAgree(t, ix, or, diffQueries)
		})
	}
}

// TestDifferentialLarge is the scaled-up agreement check. The oracle's
// lazy negation is what keeps its side tractable here: no query below
// materializes a full-universe map.
func TestDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential corpus")
	}
	ix, or := New(), NewOracle()
	randomCorpus(99, 200_000, ix, or)
	ix.waitCompact()
	checkAgree(t, ix, or, diffQueries)
}

// TestDifferentialLoad checks the bulk-load path lands in the same
// state as the incremental path, duplicates resolving latest-wins.
func TestDifferentialLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := category.All()
	var items []Entry
	or := NewOracle()
	for i := 0; i < 2000; i++ {
		tid := id(rng.Intn(700)) // dense duplicates
		s := category.NewSet()
		for _, c := range all {
			if rng.Intn(4) == 0 {
				s.Add(c)
			}
		}
		items = append(items, Entry{ID: tid, Cats: s})
		or.Add(tid, s)
	}
	ix := New()
	if n := ix.Load(items); n != or.Len() {
		t.Fatalf("Load indexed %d traces, oracle has %d", n, or.Len())
	}
	checkAgree(t, ix, or, diffQueries)
}

// TestDifferentialRebuild compares both engines' store-rebuild paths:
// the engine streams labels sequentially, the oracle random-reads and
// fully decodes — same resulting index either way.
func TestDifferentialRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const fp = "cfg-difftest00000000"
	rng := rand.New(rand.NewSource(11))
	all := category.All()
	for i := 0; i < 300; i++ {
		var labels []string
		for _, c := range all {
			if rng.Intn(4) == 0 {
				labels = append(labels, string(c))
			}
		}
		if err := s.PutResult(id(i), fp, &core.Result{Labels: labels}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 { // supersede: latest write wins in both paths
			if err := s.PutResult(id(i), fp, &core.Result{Labels: labels[:len(labels)/2]}); err != nil {
				t.Fatal(err)
			}
		}
		if i%11 == 0 { // a result under another fingerprint must be invisible
			if err := s.PutResult(id(i), "cfg-otherfp000000000", &core.Result{Labels: []string{"read_on_start"}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ix, or := New(), NewOracle()
	n1, err := ix.Rebuild(s, fp)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := or.Rebuild(s, fp)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 != 300 {
		t.Fatalf("Rebuild counts: engine=%d oracle=%d want 300", n1, n2)
	}
	checkAgree(t, ix, or, diffQueries)
}
