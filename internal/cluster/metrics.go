package cluster

import "math"

// Cluster-quality metrics used by the ablation benches to compare Mean
// Shift against the K-Means and grid baselines.

// Silhouette returns the mean silhouette coefficient of the clustering in
// [-1, 1]; higher is better. Points in singleton clusters contribute 0
// (scikit-learn convention). Returns 0 when there are fewer than 2
// clusters or fewer than 2 points.
func Silhouette(points []Point, labels []int) float64 {
	n := len(points)
	if n < 2 || len(labels) != n {
		return 0
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	if k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	var total float64
	for i := 0; i < n; i++ {
		li := labels[i]
		if sizes[li] <= 1 {
			continue // contributes 0
		}
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sum := make([]float64, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sum[labels[j]] += Dist(points[i], points[j])
		}
		a := sum[li] / float64(sizes[li]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			if m := sum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// Inertia returns the sum of squared distances of points to the center of
// their assigned cluster.
func Inertia(points []Point, res *Result) float64 {
	var s float64
	for i, p := range points {
		l := res.Labels[i]
		if l >= 0 && l < len(res.Centers) {
			s += Dist2(p, res.Centers[l])
		}
	}
	return s
}

// AdjustedRandIndex compares two labelings of the same points; 1 means
// identical partitions, ~0 means random agreement. Used to score detected
// periodic groups against generator ground truth in ablation tests.
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := len(a)
	relabel := func(xs []int) ([]int, int) {
		m := make(map[int]int)
		out := make([]int, len(xs))
		for i, x := range xs {
			id, ok := m[x]
			if !ok {
				id = len(m)
				m[x] = id
			}
			out[i] = id
		}
		return out, len(m)
	}
	la, ka := relabel(a)
	lb, kb := relabel(b)
	cont := make([][]int, ka)
	for i := range cont {
		cont[i] = make([]int, kb)
	}
	rows := make([]int, ka)
	cols := make([]int, kb)
	for i := 0; i < n; i++ {
		cont[la[i]][lb[i]]++
		rows[la[i]]++
		cols[lb[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for i := range cont {
		for j := range cont[i] {
			sumIJ += choose2(cont[i][j])
		}
	}
	for _, r := range rows {
		sumA += choose2(r)
	}
	for _, c := range cols {
		sumB += choose2(c)
	}
	nC2 := choose2(n)
	if nC2 == 0 {
		return 0
	}
	expected := sumA * sumB / nC2
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial (all singletons or all one cluster)
	}
	return (sumIJ - expected) / (maxIdx - expected)
}
