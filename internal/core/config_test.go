package core

import (
	"reflect"
	"testing"
)

func TestConfigIsZero(t *testing.T) {
	if !(Config{}).IsZero() {
		t.Fatal("zero Config not reported as zero")
	}
	if DefaultConfig().IsZero() {
		t.Fatal("DefaultConfig reported as zero")
	}
	// A partially filled config must NOT be treated as zero (the bug the
	// old `o.Config == (Config{})` comparison would reintroduce).
	partial := Config{ChunkCount: 8}
	if partial.IsZero() {
		t.Fatal("partially filled config treated as zero")
	}
}

// TestConfigIsZeroCoversEveryField walks the struct by reflection: for
// each field, a config with only that field set must be non-zero. This
// fails the moment Config grows a field that IsZero forgets to check.
func TestConfigIsZeroCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		v := reflect.New(typ).Elem()
		fv := v.Field(i)
		switch {
		case fv.CanInt():
			fv.SetInt(1)
		case fv.CanUint():
			fv.SetUint(1)
		case fv.CanFloat():
			fv.SetFloat(1)
		case fv.Kind() == reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("field %s has kind %s: teach this test (and IsZero) about it", f.Name, fv.Kind())
		}
		if v.Interface().(Config).IsZero() {
			t.Fatalf("config with only %s set reported as zero — IsZero misses the field", f.Name)
		}
	}
}

func TestConfigNormalized(t *testing.T) {
	if got := (Config{}).Normalized(); got != DefaultConfig() {
		t.Fatalf("zero config normalized to %+v, want defaults", got)
	}
	// Non-zero configs keep their values but get sane-clamped.
	c := DefaultConfig()
	c.SignificanceBytes = 1 << 20
	if got := c.Normalized(); got.SignificanceBytes != 1<<20 {
		t.Fatal("normalization discarded a chosen threshold")
	}
	broken := Config{SignificanceBytes: 1, ChunkCount: 1}
	if got := broken.Normalized(); got.ChunkCount < 2 {
		t.Fatalf("normalization did not clamp ChunkCount: %+v", got)
	}
}
