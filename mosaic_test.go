package mosaic_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func writeCorpus(t *testing.T, dir string, apps, maxTraces int, seed int64) int {
	t.Helper()
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = apps
	profile.Seed = seed
	corpus := mosaic.PlanCorpus(profile)
	n := 0
	var werr error
	corpus.Each(func(r mosaic.CorpusRun) bool {
		name := filepath.Join(dir, r.Job.User+"_"+r.Job.AppName()+"_"+itoa(int(r.Job.JobID))+".mosd")
		if err := mosaic.WriteTrace(name, r.Job); err != nil {
			werr = err
			return false
		}
		n++
		return n < maxTraces
	})
	if werr != nil {
		t.Fatal(werr)
	}
	return n
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestAnalyzeCorpusEndToEnd(t *testing.T) {
	dir := t.TempDir()
	n := writeCorpus(t, dir, 30, 300, 5)
	analysis, err := mosaic.AnalyzeCorpus(dir, mosaic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Funnel.Total != n {
		t.Fatalf("funnel total = %d, want %d", analysis.Funnel.Total, n)
	}
	if analysis.Funnel.Corrupted == 0 {
		t.Fatal("expected some corrupted traces at the default 32% rate")
	}
	if len(analysis.Apps) != analysis.Funnel.UniqueApps {
		t.Fatalf("apps %d != unique %d", len(analysis.Apps), analysis.Funnel.UniqueApps)
	}
	for _, app := range analysis.Apps {
		if app.Result == nil || len(app.Result.Labels) == 0 {
			t.Fatal("app without categories")
		}
		if app.Runs < 1 {
			t.Fatal("app without runs")
		}
	}
	var buf bytes.Buffer
	analysis.WriteReport(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
	if top := analysis.TopCategories(); len(top) == 0 {
		t.Fatal("no top categories")
	}
}

func TestCategorizeFacade(t *testing.T) {
	job := &mosaic.Job{
		JobID: 1, User: "u", Exe: "/bin/app", NProcs: 4,
		Start: 0, End: 1000, Runtime: 1000,
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/in",
			C: mosaic.Counters{Reads: 10, BytesRead: 1 << 30, ReadStart: 5, ReadEnd: 60},
		}},
	}
	if err := mosaic.Validate(job); err != nil {
		t.Fatal(err)
	}
	res, err := mosaic.Categorize(job, mosaic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Categories.Has(mosaic.Temporal(mosaic.DirRead, mosaic.OnStart)) {
		t.Fatalf("categories = %v", res.Categories)
	}
	var buf bytes.Buffer
	mosaic.Explain(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("empty explanation")
	}
	// MustCategorize mirrors Categorize on valid traces.
	if got := mosaic.MustCategorize(job, mosaic.DefaultConfig()); got == nil {
		t.Fatal("MustCategorize returned nil")
	}
}

func TestValidateFacadeDetectsCorruption(t *testing.T) {
	bad := &mosaic.Job{Runtime: -1, NProcs: 1}
	err := mosaic.Validate(bad)
	if err == nil || !mosaic.IsCorrupted(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestCategorizeAllSkipsCorrupted(t *testing.T) {
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 10
	profile.Seed = 3
	corpus := mosaic.PlanCorpus(profile)
	var jobs []*mosaic.Job
	var corrupted int
	corpus.Each(func(r mosaic.CorpusRun) bool {
		jobs = append(jobs, r.Job)
		if r.Corrupted {
			corrupted++
		}
		return len(jobs) < 100
	})
	results, err := mosaic.CategorizeAll(context.Background(), jobs, mosaic.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var nils, oks int
	for _, r := range results {
		if r == nil {
			nils++
		} else {
			oks++
		}
	}
	if nils != corrupted {
		t.Fatalf("nil results = %d, corrupted = %d", nils, corrupted)
	}
	if oks == 0 {
		t.Fatal("no successful categorizations")
	}
}

func TestAnalyzeJobsMatchesTruthMostly(t *testing.T) {
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 40
	profile.Seed = 9
	profile.CorruptionRate = 0 // clean corpus for truth comparison
	corpus := mosaic.PlanCorpus(profile)
	var jobs []*mosaic.Job
	corpus.Each(func(r mosaic.CorpusRun) bool {
		jobs = append(jobs, r.Job)
		return len(jobs) < 400
	})
	results, err := mosaic.CategorizeAll(context.Background(), jobs, mosaic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	match, total := 0, 0
	for i, r := range results {
		if r == nil {
			continue
		}
		truth := mosaic.Truth(jobs[i])
		if truth == nil {
			t.Fatal("generated job without truth")
		}
		total++
		if r.Categories.Equal(truth) {
			match++
		}
	}
	if total == 0 {
		t.Fatal("no traces scored")
	}
	accuracy := float64(match) / float64(total)
	// The paper reports 92%; the synthetic corpus is cleaner, so demand
	// at least that.
	if accuracy < 0.92 {
		t.Fatalf("accuracy = %.2f, want >= 0.92", accuracy)
	}
}

func TestDistributedFacade(t *testing.T) {
	// Covered in depth by internal/dist tests; here only the facade
	// wiring: dial failure surfaces an error.
	if _, err := mosaic.DialWorker("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestTraceBuilderFacade(t *testing.T) {
	arch, ok := mosaic.ArchetypeByName("checkpointer-minute")
	if !ok {
		t.Fatal("archetype lookup failed")
	}
	if len(mosaic.Archetypes()) < 10 {
		t.Fatal("too few archetypes")
	}
	_ = arch
}
