package darshan

import (
	"math"
	"reflect"
	"testing"
)

func dxtJob() *Job {
	j := &Job{
		JobID: 9, User: "u", Exe: "/bin/dxt", NProcs: 4,
		Start: 0, End: 1000, Runtime: 1000,
	}
	rec := FileRecord{
		Module: ModPOSIX, Path: "/stream", Rank: 0,
		C: Counters{
			Opens: 1, Closes: 1, Seeks: 1,
			Writes: 4, BytesWritten: 4000,
			OpenStart: 9, OpenEnd: 9.5,
			WriteStart: 10, WriteEnd: 910,
			CloseStart: 990, CloseEnd: 991,
		},
		DXTWrites: []DXTEvent{
			{Start: 10, End: 20, Offset: 0, Length: 1000},
			{Start: 310, End: 320, Offset: 1000, Length: 1000},
			{Start: 610, End: 620, Offset: 2000, Length: 1000},
			{Start: 900, End: 910, Offset: 3000, Length: 1000},
		},
	}
	j.Records = append(j.Records, rec)
	return j
}

func TestDXTEventValid(t *testing.T) {
	if !(DXTEvent{Start: 1, End: 2, Length: 5}).Valid() {
		t.Fatal("valid event rejected")
	}
	bad := []DXTEvent{
		{Start: 2, End: 1},
		{Start: -1, End: 1},
		{Start: math.NaN(), End: 1},
		{Start: 0, End: math.Inf(1)},
		{Start: 0, End: 1, Length: -5},
		{Start: 0, End: 1, Offset: -1},
	}
	for i, e := range bad {
		if e.Valid() {
			t.Errorf("bad event %d accepted: %v", i, e)
		}
	}
}

func TestHasDXT(t *testing.T) {
	j := dxtJob()
	if !j.HasDXT() || !j.Records[0].HasDXT() {
		t.Fatal("HasDXT false")
	}
	if sampleJob().HasDXT() {
		t.Fatal("aggregate job reports DXT")
	}
}

func TestWriteIntervalsDXTExpandsSegments(t *testing.T) {
	j := dxtJob()
	// Aggregate view: one wide interval.
	agg := j.WriteIntervals()
	if len(agg) != 1 || agg[0].Duration() != 900 {
		t.Fatalf("aggregate = %v", agg)
	}
	// DXT view: one interval per event plus the metadata carrier.
	dxt := j.WriteIntervalsDXT()
	if len(dxt) != 5 {
		t.Fatalf("dxt intervals = %d, want 4 events + 1 meta carrier", len(dxt))
	}
	var bytes, meta int64
	for _, iv := range dxt {
		bytes += iv.Bytes
		meta += iv.Meta
	}
	if bytes != 4000 {
		t.Fatalf("dxt bytes = %d", bytes)
	}
	if meta != 2 { // opens + seeks preserved on the carrier
		t.Fatalf("dxt meta = %d", meta)
	}
}

func TestReadIntervalsDXTFallback(t *testing.T) {
	// Records without DXT keep the aggregate interval even in DXT mode.
	j := dxtJob()
	j.Records = append(j.Records, FileRecord{
		Module: ModPOSIX, Path: "/plain",
		C: Counters{Reads: 1, BytesRead: 500, ReadStart: 5, ReadEnd: 6},
	})
	reads := j.ReadIntervalsDXT()
	if len(reads) != 1 || reads[0].Bytes != 500 {
		t.Fatalf("fallback reads = %v", reads)
	}
}

func TestValidateDXTEvents(t *testing.T) {
	j := dxtJob()
	if err := Validate(j); err != nil {
		t.Fatalf("valid DXT job rejected: %v", err)
	}
	j.Records[0].DXTWrites[2].End = j.Records[0].DXTWrites[2].Start - 1
	if err := Validate(j); err == nil {
		t.Fatal("inverted DXT event accepted")
	}
	j = dxtJob()
	j.Records[0].DXTWrites[0].End = 5000
	if err := Validate(j); err == nil {
		t.Fatal("DXT event past runtime accepted")
	}
}

func TestDXTBinaryRoundTrip(t *testing.T) {
	j := dxtJob()
	data, err := MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("DXT binary round trip mismatch:\n%+v\n%+v", j, got)
	}
}

func TestDXTJSONRoundTrip(t *testing.T) {
	j := dxtJob()
	data, err := MarshalJob(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatal("DXT JSON round trip mismatch")
	}
}

func TestDXTSummaryConsistency(t *testing.T) {
	j := dxtJob()
	bytes, span := DXTSummary(j.Records[0].DXTWrites)
	if bytes != j.Records[0].C.BytesWritten {
		t.Fatalf("DXT bytes %d != aggregate %d", bytes, j.Records[0].C.BytesWritten)
	}
	if span.Start != j.Records[0].C.WriteStart || span.End != j.Records[0].C.WriteEnd {
		t.Fatalf("DXT span %v != aggregate window", span)
	}
	if b, _ := DXTSummary(nil); b != 0 {
		t.Fatal("empty summary")
	}
}
