package cluster

import (
	"math/rand"
	"testing"
)

func TestDBSCANSeparatesBlobsWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, truth := blobs(rng, 2, 30, 10, 0.3)
	// Add isolated noise points.
	pts = append(pts, Point{100, 100}, Point{-50, 40})
	truth = append(truth, -1, -1)

	res, err := DBSCAN(pts, DBSCANConfig{Eps: 1.5, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Centers))
	}
	if res.NoiseCount() != 2 {
		t.Fatalf("noise = %d, want 2", res.NoiseCount())
	}
	// Agreement on the non-noise points.
	if ari := AdjustedRandIndex(res.Labels[:60], truth[:60]); ari < 0.99 {
		t.Fatalf("ARI = %g", ari)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []Point{{0, 0}, {10, 10}, {20, 20}}
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 0 || res.NoiseCount() != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDBSCANSingleDenseCluster(t *testing.T) {
	var pts []Point
	for i := 0; i < 10; i++ {
		pts = append(pts, Point{float64(i) * 0.1, 0})
	}
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 0.15, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.NoiseCount() != 0 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A chain where the last point is within eps of a core point but has
	// too few neighbours itself: it becomes a border member, not noise.
	pts := []Point{{0}, {0.1}, {0.2}, {0.35}}
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 0.16, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[3] == Noise {
		t.Fatalf("border point labelled noise: %v", res.Labels)
	}
}

func TestDBSCANErrors(t *testing.T) {
	if _, err := DBSCAN([]Point{{1}}, DBSCANConfig{Eps: 0}); err != ErrBadEps {
		t.Fatal("eps=0 accepted")
	}
	if _, err := DBSCAN([]Point{{1, 2}, {1}}, DBSCANConfig{Eps: 1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	res, err := DBSCAN(nil, DBSCANConfig{Eps: 1})
	if err != nil || len(res.Labels) != 0 {
		t.Fatal("empty input")
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := blobs(rng, 3, 20, 8, 0.4)
	a, _ := DBSCAN(pts, DBSCANConfig{Eps: 1.2, MinPts: 3})
	b, _ := DBSCAN(pts, DBSCANConfig{Eps: 1.2, MinPts: 3})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("nondeterministic labels")
		}
	}
}
