package dist

import (
	"context"
	"net"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
)

func startWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l) //nolint:errcheck // closed by cleanup
	return l.Addr().String()
}

func testJob(id uint64) *darshan.Job {
	return &darshan.Job{
		JobID: id, User: "u", Exe: "/bin/app", NProcs: 4,
		Start: 0, End: 1000, Runtime: 1000,
		Records: []darshan.FileRecord{{
			Module: darshan.ModPOSIX, Path: "/in",
			C: darshan.Counters{
				Reads: 10, BytesRead: 1 << 30,
				ReadStart: 5, ReadEnd: 60,
			},
		}},
	}
}

func TestClientCategorize(t *testing.T) {
	addr := startWorker(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, reason, err := c.Categorize(testJob(1), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("unexpected eviction: %s", reason)
	}
	if !res.Categories.Has(category.Temporal(category.DirRead, category.OnStart)) {
		t.Fatalf("categories = %v", res.Categories)
	}
	if res.JobID != 1 {
		t.Fatalf("job id = %d", res.JobID)
	}
}

func TestClientRejectsCorrupted(t *testing.T) {
	addr := startWorker(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := testJob(2)
	bad.Runtime = -1
	res, reason, err := c.Categorize(bad, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || reason == "" {
		t.Fatalf("corrupted trace not evicted: res=%v reason=%q", res, reason)
	}
}

func TestMasterRunFanOut(t *testing.T) {
	clients := make([]*Client, 0, 2)
	for i := 0; i < 2; i++ {
		c, err := Dial(startWorker(t))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	m := NewMaster(clients, core.DefaultConfig())

	const n = 40
	jobs := make(chan *darshan.Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			j := testJob(uint64(i))
			if i%4 == 0 {
				j.NProcs = 0 // corrupt every 4th
			}
			jobs <- j
		}
	}()
	var ok, evicted, failed int
	for out := range m.Run(jobs, 3) {
		switch {
		case out.Err != nil:
			failed++
		case out.Result == nil:
			evicted++
		default:
			ok++
		}
	}
	if failed != 0 {
		t.Fatalf("failures: %d", failed)
	}
	if ok != 30 || evicted != 10 {
		t.Fatalf("ok=%d evicted=%d", ok, evicted)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestServiceRejectsGarbageTrace(t *testing.T) {
	var s Service
	var reply CategorizeReply
	if err := s.Categorize(&CategorizeArgs{Trace: []byte("junk"), Config: core.DefaultConfig()}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Valid || reply.Reason == "" {
		t.Fatalf("garbage trace: %+v", reply)
	}
}

func TestMasterFailover(t *testing.T) {
	// Two workers; one is killed mid-run. Every job must still produce a
	// result (failover to the survivor), none with transport errors.
	lDead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(lDead) //nolint:errcheck
	deadAddr := lDead.Addr().String()

	aliveAddr := startWorker(t)
	cDead, err := Dial(deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cDead.Close()
	cAlive, err := Dial(aliveAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cAlive.Close()

	m := NewMaster([]*Client{cDead, cAlive}, core.DefaultConfig())
	// Kill the first worker's connection before submitting.
	lDead.Close()
	cDead.Close()

	const n = 20
	jobs := make(chan *darshan.Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			jobs <- testJob(uint64(i))
		}
	}()
	var ok, failed int
	for out := range m.Run(jobs, 2) {
		if out.Err != nil {
			failed++
		} else if out.Result != nil {
			ok++
		}
	}
	if failed != 0 {
		t.Fatalf("%d jobs failed despite a live worker", failed)
	}
	if ok != n {
		t.Fatalf("ok = %d, want %d", ok, n)
	}
	if m.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", m.LiveWorkers())
	}
}

func TestMasterAllWorkersDead(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l) //nolint:errcheck
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	c.Close()
	m := NewMaster([]*Client{c}, core.DefaultConfig())
	jobs := make(chan *darshan.Job, 1)
	jobs <- testJob(1)
	close(jobs)
	var failed int
	for out := range m.Run(jobs, 1) {
		if out.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1 (no live workers)", failed)
	}
}

// TestMasterAsEngineExecutor proves the distributed Master plugs into the
// staged engine as the Categorize-stage executor: same funnel, same
// aggregation, remote detection — no second orchestration loop.
func TestMasterAsEngineExecutor(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t)}
	var clients []*Client
	for _, a := range addrs {
		c, err := Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}
	m := NewMaster(clients, core.DefaultConfig())
	if m.Concurrency() != 4 {
		t.Fatalf("Concurrency = %d, want 2 workers x 2 in flight", m.Concurrency())
	}

	jobs := make([]*darshan.Job, 0, 12)
	for i := 1; i <= 12; i++ {
		j := testJob(uint64(i))
		j.User = "u" // same app: dedup keeps one group, 12 runs
		jobs = append(jobs, j)
	}
	res, err := engine.Run(context.Background(), engine.Jobs(jobs), engine.Options{Executor: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Total != 12 || res.Funnel.UniqueApps != 1 || len(res.Apps) != 1 {
		t.Fatalf("unexpected engine result: funnel %+v, %d apps", res.Funnel, len(res.Apps))
	}
	if res.Apps[0].Runs != 12 {
		t.Fatalf("runs = %d, want 12", res.Apps[0].Runs)
	}
	if !res.Apps[0].Result.Categories.Has(category.Temporal(category.DirRead, category.OnStart)) {
		t.Fatalf("remote categorization lost categories: %v", res.Apps[0].Result.Labels)
	}
}

// TestMasterExecutorCancellation: an in-flight RPC abandoned by ctx
// cancellation surfaces ctx.Err() without marking the worker dead.
func TestMasterExecutorCancellation(t *testing.T) {
	addr := startWorker(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := NewMaster([]*Client{c}, core.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Categorize(ctx, testJob(1), core.DefaultConfig()); err == nil {
		t.Fatal("cancelled executor call succeeded")
	}
	if m.LiveWorkers() != 1 {
		t.Fatal("cancellation marked the worker dead")
	}
}
