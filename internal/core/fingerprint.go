package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Fingerprint returns a short stable identifier of the *effective*
// detection configuration: the SHA-256 of a canonical field-by-field
// rendering of Config.Normalized(). Because normalization happens
// first, a zero Config, DefaultConfig(), and any config that clamps to
// the defaults all share one fingerprint — exactly the property the
// result store needs so that "same trace, same effective thresholds"
// is a cache hit regardless of how the caller spelled the config.
//
// The rendering is versioned (the "mosaic-config/v1|" prefix): if a
// field is ever added to Config it MUST be appended here, which
// changes every fingerprint and correctly invalidates stored results
// computed under the old semantics.
func (c Config) Fingerprint() string {
	n := c.Normalized()
	var b strings.Builder
	b.WriteString("mosaic-config/v1|")
	wi := func(name string, v int64) {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(';')
	}
	wf := func(name string, v float64) {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte(';')
	}
	wi("significance_bytes", n.SignificanceBytes)
	wf("merge_runtime_fraction", n.MergeRuntimeFraction)
	wf("merge_neighbor_fraction", n.MergeNeighborFraction)
	wi("chunk_count", int64(n.ChunkCount))
	wf("dominance_factor", n.DominanceFactor)
	wf("steady_cv", n.SteadyCV)
	wi("periodicity_detector", int64(n.PeriodicityDetector))
	wf("meanshift_bandwidth", n.MeanShiftBandwidth)
	wi("meanshift_kernel", int64(n.MeanShiftKernel))
	wi("min_group_size", int64(n.MinGroupSize))
	wf("min_group_coverage", n.MinGroupCoverage)
	wf("volume_log_scale", n.VolumeLogScale)
	wi("disable_dxt", b2i(n.DisableDXT))
	wf("spike_high_rate", n.SpikeHighRate)
	wf("spike_rate", n.SpikeRate)
	wi("multiple_spikes", int64(n.MultipleSpikes))
	wf("density_rate", n.DensityRate)
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("cfg-%s", hex.EncodeToString(sum[:8]))
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
