// Package cluster provides the clustering algorithms MOSAIC uses to group
// trace segments: Mean Shift (Fukunaga & Hostetler, the paper's choice)
// plus K-Means and grid-quantization baselines used in ablation
// experiments, and cluster-quality metrics.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/mosaic-hpc/mosaic/internal/parallel"
)

// Point is a point in d-dimensional feature space. MOSAIC clusters
// segments in 2D: (duration, data volume), suitably scaled.
type Point []float64

// Dist2 returns the squared Euclidean distance between two points of the
// same dimension.
func Dist2(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 { return math.Sqrt(Dist2(a, b)) }

// Kernel selects the Mean Shift kernel profile.
type Kernel uint8

// Supported kernels.
const (
	// FlatKernel weighs every neighbour within the bandwidth equally —
	// the classic "blurring" mean shift, and scikit-learn's default,
	// which the paper's implementation used.
	FlatKernel Kernel = iota
	// GaussianKernel weighs neighbours by exp(-d²/2h²).
	GaussianKernel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case FlatKernel:
		return "flat"
	case GaussianKernel:
		return "gaussian"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// kernelWeightFunc maps a squared distance and squared bandwidth to a
// kernel weight. The function is selected once per MeanShift call
// (hoisting the per-point kernel switch out of the inner loop).
type kernelWeightFunc func(d2, h2 float64) float64

func flatWeight(d2, h2 float64) float64 {
	if d2 <= h2 {
		return 1
	}
	return 0
}

func gaussianWeight(d2, h2 float64) float64 { return math.Exp(-d2 / (2 * h2)) }

func kernelFor(k Kernel) kernelWeightFunc {
	if k == GaussianKernel {
		return gaussianWeight
	}
	return flatWeight
}

// Tuning constants of the accelerated path.
const (
	// denseCutoff is the input size below which the O(n²) dense scan
	// beats grid construction. Small traces (the overwhelming majority
	// of per-trace segment sets) take the dense path and produce
	// bit-identical results to the historical implementation.
	denseCutoff = 64
	// autoParallelSeeds is the seed count above which Workers==0 turns
	// on parallel shifting.
	autoParallelSeeds = 512
	// parallelRoundCutoff is the active-seed count below which a round
	// runs serially even in a parallel run (late rounds are tiny).
	parallelRoundCutoff = 64
	// gaussianRadiusCells is the neighbor-probe radius, in grid cells,
	// of the gaussian kernel: the kernel is truncated at 3h where the
	// weight has decayed to exp(-4.5) ≈ 0.011. The flat kernel uses
	// radius 1 and is exact.
	gaussianRadiusCells = 3
)

// MeanShiftConfig parametrizes MeanShift.
type MeanShiftConfig struct {
	// Bandwidth is the kernel radius in feature-space units. It is the
	// threshold at which two segments are considered part of the same
	// periodic operation; the paper set it empirically on one month of
	// traces. Must be > 0.
	Bandwidth float64
	// Kernel selects the kernel profile (default FlatKernel).
	Kernel Kernel
	// MaxIter bounds the shift iterations per point (default 300,
	// matching scikit-learn).
	MaxIter int
	// Tol is the convergence threshold on shift displacement
	// (default Bandwidth * 1e-3).
	Tol float64
	// BinSeeding shifts one seed per occupied grid cell (cell edge =
	// bandwidth) instead of one per point — scikit-learn's bin_seeding.
	// Labels are then assigned by nearest converged mode. Results are
	// equivalent but not identical to exhaustive seeding; cost drops
	// from O(n·iters·neighborhood) to O(cells·iters·neighborhood).
	// Bin-seeded runs also memoize basins of attraction: a seed whose
	// trajectory lands within Tol of an already-converged mode adopts
	// that mode and stops early.
	BinSeeding bool
	// Exact forces the historical dense O(n²) reference path: no grid
	// index, no parallelism, no memoization. Differential tests compare
	// the accelerated path against it.
	Exact bool
	// Workers controls parallel seed shifting: 0 selects automatically
	// (parallel once enough seeds are active), 1 forces serial, >1 uses
	// that many goroutines. Results are identical for every setting —
	// the mode merge order is fixed by seed index, independent of
	// goroutine scheduling.
	Workers int
	// Scratch supplies reusable buffers (see Scratch). Optional; a nil
	// scratch allocates per call.
	Scratch *Scratch
	// Stats, when non-nil, receives the cost profile of the call.
	Stats *MeanShiftStats
}

func (c *MeanShiftConfig) withDefaults() MeanShiftConfig {
	out := *c
	if out.MaxIter <= 0 {
		out.MaxIter = 300
	}
	if out.Tol <= 0 {
		out.Tol = out.Bandwidth * 1e-3
	}
	return out
}

// Result is a clustering outcome: Labels[i] gives the cluster of point i,
// Centers the converged cluster modes. Cluster ids are dense in
// [0, len(Centers)).
type Result struct {
	Labels  []int
	Centers []Point
}

// ClusterSizes returns the number of points per cluster id.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, len(r.Centers))
	for _, l := range r.Labels {
		if l >= 0 && l < len(sizes) {
			sizes[l]++
		}
	}
	return sizes
}

// ErrBadBandwidth reports a non-positive bandwidth.
var ErrBadBandwidth = errors.New("cluster: bandwidth must be positive")

// ErrDimensionMismatch reports points of unequal dimension.
var ErrDimensionMismatch = errors.New("cluster: points have mismatched dimensions")

func checkPoints(points []Point) error {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimensionMismatch, i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cluster: point %d has non-finite coordinate", i)
			}
		}
	}
	return nil
}

// MeanShift clusters the points by iteratively shifting each seed to the
// weighted mean of its kernel neighbourhood until convergence, then
// merging modes that lie within half a bandwidth of each other.
//
// By default every input point is a seed and, above a small size cutoff,
// a uniform grid spatial index (cell edge = bandwidth) restricts each
// kernel-mean evaluation to the 3^d neighboring cells — an accelerated
// path whose flat-kernel results are label-identical to the exhaustive
// O(n²·iters) scan (set Exact to force the reference path). BinSeeding
// additionally reduces the seed set to the occupied cells. Seeds shift
// in deterministic lockstep rounds, optionally in parallel; the final
// mode merge always runs in seed order, so results never depend on
// goroutine scheduling.
func MeanShift(points []Point, cfg MeanShiftConfig) (*Result, error) {
	if cfg.Bandwidth <= 0 || math.IsNaN(cfg.Bandwidth) {
		return nil, ErrBadBandwidth
	}
	if err := checkPoints(points); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return &Result{}, nil
	}
	c := cfg.withDefaults()
	sc := c.Scratch
	if sc == nil {
		sc = NewScratch()
	}

	e := &msEngine{
		n:   len(points),
		d:   len(points[0]),
		c:   c,
		sc:  sc,
		h2:  c.Bandwidth * c.Bandwidth,
		kfn: kernelFor(c.Kernel),
	}
	e.tol2 = c.Tol * c.Tol
	e.stats.Points = e.n

	// Flatten the input into the contiguous backing store.
	e.coords = growF64(&sc.coords, e.n*e.d)
	for i, p := range points {
		copy(e.coords[i*e.d:(i+1)*e.d], p)
	}

	useGrid := !c.Exact && e.d <= maxGridDim && (c.BinSeeding || e.n >= denseCutoff)
	if useGrid {
		e.g = buildGrid(e.coords, e.n, e.d, c.Bandwidth, sc)
		e.hasGrid = true
		e.radius = 1
		if c.Kernel == GaussianKernel {
			e.radius = gaussianRadiusCells
		}
		e.stats.GridCells = e.g.nCells
		e.stats.Accelerated = true
	}

	e.seed()
	e.run()
	res := e.finish()

	e.stats.Seeds = e.nSeeds
	recordTotals(&e.stats)
	if c.Stats != nil {
		*c.Stats = e.stats
	}
	return res, nil
}

// msEngine holds the state of one accelerated MeanShift run.
type msEngine struct {
	n, d    int
	coords  []float64 // n*d flattened input (read-only after flatten)
	c       MeanShiftConfig
	sc      *Scratch
	h2      float64
	tol2    float64
	kfn     kernelWeightFunc
	g       grid
	hasGrid bool
	radius  int // neighbor probe radius in cells

	seeds  []float64 // nSeeds*d, current positions (end state: modes)
	nSeeds int

	stats MeanShiftStats
}

// seed initializes the seed set: every point (exhaustive, the exact
// semantics) or one seed per occupied grid cell at the cell's centroid
// (BinSeeding). Bin seeds follow dense cell-id order — the order cells
// are first touched when scanning points by index — so seeding is
// deterministic.
func (e *msEngine) seed() {
	sc := e.sc
	if e.c.BinSeeding && e.hasGrid {
		e.nSeeds = e.g.nCells
		e.seeds = growF64(&sc.seeds, e.nSeeds*e.d)
		for c := 0; c < e.g.nCells; c++ {
			s := e.seeds[c*e.d : (c+1)*e.d]
			for k := range s {
				s[k] = 0
			}
			items := e.g.items[e.g.starts[c]:e.g.starts[c+1]]
			for _, pi := range items {
				p := e.coords[int(pi)*e.d : (int(pi)+1)*e.d]
				for k := range s {
					s[k] += p[k]
				}
			}
			inv := 1 / float64(len(items))
			for k := range s {
				s[k] *= inv
			}
		}
		return
	}
	e.nSeeds = e.n
	e.seeds = growF64(&sc.seeds, e.n*e.d)
	copy(e.seeds, e.coords)
}

// run executes the lockstep shift rounds. Each round shifts every still-
// active seed once (optionally across goroutines — seeds only read the
// immutable coordinate store and write their own slot, so rounds are
// race-free and deterministic), then a serial commit pass in ascending
// seed order applies convergence, registers finished modes, and — on
// bin-seeded runs — snaps trajectories that landed within Tol of an
// already-registered mode (basin-of-attraction memoization).
func (e *msEngine) run() {
	sc := e.sc
	d := e.d
	next := growF64(&sc.next, e.nSeeds*d)
	active := growI32(&sc.active, e.nSeeds)
	for i := range active {
		active[i] = int32(i)
	}

	workers := e.c.Workers
	if e.c.Exact {
		workers = 1
	} else if workers <= 0 {
		if e.nSeeds >= autoParallelSeeds {
			workers = parallel.DefaultWorkers()
		} else {
			workers = 1
		}
	}
	nChunks := 1
	if workers > 1 {
		nChunks = workers * 4
	}
	// Per-chunk probe scratch: base, offset and cell coordinates for the
	// neighbor odometer (3*d int64 each).
	probes := growI64(&sc.probes, nChunks*3*d)

	memo := e.c.BinSeeding && e.hasGrid
	var modes []float64 // registered converged modes (memoization)
	nModes := 0
	if memo {
		modes = growF64(&sc.modes, 0)
	}

	ctx := context.Background()
	for round := 0; round < e.c.MaxIter && len(active) > 0; round++ {
		e.stats.Rounds++
		e.stats.Iterations += len(active)

		if workers > 1 && len(active) >= parallelRoundCutoff {
			e.stats.Parallel = true
			act := active
			_ = parallel.ForEachCtx(ctx, workers, nChunks, func(ci int) {
				lo := ci * len(act) / nChunks
				hi := (ci + 1) * len(act) / nChunks
				pr := probes[ci*3*d : (ci+1)*3*d]
				for _, si := range act[lo:hi] {
					e.shiftOne(int(si), next, pr)
				}
			})
		} else {
			pr := probes[:3*d]
			for _, si := range active {
				e.shiftOne(int(si), next, pr)
			}
		}

		// Serial commit pass, ascending seed order: deterministic by
		// construction regardless of how the shifts were scheduled.
		w := 0
		for _, si := range active {
			cur := e.seeds[int(si)*d : (int(si)+1)*d]
			nxt := next[int(si)*d : (int(si)+1)*d]
			moved2 := dist2F(cur, nxt)
			copy(cur, nxt)
			if moved2 < e.tol2 {
				if memo {
					modes = append(modes, cur...)
					nModes++
				}
				continue // converged
			}
			if memo && nModes > 0 {
				if m := nearestWithin(cur, modes, nModes, d, e.tol2); m >= 0 {
					copy(cur, modes[m*d:(m+1)*d])
					e.stats.EarlyStops++
					continue // snapped onto a known mode
				}
			}
			active[w] = si
			w++
		}
		active = active[:w]
	}
	if memo {
		sc.modes = modes[:0]
	}
	// Seeds still active after MaxIter keep their last position as their
	// mode, matching the historical behavior.
}

// shiftOne writes into next the kernel-weighted mean of the points
// around seed si's current position. pr is a caller-owned probe scratch
// of length 3*d int64s (base, offset and cell coordinates of the grid
// odometer); it is untouched on the dense path.
func (e *msEngine) shiftOne(si int, next []float64, pr []int64) {
	d := e.d
	cur := e.seeds[si*d : (si+1)*d]
	out := next[si*d : (si+1)*d]
	for i := range out {
		out[i] = 0
	}
	var wsum float64
	if e.hasGrid {
		base := pr[:d]
		off := pr[d : 2*d]
		cell := pr[2*d : 3*d]
		quantizeInto(cur, e.g.inv, base)
		r := int64(e.radius)
		for i := range off {
			off[i] = -r
		}
		for {
			for i := range cell {
				cell[i] = base[i] + off[i]
			}
			wsum += e.accumulate(cur, out, e.g.bucket(cell))
			// Odometer over the (2r+1)^d neighbor offsets.
			k := 0
			for k < d {
				off[k]++
				if off[k] <= r {
					break
				}
				off[k] = -r
				k++
			}
			if k == d {
				break
			}
		}
	} else {
		wsum = e.accumulateDense(cur, out)
	}
	if wsum == 0 {
		// No neighbours (cannot happen with flat kernel since the point
		// itself is within the bandwidth, but guard anyway).
		copy(out, cur)
		return
	}
	inv := 1 / wsum
	for i := range out {
		out[i] *= inv
	}
}

// accumulate adds the kernel-weighted coordinates of the given candidate
// points to out and returns the weight mass contributed.
func (e *msEngine) accumulate(center, out []float64, items []int32) float64 {
	if len(items) == 0 {
		return 0
	}
	d := e.d
	h2 := e.h2
	var wsum float64
	for _, pi := range items {
		p := e.coords[int(pi)*d : (int(pi)+1)*d]
		var d2 float64
		for i := range center {
			dd := center[i] - p[i]
			d2 += dd * dd
		}
		w := e.kfn(d2, h2)
		if w == 0 {
			continue
		}
		wsum += w
		for i := range out {
			out[i] += w * p[i]
		}
	}
	return wsum
}

// accumulateDense is the reference all-points scan, accumulating in
// ascending point order — bit-identical to the historical
// implementation.
func (e *msEngine) accumulateDense(center, out []float64) float64 {
	d := e.d
	h2 := e.h2
	var wsum float64
	for pi := 0; pi < e.n; pi++ {
		p := e.coords[pi*d : (pi+1)*d]
		var d2 float64
		for i := range center {
			dd := center[i] - p[i]
			d2 += dd * dd
		}
		w := e.kfn(d2, h2)
		if w == 0 {
			continue
		}
		wsum += w
		for i := range out {
			out[i] += w * p[i]
		}
	}
	return wsum
}

// finish merges the converged seed modes into cluster centers and
// assigns point labels.
func (e *msEngine) finish() *Result {
	d := e.d
	sc := e.sc
	centers, seedLabels, nCenters := mergeModesFlat(e.seeds, e.nSeeds, d, e.c.Bandwidth, sc)

	if !(e.c.BinSeeding && e.hasGrid) {
		// Exhaustive seeding: seed i is point i.
		labels := make([]int, e.n)
		for i := range labels {
			labels[i] = int(seedLabels[i])
		}
		return &Result{Labels: labels, Centers: centersToPoints(centers, nCenters, d)}
	}

	// Bin seeding: assign every point to its nearest center (ties break
	// toward the lowest center id), then compact away centers that
	// attracted no points so labels stay dense.
	labels := make([]int, e.n)
	used := growI32(&sc.seedLab, nCenters)
	for i := range used {
		used[i] = 0
	}
	for i := 0; i < e.n; i++ {
		p := e.coords[i*d : (i+1)*d]
		best, bestD2 := 0, math.Inf(1)
		for c := 0; c < nCenters; c++ {
			ctr := centers[c*d : (c+1)*d]
			var d2 float64
			for k := range p {
				dd := p[k] - ctr[k]
				d2 += dd * dd
			}
			if d2 < bestD2 {
				best, bestD2 = c, d2
			}
		}
		labels[i] = best
		used[best] = 1
	}
	// Compact: remap[c] is the dense id of center c, or -1 when unused.
	nUsed := 0
	for c := 0; c < nCenters; c++ {
		if used[c] == 1 {
			used[c] = int32(nUsed)
			nUsed++
		} else {
			used[c] = -1
		}
	}
	if nUsed != nCenters {
		compact := make([]float64, 0, nUsed*d)
		for c := 0; c < nCenters; c++ {
			if used[c] >= 0 {
				compact = append(compact, centers[c*d:(c+1)*d]...)
			}
		}
		for i := range labels {
			labels[i] = int(used[labels[i]])
		}
		return &Result{Labels: labels, Centers: centersToPoints(compact, nUsed, d)}
	}
	return &Result{Labels: labels, Centers: centersToPoints(centers, nCenters, d)}
}

// centersToPoints copies the flat center store into the returned Result
// representation: point headers over one fresh contiguous backing array
// (scratch memory must not escape).
func centersToPoints(centers []float64, k, d int) []Point {
	back := make([]float64, k*d)
	copy(back, centers[:k*d])
	out := make([]Point, k)
	for i := range out {
		out[i] = back[i*d : (i+1)*d : (i+1)*d]
	}
	return out
}

// mergeModesFlat collapses converged modes lying within bandwidth/2 of
// each other into single clusters, scanning modes in ascending seed
// order (stable merge order, independent of how seeds were scheduled).
// Matching the historical implementation, a cluster's center is the
// running average of its member modes. Returns the flat center store
// (scratch-owned), per-seed labels (scratch-owned) and the center count.
func mergeModesFlat(modes []float64, s, d int, bandwidth float64, sc *Scratch) ([]float64, []int32, int) {
	mergeR2 := (bandwidth / 2) * (bandwidth / 2)
	centers := growF64(&sc.centers, 0)
	weights := growI32(&sc.weights, 0)
	labels := growI32(&sc.active, s) // active worklist is free by now
	nCenters := 0
	for i := 0; i < s; i++ {
		m := modes[i*d : (i+1)*d]
		assigned := -1
		for ci := 0; ci < nCenters; ci++ {
			ctr := centers[ci*d : (ci+1)*d]
			var d2 float64
			for k := range m {
				dd := m[k] - ctr[k]
				d2 += dd * dd
			}
			if d2 <= mergeR2 {
				assigned = ci
				break
			}
		}
		if assigned < 0 {
			centers = append(centers, m...)
			weights = append(weights, 0)
			assigned = nCenters
			nCenters++
		} else {
			// Running average keeps the center representative of its
			// members rather than of the first mode found.
			w := float64(weights[assigned])
			ctr := centers[assigned*d : (assigned+1)*d]
			for k := range ctr {
				ctr[k] = (ctr[k]*w + m[k]) / (w + 1)
			}
		}
		weights[assigned]++
		labels[i] = int32(assigned)
	}
	sc.centers = centers
	sc.weights = weights
	return centers, labels, nCenters
}

// dist2F is Dist2 over flat coordinate slices.
func dist2F(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// nearestWithin returns the index of the first registered mode within
// the squared radius of p, or -1. Modes are scanned in registration
// order, so the snap target is deterministic.
func nearestWithin(p, modes []float64, nModes, d int, r2 float64) int {
	for m := 0; m < nModes; m++ {
		var d2 float64
		mm := modes[m*d : (m+1)*d]
		for i := range p {
			dd := p[i] - mm[i]
			d2 += dd * dd
		}
		if d2 <= r2 {
			return m
		}
	}
	return -1
}
