package ring

import (
	"encoding/binary"
	"fmt"
)

// The cluster's one wire format: a length-prefixed binary frame that
// carries every inter-node operation — ingest forwarding, replication,
// scatter-gather queries, health probes and the dist categorize RPC.
// The codec is incremental in the style of snail's frame parser: a
// parse attempt over a partial buffer returns consumed == 0 ("need
// more bytes") instead of an error, so connection loops can read into
// a growing buffer and peel off complete frames without framing state.
//
// Layout (all integers little-endian):
//
//	[u32 length]      length of everything after this field
//	[u8  op]          operation code (request) — echoed in the response
//	[u8  status]      StatusOK / StatusError / StatusNotFound
//	[u16 ridLen][rid]            X-Request-Id, propagated on every hop
//	[u16 tpLen][traceparent]     W3C trace context, propagated likewise
//	[body]            operation-specific payload
//
// Request and response share the layout; a response's body carries the
// result (or, under StatusError, a UTF-8 error message).

// Frame statuses.
const (
	StatusOK       = 0
	StatusError    = 1
	StatusNotFound = 2
)

// Operation codes. Codes below 16 are reserved for the cluster
// subsystem; dist's categorize RPC rides the same transport at 16.
const (
	OpPing       = 1
	OpIngest     = 2
	OpReplicate  = 3
	OpQuery      = 4
	OpStats      = 5
	OpResult     = 6
	OpTable      = 7
	OpResultPush = 8

	// OpStatus returns the node's StatusSnapshot — the per-node health
	// document /v1/cluster/health scatter-gathers.
	OpStatus = 9
	// OpMetricsSnap returns the node's full metrics registry export
	// (JSON-encoded telemetry family snapshots) for federation.
	OpMetricsSnap = 10

	// OpCategorize is internal/dist's remote categorization, absorbed
	// onto this transport.
	OpCategorize = 16
)

// MaxFrameBytes bounds one frame: a whole replication batch rides in
// one frame, so the cap mirrors the serve tier's batch ceiling (1024
// traces × 256 MiB would not fit anything, but real batches are far
// smaller; 512 MiB leaves headroom over the default single-upload cap).
const MaxFrameBytes = 512 << 20

// frameOverhead is the fixed per-frame byte count outside rid/tp/body:
// the length prefix plus op, status and the two u16 length fields.
const frameOverhead = 4 + 1 + 1 + 2 + 2

// Frame is one decoded RPC frame.
type Frame struct {
	Op          byte
	Status      byte
	RequestID   string
	Traceparent string
	Body        []byte
}

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	n := 1 + 1 + 2 + len(f.RequestID) + 2 + len(f.Traceparent) + len(f.Body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, f.Op, f.Status)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.RequestID)))
	dst = append(dst, f.RequestID...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Traceparent)))
	dst = append(dst, f.Traceparent...)
	return append(dst, f.Body...)
}

// ParseFrame attempts to decode one frame from the front of buf.
// It returns the decoded frame and how many bytes it consumed;
// consumed == 0 with a nil error means buf holds an incomplete frame —
// read more and retry. The frame's strings are copies, but Body
// aliases buf: callers that retain it past the next buffer reuse must
// copy.
func ParseFrame(buf []byte) (Frame, int, error) {
	var f Frame
	if len(buf) < 4 {
		return f, 0, nil
	}
	n := binary.LittleEndian.Uint32(buf)
	if n < 6 {
		return f, 0, fmt.Errorf("ring: frame length %d below minimum", n)
	}
	if n > MaxFrameBytes {
		return f, 0, fmt.Errorf("ring: frame length %d exceeds %d byte cap", n, MaxFrameBytes)
	}
	if uint32(len(buf)-4) < n {
		return f, 0, nil
	}
	p := buf[4 : 4+n]
	f.Op, f.Status = p[0], p[1]
	p = p[2:]
	ridLen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < ridLen+2 {
		return f, 0, fmt.Errorf("ring: frame request-id overruns frame")
	}
	f.RequestID = string(p[:ridLen])
	p = p[ridLen:]
	tpLen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < tpLen {
		return f, 0, fmt.Errorf("ring: frame traceparent overruns frame")
	}
	f.Traceparent = string(p[:tpLen])
	f.Body = p[tpLen:]
	return f, 4 + int(n), nil
}

// AppendBlob appends one length-prefixed blob to a frame body — the
// same [u32 length][bytes] shape as the serve tier's batch encoding,
// so a batch upload body can be re-framed for forwarding without
// re-encoding the traces.
func AppendBlob(dst, blob []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
	return append(dst, blob...)
}

// SplitBlobs decodes a frame body of length-prefixed blobs. The
// returned slices alias body.
func SplitBlobs(body []byte) ([][]byte, error) {
	var out [][]byte
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, fmt.Errorf("ring: truncated blob length at item %d", len(out))
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n > len(body) {
			return nil, fmt.Errorf("ring: blob %d length %d overruns body", len(out), n)
		}
		out = append(out, body[:n])
		body = body[n:]
	}
	return out, nil
}
