package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// testJobs builds a deterministic mixed corpus: n valid traces across
// several (user, app) groups plus a few corrupted ones.
func testJobs(t *testing.T, n int) []*darshan.Job {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	jobs := make([]*darshan.Job, 0, n)
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("u%d", i%5)
		app := fmt.Sprintf("/bin/app%d", i%7)
		b := gen.NewBuilder(rng, user, app, uint64(i+1), 8, 3600)
		b.Burst(gen.BurstSpec{At: 30, Duration: 60, Bytes: 1 << 30, Records: 4})
		j := b.Job()
		if i%9 == 8 {
			j.Runtime = -1 // corrupted: evicted by the funnel
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func TestRunMatchesSequentialPipeline(t *testing.T) {
	jobs := testJobs(t, 60)
	res, err := Run(context.Background(), Jobs(jobs), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the pre-engine orchestration, run sequentially.
	pre := core.NewPreprocessor()
	for _, j := range jobs {
		pre.Add(j, nil)
	}
	wantFunnel := pre.Stats()
	groups := pre.Groups()

	if res.Funnel.Total != wantFunnel.Total ||
		res.Funnel.Corrupted != wantFunnel.Corrupted ||
		res.Funnel.Valid != wantFunnel.Valid ||
		res.Funnel.UniqueApps != wantFunnel.UniqueApps {
		t.Fatalf("funnel mismatch: got %+v want %+v", res.Funnel, wantFunnel)
	}
	if len(res.Apps) != len(groups) {
		t.Fatalf("apps = %d, want %d", len(res.Apps), len(groups))
	}
	cfg := core.DefaultConfig()
	for i, g := range groups {
		a := res.Apps[i]
		if a.User != g.User || a.App != g.App || a.Runs != g.Runs {
			t.Fatalf("app %d: got (%s,%s,%d) want (%s,%s,%d)",
				i, a.User, a.App, a.Runs, g.User, g.App, g.Runs)
		}
		want, err := core.Categorize(g.Heaviest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Result.Categories.Equal(want.Categories) {
			t.Fatalf("app %s/%s categories %v, want %v", g.User, g.App, a.Result.Labels, want.Labels)
		}
	}
}

func TestRunDirSourceDecodesCorpus(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(t, 20)
	valid := make([]*darshan.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Runtime > 0 {
			valid = append(valid, j)
		}
	}
	if err := darshan.WriteCorpus(dir, valid); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Dir(dir), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// WriteCorpus overwrites same-named files (user_app_jobid), so count
	// distinct paths rather than len(valid).
	paths, err := darshan.ListCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Total != len(paths) {
		t.Fatalf("funnel total = %d, want %d files", res.Funnel.Total, len(paths))
	}
	if res.Funnel.Corrupted != 0 || len(res.Apps) == 0 {
		t.Fatalf("unexpected funnel %+v", res.Funnel)
	}
}

// slowExec delays each categorization so cancellation lands mid-stage.
type slowExec struct {
	delay time.Duration
}

func (s slowExec) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return core.Categorize(j, cfg)
}

func (s slowExec) Concurrency() int { return 2 }

func TestRunCancellationPromptNoLeaks(t *testing.T) {
	jobs := testJobs(t, 80)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Jobs(jobs), Options{
			Workers:  4,
			Executor: slowExec{delay: 50 * time.Millisecond},
			Buffer:   2,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the pipeline spin up
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not shut down after cancel")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shutdown took %v, not prompt", waited)
	}

	// Every stage goroutine must have exited; poll because the final few
	// unwind just after Run returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancel", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunTimeout(t *testing.T) {
	jobs := testJobs(t, 40)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, Jobs(jobs), Options{Executor: slowExec{delay: 200 * time.Millisecond}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// failExec fails on selected users and records how many calls ran.
type failExec struct {
	failUser string
	calls    chan string
}

func (f failExec) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	if f.calls != nil {
		select {
		case f.calls <- j.User:
		default:
		}
	}
	if j.User == f.failUser {
		return nil, fmt.Errorf("synthetic failure for %s", j.User)
	}
	return core.Categorize(j, cfg)
}

func (f failExec) Concurrency() int { return 1 }

func TestRunFailFast(t *testing.T) {
	jobs := testJobs(t, 60)
	res, err := Run(context.Background(), Jobs(jobs), Options{
		Executor: failExec{failUser: "u0"},
	})
	if err == nil || !containsStr(err.Error(), "synthetic failure") {
		t.Fatalf("fail-fast error %v does not carry the cause", err)
	}
	if res != nil {
		t.Fatal("fail-fast must not return a partial analysis")
	}
}

func TestRunCollectAll(t *testing.T) {
	jobs := testJobs(t, 60)
	res, err := Run(context.Background(), Jobs(jobs), Options{
		Policy:   CollectAll,
		Executor: failExec{failUser: "u0"},
	})
	if err == nil {
		t.Fatal("collect-all swallowed the errors")
	}
	if res == nil {
		t.Fatal("collect-all must return the partial analysis")
	}
	// u0 owns several app groups; every one of them must be reported.
	var wantFailures int
	pre := core.NewPreprocessor()
	for _, j := range jobs {
		pre.Add(j, nil)
	}
	for _, g := range pre.Groups() {
		if g.User == "u0" {
			wantFailures++
		}
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("collect-all error %T is not an errors.Join result", err)
	}
	if got := len(joined.Unwrap()); got != wantFailures {
		t.Fatalf("collected %d errors, want %d", got, wantFailures)
	}
	if len(res.Apps)+wantFailures != pre.Stats().UniqueApps {
		t.Fatalf("partial apps %d + failures %d != groups %d",
			len(res.Apps), wantFailures, pre.Stats().UniqueApps)
	}
	for _, a := range res.Apps {
		if a.User == "u0" {
			t.Fatal("failed app leaked into results")
		}
	}
}

func TestObserverCountsAndTimings(t *testing.T) {
	jobs := testJobs(t, 45)
	st := NewStats()
	res, err := Run(context.Background(), Jobs(jobs), Options{Workers: 3, Observer: st})
	if err != nil {
		t.Fatal(err)
	}
	snaps := st.Snapshot()
	if len(snaps) != len(Stages()) {
		t.Fatalf("got %d stage snapshots, want %d", len(snaps), len(Stages()))
	}
	for _, s := range snaps {
		if !s.Started || !s.Finished {
			t.Fatalf("stage %s not started/finished: %+v", s.Stage, s)
		}
		if s.InFlight != 0 {
			t.Fatalf("stage %s still in flight after run: %+v", s.Stage, s)
		}
	}
	if out := st.Stage(StageScan).Out; out != int64(len(jobs)) {
		t.Fatalf("scan out = %d, want %d", out, len(jobs))
	}
	if in := st.Stage(StageDecode).In; in != int64(len(jobs)) {
		t.Fatalf("decode in = %d, want %d", in, len(jobs))
	}
	if in := st.Stage(StageFunnel).In; in != int64(len(jobs)) {
		t.Fatalf("funnel in = %d, want %d", in, len(jobs))
	}
	if out := st.Stage(StageFunnel).Out; out != int64(res.Funnel.UniqueApps) {
		t.Fatalf("funnel out = %d, want %d groups", out, res.Funnel.UniqueApps)
	}
	if got := st.Stage(StageCategorize).Out; got != int64(len(res.Apps)) {
		t.Fatalf("categorize out = %d, want %d", got, len(res.Apps))
	}
	if got := st.Stage(StageAggregate).In; got != int64(len(res.Apps)) {
		t.Fatalf("aggregate in = %d, want %d", got, len(res.Apps))
	}
	if st.String() == "" {
		t.Fatal("empty stats summary")
	}
}

func TestRunZeroConfigUsesDefaults(t *testing.T) {
	jobs := testJobs(t, 10)
	res, err := Run(context.Background(), Jobs(jobs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) == 0 {
		t.Fatal("zero-config run produced no apps")
	}
}

func TestScanErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	src := SourceFunc(func(ctx context.Context, emit func(Ref) bool) error {
		emit(Ref{Job: testJobs(t, 1)[0]})
		return boom
	})
	_, err := Run(context.Background(), src, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("scan error lost: %v", err)
	}
}

func TestEntriesSourceCountsReadErrors(t *testing.T) {
	jobs := testJobs(t, 6)
	entries := []darshan.CorpusEntry{
		{Path: "a", Job: jobs[0]},
		{Path: "b", Err: errors.New("unreadable gzip")},
		{Path: "c", Job: jobs[2]},
	}
	res, err := Run(context.Background(), Entries(entries), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Total != 3 || res.Funnel.Corrupted != 1 {
		t.Fatalf("funnel %+v, want 3 total / 1 corrupted", res.Funnel)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
