package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// waitRecorded polls the flight recorder until n traces have completed.
func waitRecorded(t *testing.T, rec *reqtrace.Recorder, n int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Recorded() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("recorder stuck at %d traces, want %d", rec.Recorded(), n)
}

func TestTraceparentEchoAndPropagation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, NoBackfill: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No incoming header: a fresh valid traceparent is minted.
	resp, _ := getBody(t, ts.URL+"/healthz")
	tp := resp.Header.Get("Traceparent")
	if _, _, ok := reqtrace.ParseTraceparent(tp); !ok {
		t.Fatalf("minted traceparent invalid: %q", tp)
	}

	// Incoming W3C header: the trace ID is adopted, the span ID is ours.
	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", in)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	out := r2.Header.Get("Traceparent")
	tid, sid, ok := reqtrace.ParseTraceparent(out)
	if !ok {
		t.Fatalf("echoed traceparent invalid: %q", out)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id not adopted: %s", out)
	}
	if sid.String() == "b7ad6b7169203331" {
		t.Fatal("span id should be the server's root, not the caller's")
	}
}

func TestSlowIngestProducesFlightDump(t *testing.T) {
	dir := t.TempDir()
	flightDir := filepath.Join(dir, "flight")
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// The forced-slow hook: a 1ns threshold makes every request "slow",
	// so the ingest's span tree is dumped the moment it finalizes.
	rec := reqtrace.NewRecorder(reqtrace.RecorderConfig{
		Capacity: 16, Dir: flightDir, SlowThreshold: time.Nanosecond,
	})
	s, _ := newTestServer(t, Config{
		Store: st, Workers: 1, NoBackfill: true, Flight: rec,
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blob := encodeJob(t, testJob(41))
	resp, body := postBlob(t, ts.URL, blob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d body %s", resp.StatusCode, body)
	}
	reqTP := resp.Header.Get("Traceparent")
	tid, _, ok := reqtrace.ParseTraceparent(reqTP)
	if !ok {
		t.Fatalf("ingest traceparent invalid: %q", reqTP)
	}
	id, _, err := store.TraceKey(testJob(41))
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, ts.URL, id)
	waitRecorded(t, rec, 1)

	// The ingest trace finalized after its async work; its dump must
	// contain the full path edge → queue wait → engine → commit → index.
	path := filepath.Join(flightDir, "req-"+tid.String()+".trace.json")
	data, err := os.ReadFile(path)
	if err != nil {
		ents, _ := os.ReadDir(flightDir)
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("expected dump at %s (dir has %v): %v", path, names, err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not Chrome trace JSON: %v", err)
	}
	spanByID := map[string]int{}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name] = true
		spanByID[ev.Args["span_id"]] = i
	}
	for _, want := range []string{
		"POST /v1/traces", "ingest.decode", "store.commit",
		"queue.wait", "worker.categorize", "engine:categorize", "index.update",
	} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}
	// Parent/child consistency: every X event's parent resolves to
	// another span in the tree (the root's parent is zero), and no child
	// starts before the request arrived (ts offsets are non-negative).
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		parent := ev.Args["parent"]
		if parent != strings.Repeat("0", 16) {
			if _, ok := spanByID[parent]; !ok {
				t.Errorf("span %q parent %s not in tree", ev.Name, parent)
			}
		}
		if ev.Ts < 0 {
			t.Errorf("span %q starts before the request (ts=%f)", ev.Name, ev.Ts)
		}
	}
	// The group commit recorded its durability mode and cohort size.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "store.commit" && ev.Args["kind"] == "traces" {
			if ev.Args["durability"] != "fsync" {
				t.Errorf("sync store commit durability = %q", ev.Args["durability"])
			}
			if ev.Args["group_syncs"] == "" {
				t.Error("store.commit missing group_syncs attr")
			}
		}
	}

	// The same trace is queryable through the debug endpoint.
	r, body2 := getBody(t, ts.URL+"/debug/requests/"+tid.String())
	if r.StatusCode != 200 {
		t.Fatalf("/debug/requests/{id}: status %d body %s", r.StatusCode, body2)
	}
	var det reqtrace.Detail
	if err := json.Unmarshal([]byte(body2), &det); err != nil {
		t.Fatal(err)
	}
	if det.Status != http.StatusAccepted || len(det.SpanTree) < 5 {
		t.Fatalf("detail = status %d, %d spans", det.Status, len(det.SpanTree))
	}
	if det.Phases["queue.wait"] < 0 || det.Phases["worker.categorize"] <= 0 {
		t.Fatalf("phase breakdown missing worker time: %v", det.Phases)
	}
}

func TestBatchIngestItemSpansAndRequestID(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.RecorderConfig{Capacity: 16})
	s, _ := newTestServer(t, Config{Workers: 2, NoBackfill: true, Flight: rec})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var payload []byte
	payload = AppendBatchFrame(payload, encodeJob(t, testJob(51)))
	payload = AppendBatchFrame(payload, encodeJob(t, testJob(52)))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/traces:batch", bytes.NewReader(payload))
	req.Header.Set("Content-Type", BatchContentType)
	req.Header.Set("X-Request-Id", "batch-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, body)
	}
	tid, _, _ := reqtrace.ParseTraceparent(resp.Header.Get("Traceparent"))

	// Satellite: per-item statuses carry the originating request ID.
	var out struct {
		Results []IngestItem `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d", len(out.Results))
	}
	for i, it := range out.Results {
		if it.RequestID != "batch-req-7" {
			t.Errorf("item %d request_id = %q, want batch-req-7", i, it.RequestID)
		}
	}

	for _, seed := range []int{51, 52} {
		id, _, err := store.TraceKey(testJob(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitResult(t, ts.URL, id)
	}
	waitRecorded(t, rec, 1)

	det, ok := rec.Get(tid.String())
	if !ok {
		t.Fatalf("batch trace %s not in recorder", tid)
	}
	items, workers := 0, 0
	for _, sp := range det.SpanTree {
		if strings.HasPrefix(sp.Name, "item:") {
			items++
		}
		if sp.Name == "worker.categorize" {
			workers++
		}
	}
	if items != 2 {
		t.Fatalf("batch trace has %d item spans, want 2", items)
	}
	if workers != 2 {
		t.Fatalf("batch trace has %d worker spans, want 2 (one per item)", workers)
	}
}

func TestDisableTracing(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, NoBackfill: true, DisableTracing: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := getBody(t, ts.URL+"/healthz")
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Fatalf("tracing disabled but traceparent echoed: %q", tp)
	}
	if s.Flight() != nil {
		t.Fatal("tracing disabled but a flight recorder exists")
	}
	r, _ := getBody(t, ts.URL+"/debug/requests")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/requests with tracing off: status %d, want 404", r.StatusCode)
	}
}

func TestStoreGaugesAndOpenMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, NoBackfill: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blob := encodeJob(t, testJob(61))
	postBlob(t, ts.URL, blob)
	id, _, err := store.TraceKey(testJob(61))
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, ts.URL, id)

	// Satellite: store.Stats surfaces as mosaic_store_* gauges.
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"mosaic_store_traces 1", "mosaic_store_results 1",
		"mosaic_store_segments", "mosaic_store_group_syncs_total",
		"mosaic_serve_queue_wait_seconds_count",
		"mosaic_http_request_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// OpenMetrics negotiation: exemplars link buckets to trace IDs.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := readAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(om)
	if !strings.HasSuffix(strings.TrimRight(text, "\n")+"\n", "# EOF\n") {
		t.Fatal("OpenMetrics exposition does not end with # EOF")
	}
	if !strings.Contains(text, `# {trace_id="`) {
		t.Fatal("OpenMetrics exposition has no trace-ID exemplars")
	}
}

func TestSLOBreachCounter(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, NoBackfill: true, SLO: time.Nanosecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getBody(t, ts.URL+"/healthz")
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `mosaic_slo_latency_breaches_total{route="/healthz"} 1`) {
		t.Fatalf("SLO breach not counted:\n%s", grepLines(metrics, "slo"))
	}
	if !strings.Contains(metrics, "mosaic_slo_target_seconds") {
		t.Fatal("SLO target gauge missing")
	}
}

// readAll drains a reader (io.ReadAll without importing io here twice).
func readAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// grepLines returns the lines of s containing substr, for failure output.
func grepLines(s, substr string) string {
	var b strings.Builder
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
