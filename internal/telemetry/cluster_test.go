package telemetry

import (
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/cluster"
)

func TestOnCollectRunsBeforeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hook_fired_total", "test", nil)
	calls := 0
	reg.OnCollect("test", func() { calls++; c.Inc() })
	reg.OnCollect("test", func() { t.Fatal("duplicate hook must not replace the first") })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
	if !strings.Contains(b.String(), "hook_fired_total 1") {
		t.Fatalf("exposition missing hook-updated value:\n%s", b.String())
	}
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hook_fired_total 2") {
		t.Fatalf("hook not re-run on second exposition:\n%s", b.String())
	}
}

func TestRegisterClusterMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterClusterMetrics(reg)
	RegisterClusterMetrics(reg) // idempotent

	// Drive at least one MeanShift run so the totals move.
	pts := []cluster.Point{{0, 0}, {0.01, 0}, {1, 1}, {1.01, 1}}
	if _, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{Bandwidth: 0.1}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"mosaic_cluster_runs_total",
		"mosaic_cluster_seeds_total",
		"mosaic_cluster_shift_iterations_total",
		"mosaic_cluster_grid_cells_total",
		"mosaic_cluster_early_stops_total",
		"mosaic_cluster_parallel_runs_total",
	} {
		if !strings.Contains(out, "# TYPE "+name+" counter") {
			t.Errorf("exposition missing %s family:\n%s", name, out)
		}
	}
	// The run above must be visible (>= 1; other tests may add more).
	if strings.Contains(out, "mosaic_cluster_runs_total 0\n") {
		t.Errorf("mosaic_cluster_runs_total still zero after a MeanShift run:\n%s", out)
	}
}
