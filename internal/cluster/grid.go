package cluster

import "math"

// Uniform grid spatial index over a flattened point store.
//
// The grid quantizes d-dimensional points into axis-aligned cells whose
// edge equals the Mean Shift bandwidth h. Every point within distance h
// of a query point then lies in one of the 3^d cells surrounding the
// query's cell, so a kernel-mean evaluation visits only those buckets
// instead of the whole data set — the standard route to near-linear
// mean shift (scikit-learn's binned implementation uses the same idea
// through its BinSeeding/radius-neighbors machinery).
//
// Cells are identified by the hash of their quantized integer
// coordinates. Hash collisions merge two buckets; that is harmless for
// correctness (the kernel always re-checks the true distance, and a
// point's own bucket is always probed under the same hash) and merely
// costs a few extra distance evaluations, but with a 64-bit avalanche
// hash collisions are astronomically unlikely in practice.
//
// Storage is CSR-style and allocation-lean: one map from cell hash to a
// dense cell id, one starts array, and one items array holding point
// indices grouped by cell. Within a cell, items keep ascending point
// order, which makes every grid traversal deterministic.
type grid struct {
	d      int
	inv    float64          // 1 / cell edge
	cells  map[uint64]int32 // cell hash -> dense cell id
	starts []int32          // len nCells+1; bucket c is items[starts[c]:starts[c+1]]
	items  []int32          // point indices grouped by cell, ascending within a cell
	nCells int
}

// maxGridDim bounds the dimensionality the grid accelerates: the
// neighbor probe count grows as (2r+1)^d, so past this the dense scan
// wins. MOSAIC's feature space is 2-D; this is pure safety margin.
const maxGridDim = 12

// quantizeCoord maps one coordinate to its integer cell index, clamped
// so that extreme coordinate/bandwidth ratios cannot overflow int64.
func quantizeCoord(v, inv float64) int64 {
	f := math.Floor(v * inv)
	const lim = 9.2e18
	if f > lim {
		f = lim
	} else if f < -lim {
		f = -lim
	}
	return int64(f)
}

// quantizeInto writes the cell coordinates of point p into qs.
func quantizeInto(p []float64, inv float64, qs []int64) {
	for i, v := range p {
		qs[i] = quantizeCoord(v, inv)
	}
}

// hashCell hashes quantized cell coordinates with an FNV-style mix and
// a final avalanche so neighboring cells scatter across the table.
func hashCell(qs []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, q := range qs {
		h ^= uint64(q)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// buildGrid indexes n points of dimension d stored flattened in coords
// (point i occupies coords[i*d : (i+1)*d]) into cells of the given edge.
// All backing storage comes from the scratch, so repeated builds reuse
// memory.
func buildGrid(coords []float64, n, d int, cell float64, sc *Scratch) grid {
	g := grid{d: d, inv: 1 / cell}
	if sc.cellMap == nil {
		sc.cellMap = make(map[uint64]int32, n)
	} else {
		clear(sc.cellMap)
	}
	g.cells = sc.cellMap
	cellIDs := growI32(&sc.cellIDs, n)
	qs := growI64(&sc.qs, d)

	// Pass 1: assign dense cell ids in first-occurrence order.
	for i := 0; i < n; i++ {
		quantizeInto(coords[i*d:(i+1)*d], g.inv, qs)
		h := hashCell(qs)
		id, ok := g.cells[h]
		if !ok {
			id = int32(g.nCells)
			g.nCells++
			g.cells[h] = id
		}
		cellIDs[i] = id
	}

	// Pass 2: CSR fill (counting sort by cell id; stable, so items stay
	// in ascending point order within each cell).
	starts := growI32(&sc.starts, g.nCells+1)
	for i := range starts {
		starts[i] = 0
	}
	for i := 0; i < n; i++ {
		starts[cellIDs[i]+1]++
	}
	for c := 0; c < g.nCells; c++ {
		starts[c+1] += starts[c]
	}
	items := growI32(&sc.items, n)
	cursor := growI32(&sc.cursor, g.nCells)
	copy(cursor, starts[:g.nCells])
	for i := 0; i < n; i++ {
		c := cellIDs[i]
		items[cursor[c]] = int32(i)
		cursor[c]++
	}
	g.starts = starts
	g.items = items
	return g
}

// bucket returns the point indices stored in the cell with the given
// quantized coordinates, or nil when the cell is empty.
func (g *grid) bucket(qs []int64) []int32 {
	id, ok := g.cells[hashCell(qs)]
	if !ok {
		return nil
	}
	return g.items[g.starts[id]:g.starts[id+1]]
}
