package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func platform() Config {
	return Config{Slots: 16, PFSBandwidth: 10e9, JobBandwidth: 5e9}
}

func TestSimulateSingleJobNoContention(t *testing.T) {
	j := &Job{ID: 0, Phases: []Phase{{Bytes: 10e9}, {Compute: 100}}}
	m, err := Simulate([]*Job{j}, platform(), FCFS([]*Job{j}))
	if err != nil {
		t.Fatal(err)
	}
	// 10 GB at 5 GB/s = 2s I/O + 100s compute.
	if math.Abs(m.Makespan-102) > 1e-6 {
		t.Fatalf("makespan = %g, want 102", m.Makespan)
	}
	if m.StallTime > 1e-9 {
		t.Fatalf("stall = %g on an idle system", m.StallTime)
	}
	if math.Abs(m.MeanSlowdown-1) > 1e-9 {
		t.Fatalf("slowdown = %g", m.MeanSlowdown)
	}
}

func TestSimulateContentionStretchesIO(t *testing.T) {
	// Four jobs each demanding 5 GB/s on a 10 GB/s PFS: fair share
	// 2.5 GB/s, so each 10 GB read takes 4s instead of 2s.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, &Job{ID: i, Phases: []Phase{{Bytes: 10e9}}})
	}
	m, err := Simulate(jobs, platform(), FCFS(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Makespan-4) > 1e-6 {
		t.Fatalf("makespan = %g, want 4", m.Makespan)
	}
	if m.Stretch() < 1.9 {
		t.Fatalf("stretch = %g, want ~2", m.Stretch())
	}
	if m.StallTime <= 0 {
		t.Fatal("no stall recorded under contention")
	}
}

func TestSimulateSlotLimit(t *testing.T) {
	cfg := platform()
	cfg.Slots = 1
	jobs := []*Job{
		{ID: 0, Phases: []Phase{{Compute: 10}}},
		{ID: 1, Phases: []Phase{{Compute: 10}}},
	}
	m, err := Simulate(jobs, cfg, FCFS(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Makespan-20) > 1e-6 {
		t.Fatalf("makespan = %g, want 20 (serialized)", m.Makespan)
	}
}

func TestSimulateHonorsDelays(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Phases: []Phase{{Compute: 5}}},
		{ID: 1, Phases: []Phase{{Compute: 5}}},
	}
	order := Order{Sequence: []int{0, 1}, Delay: []float64{0, 50}}
	m, err := Simulate(jobs, platform(), order)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Makespan-55) > 1e-6 {
		t.Fatalf("makespan = %g, want 55", m.Makespan)
	}
}

func TestSimulateErrors(t *testing.T) {
	jobs := []*Job{{ID: 0, Phases: []Phase{{Compute: 1}}}}
	if _, err := Simulate(jobs, Config{}, FCFS(jobs)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Simulate(jobs, platform(), Order{}); err == nil {
		t.Fatal("incomplete order accepted")
	}
	bad := Order{Sequence: []int{7}, Delay: []float64{0}}
	if _, err := Simulate(jobs, platform(), bad); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestCategoryAwareBeatsFCFSOnContendedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := BuildWorkload(DefaultWorkloadSpec(), rng)
	cfg := Config{Slots: 32, PFSBandwidth: 20e9, JobBandwidth: 10e9}
	// Stagger by roughly one uncontended input-read duration.
	stagger := DefaultWorkloadSpec().ReadBytes / cfg.JobBandwidth
	cmp, err := Compare(jobs, cfg, stagger)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FCFS.StallTime <= 0 {
		t.Fatal("workload not contended under FCFS; test is vacuous")
	}
	if cmp.Aware.StallTime >= cmp.FCFS.StallTime {
		t.Fatalf("category-aware stall %.0fs not below FCFS %.0fs",
			cmp.Aware.StallTime, cmp.FCFS.StallTime)
	}
	if cmp.StallReduction < 0.3 {
		t.Fatalf("stall reduction = %.2f, want >= 0.3", cmp.StallReduction)
	}
	// Staggering must not explode the makespan (bounded regression).
	if cmp.Aware.Makespan > cmp.FCFS.Makespan*1.5 {
		t.Fatalf("makespan regression: %.0f vs %.0f", cmp.Aware.Makespan, cmp.FCFS.Makespan)
	}
}

func TestFromResult(t *testing.T) {
	j := &darshan.Job{
		JobID: 1, User: "u", Exe: "/bin/x", NProcs: 8,
		Start: 0, End: 4000, Runtime: 4000,
	}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/in",
		C: darshan.Counters{Reads: 1, BytesRead: 1 << 30, ReadStart: 10, ReadEnd: 60},
	})
	res, err := core.Categorize(j, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sj := FromResult(res, 7)
	if sj.ID != 7 || len(sj.Phases) == 0 {
		t.Fatalf("job = %+v", sj)
	}
	if !sj.ReadOnStart {
		t.Fatal("read-on-start hint lost")
	}
	var bytes float64
	for _, p := range sj.Phases {
		bytes += p.Bytes
	}
	if math.Abs(bytes-float64(1<<30)) > 1 {
		t.Fatalf("phase bytes = %g", bytes)
	}
}

func TestJobDuration(t *testing.T) {
	j := &Job{Phases: []Phase{{Bytes: 10e9}, {Compute: 50}}}
	if got := j.Duration(5e9); got != 52 {
		t.Fatalf("duration = %g", got)
	}
}

func TestCategoryAwareOrderShape(t *testing.T) {
	jobs := []*Job{
		{ID: 0},
		{ID: 1, ReadOnStart: true, Phases: []Phase{{Bytes: 5e9}}},
		{ID: 2, PeriodicWrite: true},
		{ID: 3, ReadOnStart: true, Phases: []Phase{{Bytes: 9e9}}},
	}
	o := CategoryAware(jobs, 100)
	if len(o.Sequence) != 4 {
		t.Fatalf("sequence = %v", o.Sequence)
	}
	// Heaviest reader first, delays staggered.
	if o.Sequence[0] != 3 || o.Sequence[1] != 1 {
		t.Fatalf("reader order = %v", o.Sequence)
	}
	if o.Delay[0] != 0 || o.Delay[1] != 100 {
		t.Fatalf("delays = %v", o.Delay)
	}
}

func TestPhaseShiftPeriodicWriters(t *testing.T) {
	// Four checkpointers sharing a 600s cadence: the aware policy must
	// give them distinct release offsets spanning the period.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, &Job{ID: i, PeriodicWrite: true, Period: 600,
			Phases: []Phase{{Compute: 570}, {Bytes: 50e9}}})
	}
	o := CategoryAware(jobs, 0)
	seen := map[float64]bool{}
	for _, d := range o.Delay {
		if seen[d] {
			t.Fatalf("duplicate offset %g: %v", d, o.Delay)
		}
		seen[d] = true
		if d < 0 || d >= 600 {
			t.Fatalf("offset %g outside one period", d)
		}
	}
	// Phase-shifting must reduce checkpoint collisions vs FCFS.
	cfg := Config{Slots: 8, PFSBandwidth: 10e9, JobBandwidth: 8e9}
	fcfs, err := Simulate(jobs, cfg, FCFS(jobs))
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Simulate(jobs, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if fcfs.StallTime <= 0 {
		t.Fatal("no FCFS contention; vacuous")
	}
	if aware.StallTime >= fcfs.StallTime*0.7 {
		t.Fatalf("phase shift did not help: aware %.0fs vs fcfs %.0fs", aware.StallTime, fcfs.StallTime)
	}
}

func TestPhaseShiftDistinctPeriodsUntouched(t *testing.T) {
	jobs := []*Job{
		{ID: 0, PeriodicWrite: true, Period: 100, Phases: []Phase{{Compute: 95}, {Bytes: 1e9}}},
		{ID: 1, PeriodicWrite: true, Period: 900, Phases: []Phase{{Compute: 855}, {Bytes: 1e9}}},
	}
	o := CategoryAware(jobs, 0)
	// Incompatible periods: no shifting applied.
	for _, d := range o.Delay {
		if d != 0 {
			t.Fatalf("distinct-period writers should not be shifted: %v", o.Delay)
		}
	}
}
