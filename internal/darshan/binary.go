package darshan

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Binary codec for Darshan-like logs. Real Darshan logs are a compressed
// binary container (zlib regions indexed by a header); we reproduce the
// same architecture with a small header followed by a little-endian body
// that is either raw or gzip-compressed, selected by a header flag. The
// format is versioned and self-describing enough for the corpus reader
// to reject foreign files cheaply.
//
// Layout:
//
//	magic   [4]byte  "MOSD"
//	version uint16   (current: 2)
//	flags   uint16   (bit 0: body is gzip-compressed)
//	body    — little-endian fields, see appendBody
//
// Strings are length-prefixed (uint32 + raw bytes). All multi-byte values
// are little-endian.
//
// Two encodings share this container:
//
//   - The canonical encoding (MarshalBinary / AppendEncode) leaves the
//     body raw. It is the content-addressing identity (store.TraceKey
//     hashes these bytes) and the ingest hot path: encoding is a single
//     buffer append and decoding parses in place with zero copies.
//   - The file encoding (WriteBinary, .mosd corpora) gzips the body,
//     trading decode work for disk footprint on at-rest corpora.
//
// Both are decoded by the same reader — the flag bit, not the API,
// selects the path — so blobs written by either remain interchangeable,
// and files written by pre-existing (always-gzip) writers stay readable.
//
// The decode hot path is allocation-free when warm: gzip readers,
// inflate arenas and scratch buffers are pooled via sync.Pool, strings
// are interned in a bounded per-state table (repeated decodes of traces
// sharing paths/users hit the table and allocate nothing), and
// DecodeInto reuses the caller's Record/Metadata storage.

// Magic identifies MOSAIC Darshan-like binary logs.
var Magic = [4]byte{'M', 'O', 'S', 'D'}

// FormatVersion is the current binary format version. Version 2 added
// optional DXT segment lists per record; version 1 files remain readable.
const FormatVersion uint16 = 2

// minFormatVersion is the oldest version the reader accepts.
const minFormatVersion uint16 = 1

const flagGzip uint16 = 1 << 0

// headerLen is the fixed container prefix: magic, version, flags.
const headerLen = 8

// Limits protecting the decoder against corrupted or hostile inputs.
const (
	maxStringLen  = 1 << 20 // 1 MiB per string
	maxRecords    = 1 << 26 // 64M records per job
	maxMetaPairs  = 1 << 16
	maxDXTPerList = 1 << 24 // 16M traced segments per record
	maxBodyBytes  = 1 << 30 // 1 GiB decompressed body (gzip-bomb guard)
)

// Minimum encoded sizes, used to validate hostile element counts against
// the bytes actually present before allocating.
const (
	minRecordLen   = 4 + 4 + 4 + 16*8 // module + path prefix + rank + 16 counters
	dxtEventLen    = 4 * 8
	minMetaPairLen = 4 + 4 // two empty length-prefixed strings
)

// ErrBadMagic reports that a stream does not start with the MOSD magic.
var ErrBadMagic = errors.New("darshan: bad magic (not a MOSAIC binary log)")

// ErrBadVersion reports an unsupported format version.
var ErrBadVersion = errors.New("darshan: unsupported format version")

// maxPooledBuf bounds what is returned to the buffer pools: one
// pathological trace must not pin a giant arena for the process
// lifetime.
const maxPooledBuf = 8 << 20

// ---- Encoding ----

// encodeState is the pooled per-encode scratch: the body staging buffer
// and the metadata key-sorting slice.
type encodeState struct {
	body []byte
	keys []string
}

var encodeStatePool = sync.Pool{New: func() any { return new(encodeState) }}

// gzipWriterPool pools file-encoding compressors. BestSpeed: corpus
// files are written once and read many times by a decoder whose inflate
// cost barely depends on the compression level.
var gzipWriterPool = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return zw
	},
}

// AppendEncode appends the canonical (raw-body) binary encoding of j to
// dst and returns the extended slice. This is the zero-allocation encode
// path: callers that reuse dst across traces pay only the bytes they
// append. The result is what store.TraceKey hashes.
func AppendEncode(dst []byte, j *Job) ([]byte, error) {
	dst = append(dst, Magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, FormatVersion)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	return appendBody(dst, j)
}

// MarshalBinary returns the canonical binary encoding of the job.
func MarshalBinary(j *Job) ([]byte, error) {
	return AppendEncode(make([]byte, 0, encodedLen(j)), j)
}

// encodedLen computes the exact canonical encoding size, so MarshalBinary
// allocates once.
func encodedLen(j *Job) int {
	n := headerLen + 8 + 4 + (4 + len(j.User)) + (4 + len(j.Exe)) + 4 + 8 + 8 + 8
	n += 4
	for k, v := range j.Metadata {
		n += 4 + len(k) + 4 + len(v)
	}
	n += 4
	for i := range j.Records {
		r := &j.Records[i]
		n += minRecordLen + len(r.Path) + 4 + dxtEventLen*len(r.DXTReads) + 4 + dxtEventLen*len(r.DXTWrites)
	}
	return n
}

// WriteBinary encodes the job to w in the binary log format, compressing
// the body with gzip — the at-rest .mosd file encoding. The header and
// body layout match AppendEncode; only the flag bit and the compression
// wrapper differ.
func WriteBinary(w io.Writer, j *Job) error {
	st := encodeStatePool.Get().(*encodeState)
	body, err := appendBody(st.body[:0], j)
	if cap(body) <= maxPooledBuf {
		st.body = body[:0]
	} else {
		st.body = nil
	}
	if err != nil {
		encodeStatePool.Put(st)
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], flagGzip)
	if _, err := w.Write(hdr[:]); err != nil {
		encodeStatePool.Put(st)
		return err
	}
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(w)
	_, werr := zw.Write(body)
	encodeStatePool.Put(st)
	cerr := zw.Close()
	gzipWriterPool.Put(zw)
	if werr != nil {
		return werr
	}
	return cerr
}

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return dst, fmt.Errorf("darshan: string too long (%d bytes)", len(s))
	}
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...), nil
}

func appendBody(dst []byte, j *Job) ([]byte, error) {
	var err error
	dst = appendU64(dst, j.JobID)
	dst = appendU32(dst, j.UID)
	if dst, err = appendStr(dst, j.User); err != nil {
		return dst, err
	}
	if dst, err = appendStr(dst, j.Exe); err != nil {
		return dst, err
	}
	dst = appendU32(dst, uint32(j.NProcs))
	dst = appendI64(dst, j.Start)
	dst = appendI64(dst, j.End)
	dst = appendF64(dst, j.Runtime)

	dst = appendU32(dst, uint32(len(j.Metadata)))
	if len(j.Metadata) > 0 {
		// Metadata keys are emitted sorted so that encoding is a pure
		// function of the Job value: same corpus seed ⇒ byte-identical
		// encodings, and content addresses are stable.
		st := encodeStatePool.Get().(*encodeState)
		keys := st.keys[:0]
		for k := range j.Metadata {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if dst, err = appendStr(dst, k); err != nil {
				break
			}
			if dst, err = appendStr(dst, j.Metadata[k]); err != nil {
				break
			}
		}
		st.keys = keys[:0]
		encodeStatePool.Put(st)
		if err != nil {
			return dst, err
		}
	}

	dst = appendU32(dst, uint32(len(j.Records)))
	for i := range j.Records {
		r := &j.Records[i]
		dst = appendU32(dst, uint32(r.Module))
		if dst, err = appendStr(dst, r.Path); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(r.Rank))
		c := &r.C
		dst = appendI64(dst, c.Opens)
		dst = appendI64(dst, c.Closes)
		dst = appendI64(dst, c.Seeks)
		dst = appendI64(dst, c.Stats)
		dst = appendI64(dst, c.Reads)
		dst = appendI64(dst, c.Writes)
		dst = appendI64(dst, c.BytesRead)
		dst = appendI64(dst, c.BytesWritten)
		dst = appendF64(dst, c.OpenStart)
		dst = appendF64(dst, c.OpenEnd)
		dst = appendF64(dst, c.ReadStart)
		dst = appendF64(dst, c.ReadEnd)
		dst = appendF64(dst, c.WriteStart)
		dst = appendF64(dst, c.WriteEnd)
		dst = appendF64(dst, c.CloseStart)
		dst = appendF64(dst, c.CloseEnd)
		dst = appendDXTList(dst, r.DXTReads)
		dst = appendDXTList(dst, r.DXTWrites)
	}
	return dst, nil
}

func appendDXTList(dst []byte, events []DXTEvent) []byte {
	dst = appendU32(dst, uint32(len(events)))
	for i := range events {
		ev := &events[i]
		dst = appendF64(dst, ev.Start)
		dst = appendF64(dst, ev.End)
		dst = appendI64(dst, ev.Offset)
		dst = appendI64(dst, ev.Length)
	}
	return dst
}

// ---- Decoding ----

// Intern table bounds: paths, users and metadata keys repeat heavily
// across records and traces, so small strings are deduplicated into a
// bounded table on the pooled decode state. A full table degrades to
// plain copying, never to an error.
const (
	maxInternStrLen  = 256
	maxInternEntries = 4096
	maxInternBytes   = 1 << 20
)

// decodeState is the pooled per-decode scratch: the inflate arena, the
// gzip reader (lazily built, Reset between uses), the bytes.Reader
// feeding it, and the string intern table. States cycle through a
// sync.Pool, so a warm decode path reuses all of it.
type decodeState struct {
	arena       []byte
	br          bytes.Reader
	zr          *gzip.Reader
	intern      map[string]string
	internBytes int
}

var decodeStatePool = sync.Pool{New: func() any { return new(decodeState) }}

func (st *decodeState) internString(b []byte) string {
	if len(b) > maxInternStrLen {
		return string(b)
	}
	if s, ok := st.intern[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(st.intern) < maxInternEntries && st.internBytes+len(s) <= maxInternBytes {
		if st.intern == nil {
			st.intern = make(map[string]string, 64)
		}
		st.intern[s] = s
		st.internBytes += len(s)
	}
	return s
}

// inflate decompresses a gzip body into the state's arena and returns
// the decompressed bytes, rejecting bodies past maxBodyBytes and
// trailing garbage after the gzip stream.
func (st *decodeState) inflate(src []byte) ([]byte, error) {
	st.br.Reset(src)
	if st.zr == nil {
		zr, err := gzip.NewReader(&st.br)
		if err != nil {
			return nil, fmt.Errorf("darshan: opening gzip body: %w", err)
		}
		st.zr = zr
	} else if err := st.zr.Reset(&st.br); err != nil {
		return nil, fmt.Errorf("darshan: opening gzip body: %w", err)
	}
	st.zr.Multistream(false)
	buf := st.arena[:0]
	for {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), max(64<<10, min(2*cap(buf)+1, maxBodyBytes+1)))
			copy(grown, buf)
			buf = grown
		}
		n, err := st.zr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		st.arena = buf
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("darshan: corrupted gzip body: %w", err)
		}
		if len(buf) > maxBodyBytes {
			return nil, fmt.Errorf("darshan: body exceeds %d byte limit", maxBodyBytes)
		}
	}
	if st.br.Len() != 0 {
		return nil, errors.New("darshan: trailing garbage after gzip body")
	}
	return buf, nil
}

func putDecodeState(st *decodeState) {
	if cap(st.arena) > maxPooledBuf {
		st.arena = nil
	}
	decodeStatePool.Put(st)
}

// cursor is the incremental body parser: a bounds-checked offset walking
// one flat byte slice. No intermediate readers, no per-field copies.
type cursor struct {
	data    []byte
	off     int
	version uint16
	st      *decodeState
	err     error
}

func (c *cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// need reports whether n more bytes are available, failing the cursor
// with a truncation error otherwise.
func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if len(c.data)-c.off < n {
		c.fail(fmt.Errorf("darshan: truncated body: %w", io.ErrUnexpectedEOF))
		return false
	}
	return true
}

// checkCount validates an element count against both its absolute limit
// and the bytes actually remaining (each element needs at least minLen
// bytes), so hostile counts fail before any proportional allocation.
func (c *cursor) checkCount(n uint32, limit uint32, minLen int, what string) bool {
	if c.err != nil {
		return false
	}
	if n > limit {
		c.fail(fmt.Errorf("darshan: %s count %d exceeds limit", what, n))
		return false
	}
	if int64(len(c.data)-c.off) < int64(n)*int64(minLen) {
		c.fail(fmt.Errorf("darshan: truncated body: %s count %d exceeds remaining bytes", what, n))
		return false
	}
	return true
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := c.u32()
	if c.err != nil {
		return ""
	}
	if n > maxStringLen {
		c.fail(fmt.Errorf("darshan: string length %d exceeds limit", n))
		return ""
	}
	if !c.need(int(n)) {
		return ""
	}
	b := c.data[c.off : c.off+int(n)]
	c.off += int(n)
	if n == 0 {
		return ""
	}
	return c.st.internString(b)
}

// dxtList decodes one DXT event list, reusing the capacity of prev when
// it suffices. An empty list decodes to nil, matching the encoder.
func (c *cursor) dxtList(prev []DXTEvent) []DXTEvent {
	n := c.u32()
	if !c.checkCount(n, maxDXTPerList, dxtEventLen, "DXT list") || n == 0 {
		return nil
	}
	var out []DXTEvent
	if cap(prev) >= int(n) {
		out = prev[:n]
	} else {
		out = make([]DXTEvent, n)
	}
	for i := range out {
		ev := &out[i]
		ev.Start = c.f64()
		ev.End = c.f64()
		ev.Offset = c.i64()
		ev.Length = c.i64()
	}
	if c.err != nil {
		return nil
	}
	return out
}

func (c *cursor) decodeBody(j *Job) {
	j.JobID = c.u64()
	j.UID = c.u32()
	j.User = c.str()
	j.Exe = c.str()
	j.NProcs = int32(c.u32())
	j.Start = c.i64()
	j.End = c.i64()
	j.Runtime = c.f64()

	nMeta := c.u32()
	if !c.checkCount(nMeta, maxMetaPairs, minMetaPairLen, "metadata pair") {
		return
	}
	if nMeta == 0 {
		j.Metadata = nil
	} else {
		if j.Metadata == nil {
			j.Metadata = make(map[string]string, nMeta)
		} else {
			clear(j.Metadata)
		}
		for i := uint32(0); i < nMeta; i++ {
			k := c.str()
			v := c.str()
			if c.err != nil {
				return
			}
			j.Metadata[k] = v
		}
	}

	nRec := c.u32()
	if !c.checkCount(nRec, maxRecords, minRecordLen, "record") {
		return
	}
	if nRec == 0 {
		if j.Records != nil {
			j.Records = j.Records[:0]
		}
		return
	}
	if cap(j.Records) >= int(nRec) {
		j.Records = j.Records[:nRec]
	} else {
		j.Records = make([]FileRecord, nRec)
	}
	for i := range j.Records {
		r := &j.Records[i]
		r.Module = Module(c.u32())
		r.Path = c.str()
		r.Rank = int32(c.u32())
		cc := &r.C
		cc.Opens = c.i64()
		cc.Closes = c.i64()
		cc.Seeks = c.i64()
		cc.Stats = c.i64()
		cc.Reads = c.i64()
		cc.Writes = c.i64()
		cc.BytesRead = c.i64()
		cc.BytesWritten = c.i64()
		cc.OpenStart = c.f64()
		cc.OpenEnd = c.f64()
		cc.ReadStart = c.f64()
		cc.ReadEnd = c.f64()
		cc.WriteStart = c.f64()
		cc.WriteEnd = c.f64()
		cc.CloseStart = c.f64()
		cc.CloseEnd = c.f64()
		if c.version >= 2 {
			r.DXTReads = c.dxtList(r.DXTReads)
			r.DXTWrites = c.dxtList(r.DXTWrites)
		} else {
			r.DXTReads, r.DXTWrites = nil, nil
		}
		if c.err != nil {
			return
		}
	}
}

// DecodeInto parses a binary-log-encoded job from data into j, reusing
// j's Records slice, DXT lists and Metadata map where their capacity
// suffices — the warm ingest path decodes repeatedly into the same Job
// with zero allocations. The decoded job never aliases data (strings
// are copied or interned), so callers may recycle the input buffer
// immediately. On error j's contents are unspecified.
//
// It validates the container framing but not the semantic content;
// callers run Validate separately so that corruption statistics can be
// collected (the paper's step 1).
func DecodeInto(j *Job, data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("darshan: reading magic: %w", io.ErrUnexpectedEOF)
	}
	if [4]byte(data[:4]) != Magic {
		return ErrBadMagic
	}
	if len(data) < headerLen {
		return fmt.Errorf("darshan: reading header: %w", io.ErrUnexpectedEOF)
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	flags := binary.LittleEndian.Uint16(data[6:8])
	if version < minFormatVersion || version > FormatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	st := decodeStatePool.Get().(*decodeState)
	defer putDecodeState(st)
	body := data[headerLen:]
	if flags&flagGzip != 0 {
		var err error
		if body, err = st.inflate(body); err != nil {
			return err
		}
	}
	c := cursor{data: body, version: version, st: st}
	c.decodeBody(j)
	if c.err != nil {
		return c.err
	}
	if c.off != len(body) {
		return fmt.Errorf("darshan: %d trailing bytes after body", len(body)-c.off)
	}
	return nil
}

// UnmarshalBinary parses a binary-log-encoded job.
func UnmarshalBinary(data []byte) (*Job, error) {
	j := new(Job)
	if err := DecodeInto(j, data); err != nil {
		return nil, err
	}
	return j, nil
}

// fileBufPool holds whole-file staging buffers for the io.Reader entry
// points, so repeated file decodes do not reallocate.
var fileBufPool = sync.Pool{New: func() any { return new([]byte) }}

// ReadBinary decodes one job from r. The stream is read fully into a
// pooled buffer and parsed in place.
func ReadBinary(r io.Reader) (*Job, error) {
	bp := fileBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64<<10)
	}
	var rerr error
	for {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), 2*cap(buf))
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
	}
	var j *Job
	if rerr == nil {
		j, rerr = UnmarshalBinary(buf)
	}
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
	} else {
		*bp = nil
	}
	fileBufPool.Put(bp)
	return j, rerr
}

// readBinaryFile decodes one .mosd file through a size-hinted pooled
// buffer — the corpus (engine Decode stage) fast path.
func readBinaryFile(f *os.File) (*Job, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size > maxBodyBytes {
		return nil, fmt.Errorf("darshan: %s: file exceeds %d byte limit", f.Name(), maxBodyBytes)
	}
	bp := fileBufPool.Get().(*[]byte)
	buf := *bp
	if int64(cap(buf)) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	var j *Job
	if _, err = io.ReadFull(f, buf); err == nil {
		j, err = UnmarshalBinary(buf)
	}
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
	} else {
		*bp = nil
	}
	fileBufPool.Put(bp)
	return j, err
}
