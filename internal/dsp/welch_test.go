package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestHannWindow(t *testing.T) {
	w := HannWindow(9)
	if w[0] > 1e-12 || w[8] > 1e-12 {
		t.Fatalf("edges = %g, %g, want 0", w[0], w[8])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Fatalf("center = %g, want 1", w[4])
	}
	if got := HannWindow(1); got[0] != 1 {
		t.Fatal("single-point window")
	}
}

func TestWelchFindsSinusoidInNoise(t *testing.T) {
	const (
		n          = 4096
		sampleRate = 64.0
		f0         = 4.0
	)
	rng := rand.New(rand.NewSource(1))
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = math.Sin(2*math.Pi*f0*float64(i)/sampleRate) + rng.NormFloat64()*0.8
	}
	power, freq := Welch(signal, sampleRate, WelchConfig{SegmentSize: 512, Overlap: 0.5})
	if power == nil {
		t.Fatal("nil spectrum")
	}
	peakK := 1
	for k := 2; k < len(power); k++ {
		if power[k] > power[peakK] {
			peakK = k
		}
	}
	if math.Abs(freq[peakK]-f0) > sampleRate/512 {
		t.Fatalf("peak at %g Hz, want %g", freq[peakK], f0)
	}
}

func TestWelchVarianceReduction(t *testing.T) {
	// White noise: the Welch estimate should fluctuate less across
	// frequency bins than a single periodogram.
	rng := rand.New(rand.NewSource(2))
	n := 4096
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	welchP, _ := Welch(signal, 1, WelchConfig{SegmentSize: 256})
	periodoP, _ := Periodogram(signal, 1)
	cv := func(xs []float64) float64 {
		if len(xs) < 3 {
			return 0
		}
		xs = xs[1 : len(xs)-1] // drop DC and Nyquist
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		return math.Sqrt(v/float64(len(xs))) / mean
	}
	if cv(welchP) >= cv(periodoP) {
		t.Fatalf("Welch CV %.3f not below periodogram CV %.3f", cv(welchP), cv(periodoP))
	}
}

func TestWelchShortSignal(t *testing.T) {
	if p, _ := Welch(make([]float64, 4), 1, WelchConfig{}); p != nil {
		t.Fatal("too-short signal should return nil")
	}
	// Signal shorter than the default segment but usable: falls back.
	sig := make([]float64, 64)
	for i := range sig {
		sig[i] = math.Sin(float64(i))
	}
	p, f := Welch(sig, 1, WelchConfig{SegmentSize: 256})
	if p == nil || len(p) != len(f) {
		t.Fatal("fallback segment sizing failed")
	}
}

func TestWelchConfigDefaults(t *testing.T) {
	c := WelchConfig{SegmentSize: 300, Overlap: 2}.withDefaults()
	if c.SegmentSize != 256 {
		t.Fatalf("segment rounded to %d", c.SegmentSize)
	}
	if c.Overlap != 0.95 {
		t.Fatalf("overlap clamped to %g", c.Overlap)
	}
}

func TestSpectrogramShape(t *testing.T) {
	const n = 2048
	signal := make([]float64, n)
	// Periodic activity only in the second half.
	for i := n / 2; i < n; i++ {
		signal[i] = math.Sin(2 * math.Pi * 0.1 * float64(i))
	}
	spec, times, freq := Spectrogram(signal, 1, WelchConfig{SegmentSize: 256, Overlap: 0.5})
	if len(spec) == 0 || len(spec[0]) != len(freq) || len(times) != len(spec) {
		t.Fatalf("shape: %d rows, %d cols, %d times, %d freqs", len(spec), len(spec[0]), len(times), len(freq))
	}
	// Energy at 0.1 Hz should be concentrated in late windows.
	k := 0
	for i, f := range freq {
		if math.Abs(f-0.1) < math.Abs(freq[k]-0.1) {
			k = i
		}
	}
	early, late := spec[0][k], spec[len(spec)-1][k]
	if late <= early*10 {
		t.Fatalf("late energy %g not dominant over early %g", late, early)
	}
	if s, _, _ := Spectrogram(make([]float64, 4), 1, WelchConfig{}); s != nil {
		t.Fatal("short signal spectrogram should be nil")
	}
}
