package telemetry

import (
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/cluster"
)

// RegisterClusterMetrics exports the clustering engine's package-wide cost
// counters (see cluster.TotalStats) on the registry as mosaic_cluster_*
// counters. The counters are delta-synced by an OnCollect hook right
// before each exposition, so the clustering hot path never touches the
// registry — it only bumps its own atomics. Idempotent per registry.
func RegisterClusterMetrics(reg *Registry) {
	runs := reg.Counter("mosaic_cluster_runs_total",
		"Mean Shift invocations.", nil)
	seeds := reg.Counter("mosaic_cluster_seeds_total",
		"Seed trajectories shifted across all Mean Shift runs.", nil)
	iters := reg.Counter("mosaic_cluster_shift_iterations_total",
		"Kernel-mean evaluations across all Mean Shift runs.", nil)
	cells := reg.Counter("mosaic_cluster_grid_cells_total",
		"Occupied spatial-grid cells built across accelerated runs.", nil)
	early := reg.Counter("mosaic_cluster_early_stops_total",
		"Seeds snapped onto an already-converged mode (basin memoization hits).", nil)
	par := reg.Counter("mosaic_cluster_parallel_runs_total",
		"Mean Shift runs that shifted seeds on multiple goroutines.", nil)

	var mu sync.Mutex
	var last cluster.Totals
	reg.OnCollect("cluster", func() {
		mu.Lock()
		defer mu.Unlock()
		t := cluster.TotalStats()
		runs.Add(t.Runs - last.Runs)
		seeds.Add(t.Seeds - last.Seeds)
		iters.Add(t.Iterations - last.Iterations)
		cells.Add(t.GridCells - last.GridCells)
		early.Add(t.EarlyStops - last.EarlyStops)
		par.Add(t.ParallelRuns - last.ParallelRuns)
		last = t
	})
}
