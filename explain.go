package mosaic

import (
	"io"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/explain"
)

// Decision provenance, re-exported. The explain subsystem records, for
// every category of the closed taxonomy, the rule evaluations that
// assigned or rejected it: the preprocessing funnel (raw → clipped →
// merged operation counts and the gap thresholds used), per-chunk
// volumes with every 2× dominance comparison actually evaluated, every
// Mean Shift cluster with its size/centroid/spread and acceptance or
// rejection reason, period-magnitude bucketing, busy-time ratios, and
// the metadata spike/density statistics against their cutoffs.
//
// Collection is strictly opt-in: Categorize never pays for it, and
// CategorizeExplained is guaranteed to assign exactly the same labels.
type (
	// Explanation is the decision-provenance record of one categorization.
	Explanation = explain.Explanation
	// Evidence is one recorded rule evaluation (rule, operands,
	// threshold, outcome, near-miss flag).
	Evidence = explain.Evidence
	// ExplainOptions tunes evidence collection (near-miss margin,
	// per-direction segment-feature cap).
	ExplainOptions = explain.Options
)

// Near-miss margin and segment-cap defaults used when ExplainOptions
// fields are zero.
const (
	DefaultExplainMargin      = explain.DefaultMargin
	DefaultExplainMaxSegments = explain.DefaultMaxSegments
)

// CategorizeExplained runs the full MOSAIC detection chain like
// Categorize and additionally returns the decision-provenance record:
// one Evidence entry per rule evaluation, including near-misses within
// opts.Margin. Labels are identical to Categorize's for the same job
// and config — evidence is collected on the side, never consulted by
// the detectors.
func CategorizeExplained(j *Job, cfg Config, opts ExplainOptions) (*Result, *Explanation, error) {
	return core.CategorizeExplained(j, cfg, opts)
}

// RenderExplanation writes the human-readable rule trace of an
// explanation: per-direction preprocessing funnel, chunk dominance
// checks, periodicity clusters with verdicts, metadata rates, and every
// evidence line with its pass/fail outcome and near-miss marker. The
// output is deterministic for a given explanation, suitable for golden
// files.
func RenderExplanation(w io.Writer, e *Explanation) { explain.Render(w, e) }
