package telemetry

import (
	"strings"
	"testing"
)

func TestExportMatchesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_requests_total", "Requests.", Labels{"route": "/a"}).Add(3)
	reg.Gauge("m_queue_depth", "Depth.", nil).Set(7)
	h := reg.Histogram("m_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	fams := reg.Export()
	if len(fams) != 3 {
		t.Fatalf("exported %d families, want 3", len(fams))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if c := byName["m_requests_total"]; c.Kind != "counter" || c.Series[0].Value != 3 {
		t.Fatalf("counter export: %+v", c)
	}
	if g := byName["m_queue_depth"]; g.Kind != "gauge" || g.Series[0].Value != 7 {
		t.Fatalf("gauge export: %+v", g)
	}
	hs := byName["m_latency_seconds"]
	if hs.Kind != "histogram" {
		t.Fatalf("histogram export: %+v", hs)
	}
	s := hs.Series[0]
	if len(s.Bounds) != 2 || len(s.Counts) != 3 || s.Count != 3 {
		t.Fatalf("histogram shape: %+v", s)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("histogram counts: %+v", s.Counts)
	}
}

func TestExportRunsCollectors(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("m_lazy", "", nil)
	reg.OnCollect("lazy", func() { g.Set(42) })
	fams := reg.Export()
	for _, f := range fams {
		if f.Name == "m_lazy" && f.Series[0].Value == 42 {
			return
		}
	}
	t.Fatal("OnCollect hook did not run before export")
}

func TestMergeCountersAndGaugeRules(t *testing.T) {
	a := []FamilySnapshot{
		{Name: "m_total", Kind: "counter", Series: []SeriesSnapshot{{Value: 5}}},
		{Name: "m_depth", Kind: "gauge", Series: []SeriesSnapshot{{Value: 3}}},
		{Name: "m_max", Kind: "gauge", Series: []SeriesSnapshot{{Value: 2}}},
		{Name: "m_min", Kind: "gauge", Series: []SeriesSnapshot{{Value: 2}}},
	}
	b := []FamilySnapshot{
		{Name: "m_total", Kind: "counter", Series: []SeriesSnapshot{{Value: 7}}},
		{Name: "m_depth", Kind: "gauge", Series: []SeriesSnapshot{{Value: 4}}},
		{Name: "m_max", Kind: "gauge", Series: []SeriesSnapshot{{Value: 9}}},
		{Name: "m_min", Kind: "gauge", Series: []SeriesSnapshot{{Value: 9}}},
	}
	merged := MergeFamilies(map[string][]FamilySnapshot{"a": a, "b": b},
		map[string]GaugeMergeRule{"m_max": MergeMax, "m_min": MergeMin})

	want := map[string]float64{"m_total": 12, "m_depth": 7, "m_max": 9, "m_min": 2}
	for _, f := range merged {
		if f.Series[0].Value != want[f.Name] {
			t.Errorf("%s merged to %v, want %v", f.Name, f.Series[0].Value, want[f.Name])
		}
	}
}

func TestMergeKeepsLabelSeriesSeparate(t *testing.T) {
	a := []FamilySnapshot{{Name: "m", Kind: "counter", Series: []SeriesSnapshot{
		{Labels: Labels{"route": "/x"}, Value: 1},
		{Labels: Labels{"route": "/y"}, Value: 2},
	}}}
	b := []FamilySnapshot{{Name: "m", Kind: "counter", Series: []SeriesSnapshot{
		{Labels: Labels{"route": "/x"}, Value: 10},
	}}}
	merged := MergeFamilies(map[string][]FamilySnapshot{"a": a, "b": b}, nil)
	if len(merged) != 1 || len(merged[0].Series) != 2 {
		t.Fatalf("merged shape: %+v", merged)
	}
	got := map[string]float64{}
	for _, s := range merged[0].Series {
		got[s.Labels["route"]] = s.Value
	}
	if got["/x"] != 11 || got["/y"] != 2 {
		t.Fatalf("per-label merge: %v", got)
	}
}

// TestMergeHistogramsGolden pins the federated exposition for two nodes
// with identical bucket layouts: counts add bucket-by-bucket and the
// rendered text is byte-stable.
func TestMergeHistogramsGolden(t *testing.T) {
	mk := func(counts []int64, sum float64, count int64) []FamilySnapshot {
		return []FamilySnapshot{{
			Name: "m_seconds", Help: "Latency.", Kind: "histogram",
			Series: []SeriesSnapshot{{
				Bounds: []float64{0.1, 1},
				Counts: counts,
				Sum:    sum,
				Count:  count,
			}},
		}}
	}
	merged := MergeFamilies(map[string][]FamilySnapshot{
		"a": mk([]int64{1, 2, 3}, 10.5, 6),
		"b": mk([]int64{4, 0, 1}, 2, 5),
	}, nil)

	var sb strings.Builder
	if err := WriteFamilies(&sb, merged); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP m_seconds Latency.
# TYPE m_seconds histogram
m_seconds_bucket{le="0.1"} 5
m_seconds_bucket{le="1"} 7
m_seconds_bucket{le="+Inf"} 11
m_seconds_sum 12.5
m_seconds_count 11
`
	if sb.String() != golden {
		t.Fatalf("federated exposition drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

// TestMergeHistogramsMismatchedBounds pins the union-of-bounds remap:
// nodes running different build generations may expose different bucket
// layouts for the same metric, and the merge must stay exact in the
// cumulative sense instead of panicking.
func TestMergeHistogramsMismatchedBounds(t *testing.T) {
	a := []FamilySnapshot{{Name: "m_seconds", Kind: "histogram", Series: []SeriesSnapshot{{
		Bounds: []float64{0.1, 1},
		Counts: []int64{1, 2, 3}, // ≤0.1: 1, ≤1: 3, total 6
		Sum:    5,
		Count:  6,
	}}}}
	b := []FamilySnapshot{{Name: "m_seconds", Kind: "histogram", Series: []SeriesSnapshot{{
		Bounds: []float64{0.5, 1, 5},
		Counts: []int64{10, 1, 1, 2}, // ≤0.5: 10, ≤1: 11, ≤5: 12, total 14
		Sum:    20,
		Count:  14,
	}}}}
	merged := MergeFamilies(map[string][]FamilySnapshot{"a": a, "b": b}, nil)
	s := merged[0].Series[0]

	wantBounds := []float64{0.1, 0.5, 1, 5}
	if len(s.Bounds) != len(wantBounds) {
		t.Fatalf("union bounds = %v", s.Bounds)
	}
	for i := range wantBounds {
		if s.Bounds[i] != wantBounds[i] {
			t.Fatalf("union bounds = %v, want %v", s.Bounds, wantBounds)
		}
	}
	// Non-cumulative buckets after remap: (0.1]=1, (0.5]=10, (1]=2+1,
	// (5]=1, +Inf=3+2.
	wantCounts := []int64{1, 10, 3, 1, 5}
	for i := range wantCounts {
		if s.Counts[i] != wantCounts[i] {
			t.Fatalf("remapped counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Sum != 25 || s.Count != 20 {
		t.Fatalf("sum/count = %v/%v", s.Sum, s.Count)
	}
}

func TestMergeMalformedHistogramDropped(t *testing.T) {
	good := []FamilySnapshot{{Name: "m", Kind: "histogram", Series: []SeriesSnapshot{{
		Bounds: []float64{1}, Counts: []int64{2, 3}, Sum: 4, Count: 5,
	}}}}
	// Counts length disagrees with bounds — a corrupt or truncated
	// shipment must not panic or poison the merge.
	bad := []FamilySnapshot{{Name: "m", Kind: "histogram", Series: []SeriesSnapshot{{
		Bounds: []float64{1, 2, 3}, Counts: []int64{1}, Sum: 99, Count: 99,
	}}}}
	merged := MergeFamilies(map[string][]FamilySnapshot{"a": good, "b": bad}, nil)
	s := merged[0].Series[0]
	if s.Count != 5 || s.Sum != 4 {
		t.Fatalf("malformed series leaked into merge: %+v", s)
	}

	// Same, with the malformed node sorting first.
	merged = MergeFamilies(map[string][]FamilySnapshot{"z": good, "a": bad}, nil)
	s = merged[0].Series[0]
	if s.Count != 5 || s.Sum != 4 {
		t.Fatalf("malformed-first merge: %+v", s)
	}
}

func TestLabelFamiliesAddsNodeLabel(t *testing.T) {
	a := []FamilySnapshot{{Name: "m", Kind: "counter", Series: []SeriesSnapshot{
		{Labels: Labels{"route": "/x"}, Value: 1},
	}}}
	b := []FamilySnapshot{{Name: "m", Kind: "counter", Series: []SeriesSnapshot{
		{Labels: Labels{"route": "/x"}, Value: 2},
	}}}
	out := LabelFamilies(map[string][]FamilySnapshot{"node-a": a, "node-b": b}, "node")
	if len(out) != 1 || len(out[0].Series) != 2 {
		t.Fatalf("labeled shape: %+v", out)
	}
	seen := map[string]float64{}
	for _, s := range out[0].Series {
		if s.Labels["route"] != "/x" {
			t.Fatalf("original label lost: %+v", s)
		}
		seen[s.Labels["node"]] = s.Value
	}
	if seen["node-a"] != 1 || seen["node-b"] != 2 {
		t.Fatalf("node series: %v", seen)
	}
}

func TestMergeRoundTripThroughExport(t *testing.T) {
	// End-to-end: two live registries exported, merged, rendered.
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("m_ingested_total", "", Labels{"status": "accepted"}).Add(10)
	r2.Counter("m_ingested_total", "", Labels{"status": "accepted"}).Add(5)
	r1.Histogram("m_lat", "", []float64{1}, nil).Observe(0.5)
	r2.Histogram("m_lat", "", []float64{1, 2}, nil).Observe(1.5)

	merged := MergeFamilies(map[string][]FamilySnapshot{
		"a": r1.Export(), "b": r2.Export(),
	}, nil)
	var sb strings.Builder
	if err := WriteFamilies(&sb, merged); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `m_ingested_total{status="accepted"} 15`) {
		t.Fatalf("counter not summed:\n%s", out)
	}
	if !strings.Contains(out, `m_lat_bucket{le="+Inf"} 2`) {
		t.Fatalf("histogram not merged:\n%s", out)
	}
}
