package index

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Query grammar (case-insensitive keywords, left-associative):
//
//	expr   := orExpr
//	orExpr := andExpr ( "OR" andExpr )*
//	andExpr:= unary ( ("AND" | "NOT")? unary )*      // juxtaposition = AND;
//	                                                 // "a NOT b" = a AND (NOT b)
//	unary  := "NOT" unary | "(" expr ")" | term
//	term   := category name or substring of one
//
// A term expands to the union of all canonical categories whose name
// contains it: "periodic_minute" matches read_periodic_minute and
// write_periodic_minute; "insignificant_load" matches
// metadata_insignificant_load. NOT is evaluated against the universe
// of indexed traces.

// node is one parsed query expression. The same AST feeds two
// evaluators: compile() lowers it to a posting-list plan for Index,
// and Oracle walks it directly over hash-map sets.
type node interface{ isNode() }

type termNode struct{ cats []category.Category }

type andNode struct{ l, r node }

type orNode struct{ l, r node }

type notNode struct{ n node }

func (termNode) isNode() {}
func (andNode) isNode()  {}
func (orNode) isNode()   {}
func (notNode) isNode()  {}

// ParseError describes a malformed query.
type ParseError struct {
	Query string
	Pos   int // token index
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("index: parsing %q: %s (near token %d)", e.Query, e.Msg, e.Pos)
}

type parser struct {
	query  string
	tokens []string
	pos    int
	depth  int
}

// maxParseDepth caps expression nesting. The parser is recursive, and
// in cluster mode queries arrive over the peer RPC as well as the
// public API — an adversarial "((((…" must produce a parse error, not
// a stack overflow.
const maxParseDepth = 512

func tokenize(q string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range q {
		switch r {
		case '(', ')':
			flush()
			out = append(out, string(r))
		case ' ', '\t', '\n', '\r', ',':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.tokens) {
		return "", false
	}
	return p.tokens[p.pos], true
}

func (p *parser) fail(msg string) error {
	return &ParseError{Query: p.query, Pos: p.pos, Msg: msg}
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.peek()
		if !ok || !strings.EqualFold(tok, "OR") {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{l: left, r: right}
	}
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.peek()
		if !ok || tok == ")" || strings.EqualFold(tok, "OR") {
			return left, nil
		}
		negate := false
		switch {
		case strings.EqualFold(tok, "AND"):
			p.pos++
		case strings.EqualFold(tok, "NOT"):
			// "a NOT b" is shorthand for "a AND NOT b".
			p.pos++
			negate = true
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if negate {
			right = notNode{n: right}
		}
		left = andNode{l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	tok, ok := p.peek()
	if !ok {
		return nil, p.fail("unexpected end of query")
	}
	// NOT and "(" both recurse; everything else is flat.
	if strings.EqualFold(tok, "NOT") || tok == "(" {
		p.depth++
		defer func() { p.depth-- }()
		if p.depth > maxParseDepth {
			return nil, p.fail("query too deeply nested")
		}
	}
	switch {
	case strings.EqualFold(tok, "NOT"):
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{n: inner}, nil
	case tok == "(":
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		closing, ok := p.peek()
		if !ok || closing != ")" {
			return nil, p.fail("missing closing parenthesis")
		}
		p.pos++
		return inner, nil
	case tok == ")":
		return nil, p.fail("unexpected closing parenthesis")
	case strings.EqualFold(tok, "AND") || strings.EqualFold(tok, "OR"):
		return nil, p.fail("operator needs a left operand")
	default:
		p.pos++
		cats := expandTerm(tok)
		if len(cats) == 0 {
			return nil, p.fail(fmt.Sprintf("term %q matches no category", tok))
		}
		return termNode{cats: cats}, nil
	}
}

// expandTerm resolves a query term against the closed category set:
// an exact name wins; otherwise every category containing the term as
// a substring matches.
func expandTerm(term string) []category.Category {
	t := strings.ToLower(term)
	all := category.All()
	for _, c := range all {
		if string(c) == t {
			return []category.Category{c}
		}
	}
	var out []category.Category
	for _, c := range all {
		if strings.Contains(string(c), t) {
			out = append(out, c)
		}
	}
	return out
}

// Parse validates a query, returning its parse error if malformed.
func Parse(q string) error {
	_, err := parseQuery(q)
	return err
}

func parseQuery(q string) (node, error) {
	p := &parser{query: q, tokens: tokenize(q)}
	if len(p.tokens) == 0 {
		return nil, &ParseError{Query: q, Msg: "empty query"}
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.tokens) {
		return nil, p.fail("trailing tokens")
	}
	return root, nil
}

// Query evaluates a boolean category expression, returning matching
// trace IDs in lexicographic order.
func (ix *Index) Query(q string) ([]store.TraceID, error) {
	ids, err := ix.QueryIDs(q)
	if err != nil {
		return nil, err
	}
	out := make([]store.TraceID, len(ids))
	for i, id := range ids {
		out[i] = store.TraceID(id)
	}
	return out, nil
}

// QueryIDs is Query returning plain strings — the serving and
// scatter-gather shape, skipping one conversion copy. The plan runs
// against a single snapshot: ordinal set algebra over the generation,
// then a latest-wins overlay of the unfolded delta, and strings only
// materialize into the final result slice.
func (ix *Index) QueryIDs(q string) ([]string, error) {
	plan, err := compileQuery(q)
	if err != nil {
		return nil, err
	}
	s := ix.snap.Load()
	sc := getScratch()
	defer putScratch(sc)

	res := plan.eval(s.gen, sc)
	if res.neg {
		pos := evalSet{list: complementInto(sc.get(), res.list, uint32(s.gen.n())), owned: true}
		sc.release(res)
		res = pos
	}
	base := res.list

	if len(s.ops) == 0 {
		out := make([]string, len(base))
		for i, ord := range base {
			out[i] = string(s.gen.ids[ord])
		}
		sc.release(res)
		return out, nil
	}

	// Delta overlay: ordinals the delta overrides leave the base
	// result; delta traces whose latest category set satisfies the
	// expression merge back in by ID.
	seen := sc.seenMap()
	overridden := sc.get()
	matches := sc.ids[:0]
	for i := len(s.ops) - 1; i >= 0; i-- {
		op := s.ops[i]
		if _, dup := seen[op.id]; dup {
			continue
		}
		seen[op.id] = struct{}{}
		if ord, ok := s.gen.ordinalOf(op.id); ok {
			overridden = append(overridden, ord)
		}
		if op.cats != nil && plan.matches(op.cats) {
			matches = append(matches, string(op.id))
		}
	}
	sc.ids = matches
	slices.Sort(overridden)
	slices.Sort(matches)

	out := make([]string, 0, len(base)+len(matches))
	oi, mi := 0, 0
	for _, ord := range base {
		for oi < len(overridden) && overridden[oi] < ord {
			oi++
		}
		if oi < len(overridden) && overridden[oi] == ord {
			continue
		}
		id := string(s.gen.ids[ord])
		for mi < len(matches) && matches[mi] < id {
			out = append(out, matches[mi])
			mi++
		}
		out = append(out, id)
	}
	out = append(out, matches[mi:]...)
	sc.release(res)
	sc.put(overridden)
	return out, nil
}

// MergeSorted merges sorted trace-ID lists into one sorted,
// deduplicated list — the scatter-gather reduce step, where each
// shard's Query answer is already ordered and a replicated trace
// appears in more than one shard's answer. Unsorted inputs still
// produce a correct (sorted, deduplicated) union; sorted inputs merge
// in linear time for small K and O(total·log K) through a loser tree
// above mergeLinearMaxK lists.
func MergeSorted(lists ...[]string) []string {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	return MergeSortedInto(make([]string, 0, total), lists...)
}

// mergeLinearMaxK is the list count up to which a linear head scan
// beats the loser tree's bookkeeping.
const mergeLinearMaxK = 8

// MergeSortedInto is MergeSorted appending into dst (reset to
// dst[:0]), so callers on the fan-in hot path can pool the output
// slice.
func MergeSortedInto(dst []string, lists ...[]string) []string {
	dst = dst[:0]
	if len(lists) <= mergeLinearMaxK {
		dst = mergeLinear(dst, lists)
	} else {
		dst = mergeLoserTree(dst, lists)
	}
	if !sort.StringsAreSorted(dst) {
		// An unsorted input slipped through the merge; fall back.
		sort.Strings(dst)
		dst = dedupSorted(dst)
	}
	return dst
}

// mergeLinear repeatedly takes the smallest head by scanning all K
// lists — optimal when K is single digits.
func mergeLinear(dst []string, lists [][]string) []string {
	var headsArr [mergeLinearMaxK]int
	heads := headsArr[:len(lists)]
	for {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || l[heads[i]] < lists[best][heads[best]] {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		id := lists[best][heads[best]]
		heads[best]++
		if n := len(dst); n == 0 || dst[n-1] != id {
			dst = append(dst, id)
		}
	}
}

// loserTree is a tournament tree for K-way merging: node[1..k-1] hold
// the losers of each internal match, node[0] the overall winner, and
// replaying one leaf-to-root path (log K comparisons) replaces the
// winner after each pop. k is padded to a power of two with exhausted
// virtual lists.
type loserTree struct {
	node  []int32
	heads []int
	lists [][]string
}

var loserTreePool = sync.Pool{New: func() any { return &loserTree{} }}

// less reports whether leaf a's head sorts before leaf b's; exhausted
// leaves lose to everything.
func (t *loserTree) less(a, b int32) bool {
	la, lb := t.lists[a], t.lists[b]
	if t.heads[a] >= len(la) {
		return false
	}
	if t.heads[b] >= len(lb) {
		return true
	}
	sa, sb := la[t.heads[a]], lb[t.heads[b]]
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// build plays the initial tournament under node n, recording losers
// and returning the winning leaf.
func (t *loserTree) build(n int32) int32 {
	k := int32(len(t.lists))
	if n >= k {
		return n - k
	}
	l, r := t.build(2*n), t.build(2*n+1)
	if t.less(l, r) {
		t.node[n] = r
		return l
	}
	t.node[n] = l
	return r
}

func mergeLoserTree(dst []string, lists [][]string) []string {
	k := 1
	for k < len(lists) {
		k <<= 1
	}
	t := loserTreePool.Get().(*loserTree)
	defer func() {
		clear(t.lists) // don't pin caller slices in the pool
		loserTreePool.Put(t)
	}()
	if cap(t.lists) < k {
		t.node = make([]int32, k)
		t.heads = make([]int, k)
		t.lists = make([][]string, k)
	}
	t.node, t.heads, t.lists = t.node[:k], t.heads[:k], t.lists[:k]
	clear(t.lists)
	clear(t.heads[:k])
	copy(t.lists, lists)

	t.node[0] = t.build(1)
	for {
		w := t.node[0]
		if t.heads[w] >= len(t.lists[w]) {
			return dst // winner exhausted ⇒ every list is
		}
		id := t.lists[w][t.heads[w]]
		t.heads[w]++
		if n := len(dst); n == 0 || dst[n-1] != id {
			dst = append(dst, id)
		}
		winner := w
		for parent := (w + int32(k)) / 2; parent >= 1; parent /= 2 {
			if t.less(t.node[parent], winner) {
				winner, t.node[parent] = t.node[parent], winner
			}
		}
		t.node[0] = winner
	}
}

func dedupSorted(ids []string) []string {
	out := ids[:0]
	for _, id := range ids {
		if n := len(out); n == 0 || out[n-1] != id {
			out = append(out, id)
		}
	}
	return out
}
