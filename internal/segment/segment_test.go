package segment

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

func opsEvery(period, dur float64, count int, bytes int64) []interval.Interval {
	var ops []interval.Interval
	for i := 0; i < count; i++ {
		s := period/2 + float64(i)*period
		ops = append(ops, interval.Interval{Start: s, End: s + dur, Bytes: bytes})
	}
	return ops
}

func TestSplit(t *testing.T) {
	ops := []interval.Interval{
		{Start: 10, End: 20, Bytes: 100},
		{Start: 50, End: 55, Bytes: 200},
		{Start: 90, End: 95, Bytes: 300},
	}
	segs := Split(ops, 100)
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	// Segment duration = start-to-start of the next op.
	if segs[0].Duration != 40 || segs[1].Duration != 40 {
		t.Fatalf("durations = %v, %v", segs[0].Duration, segs[1].Duration)
	}
	// The last segment closes at end of run.
	if segs[2].Duration != 10 {
		t.Fatalf("last duration = %v", segs[2].Duration)
	}
	if segs[1].Op.Bytes != 200 {
		t.Fatal("op not carried into segment")
	}
	if got := Split(nil, 100); len(got) != 0 {
		t.Fatal("empty split")
	}
}

func TestSplitClampsNegativeDurations(t *testing.T) {
	// Op starting after runtime end must not yield negative duration.
	segs := Split([]interval.Interval{{Start: 120, End: 130}}, 100)
	if segs[0].Duration != 0 {
		t.Fatalf("duration = %g, want 0", segs[0].Duration)
	}
}

func TestFeaturesScaling(t *testing.T) {
	segs := []Segment{
		{Op: interval.Interval{Bytes: 0}, Duration: 50},
		{Op: interval.Interval{Bytes: 1 << 30}, Duration: 100},
	}
	pts := Features(segs, FeatureConfig{Runtime: 1000, VolumeLogScale: 64})
	if pts[0][0] != 0.05 || pts[1][0] != 0.1 {
		t.Fatalf("duration features = %v", pts)
	}
	if pts[0][1] != 0 {
		t.Fatalf("zero-byte feature = %g", pts[0][1])
	}
	want := math.Log2(1+float64(1<<30)) / 64
	if math.Abs(pts[1][1]-want) > 1e-12 {
		t.Fatalf("volume feature = %g, want %g", pts[1][1], want)
	}
	// Defaults guard against zero config.
	pts = Features(segs, FeatureConfig{})
	if math.IsNaN(pts[0][0]) || math.IsInf(pts[0][0], 0) {
		t.Fatal("zero config produced non-finite features")
	}
}

func TestDetectCheckpointTrain(t *testing.T) {
	ops := opsEvery(300, 15, 12, 1<<30) // runtime ~3600
	segs := Split(ops, 3700)
	groups, err := Detect(segs, DefaultDetectConfig(3700))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	g := groups[0]
	if g.Count < 11 {
		t.Fatalf("group size = %d, want >= 11", g.Count)
	}
	if math.Abs(g.Period-300)/300 > 0.1 {
		t.Fatalf("period = %g, want ~300", g.Period)
	}
	if g.Magnitude != category.MagMinute {
		t.Fatalf("magnitude = %v", g.Magnitude)
	}
	if g.BusyHigh() {
		t.Fatalf("busy ratio %g should be low", g.BusyRatio)
	}
	if math.Abs(g.MeanBytes-float64(1<<30)) > 1 {
		t.Fatalf("mean bytes = %g", g.MeanBytes)
	}
}

func TestDetectTwoInterleavedTrains(t *testing.T) {
	// Checkpoints every 300s of 1 GiB and input reads every 700s of
	// 64 GiB: the paper's real-life case of several periodic operations
	// in one application.
	ops := append(opsEvery(300, 10, 24, 1<<30), opsEvery(701, 10, 10, 64<<30)...)
	interval.SortByStart(ops)
	segs := Split(ops, 7300)
	groups, err := Detect(segs, DefaultDetectConfig(7300))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("groups = %d, want >= 2 (two interleaved periodic operations)", len(groups))
	}
}

func TestDetectRejectsAperiodic(t *testing.T) {
	ops := []interval.Interval{
		{Start: 10, End: 100, Bytes: 1 << 30},
		{Start: 3500, End: 3590, Bytes: 8 << 30},
	}
	segs := Split(ops, 3600)
	groups, err := Detect(segs, DefaultDetectConfig(3600))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("aperiodic trace produced groups: %+v", groups)
	}
}

func TestDetectMinCoverage(t *testing.T) {
	// Two near-identical ops at the very start of a long job: without
	// the coverage guard they would form a bogus periodic group.
	ops := []interval.Interval{
		{Start: 10, End: 20, Bytes: 1 << 30},
		{Start: 110, End: 120, Bytes: 1 << 30},
		{Start: 215, End: 230, Bytes: 1 << 28},
	}
	segs := Split(ops, 86400)
	groups, err := Detect(segs, DefaultDetectConfig(86400))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("low-coverage group not suppressed: %+v", groups)
	}
}

func TestDetectTooFewSegments(t *testing.T) {
	segs := Split([]interval.Interval{{Start: 1, End: 2, Bytes: 5}}, 10)
	groups, err := Detect(segs, DefaultDetectConfig(10))
	if err != nil || groups != nil {
		t.Fatalf("single segment: groups=%v err=%v", groups, err)
	}
}

func TestDetectJitterTolerance(t *testing.T) {
	// 5% period jitter and 10% volume jitter must still group.
	rng := rand.New(rand.NewSource(8))
	var ops []interval.Interval
	for i := 0; i < 15; i++ {
		s := float64(i)*600 + 300 + (rng.Float64()*2-1)*30
		bytes := int64(float64(2<<30) * (0.9 + rng.Float64()*0.2))
		ops = append(ops, interval.Interval{Start: s, End: s + 20, Bytes: bytes})
	}
	segs := Split(ops, 9300)
	groups, err := Detect(segs, DefaultDetectConfig(9300))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("jittered train: groups = %d, want 1", len(groups))
	}
	if groups[0].Count < 13 {
		t.Fatalf("group lost members: %d", groups[0].Count)
	}
}

func TestBusyHighDetection(t *testing.T) {
	// Phases occupying 40% of each period: high busy time.
	ops := opsEvery(100, 40, 20, 1<<30)
	segs := Split(ops, 2100)
	groups, err := Detect(segs, DefaultDetectConfig(2100))
	if err != nil || len(groups) != 1 {
		t.Fatalf("groups=%v err=%v", groups, err)
	}
	if !groups[0].BusyHigh() {
		t.Fatalf("busy ratio %g should be high", groups[0].BusyRatio)
	}
}

func TestCategories(t *testing.T) {
	groups := []Group{
		{Period: 300, Magnitude: category.MagMinute, BusyRatio: 0.05, Count: 10},
		{Period: 5000, Magnitude: category.MagHour, BusyRatio: 0.4, Count: 5},
	}
	s := Categories(category.DirWrite, groups)
	for _, want := range []category.Category{
		"write_periodic", "write_periodic_minute", "write_periodic_hour",
		"write_periodic_low_busy_time", "write_periodic_high_busy_time",
	} {
		if !s.Has(want) {
			t.Errorf("missing %q in %v", want, s)
		}
	}
	if len(Categories(category.DirRead, nil)) != 0 {
		t.Fatal("no groups should give empty set")
	}
}
