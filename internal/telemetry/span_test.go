package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	rec := NewSpanRecorder(0)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	rec.Record(Span{Name: "a.mosd", Cat: "decode", Start: base, Dur: 2 * time.Millisecond})
	rec.Record(Span{Name: "b.mosd", Cat: "decode", Start: base.Add(time.Millisecond), Dur: 3 * time.Millisecond})
	rec.Record(Span{Name: "u/app", Cat: "categorize", Start: base.Add(5 * time.Millisecond), Dur: 10 * time.Millisecond})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Round-trip: the emitted document must decode into the same model.
	var doc ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var complete, meta []TraceEvent
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete = append(complete, e)
		case "M":
			meta = append(meta, e)
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if len(complete) != 3 {
		t.Fatalf("complete events = %d, want 3", len(complete))
	}
	if len(meta) == 0 {
		t.Fatal("no thread_name metadata events: Perfetto lanes would be unnamed")
	}

	// ts is microseconds relative to the earliest span.
	if complete[0].Ts != 0 {
		t.Fatalf("first span ts = %v, want 0 (epoch-relative)", complete[0].Ts)
	}
	if complete[1].Ts != 1000 {
		t.Fatalf("second span ts = %v µs, want 1000", complete[1].Ts)
	}
	if complete[2].Dur != 10000 {
		t.Fatalf("third span dur = %v µs, want 10000", complete[2].Dur)
	}
	// Spans of different stages land in different lanes.
	if complete[0].Tid == complete[2].Tid {
		t.Fatal("decode and categorize spans share a tid lane")
	}
	// Same-stage spans share a lane.
	if complete[0].Tid != complete[1].Tid {
		t.Fatal("two decode spans got different tid lanes")
	}
}

func TestSpanRecorderLimit(t *testing.T) {
	rec := NewSpanRecorder(2)
	now := time.Now()
	for i := 0; i < 5; i++ {
		rec.Record(Span{Name: "x", Cat: "decode", Start: now, Dur: time.Millisecond})
	}
	if got := rec.Len(); got != 2 {
		t.Fatalf("retained spans = %d, want 2", got)
	}
	if got := rec.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestSlowLogKeepsKSlowest(t *testing.T) {
	l := NewSlowLog(3)
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8}
	for i, d := range durs {
		l.Observe("decode", string(rune('a'+i)), d*time.Millisecond)
	}
	got := l.Slowest("decode")
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	want := []time.Duration{9, 8, 7}
	for i, e := range got {
		if e.Dur != want[i]*time.Millisecond {
			t.Fatalf("slowest[%d] = %v, want %v", i, e.Dur, want[i]*time.Millisecond)
		}
	}
	if l.Slowest("categorize") != nil {
		t.Fatal("unknown stage should return nil")
	}
	snap := l.Snapshot()
	if len(snap["decode"]) != 3 {
		t.Fatalf("snapshot decode = %d entries, want 3", len(snap["decode"]))
	}
}
