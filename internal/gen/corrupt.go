package gen

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Corruption injection: mutates a valid trace into one the validation step
// must evict, reproducing the damaged 32% of the Blue Waters corpus
// (Figure 3). The canonical paper example — "a deallocation happens before
// the end of the application's execution" — is covered by the
// early-deallocation kind.

// CorruptKinds is the number of distinct corruption mutations.
const CorruptKinds = 5

// Corrupt applies one randomly selected corruption to the job in place and
// returns the mutation applied (index in [0, CorruptKinds)). Traces
// emitted to JSON stay encodable: no NaN/Inf is introduced.
func Corrupt(j *darshan.Job, rng *rand.Rand) int {
	kind := rng.Intn(CorruptKinds)
	switch kind {
	case 0: // bad header: impossible runtime
		j.Runtime = -1
	case 1: // inverted timestamps on an active record
		if r := pickActive(j, rng); r != nil {
			if r.C.HasWrite() {
				r.C.WriteStart, r.C.WriteEnd = r.C.WriteEnd+1, r.C.WriteStart
			} else {
				r.C.ReadStart, r.C.ReadEnd = r.C.ReadEnd+1, r.C.ReadStart
			}
		} else {
			j.End = j.Start - 10
		}
	case 2: // early deallocation: closed before the I/O finished
		if r := pickActive(j, rng); r != nil {
			end := r.C.WriteEnd
			if r.C.HasRead() && r.C.ReadEnd > end {
				end = r.C.ReadEnd
			}
			r.C.Closes = maxI64(r.C.Closes, 1)
			r.C.CloseStart = end - 2
			r.C.CloseEnd = end - 1
			if r.C.CloseStart < 0 {
				r.C.CloseStart = 0
			}
			if r.C.CloseEnd < 0 {
				r.C.CloseEnd = 0
				r.C.CloseStart = 0
				// Ensure strict "before end" even for tiny windows.
				if r.C.HasWrite() {
					r.C.WriteEnd += 2
				} else {
					r.C.ReadEnd += 2
				}
			}
		} else {
			j.Runtime = 0
		}
	case 3: // activity recorded past the end of the execution
		if r := pickActive(j, rng); r != nil {
			if r.C.HasWrite() {
				r.C.WriteEnd = j.Runtime + 30
				if r.C.Closes > 0 && r.C.CloseEnd < r.C.WriteEnd {
					r.C.CloseEnd = r.C.WriteEnd + 1
					r.C.CloseStart = r.C.WriteEnd
				}
			} else {
				r.C.ReadEnd = j.Runtime + 30
				if r.C.Closes > 0 && r.C.CloseEnd < r.C.ReadEnd {
					r.C.CloseEnd = r.C.ReadEnd + 1
					r.C.CloseStart = r.C.ReadEnd
				}
			}
		} else {
			j.Runtime = -1
		}
	default: // negative counter
		if len(j.Records) > 0 {
			r := &j.Records[rng.Intn(len(j.Records))]
			r.C.BytesRead = -int64(rng.Intn(1000) + 1)
		} else {
			j.NProcs = 0
		}
	}
	return kind
}

func pickActive(j *darshan.Job, rng *rand.Rand) *darshan.FileRecord {
	if len(j.Records) == 0 {
		return nil
	}
	start := rng.Intn(len(j.Records))
	for i := 0; i < len(j.Records); i++ {
		r := &j.Records[(start+i)%len(j.Records)]
		if r.C.HasRead() || r.C.HasWrite() {
			return r
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
