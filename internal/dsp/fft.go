// Package dsp implements the signal-processing baseline for periodic I/O
// detection referenced by the paper (Tarraf et al., "Capturing Periodic
// I/O Using Frequency Techniques", IPDPS 2024): a radix-2 FFT, a
// periodogram, autocorrelation, and a frequency-domain periodicity
// detector operating on binned I/O activity signals.
//
// MOSAIC's related-work section argues this approach "fails to distinguish
// between two intricate periodic behaviors"; the ablation benches use this
// package to demonstrate exactly that against the Mean Shift detector.
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPowerOfTwo reports an FFT input whose length is not a power of 2.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (and 1 for n <= 1).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	bitReverse(x)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place. len(x) must be a power of
// two.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

func bitReverse(x []complex128) {
	n := len(x)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFTReal transforms a real signal, zero-padding to the next power of two,
// and returns the complex spectrum.
func FFTReal(signal []float64) []complex128 {
	n := NextPowerOfTwo(len(signal))
	x := make([]complex128, n)
	for i, v := range signal {
		x[i] = complex(v, 0)
	}
	// Length is a power of two by construction; FFT cannot fail.
	_ = FFT(x)
	return x
}

// Periodogram returns the one-sided power spectrum of a real signal
// sampled at sampleRate Hz: power[k] is the energy at frequency
// freq[k] = k * sampleRate / N for k in [0, N/2]. The DC component is
// removed first so that a constant offset does not mask periodic peaks.
func Periodogram(signal []float64, sampleRate float64) (power, freq []float64) {
	// A throwaway scratch keeps the allocating contract (fresh slices)
	// while sharing the implementation with the pooled hot path.
	return periodogramInto(signal, sampleRate, new(detectorScratch))
}

// Autocorrelation returns the normalized autocorrelation of the signal for
// lags 0..maxLag (inclusive), computed via FFT in O(n log n). r[0] is 1
// for non-constant signals; constant signals return all zeros beyond a
// leading 1-or-0 convention (r[0]=0 when variance is 0).
func Autocorrelation(signal []float64, maxLag int) []float64 {
	return autocorrInto(signal, maxLag, new(detectorScratch))
}
