package dist

import (
	"context"
	"io"
	"log/slog"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func TestServerGracefulDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)), reg)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, reason, err := c.Categorize(testJob(1), core.DefaultConfig()); err != nil || reason != "" {
		t.Fatalf("categorize before drain: %v %q", err, reason)
	}

	// Metrics captured the connection and the RPC.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mosaic_dist_worker_connections_total 1",
		"mosaic_dist_worker_rpc_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %q in worker metrics:\n%s", want, b.String())
		}
	}

	// Shutdown drains: the open connection is allowed to finish; once the
	// client closes, Shutdown and Serve both return cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(ctx) }()
	time.Sleep(20 * time.Millisecond) // let Shutdown observe the open conn
	c.Close()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}

	// New connections are refused after shutdown.
	if _, err := Dial(l.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestServerShutdownForcesAfterTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(nil, nil)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Categorize(testJob(1), core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	// The client stays connected; a short deadline forces the close.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("shutdown returned nil despite a lingering connection")
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestMasterInstrumentFailoverMetrics(t *testing.T) {
	good := startWorker(t)
	// A dead worker: dial succeeds during setup, then the connection is
	// closed so every RPC to it fails immediately.
	dl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(dl) //nolint:errcheck
	badClient, err := Dial(dl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	goodClient, err := Dial(good)
	if err != nil {
		t.Fatal(err)
	}
	defer goodClient.Close()
	dl.Close()
	badClient.Close()

	reg := telemetry.NewRegistry()
	m := NewMaster([]*Client{badClient, goodClient}, core.DefaultConfig()).
		Instrument(reg, slog.New(slog.NewTextHandler(io.Discard, nil)))

	// Job 1's home worker is the bad one: the dispatch must fail over.
	res, err := m.Categorize(context.Background(), testJob(1), core.DefaultConfig())
	if err != nil || res == nil {
		t.Fatalf("categorize with failover: %v", err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	for _, want := range []string{
		"mosaic_dist_rpc_retries_total 1",
		"mosaic_dist_rpc_errors_total 1",
		"mosaic_dist_workers_dead_total 1",
		"mosaic_dist_workers_live 1",
		"mosaic_dist_rpc_seconds_count 2", // failed attempt + successful retry
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("missing %q in master metrics:\n%s", want, prom)
		}
	}
	if m.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", m.LiveWorkers())
	}
}
