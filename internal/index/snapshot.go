package index

import (
	"sort"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// The posting-list engine names categories by dense uint16 IDs and
// traces by dense uint32 ordinals. Category IDs are process-global:
// the closed canonical set from category.All() occupies [0,32) in a
// lock-free immutable map, and anything else (possible only through
// Add with a non-canonical category) is appended to a small locked
// registry. Trace ordinals are per-generation: a generation assigns
// ordinal i to the i-th trace ID in lexicographic order, so a sorted
// ordinal set materializes into a sorted ID list with no comparison
// work at query time.

// builtinCatID maps every canonical category to its dense ID without
// locking; query terms only ever expand over category.All(), so the
// entire query path stays lock-free.
var builtinCatID = func() map[category.Category]uint16 {
	all := category.All()
	m := make(map[category.Category]uint16, len(all))
	for i, c := range all {
		m[c] = uint16(i)
	}
	return m
}()

// catReg holds the ID→name table (canonical prefix plus any
// out-of-vocabulary categories registered by Add).
var catReg = struct {
	mu    sync.RWMutex
	names []category.Category
	ids   map[category.Category]uint16
}{}

func init() {
	all := category.All()
	catReg.names = append([]category.Category(nil), all...)
	catReg.ids = make(map[category.Category]uint16, len(all))
	for i, c := range all {
		catReg.ids[c] = uint16(i)
	}
}

// catIDOf returns the dense ID for a category, registering it on
// first sight.
func catIDOf(c category.Category) uint16 {
	if id, ok := builtinCatID[c]; ok {
		return id
	}
	catReg.mu.Lock()
	defer catReg.mu.Unlock()
	if id, ok := catReg.ids[c]; ok {
		return id
	}
	id := uint16(len(catReg.names))
	catReg.names = append(catReg.names, c)
	catReg.ids[c] = id
	return id
}

// lookupCatID is catIDOf without the registering side effect.
func lookupCatID(c category.Category) (uint16, bool) {
	if id, ok := builtinCatID[c]; ok {
		return id, true
	}
	catReg.mu.RLock()
	defer catReg.mu.RUnlock()
	id, ok := catReg.ids[c]
	return id, ok
}

// catNames returns an immutable view of the ID→name table. The
// backing array is append-only and the view is length-capped, so the
// caller may read it without further locking.
func catNames() []category.Category {
	catReg.mu.RLock()
	defer catReg.mu.RUnlock()
	return catReg.names[:len(catReg.names):len(catReg.names)]
}

// generation is one immutable posting-list build: the trace-ID
// dictionary in lexicographic order, per-ordinal category sets in CSR
// layout, and per-category sorted ordinal postings. Nothing in a
// generation is ever mutated after buildGeneration returns.
type generation struct {
	ids      []store.TraceID // ordinal → ID, lexicographically sorted
	catOff   []uint32        // len(ids)+1 offsets into catIDs
	catIDs   []uint16        // concatenated per-ordinal category sets
	postings [][]uint32      // catID → sorted ordinals
}

var emptyGen = &generation{catOff: []uint32{0}}

func (g *generation) n() int { return len(g.ids) }

// ordinalOf binary-searches the dictionary.
func (g *generation) ordinalOf(id store.TraceID) (uint32, bool) {
	lo, hi := 0, len(g.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.ids) && g.ids[lo] == id {
		return uint32(lo), true
	}
	return 0, false
}

func (g *generation) catsAt(ord uint32) []uint16 {
	return g.catIDs[g.catOff[ord]:g.catOff[ord+1]]
}

// posting returns the ordinal list for a category ID, tolerating IDs
// registered after this generation was built.
func (g *generation) posting(cid uint16) []uint32 {
	if int(cid) < len(g.postings) {
		return g.postings[cid]
	}
	return nil
}

// entry is one (trace, category set) pair fed to a generation build.
type entry struct {
	id   store.TraceID
	cats []uint16
}

// buildGeneration constructs a generation from entries already sorted
// by ID and free of duplicates. Postings share one arena allocation.
func buildGeneration(entries []entry, ncats int) *generation {
	total := 0
	for _, e := range entries {
		total += len(e.cats)
	}
	g := &generation{
		ids:      make([]store.TraceID, len(entries)),
		catOff:   make([]uint32, len(entries)+1),
		catIDs:   make([]uint16, 0, total),
		postings: make([][]uint32, ncats),
	}
	counts := make([]int, ncats)
	for _, e := range entries {
		for _, c := range e.cats {
			counts[c]++
		}
	}
	arena := make([]uint32, total)
	for cid, cnt := range counts {
		g.postings[cid] = arena[:0:cnt]
		arena = arena[cnt:]
	}
	for ord, e := range entries {
		g.ids[ord] = e.id
		g.catOff[ord] = uint32(len(g.catIDs))
		g.catIDs = append(g.catIDs, e.cats...)
		for _, c := range e.cats {
			g.postings[c] = append(g.postings[c], uint32(ord))
		}
	}
	g.catOff[len(entries)] = uint32(len(g.catIDs))
	return g
}

// deltaOp is one batched mutation: a (re-)add with its category set,
// or a tombstone (cats == nil). An empty non-nil cats slice is a live
// trace with no categories — it matches NOT queries, as in the map
// engine.
type deltaOp struct {
	id   store.TraceID
	cats []uint16
}

// snapshot is the unit of epoch publication: an immutable generation
// plus a length-capped prefix of the append-only delta log. Queries
// grab one snapshot pointer and never look back; writers publish a
// new snapshot after every mutation.
type snapshot struct {
	gen  *generation
	ops  []deltaOp
	live int
	cats []category.Category // catID → name view covering every ID in gen/ops
}

// lookup resolves one trace against delta-then-generation,
// latest-wins.
func (s *snapshot) lookup(id store.TraceID) ([]uint16, bool) {
	for i := len(s.ops) - 1; i >= 0; i-- {
		if s.ops[i].id == id {
			if s.ops[i].cats == nil {
				return nil, false
			}
			return s.ops[i].cats, true
		}
	}
	if ord, ok := s.gen.ordinalOf(id); ok {
		return s.gen.catsAt(ord), true
	}
	return nil, false
}

// mergeGeneration folds a snapshot's delta into its generation,
// producing the next generation. Runs without any Index lock: every
// input is immutable.
func mergeGeneration(s *snapshot, ncats int) *generation {
	latest := make(map[store.TraceID]int, len(s.ops))
	for i, op := range s.ops {
		latest[op.id] = i
	}
	dops := make([]entry, 0, len(latest))
	for id, i := range latest {
		dops = append(dops, entry{id: id, cats: s.ops[i].cats})
	}
	sort.Slice(dops, func(i, j int) bool { return dops[i].id < dops[j].id })

	g := s.gen
	entries := make([]entry, 0, g.n()+len(dops))
	i, j := 0, 0
	for i < g.n() || j < len(dops) {
		switch {
		case j == len(dops) || (i < g.n() && g.ids[i] < dops[j].id):
			entries = append(entries, entry{id: g.ids[i], cats: g.catsAt(uint32(i))})
			i++
		case i == g.n() || dops[j].id < g.ids[i]:
			if dops[j].cats != nil {
				entries = append(entries, dops[j])
			}
			j++
		default: // same ID: the delta wins
			if dops[j].cats != nil {
				entries = append(entries, dops[j])
			}
			i++
			j++
		}
	}
	return buildGeneration(entries, ncats)
}

// sortCatIDs orders a small category-ID set by category name so CSR
// rows materialize in the order Categories() promises. Insertion sort:
// sets are at most a dozen wide.
func sortCatIDs(ids []uint16, names []category.Category) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && names[ids[j]] < names[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func containsCat(cats []uint16, cid uint16) bool {
	for _, c := range cats {
		if c == cid {
			return true
		}
	}
	return false
}
