package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// encodedJob returns the canonical blob of testJob(seed).
func encodedJob(t *testing.T, seed int) []byte {
	t.Helper()
	data, err := darshan.MarshalBinary(testJob(seed))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// copyDir clones a store directory byte-for-byte: the "what the disk
// held at the moment of the crash" snapshot, taken without closing the
// live store (a crashed process never closes cleanly).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestPutTraceBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Pre-store blob 0 so the batch sees a store-level duplicate.
	pre, _, err := s.PutTraceBytes(encodedJob(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	blobs := [][]byte{
		encodedJob(t, 0), // duplicate of a stored trace
		encodedJob(t, 1),
		encodedJob(t, 2),
		encodedJob(t, 1), // duplicate within the batch
		encodedJob(t, 3),
	}
	ids, dup, err := s.PutTraceBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != pre {
		t.Fatal("content address must not depend on the ingest path")
	}
	wantDup := []bool{true, false, false, true, false}
	for i, want := range wantDup {
		if dup[i] != want {
			t.Fatalf("dup[%d] = %v, want %v", i, dup[i], want)
		}
	}
	if st := s.Stats(); st.Traces != 4 {
		t.Fatalf("stored %d traces, want 4 (duplicates collapsed)", st.Traces)
	}
	for i, id := range ids {
		got, ok, err := s.GetTraceBytes(id)
		if err != nil || !ok || !bytes.Equal(got, blobs[i]) {
			t.Fatalf("blob %d unreadable after batch put (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestPutTraceBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var blobs [][]byte
	for i := 0; i < 16; i++ {
		blobs = append(blobs, encodedJob(t, i))
	}
	if _, _, err := s.PutTraceBatch(blobs); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GroupSyncs != 1 {
		t.Fatalf("a batch must cost one fsync, got %d", st.GroupSyncs)
	}
	if st.SyncedFrames != 16 {
		t.Fatalf("that fsync must cover all 16 frames, covered %d", st.SyncedFrames)
	}
}

// TestBatchCrashRecovery simulates a kill mid-batch: the tail of the
// last staged frame never reaches disk. On reopen, only the torn frame
// is dropped — every fully written record of the batch survives.
func TestBatchCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	for i := 0; i < 8; i++ {
		blobs = append(blobs, encodedJob(t, i))
	}
	ids, _, err := s.PutTraceBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	segPath := filepath.Join(dir, "000001.seg")
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last frame's CRC plus part of its value.
	if err := os.Truncate(segPath, info.Size()-int64(frameCRCLen)-10); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Traces != 7 {
		t.Fatalf("recovered %d traces, want 7 (only the torn frame dropped)", st.Traces)
	}
	for i := 0; i < 7; i++ {
		got, ok, err := s2.GetTraceBytes(ids[i])
		if err != nil || !ok || !bytes.Equal(got, blobs[i]) {
			t.Fatalf("batch record %d lost to a crash after its frame was complete", i)
		}
	}
	if s2.HasTrace(ids[7]) {
		t.Fatal("torn frame must not be indexed")
	}
}

// TestSyncBatchDurableWithoutClose is the acked-durability contract:
// once PutTraceBatch returns under Options.Sync, a crash (no Close, no
// further writes) loses nothing — the snapshot of the disk already
// holds every acked trace.
func TestSyncBatchDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	for i := 0; i < 6; i++ {
		blobs = append(blobs, encodedJob(t, i))
	}
	ids, _, err := s.PutTraceBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	crashed := copyDir(t, dir) // snapshot before any clean shutdown
	s.Close()

	s2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, id := range ids {
		got, ok, err := s2.GetTraceBytes(id)
		if err != nil || !ok || !bytes.Equal(got, blobs[i]) {
			t.Fatalf("acked trace %d not durable at crash time (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestGroupCommitConcurrentWriters drives many synchronous writers at
// once: every acked put must be durable, and the fsync count must show
// grouping (fewer syncs than frames) rather than one flush per record.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true, MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := s.PutTrace(testJob(w*perWriter + i)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Traces != writers*perWriter {
		t.Fatalf("stored %d traces, want %d", st.Traces, writers*perWriter)
	}
	if st.SyncedFrames < int64(writers*perWriter) {
		t.Fatalf("only %d frames acked durable, want >= %d", st.SyncedFrames, writers*perWriter)
	}
	t.Logf("group commit: %d frames durable across %d fsyncs", st.SyncedFrames, st.GroupSyncs)
	crashed := copyDir(t, dir)
	s.Close()

	s2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Traces; got != writers*perWriter {
		t.Fatalf("crash snapshot recovered %d traces, want %d (acked writes lost)", got, writers*perWriter)
	}
}

func TestEachTraceBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 2 << 10}) // force rotation mid-corpus
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := make(map[TraceID][]byte)
	fp := "fp-x"
	for i := 0; i < 10; i++ {
		blob := encodedJob(t, i)
		id, _, err := s.PutTraceBytes(blob)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = blob
		// Interleave non-trace records: the scan must skip them.
		if err := s.PutResult(id, fp, testResult(t, testJob(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Segments < 2 {
		t.Fatal("test needs multiple segments to cover the rotation path")
	}
	got := make(map[TraceID][]byte)
	err = s.EachTraceBlob(func(id TraceID, blob []byte) bool {
		if HashBytes(blob) != id {
			t.Fatalf("blob content does not match its address %s", id)
		}
		got[id] = append([]byte(nil), blob...) // the slice is reused
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d blobs, want %d", len(got), len(want))
	}
	for id, blob := range want {
		if !bytes.Equal(got[id], blob) {
			t.Fatalf("blob %s corrupted by sequential scan", id)
		}
	}
	// Early stop.
	n := 0
	if err := s.EachTraceBlob(func(TraceID, []byte) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d blobs, want 3", n)
	}
}

// TestScanSegmentReadahead pins the buffered scan against ReadAt-based
// reads: both views of the same segment must agree.
func TestScanSegmentReadahead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []TraceID
	for i := 0; i < 20; i++ {
		id, _, err := s.PutTraceBytes(encodedJob(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		blob, ok, err := s2.GetTraceBytes(id)
		if err != nil || !ok {
			t.Fatalf("trace %s lost across buffered recovery (ok=%v err=%v)", id, ok, err)
		}
		if HashBytes(blob) != id {
			t.Fatalf("recovered index points at wrong bytes for %s", id)
		}
	}
}
