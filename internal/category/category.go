// Package category defines the MOSAIC category taxonomy (Table I of the
// paper): non-exclusive labels describing the I/O behaviour of a job along
// three axes — temporality, periodicity, and metadata impact.
package category

import (
	"fmt"
	"sort"
	"strings"
)

// Axis is one of the three classes of behaviour MOSAIC characterizes.
type Axis uint8

// Axes of the taxonomy.
const (
	AxisTemporality Axis = iota
	AxisPeriodicity
	AxisMetadata
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisTemporality:
		return "temporality"
	case AxisPeriodicity:
		return "periodicity"
	case AxisMetadata:
		return "metadata"
	default:
		return fmt.Sprintf("Axis(%d)", uint8(a))
	}
}

// Direction distinguishes read and write behaviour; MOSAIC evaluates the
// two independently (Section III-A). Metadata categories carry DirNone.
type Direction uint8

// Directions.
const (
	DirNone Direction = iota
	DirRead
	DirWrite
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirRead:
		return "read"
	case DirWrite:
		return "write"
	case DirNone:
		return ""
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Category is a canonical label such as "read_on_start",
// "write_periodic_minute" or "metadata_high_spike".
type Category string

// TemporalKind enumerates the temporality sub-labels.
type TemporalKind uint8

// Temporality kinds (Table I).
const (
	OnStart TemporalKind = iota
	OnEnd
	AfterStart
	BeforeEnd
	AfterStartBeforeEnd
	Steady
	Insignificant
)

// String implements fmt.Stringer.
func (k TemporalKind) String() string {
	switch k {
	case OnStart:
		return "on_start"
	case OnEnd:
		return "on_end"
	case AfterStart:
		return "after_start"
	case BeforeEnd:
		return "before_end"
	case AfterStartBeforeEnd:
		return "after_start_before_end"
	case Steady:
		return "steady"
	case Insignificant:
		return "insignificant"
	default:
		return fmt.Sprintf("TemporalKind(%d)", uint8(k))
	}
}

// TemporalKinds lists every temporality kind in declaration order.
func TemporalKinds() []TemporalKind {
	return []TemporalKind{OnStart, OnEnd, AfterStart, BeforeEnd, AfterStartBeforeEnd, Steady, Insignificant}
}

// Temporal builds the temporality category for a direction,
// e.g. Temporal(DirRead, OnStart) == "read_on_start".
func Temporal(d Direction, k TemporalKind) Category {
	return Category(d.String() + "_" + k.String())
}

// PeriodMagnitude is the order of magnitude of a detected period.
type PeriodMagnitude uint8

// Period magnitudes (Table I).
const (
	MagNone PeriodMagnitude = iota
	MagSecond
	MagMinute
	MagHour
	MagDayOrMore
)

// String implements fmt.Stringer.
func (m PeriodMagnitude) String() string {
	switch m {
	case MagNone:
		return "none"
	case MagSecond:
		return "second"
	case MagMinute:
		return "minute"
	case MagHour:
		return "hour"
	case MagDayOrMore:
		return "day_or_more"
	default:
		return fmt.Sprintf("PeriodMagnitude(%d)", uint8(m))
	}
}

// MagnitudeOf classifies a period length in seconds into its order of
// magnitude.
func MagnitudeOf(periodSeconds float64) PeriodMagnitude {
	switch {
	case periodSeconds <= 0:
		return MagNone
	case periodSeconds < 60:
		return MagSecond
	case periodSeconds < 3600:
		return MagMinute
	case periodSeconds < 24*3600:
		return MagHour
	default:
		return MagDayOrMore
	}
}

// Periodic builds the base periodic category, e.g. "write_periodic".
func Periodic(d Direction) Category {
	return Category(d.String() + "_periodic")
}

// PeriodicMagnitude builds the magnitude-qualified periodic category,
// e.g. "write_periodic_minute".
func PeriodicMagnitude(d Direction, m PeriodMagnitude) Category {
	return Category(d.String() + "_periodic_" + m.String())
}

// PeriodicBusy builds the busy-time periodic category. high reports
// whether the job spends a large fraction of the period doing I/O.
func PeriodicBusy(d Direction, high bool) Category {
	if high {
		return Category(d.String() + "_periodic_high_busy_time")
	}
	return Category(d.String() + "_periodic_low_busy_time")
}

// Metadata categories (Table I).
const (
	MetaHighSpike         Category = "metadata_high_spike"
	MetaMultipleSpikes    Category = "metadata_multiple_spikes"
	MetaHighDensity       Category = "metadata_high_density"
	MetaInsignificantLoad Category = "metadata_insignificant_load"
)

// Axis reports which class of behaviour the category belongs to.
func (c Category) Axis() Axis {
	s := string(c)
	switch {
	case strings.HasPrefix(s, "metadata_"):
		return AxisMetadata
	case strings.Contains(s, "_periodic"):
		return AxisPeriodicity
	default:
		return AxisTemporality
	}
}

// Direction reports the read/write direction of the category (DirNone for
// metadata categories).
func (c Category) Direction() Direction {
	s := string(c)
	switch {
	case strings.HasPrefix(s, "read_"):
		return DirRead
	case strings.HasPrefix(s, "write_"):
		return DirWrite
	default:
		return DirNone
	}
}

// All returns the full closed set of categories MOSAIC can emit, in a
// stable order. Useful for table headers and exhaustive tests.
func All() []Category {
	var out []Category
	for _, d := range []Direction{DirRead, DirWrite} {
		for _, k := range TemporalKinds() {
			out = append(out, Temporal(d, k))
		}
		out = append(out, Periodic(d))
		for _, m := range []PeriodMagnitude{MagSecond, MagMinute, MagHour, MagDayOrMore} {
			out = append(out, PeriodicMagnitude(d, m))
		}
		out = append(out, PeriodicBusy(d, false), PeriodicBusy(d, true))
	}
	out = append(out, MetaHighSpike, MetaMultipleSpikes, MetaHighDensity, MetaInsignificantLoad)
	return out
}

// Set is a set of categories assigned to one trace. Categories are
// non-exclusive across axes and directions.
type Set map[Category]struct{}

// NewSet builds a set from the given categories.
func NewSet(cs ...Category) Set {
	s := make(Set, len(cs))
	for _, c := range cs {
		s[c] = struct{}{}
	}
	return s
}

// Add inserts categories into the set.
func (s Set) Add(cs ...Category) {
	for _, c := range cs {
		s[c] = struct{}{}
	}
}

// Has reports membership.
func (s Set) Has(c Category) bool {
	_, ok := s[c]
	return ok
}

// HasAll reports whether every given category is in the set.
func (s Set) HasAll(cs ...Category) bool {
	for _, c := range cs {
		if !s.Has(c) {
			return false
		}
	}
	return true
}

// Sorted returns the members in lexicographic order.
func (s Set) Sorted() []Category {
	out := make([]Category, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Strings returns the sorted members as plain strings (for JSON output).
func (s Set) Strings() []string {
	cs := s.Sorted()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c)
	}
	return out
}

// Equal reports whether two sets contain the same categories.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for c := range s {
		if !other.Has(c) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for c := range s {
		out[c] = struct{}{}
	}
	return out
}

// String implements fmt.Stringer.
func (s Set) String() string { return strings.Join(s.Strings(), ",") }

// ParseSet parses a comma-separated category list (inverse of String).
func ParseSet(text string) Set {
	s := make(Set)
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			s.Add(Category(part))
		}
	}
	return s
}
