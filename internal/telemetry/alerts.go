package telemetry

import (
	"sort"
	"sync"
	"time"
)

// AlertRule describes one SLO whose error budget the evaluator
// watches. Source returns cumulative (good, total) event counts since
// process start — e.g. requests within SLO vs all requests — from
// which windowed error ratios are derived by differencing samples.
type AlertRule struct {
	// Name identifies the rule in metrics, events, and /v1/alerts.
	Name string
	// Objective is the target good/total ratio in (0,1), e.g. 0.99
	// for a 1% error budget. Out-of-range values default to 0.99.
	Objective float64
	// Source samples the cumulative good/total counters.
	Source func() (good, total float64)
}

// AlertOptions tunes the evaluator. The zero value selects the
// standard multi-window multi-burn-rate page configuration: a 5m fast
// window at 14.4x burn AND a 1h slow window at 6x burn.
type AlertOptions struct {
	// Interval between evaluations (<=0: 15s).
	Interval time.Duration
	// FastWindow / SlowWindow are the two look-back windows
	// (<=0: 5m / 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn / SlowBurn are the burn-rate thresholds both windows
	// must exceed to fire (<=0: 14.4 / 6).
	FastBurn float64
	SlowBurn float64
	// OnTransition, when non-nil, is called after a rule fires or
	// resolves (outside the evaluator lock).
	OnTransition func(state AlertState)
}

func (o AlertOptions) withDefaults() AlertOptions {
	if o.Interval <= 0 {
		o.Interval = 15 * time.Second
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 14.4
	}
	if o.SlowBurn <= 0 {
		o.SlowBurn = 6
	}
	return o
}

// AlertState is the externally visible state of one rule.
type AlertState struct {
	Name      string    `json:"name"`
	Active    bool      `json:"active"`
	Since     time.Time `json:"since,omitempty"`
	Objective float64   `json:"objective"`
	FastBurn  float64   `json:"fast_burn"` // current burn over the fast window
	SlowBurn  float64   `json:"slow_burn"` // current burn over the slow window
	Fires     int64     `json:"fires"`     // lifetime fire transitions
	Resolves  int64     `json:"resolves"`  // lifetime resolve transitions
}

// burnSample is one cumulative observation.
type burnSample struct {
	t           time.Time
	good, total float64
}

// alertRuleState is the evaluator's per-rule bookkeeping.
type alertRuleState struct {
	rule    AlertRule
	samples []burnSample // time-ordered, pruned to the slow window
	state   AlertState
	active  *Gauge
	fired   *Counter
	cleared *Counter
}

// AlertEvaluator runs the multi-window burn-rate rule over its
// AlertRules on a fixed interval. The burn rate over a window is the
// window's error ratio divided by the SLO's error budget (1 −
// objective); a rule fires when BOTH the fast and slow windows exceed
// their thresholds (fast to react quickly, slow to suppress blips) and
// resolves when the fast window drops back below its threshold.
type AlertEvaluator struct {
	opts  AlertOptions
	mu    sync.Mutex
	rules []*alertRuleState

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAlertEvaluator builds an evaluator over rules, registering
// mosaic_alert_active and mosaic_alert_transitions_total instruments
// in reg. Call Start to begin periodic evaluation; tests can drive
// Tick directly instead.
func NewAlertEvaluator(reg *Registry, opts AlertOptions, rules ...AlertRule) *AlertEvaluator {
	e := &AlertEvaluator{opts: opts.withDefaults(), quit: make(chan struct{})}
	for _, r := range rules {
		if r.Source == nil || r.Name == "" {
			continue
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			r.Objective = 0.99
		}
		rs := &alertRuleState{
			rule:  r,
			state: AlertState{Name: r.Name, Objective: r.Objective},
		}
		if reg != nil {
			rs.active = reg.Gauge("mosaic_alert_active",
				"Whether the burn-rate alert is currently firing (1) or not (0).",
				Labels{"alert": r.Name})
			rs.fired = reg.Counter("mosaic_alert_transitions_total",
				"Alert state transitions by direction.",
				Labels{"alert": r.Name, "to": "firing"})
			rs.cleared = reg.Counter("mosaic_alert_transitions_total",
				"Alert state transitions by direction.",
				Labels{"alert": r.Name, "to": "resolved"})
			rs.active.Set(0)
		}
		e.rules = append(e.rules, rs)
	}
	return e
}

// Start launches the evaluation loop.
func (e *AlertEvaluator) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		ticker := time.NewTicker(e.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-e.quit:
				return
			case now := <-ticker.C:
				e.Tick(now)
			}
		}
	}()
}

// Stop halts the evaluation loop and waits for it to exit.
func (e *AlertEvaluator) Stop() {
	e.stopOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Tick samples every rule's source and re-evaluates the burn-rate
// condition at the given instant. It is exported so tests can step the
// evaluator deterministically.
func (e *AlertEvaluator) Tick(now time.Time) {
	var transitions []AlertState
	e.mu.Lock()
	for _, rs := range e.rules {
		good, total := rs.rule.Source()
		rs.samples = append(rs.samples, burnSample{t: now, good: good, total: total})
		rs.prune(now, e.opts.SlowWindow)

		budget := 1 - rs.rule.Objective
		fast := rs.windowBurn(now, e.opts.FastWindow, budget)
		slow := rs.windowBurn(now, e.opts.SlowWindow, budget)
		rs.state.FastBurn = fast
		rs.state.SlowBurn = slow

		switch {
		case !rs.state.Active && fast >= e.opts.FastBurn && slow >= e.opts.SlowBurn:
			rs.state.Active = true
			rs.state.Since = now
			rs.state.Fires++
			if rs.active != nil {
				rs.active.Set(1)
				rs.fired.Inc()
			}
			transitions = append(transitions, rs.state)
		case rs.state.Active && fast < e.opts.FastBurn:
			rs.state.Active = false
			rs.state.Resolves++
			if rs.active != nil {
				rs.active.Set(0)
				rs.cleared.Inc()
			}
			transitions = append(transitions, rs.state)
		}
	}
	cb := e.opts.OnTransition
	e.mu.Unlock()

	if cb != nil {
		for _, st := range transitions {
			cb(st)
		}
	}
}

// prune drops samples older than the slow window, always keeping one
// sample at or before the window edge so window deltas stay anchored.
func (rs *alertRuleState) prune(now time.Time, slow time.Duration) {
	edge := now.Add(-slow)
	// Find the last sample at or before the edge; everything before it
	// can go.
	cut := 0
	for i, s := range rs.samples {
		if !s.t.After(edge) {
			cut = i
		}
	}
	if cut > 0 {
		rs.samples = append(rs.samples[:0], rs.samples[cut:]...)
	}
}

// windowBurn computes the burn rate over the window ending at now:
// the error ratio of events inside the window divided by the error
// budget. With no traffic in the window the burn is zero.
func (rs *alertRuleState) windowBurn(now time.Time, window time.Duration, budget float64) float64 {
	if len(rs.samples) == 0 || budget <= 0 {
		return 0
	}
	edge := now.Add(-window)
	// Baseline: the newest sample at or before the window edge, or the
	// oldest sample we still have (partial window during warm-up).
	i := sort.Search(len(rs.samples), func(i int) bool {
		return rs.samples[i].t.After(edge)
	})
	if i > 0 {
		i--
	}
	base := rs.samples[i]
	cur := rs.samples[len(rs.samples)-1]
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dGood := cur.good - base.good
	errRatio := (dTotal - dGood) / dTotal
	if errRatio < 0 {
		errRatio = 0
	}
	return errRatio / budget
}

// Snapshot returns the current state of every rule, in rule order.
func (e *AlertEvaluator) Snapshot() []AlertState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertState, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.state
	}
	return out
}

// ActiveCount reports how many rules are currently firing.
func (e *AlertEvaluator) ActiveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, rs := range e.rules {
		if rs.state.Active {
			n++
		}
	}
	return n
}
