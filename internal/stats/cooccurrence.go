package stats

import (
	"sort"

	"github.com/mosaic-hpc/mosaic/internal/category"
)

// CoMatrix is a symmetric category co-occurrence matrix over a population
// of category sets, from which Jaccard indices and conditional rates are
// derived. It backs the Figure 5 heatmap and the Section IV-D correlation
// statements.
type CoMatrix struct {
	Labels []category.Category       // row/column order
	index  map[category.Category]int // label -> position
	both   [][]int                   // both[i][j]: samples in i and j
	count  []int                     // count[i]: samples in i
	total  int                       // population size
}

// NewCoMatrix builds an empty matrix over the given labels. Duplicate
// labels are collapsed; order of first appearance is kept.
func NewCoMatrix(labels []category.Category) *CoMatrix {
	m := &CoMatrix{index: make(map[category.Category]int, len(labels))}
	for _, l := range labels {
		if _, dup := m.index[l]; dup {
			continue
		}
		m.index[l] = len(m.Labels)
		m.Labels = append(m.Labels, l)
	}
	n := len(m.Labels)
	m.both = make([][]int, n)
	for i := range m.both {
		m.both[i] = make([]int, n)
	}
	m.count = make([]int, n)
	return m
}

// Observe adds one sample's category set to the matrix. Categories outside
// the label set are ignored.
func (m *CoMatrix) Observe(s category.Set) {
	m.total++
	present := make([]int, 0, len(s))
	for c := range s {
		if i, ok := m.index[c]; ok {
			present = append(present, i)
		}
	}
	sort.Ints(present)
	for _, i := range present {
		m.count[i]++
		for _, j := range present {
			m.both[i][j]++
		}
	}
}

// Total returns the number of observed samples.
func (m *CoMatrix) Total() int { return m.total }

// Count returns how many samples carry category c.
func (m *CoMatrix) Count(c category.Category) int {
	if i, ok := m.index[c]; ok {
		return m.count[i]
	}
	return 0
}

// Rate returns the fraction of samples carrying category c.
func (m *CoMatrix) Rate(c category.Category) float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.Count(c)) / float64(m.total)
}

// Jaccard returns the Jaccard index between the sample sets of two
// categories: |A∩B| / |A∪B|.
func (m *CoMatrix) Jaccard(a, b category.Category) float64 {
	i, ok1 := m.index[a]
	j, ok2 := m.index[b]
	if !ok1 || !ok2 {
		return 0
	}
	both := m.both[i][j]
	return Jaccard(both, m.count[i]-both, m.count[j]-both)
}

// Conditional returns P(b | a) over the observed population.
func (m *CoMatrix) Conditional(b, a category.Category) float64 {
	i, ok1 := m.index[a]
	j, ok2 := m.index[b]
	if !ok1 || !ok2 || m.count[i] == 0 {
		return 0
	}
	return float64(m.both[i][j]) / float64(m.count[i])
}

// JaccardMatrix materializes the full pairwise Jaccard matrix in label
// order. The diagonal is 1 for categories with at least one sample.
func (m *CoMatrix) JaccardMatrix() [][]float64 {
	n := len(m.Labels)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			both := m.both[i][j]
			out[i][j] = Jaccard(both, m.count[i]-both, m.count[j]-both)
		}
	}
	return out
}

// Pair is one off-diagonal entry of the Jaccard matrix.
type Pair struct {
	A, B    category.Category
	Jaccard float64
}

// TopPairs returns the off-diagonal category pairs with Jaccard index of
// at least threshold, sorted by decreasing index. Mirrors the paper's
// "only values higher than 1% are shown" filtering of Figure 5.
func (m *CoMatrix) TopPairs(threshold float64) []Pair {
	var out []Pair
	for i := 0; i < len(m.Labels); i++ {
		for j := i + 1; j < len(m.Labels); j++ {
			both := m.both[i][j]
			jc := Jaccard(both, m.count[i]-both, m.count[j]-both)
			if jc >= threshold {
				out = append(out, Pair{A: m.Labels[i], B: m.Labels[j], Jaccard: jc})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Jaccard > out[b].Jaccard })
	return out
}
