package parallel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	seen := make([]atomic.Bool, n)
	ForEach(8, n, func(i int) {
		if seen[i].Swap(true) {
			t.Errorf("index %d visited twice", i)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d never visited", i)
		}
	}
}

func TestForEachDegenerate(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Fatal("n=0 should not call fn")
	}
	// Workers > n and workers <= 0 both work.
	var count atomic.Int32
	ForEach(100, 3, func(int) { count.Add(1) })
	ForEach(0, 3, func(int) { count.Add(1) })
	if count.Load() != 6 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	var concurrent, peak atomic.Int32
	ForEach(4, 16, func(int) {
		c := concurrent.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		concurrent.Add(-1)
	})
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func feed(n int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
	return ch
}

func TestMapProcessesEverything(t *testing.T) {
	out := Map(context.Background(), 4, feed(100), func(i int) int { return i * 2 })
	sum := 0
	count := 0
	for v := range out {
		sum += v
		count++
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if sum != 99*100 { // 2 * (0+...+99)
		t.Fatalf("sum = %d", sum)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int)
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- i:
			case <-ctx.Done():
				close(in)
				return
			}
		}
	}()
	out := Map(ctx, 2, in, func(i int) int { return i })
	<-out
	cancel()
	// The output channel must eventually close after cancellation.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("Map did not terminate after cancel")
		}
	}
}

func TestMapOrderedPreservesOrder(t *testing.T) {
	out := MapOrdered(context.Background(), 8, feed(500), func(i int) int {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // jitter completion order
		}
		return i
	})
	want := 0
	for v := range out {
		if v != want {
			t.Fatalf("out of order: got %d, want %d", v, want)
		}
		want++
	}
	if want != 500 {
		t.Fatalf("received %d items", want)
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4)
	var count atomic.Int32
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { count.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if count.Load() != 100 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestPoolRejectsAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Submit(func() {}); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	// Double close is safe.
	p.Close()
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestForEachCtxCoversAllIndices(t *testing.T) {
	const n = 500
	var hits [n]atomic.Int32
	if err := ForEachCtx(context.Background(), 8, n, func(i int) {
		hits[i].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestForEachCtxStopsPromptlyOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 2, 1_000_000, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers stop dispatching after cancel: far fewer than n ran.
	if got := ran.Load(); got > 1000 {
		t.Fatalf("%d indices ran after cancellation", got)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := ForEachCtx(ctx, 4, 100, func(i int) { ran.Add(1) }); err == nil {
		t.Fatal("pre-cancelled context not surfaced")
	}
}
