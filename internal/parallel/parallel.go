// Package parallel provides the worker-pool machinery MOSAIC uses to
// process traces concurrently. It plays the role of the Dispy library in
// the paper's Python implementation: per-trace categorization is pure and
// embarrassingly parallel, so throughput scales with workers until the
// corpus reader becomes the bottleneck.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker count: one per logical CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ErrStopped is returned by operations on a closed pool.
var ErrStopped = errors.New("parallel: pool stopped")

// ForEach runs fn(i) for every i in [0, n) on the given number of workers
// and blocks until all invocations return. Indices are distributed by an
// atomic counter, so uneven task costs balance automatically (work
// sharing). workers <= 0 selects DefaultWorkers.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with prompt cancellation: once ctx is done, no
// new indices are dispatched (in-flight invocations finish) and the
// context's error is returned. This is the fail-fast primitive: cancel
// the context on the first error and remaining work stops promptly
// instead of running the corpus to completion.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Map applies fn to every item arriving on in, using the given number of
// workers, and sends results on the returned channel (closed when the
// input is exhausted or the context is cancelled). Result order is not
// preserved; use MapOrdered when it must be.
func Map[T, R any](ctx context.Context, workers int, in <-chan T, fn func(T) R) <-chan R {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	out := make(chan R, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case item, ok := <-in:
					if !ok {
						return
					}
					select {
					case out <- fn(item):
					case <-ctx.Done():
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// MapOrdered applies fn to items from in on several workers while
// delivering results in input order. A bounded reorder window of size
// 2×workers keeps memory constant.
func MapOrdered[T, R any](ctx context.Context, workers int, in <-chan T, fn func(T) R) <-chan R {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	type seqItem struct {
		seq  uint64
		item T
	}
	type seqResult struct {
		seq uint64
		res R
	}
	tagged := make(chan seqItem, workers)
	go func() {
		defer close(tagged)
		var seq uint64
		for item := range in {
			select {
			case tagged <- seqItem{seq, item}:
				seq++
			case <-ctx.Done():
				return
			}
		}
	}()
	unordered := Map(ctx, workers, tagged, func(si seqItem) seqResult {
		return seqResult{si.seq, fn(si.item)}
	})
	out := make(chan R, workers)
	go func() {
		defer close(out)
		pending := make(map[uint64]R)
		var next uint64
		for r := range unordered {
			pending[r.seq] = r.res
			for {
				res, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- res:
					next++
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// Pool is a long-lived worker pool for irregular task submission, used by
// the distributed master to overlap RPC round trips.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	stopped atomic.Bool
}

// NewPool starts a pool with the given number of workers (<= 0 selects
// DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{tasks: make(chan func(), workers*2)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues a task; it blocks when the queue is full, providing
// back-pressure. Returns ErrStopped after Close.
func (p *Pool) Submit(task func()) error {
	if p.stopped.Load() {
		return ErrStopped
	}
	p.tasks <- task
	return nil
}

// Close stops accepting tasks and waits for in-flight ones to finish.
func (p *Pool) Close() {
	if p.stopped.Swap(true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}
