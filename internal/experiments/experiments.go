// Package experiments reproduces every table and figure of the MOSAIC
// paper's evaluation (Section IV) on the synthetic Blue-Waters-shaped
// corpus, plus the ablation studies of DESIGN.md. Each experiment returns
// a structured result with the paper's reference values alongside the
// measured ones, so the harness can print paper-vs-measured tables and
// EXPERIMENTS.md can be regenerated.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/report"
	"github.com/mosaic-hpc/mosaic/internal/stats"
)

// CorpusRun is the shared machinery: generate the corpus and push it
// through the staged engine (funnel, parallel categorization,
// aggregation), keeping the per-stage breakdown for perf attribution.
type CorpusRun struct {
	Profile gen.Profile
	Config  core.Config

	Funnel  core.FunnelStats
	Results []AppOutcome
	Agg     *report.Aggregator

	Stages          []engine.StageSnapshot // per-stage counts and wall times
	GenerateTime    time.Duration          // wall time of generate+funnel (funnel stage)
	CategorizeTime  time.Duration          // wall time of the categorize stage
	TracesPerSecond float64                // corpus traces funneled per second overall
}

// AppOutcome pairs one application's result with its run count and ground
// truth.
type AppOutcome struct {
	Result *core.Result
	Runs   int
	Truth  category.Set
}

// corpusSource streams a generated corpus into the engine's Scan stage:
// traces are materialized lazily in plan order, so memory stays flat
// even for whole-year-shaped corpora.
type corpusSource struct{ c *gen.Corpus }

func (s corpusSource) Scan(ctx context.Context, emit func(engine.Ref) bool) error {
	s.c.Each(func(r gen.Run) bool {
		return emit(engine.Ref{Job: r.Job})
	})
	return ctx.Err()
}

// Run executes the pipeline with the given worker count (<= 0: NumCPU).
func Run(p gen.Profile, cfg core.Config, workers int) (*CorpusRun, error) {
	return RunContext(context.Background(), p, cfg, workers)
}

// RunContext is Run with cancellation: the corpus streams through the
// staged engine, and cancelling ctx stops generation, funnel and
// categorization promptly.
func RunContext(ctx context.Context, p gen.Profile, cfg core.Config, workers int) (*CorpusRun, error) {
	return RunObserved(ctx, p, cfg, workers, nil)
}

// RunObserved is RunContext with an extra pipeline observer (e.g. a
// telemetry bundle recording per-trace spans) composed alongside the
// built-in stage-stats collector. obs may be nil.
func RunObserved(ctx context.Context, p gen.Profile, cfg core.Config, workers int, obs engine.Observer) (*CorpusRun, error) {
	cr := &CorpusRun{Profile: p, Config: cfg}
	st := engine.NewStats()
	var observer engine.Observer = st
	if obs != nil {
		observer = engine.MultiObserver(st, obs)
	}
	start := time.Now()
	res, err := engine.Run(ctx, corpusSource{gen.Plan(p)}, engine.Options{
		Config:   cfg,
		Workers:  workers,
		Observer: observer,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	cr.Funnel = res.Funnel
	cr.Agg = res.Agg
	cr.Results = make([]AppOutcome, len(res.Apps))
	for i, a := range res.Apps {
		cr.Results[i] = AppOutcome{Result: a.Result, Runs: a.Runs, Truth: gen.Truth(a.Job)}
	}
	cr.Stages = st.Snapshot()
	cr.GenerateTime = st.Stage(engine.StageFunnel).Wall
	cr.CategorizeTime = st.Stage(engine.StageCategorize).Wall
	total := time.Since(start)
	if total > 0 {
		cr.TracesPerSecond = float64(cr.Funnel.Total) / total.Seconds()
	}
	return cr, nil
}

// DefaultProfile returns the standard experiment corpus: the generator
// defaults, deterministic at the given seed.
func DefaultProfile(seed int64) gen.Profile {
	p := gen.DefaultProfile()
	p.Seed = seed
	return p
}

// ScaledProfile shrinks the corpus for quick runs (tests, -short benches).
func ScaledProfile(seed int64, apps int) gen.Profile {
	p := DefaultProfile(seed)
	p.Apps = apps
	return p
}

// PaperRef holds a reference value from the paper for side-by-side
// printing.
type PaperRef struct {
	Name     string
	Paper    float64 // fraction in [0,1]
	Measured float64
}

func writeRefs(w io.Writer, title string, refs []PaperRef) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-44s %9s %9s\n", "metric", "paper", "measured")
	for _, r := range refs {
		fmt.Fprintf(w, "  %-44s %8.1f%% %8.1f%%\n", r.Name, r.Paper*100, r.Measured*100)
	}
}

// --- Figure 3: pre-processing funnel ---------------------------------

// Fig3Result compares the funnel fractions with the paper's.
type Fig3Result struct {
	Funnel core.FunnelStats
	Refs   []PaperRef
}

// Fig3 runs only the funnel (no categorization needed).
func Fig3(p gen.Profile) *Fig3Result {
	corpus := gen.Plan(p)
	pre := core.NewPreprocessor()
	corpus.Each(func(r gen.Run) bool {
		pre.Add(r.Job, nil)
		return true
	})
	s := pre.Stats()
	return &Fig3Result{
		Funnel: s,
		Refs: []PaperRef{
			{Name: "corrupted fraction of corpus", Paper: 0.32, Measured: s.CorruptedFraction()},
			{Name: "unique apps among valid traces", Paper: 0.08, Measured: s.UniqueFraction()},
		},
	}
}

// Write renders the result.
func (r *Fig3Result) Write(w io.Writer) {
	report.WriteFunnel(w, r.Funnel)
	writeRefs(w, "Figure 3 reference points", r.Refs)
}

// --- Table II: periodic write (and read) detection --------------------

// Table2Result compares periodicity shares with the paper.
type Table2Result struct {
	WriteSingle, WriteAll report.PeriodicityRow
	ReadAll               report.PeriodicityRow
	Refs                  []PaperRef
}

// Table2 derives Table II from a corpus run.
func Table2(cr *CorpusRun) *Table2Result {
	ws, wa := cr.Agg.Periodicity(category.DirWrite)
	_, ra := cr.Agg.Periodicity(category.DirRead)
	return &Table2Result{
		WriteSingle: ws, WriteAll: wa, ReadAll: ra,
		Refs: []PaperRef{
			{Name: "periodic writes, single run", Paper: 0.02, Measured: ws.Periodic},
			{Name: "periodic writes, all runs", Paper: 0.08, Measured: wa.Periodic},
			{Name: "periodic reads, all runs (<2%)", Paper: 0.02, Measured: ra.Periodic},
		},
	}
}

// Write renders the result.
func (r *Table2Result) Write(w io.Writer, agg *report.Aggregator) {
	report.WritePeriodicity(w, agg, category.DirWrite)
	report.WritePeriodicity(w, agg, category.DirRead)
	writeRefs(w, "Table II reference points", r.Refs)
}

// --- Table III: temporality -------------------------------------------

// Table3Result compares the temporality distribution with the paper.
type Table3Result struct {
	ReadSingle, ReadAll   report.TemporalityRow
	WriteSingle, WriteAll report.TemporalityRow
	Refs                  []PaperRef
}

// Table3 derives Table III from a corpus run.
func Table3(cr *CorpusRun) *Table3Result {
	rs, ra := cr.Agg.Temporality(category.DirRead)
	ws, wa := cr.Agg.Temporality(category.DirWrite)
	return &Table3Result{
		ReadSingle: rs, ReadAll: ra, WriteSingle: ws, WriteAll: wa,
		Refs: []PaperRef{
			{Name: "read insignificant, single run", Paper: 0.85, Measured: rs.Insignificant},
			{Name: "read on start, single run", Paper: 0.09, Measured: rs.OnStart},
			{Name: "read steady, single run", Paper: 0.02, Measured: rs.Steady},
			{Name: "read insignificant, all runs", Paper: 0.27, Measured: ra.Insignificant},
			{Name: "read on start, all runs", Paper: 0.38, Measured: ra.OnStart},
			{Name: "read steady, all runs", Paper: 0.30, Measured: ra.Steady},
			{Name: "write insignificant, single run", Paper: 0.87, Measured: ws.Insignificant},
			{Name: "write on end, single run", Paper: 0.08, Measured: ws.OnEnd},
			{Name: "write steady, single run", Paper: 0.03, Measured: ws.Steady},
			{Name: "write insignificant, all runs", Paper: 0.47, Measured: wa.Insignificant},
			{Name: "write on end, all runs", Paper: 0.14, Measured: wa.OnEnd},
			{Name: "write steady, all runs", Paper: 0.37, Measured: wa.Steady},
		},
	}
}

// Write renders the result.
func (r *Table3Result) Write(w io.Writer, agg *report.Aggregator) {
	report.WriteTemporality(w, agg)
	writeRefs(w, "Table III reference points", r.Refs)
}

// --- Figure 4: metadata distribution -----------------------------------

// Fig4Result compares the metadata category distribution with the paper.
type Fig4Result struct {
	Single, All map[category.Category]float64
	Refs        []PaperRef
}

// Fig4 derives Figure 4 from a corpus run.
func Fig4(cr *CorpusRun) *Fig4Result {
	single, all := cr.Agg.MetadataDist()
	return &Fig4Result{
		Single: single, All: all,
		Refs: []PaperRef{
			{Name: "metadata high spike, all runs", Paper: 0.60, Measured: all[category.MetaHighSpike]},
			{Name: "metadata multiple spikes, all runs", Paper: 0.459, Measured: all[category.MetaMultipleSpikes]},
			{Name: "metadata high density, all runs", Paper: 0.13, Measured: all[category.MetaHighDensity]},
		},
	}
}

// Write renders the result.
func (r *Fig4Result) Write(w io.Writer, agg *report.Aggregator) {
	report.WriteMetadata(w, agg)
	writeRefs(w, "Figure 4 reference points", r.Refs)
}

// --- Figure 5 / Section IV-D: correlations -----------------------------

// Fig5Result compares the headline Jaccard/conditional correlations.
type Fig5Result struct {
	Corr  report.Correlations
	Pairs int
	Refs  []PaperRef
}

// Fig5 derives the correlation analysis from a corpus run.
func Fig5(cr *CorpusRun) *Fig5Result {
	c := cr.Agg.Correlations()
	return &Fig5Result{
		Corr:  c,
		Pairs: len(cr.Agg.Co().TopPairs(0.01)),
		Refs: []PaperRef{
			{Name: "P(write insig | read insig)", Paper: 0.95, Measured: c.InsigReadAlsoInsigWrite},
			{Name: "P(write on end | read on start)", Paper: 0.66, Measured: c.ReadStartWritesEnd},
			{Name: "P(low busy | periodic write)", Paper: 0.96, Measured: c.PeriodicWriteLowBusy},
		},
	}
}

// Write renders the result.
func (r *Fig5Result) Write(w io.Writer, agg *report.Aggregator) {
	report.WriteCorrelations(w, r.Corr)
	report.WriteJaccard(w, agg, 0.05)
	writeRefs(w, "Figure 5 / Section IV-D reference points", r.Refs)
}

// --- Section IV-E: accuracy via 512-trace sampling ---------------------

// AccuracyResult reports detected-vs-truth agreement over a random sample
// of valid traces, mirroring the paper's manual validation of 512 traces.
type AccuracyResult struct {
	Sampled       int
	Correct       int
	Accuracy      float64
	CILow, CIHigh float64        // 95% bootstrap confidence interval
	ByAxisErrors  map[string]int // axis name -> traces wrong on that axis
	PaperAccuracy float64
}

// Accuracy samples sampleSize valid traces from the corpus and scores the
// detector against the generator's ground truth. A trace counts as
// correct only when the full detected category set equals the truth.
func Accuracy(p gen.Profile, cfg core.Config, sampleSize int, seed int64) (*AccuracyResult, error) {
	corpus := gen.Plan(p)
	// Sample among valid traces only (the paper samples categorized
	// traces): oversample, then filter.
	sample := corpus.Reservoir(sampleSize*2, seed)
	res := &AccuracyResult{ByAxisErrors: map[string]int{}, PaperAccuracy: 0.92}
	for _, r := range sample {
		if res.Sampled >= sampleSize {
			break
		}
		if r.Corrupted {
			continue
		}
		out, err := core.Categorize(r.Job, cfg)
		if err != nil {
			return nil, err
		}
		truth := gen.Truth(r.Job)
		res.Sampled++
		if out.Categories.Equal(truth) {
			res.Correct++
			continue
		}
		for _, axis := range axisMismatches(truth, out.Categories) {
			res.ByAxisErrors[axis]++
		}
	}
	if res.Sampled > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Sampled)
		res.CILow, res.CIHigh = stats.BootstrapProportionCI(res.Correct, res.Sampled, 0.95, 1000, seed)
	}
	return res, nil
}

func axisMismatches(truth, got category.Set) []string {
	axes := map[string]bool{}
	diff := func(a, b category.Set) {
		for c := range a {
			if !b.Has(c) {
				axes[c.Axis().String()] = true
			}
		}
	}
	diff(truth, got)
	diff(got, truth)
	out := make([]string, 0, len(axes))
	for a := range axes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Write renders the result.
func (r *AccuracyResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Accuracy (Section IV-E, %d-trace sample)\n", r.Sampled)
	fmt.Fprintf(w, "  correct: %d / %d = %.1f%% [95%% CI %.1f-%.1f]  (paper: %.0f%% on 512 traces)\n",
		r.Correct, r.Sampled, r.Accuracy*100, r.CILow*100, r.CIHigh*100, r.PaperAccuracy*100)
	axes := make([]string, 0, len(r.ByAxisErrors))
	for a := range r.ByAxisErrors {
		axes = append(axes, a)
	}
	sort.Strings(axes)
	for _, a := range axes {
		fmt.Fprintf(w, "  traces wrong on %-12s %d\n", a+":", r.ByAxisErrors[a])
	}
}
