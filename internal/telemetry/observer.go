package telemetry

import (
	"log/slog"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/engine"
)

// Config selects which telemetry components a bundle enables. The zero
// value enables metrics only.
type Config struct {
	// Metrics, when non-nil, is the registry engine metrics land in; nil
	// creates a fresh registry.
	Metrics *Registry
	// Spans enables per-trace span recording (Chrome trace export).
	Spans bool
	// SpanLimit caps retained spans (<= 0: unlimited). Long daemon runs
	// should cap; one-shot corpus runs can keep everything.
	SpanLimit int
	// SlowK retains the K slowest traces per stage (<= 0: 10).
	SlowK int
	// Logger, when non-nil, receives stage lifecycle log lines at debug
	// level and per-stage summaries at info level.
	Logger *slog.Logger
}

// Telemetry bundles the metrics registry, span recorder, slow log,
// stage stats and logger behind one engine.Observer. It implements
// both engine.Observer and engine.SpanObserver, so passing it as (or
// composing it into) Options.Observer instruments the whole pipeline.
type Telemetry struct {
	reg     *Registry
	spans   *SpanRecorder
	slow    *SlowLog
	stats   *engine.Stats
	log     *slog.Logger
	started time.Time

	itemsIn   map[engine.StageID]*Counter
	itemsOut  map[engine.StageID]*Counter
	itemErrs  map[engine.StageID]*Counter
	inFlight  map[engine.StageID]*Gauge
	stageSecs map[engine.StageID]*Gauge
	itemSecs  map[engine.StageID]*Histogram
}

// New builds a telemetry bundle. Engine metrics are registered eagerly
// under the mosaic_engine_* namespace so /metrics is complete before
// the first run.
func New(cfg Config) *Telemetry {
	reg := cfg.Metrics
	if reg == nil {
		reg = NewRegistry()
	}
	RegisterClusterMetrics(reg)
	t := &Telemetry{
		reg:       reg,
		slow:      NewSlowLog(cfg.SlowK),
		stats:     engine.NewStats(),
		log:       cfg.Logger,
		itemsIn:   make(map[engine.StageID]*Counter),
		itemsOut:  make(map[engine.StageID]*Counter),
		itemErrs:  make(map[engine.StageID]*Counter),
		inFlight:  make(map[engine.StageID]*Gauge),
		stageSecs: make(map[engine.StageID]*Gauge),
		itemSecs:  make(map[engine.StageID]*Histogram),
	}
	t.started = time.Now() // anchors whole-stage envelope spans (FinishRun)
	if cfg.Spans {
		t.spans = NewSpanRecorder(cfg.SpanLimit)
	}
	for _, s := range engine.Stages() {
		l := Labels{"stage": string(s)}
		t.itemsIn[s] = reg.Counter("mosaic_engine_items_in_total", "Items accepted by a pipeline stage.", l)
		t.itemsOut[s] = reg.Counter("mosaic_engine_items_out_total", "Items emitted by a pipeline stage.", l)
		t.itemErrs[s] = reg.Counter("mosaic_engine_item_errors_total", "Items that errored in a pipeline stage.", l)
		t.inFlight[s] = reg.Gauge("mosaic_engine_in_flight", "Items currently inside a pipeline stage.", l)
		t.stageSecs[s] = reg.Gauge("mosaic_engine_stage_seconds", "Wall seconds a pipeline stage has been running (final value once finished).", l)
		t.itemSecs[s] = reg.Histogram("mosaic_engine_item_seconds", "Per-item latency of a pipeline stage.", nil, l)
	}
	return t
}

// Registry returns the bundle's metrics registry (for /metrics and for
// registering further subsystem metrics, e.g. dist RPC).
func (t *Telemetry) Registry() *Registry { return t.reg }

// Spans returns the span recorder (nil unless Config.Spans).
func (t *Telemetry) Spans() *SpanRecorder { return t.spans }

// Slow returns the slow-trace log.
func (t *Telemetry) Slow() *SlowLog { return t.slow }

// Stats returns the embedded per-stage counter collector, snapshotable
// while the pipeline runs (it backs /debug/engine).
func (t *Telemetry) Stats() *engine.Stats { return t.stats }

// Logger returns the bundle's logger (nil when logging is off).
func (t *Telemetry) Logger() *slog.Logger { return t.log }

// StageStarted implements engine.Observer.
func (t *Telemetry) StageStarted(s engine.StageID) {
	t.stats.StageStarted(s)
	if t.log != nil {
		t.log.Debug("stage started", "stage", string(s))
	}
}

// StageFinished implements engine.Observer.
func (t *Telemetry) StageFinished(s engine.StageID) {
	t.stats.StageFinished(s)
	snap := t.stats.Stage(s)
	t.stageSecs[s].Set(snap.Wall.Seconds())
	if t.log != nil {
		t.log.Debug("stage finished", "stage", string(s),
			"in", snap.In, "out", snap.Out, "errors", snap.Errors,
			"wall", snap.Wall, "items_per_sec", snap.Throughput())
	}
}

// trackInFlight reports whether in/out counts pair up one-to-one for
// the stage. Scan only emits and the funnel is a reducing barrier
// (many traces in, few groups out), so an in-flight gauge is
// meaningless there.
func trackInFlight(s engine.StageID) bool {
	return s != engine.StageScan && s != engine.StageFunnel
}

// ItemIn implements engine.Observer.
func (t *Telemetry) ItemIn(s engine.StageID) {
	t.stats.ItemIn(s)
	t.itemsIn[s].Inc()
	if trackInFlight(s) {
		t.inFlight[s].Inc()
	}
}

// ItemOut implements engine.Observer.
func (t *Telemetry) ItemOut(s engine.StageID) {
	t.stats.ItemOut(s)
	t.itemsOut[s].Inc()
	if trackInFlight(s) {
		t.inFlight[s].Dec()
	}
}

// ItemError implements engine.Observer.
func (t *Telemetry) ItemError(s engine.StageID, err error) {
	t.stats.ItemError(s, err)
	t.itemErrs[s].Inc()
	if trackInFlight(s) {
		t.inFlight[s].Dec()
	}
	if t.log != nil {
		t.log.Warn("item error", "stage", string(s), "err", err)
	}
}

// ItemSpan implements engine.SpanObserver: it feeds the latency
// histogram, the slow log, and (when enabled) the span recorder.
func (t *Telemetry) ItemSpan(s engine.StageID, name string, start time.Time, d time.Duration) {
	t.itemSecs[s].Observe(d.Seconds())
	t.slow.Observe(string(s), name, d)
	if t.spans != nil {
		t.spans.Record(Span{Name: name, Cat: string(s), Start: start, Dur: d})
	}
}

// FinishRun records whole-stage spans (one "X" lane event per stage
// under the "run" category) after a pipeline run completes, so the
// Chrome trace shows the stage envelope above the per-trace spans.
// Safe to call when spans are disabled.
func (t *Telemetry) FinishRun() {
	if t.spans == nil {
		return
	}
	base := t.started
	if base.IsZero() {
		base = time.Now()
	}
	elapsed := time.Duration(0)
	for _, snap := range t.stats.Snapshot() {
		if !snap.Started {
			continue
		}
		// Stage start offsets are not individually recorded; anchor every
		// stage span at the run start. Stages overlap in a streaming
		// pipeline anyway, so the envelope view stays honest.
		t.spans.Record(Span{Name: "stage:" + string(snap.Stage), Cat: "run", Start: base, Dur: snap.Wall})
		if snap.Wall > elapsed {
			elapsed = snap.Wall
		}
	}
	if t.log != nil {
		t.log.Info("pipeline run finished", "wall", elapsed, "spans", t.spans.Len(), "dropped_spans", t.spans.Dropped())
	}
}

var (
	_ engine.Observer     = (*Telemetry)(nil)
	_ engine.SpanObserver = (*Telemetry)(nil)
)
