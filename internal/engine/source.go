package engine

import (
	"context"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Ref identifies one trace for the Decode stage: either a path on disk
// (decoded by darshan.ReadFile) or an in-memory job (decode is the
// identity). Err carries a pre-existing read failure that the funnel
// should count as an unreadable trace.
type Ref struct {
	Path string
	Job  *darshan.Job
	Err  error
}

// Source feeds the Scan stage. Scan calls emit once per trace reference,
// in a deterministic order; emit returns false when the pipeline is
// shutting down (cancellation or fail-fast), at which point Scan must
// return promptly. Scan must not retain emit after returning.
type Source interface {
	Scan(ctx context.Context, emit func(Ref) bool) error
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context, emit func(Ref) bool) error

// Scan implements Source.
func (f SourceFunc) Scan(ctx context.Context, emit func(Ref) bool) error { return f(ctx, emit) }

// Dir returns a Source that walks a corpus directory, emitting one Ref
// per trace file in deterministic lexical walk order. Decoding happens
// downstream in the parallel Decode stage, so the scan itself is cheap
// and the directory never needs to be listed in full before the first
// trace flows.
func Dir(dir string) Source {
	return SourceFunc(func(ctx context.Context, emit func(Ref) bool) error {
		return darshan.ScanCorpus(ctx, dir, func(path string) bool {
			return emit(Ref{Path: path})
		})
	})
}

// Jobs returns a Source over in-memory traces, the AnalyzeJobs shape.
func Jobs(jobs []*darshan.Job) Source {
	return SourceFunc(func(ctx context.Context, emit func(Ref) bool) error {
		for _, j := range jobs {
			if !emit(Ref{Job: j}) {
				return ctx.Err()
			}
		}
		return nil
	})
}

// Entries returns a Source over pre-decoded corpus entries (job or read
// error per trace), the shape produced by darshan.StreamCorpusParallel.
func Entries(entries []darshan.CorpusEntry) Source {
	return SourceFunc(func(ctx context.Context, emit func(Ref) bool) error {
		for _, e := range entries {
			if !emit(Ref{Path: e.Path, Job: e.Job, Err: e.Err}) {
				return ctx.Err()
			}
		}
		return nil
	})
}
