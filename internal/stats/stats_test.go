package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %g", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("CV of constant = %g", got)
	}
	// The paper's steady rule: CV < 0.25.
	steady := []float64{100, 110, 95, 105}
	if got := CoefficientOfVariation(steady); got >= 0.25 {
		t.Fatalf("CV(%v) = %g, expected < 0.25", steady, got)
	}
	bursty := []float64{1000, 10, 10, 10}
	if got := CoefficientOfVariation(bursty); got < 0.25 {
		t.Fatalf("CV(%v) = %g, expected >= 0.25", bursty, got)
	}
	if got := CoefficientOfVariation([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("CV of zeros = %g", got)
	}
	if got := CoefficientOfVariation([]float64{-5, 5}); !math.IsInf(got, 1) {
		t.Fatalf("CV with zero mean = %g, want +Inf", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max")
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median odd = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median even = %g", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty cases")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []float64{5, 1, 3}
	Percentile(in, 50)
	if in[0] != 5 {
		t.Fatal("Percentile modified input")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(2, 1, 1); got != 0.5 {
		t.Fatalf("Jaccard = %g", got)
	}
	if got := Jaccard(0, 0, 0); got != 0 {
		t.Fatalf("empty Jaccard = %g", got)
	}
	if got := Jaccard(5, 0, 0); got != 1 {
		t.Fatalf("identical Jaccard = %g", got)
	}
}

func TestJaccardSets(t *testing.T) {
	a := []bool{true, true, false, true}
	b := []bool{true, false, false, true}
	// intersection 2, union 3.
	if got := JaccardSets(a, b); !approx(got, 2.0/3, 1e-12) {
		t.Fatalf("JaccardSets = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	JaccardSets([]bool{true}, []bool{true, false})
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperties(t *testing.T) {
	f := func(both, onlyA, onlyB uint8) bool {
		j1 := Jaccard(int(both), int(onlyA), int(onlyB))
		j2 := Jaccard(int(both), int(onlyB), int(onlyA))
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalRate(t *testing.T) {
	a := []bool{true, true, true, false}
	b := []bool{true, false, true, true}
	if got := ConditionalRate(a, b); !approx(got, 2.0/3, 1e-12) {
		t.Fatalf("ConditionalRate = %g", got)
	}
	if got := ConditionalRate([]bool{false}, []bool{true}); got != 0 {
		t.Fatalf("never-a rate = %g", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 20}, 10, 0, 10)
	if width != 1 {
		t.Fatalf("width = %g", width)
	}
	if counts[0] != 3 { // 0, 1-eps clamp of -5... values 0 and -5 clamp to bucket 0, 1 goes to bucket 1
		t.Logf("counts = %v", counts)
	}
	var total int
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram lost values: %d", total)
	}
	if counts[9] != 2 { // 9.9 and clamped 20
		t.Fatalf("last bucket = %d", counts[9])
	}
	if c, w := Histogram([]float64{1, 2}, 3, 5, 5); w != 0 || c[0] != 2 {
		t.Fatal("degenerate range")
	}
	if c, _ := Histogram(nil, 0, 0, 1); c != nil {
		t.Fatal("n<=0 should return nil")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10) // mean 4.5
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, 1)
	if lo > 4.5 || hi < 4.5 {
		t.Fatalf("CI [%g, %g] excludes the true mean", lo, hi)
	}
	if hi-lo > 1.5 {
		t.Fatalf("CI [%g, %g] too wide for n=200", lo, hi)
	}
	// Determinism.
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 1)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic with fixed seed")
	}
	// Degenerate inputs.
	if lo, hi := BootstrapCI([]float64{7}, 0.95, 100, 1); lo != 7 || hi != 7 {
		t.Fatal("singleton CI")
	}
}

func TestBootstrapProportionCI(t *testing.T) {
	lo, hi := BootstrapProportionCI(470, 512, 0.95, 500, 2)
	p := 470.0 / 512
	if lo > p || hi < p {
		t.Fatalf("CI [%g, %g] excludes %g", lo, hi, p)
	}
	if lo < 0.85 || hi > 0.97 {
		t.Fatalf("CI [%g, %g] implausibly wide", lo, hi)
	}
	if lo, hi := BootstrapProportionCI(1, 0, 0.95, 100, 1); lo != 0 || hi != 0 {
		t.Fatal("zero total")
	}
}
