package core

import (
	"fmt"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// DirectionReport describes the detected behaviour of one I/O direction.
type DirectionReport struct {
	TotalBytes int64                 `json:"total_bytes"`
	RawOps     int                   `json:"raw_ops"`    // operations before merging
	MergedOps  int                   `json:"merged_ops"` // operations after both merges
	Chunks     []float64             `json:"chunks"`     // per-chunk volumes
	Temporal   category.TemporalKind `json:"-"`
	TemporalS  string                `json:"temporality"`
	Groups     []segment.Group       `json:"periodic_groups,omitempty"`
	BusyTime   float64               `json:"busy_time"` // cumulative merged I/O time, seconds
	// Spatial is the offset-sequence classification (sequential /
	// strided / random), available only on DXT-traced records; an
	// extension beyond the paper's category set.
	Spatial SpatialPattern `json:"spatial,omitempty"`
}

// Result is the categorization of one trace: the assigned category set
// plus the computed values MOSAIC stores in its JSON output (step 4 of the
// workflow).
type Result struct {
	JobID      uint64            `json:"job_id"`
	App        string            `json:"app"`
	User       string            `json:"user"`
	NProcs     int32             `json:"nprocs"`
	Runtime    float64           `json:"runtime"`
	Categories category.Set      `json:"-"`
	Labels     []string          `json:"categories"`
	Read       DirectionReport   `json:"read"`
	Write      DirectionReport   `json:"write"`
	Meta       MetaReport        `json:"metadata"`
	Truth      map[string]string `json:"truth,omitempty"` // generator annotations, if present
}

// Categorize runs the complete MOSAIC detection chain on a single
// validated trace: merging (2a, 2b), periodicity (3a), temporality (3b)
// and metadata analysis (3c). The job must have passed darshan.Validate;
// Categorize itself does not re-validate.
func Categorize(j *darshan.Job, cfg Config) (*Result, error) {
	return categorize(j, cfg, nil)
}

// categorize is the shared implementation behind Categorize (ex == nil,
// the hot path: no provenance is collected, the only cost is pointer
// checks) and CategorizeExplained (ex != nil).
func categorize(j *darshan.Job, cfg Config, ex *explainState) (*Result, error) {
	c := cfg.sane()
	res := &Result{
		JobID:      j.JobID,
		App:        j.AppName(),
		User:       j.User,
		NProcs:     j.NProcs,
		Runtime:    j.Runtime,
		Categories: category.NewSet(),
	}
	if len(j.Metadata) > 0 {
		res.Truth = j.Metadata
	}

	// MOSAIC handles read and write operations independently. DXT
	// extended segments, when traced and not disabled, replace the
	// aggregate open-to-close windows and expose intra-record structure.
	reads, writes := j.ReadIntervals(), j.WriteIntervals()
	dxt := !c.DisableDXT && j.HasDXT()
	if dxt {
		reads, writes = j.ReadIntervalsDXT(), j.WriteIntervalsDXT()
		res.Read.Spatial = spatialForJob(j, false)
		res.Write.Spatial = spatialForJob(j, true)
	}
	if err := categorizeDirection(j, category.DirRead, reads, &c, res, &res.Read, ex.direction(category.DirRead, dxt)); err != nil {
		return nil, fmt.Errorf("core: read direction of job %d: %w", j.JobID, err)
	}
	if err := categorizeDirection(j, category.DirWrite, writes, &c, res, &res.Write, ex.direction(category.DirWrite, dxt)); err != nil {
		return nil, fmt.Errorf("core: write direction of job %d: %w", j.JobID, err)
	}

	metaCats, metaRep := classifyMetadata(j, &c)
	res.Meta = metaRep
	for mc := range metaCats {
		res.Categories.Add(mc)
	}

	res.Labels = res.Categories.Strings()
	if ex != nil {
		ex.meta(j, res, &c)
		ex.finish(res)
	}
	return res, nil
}

func categorizeDirection(j *darshan.Job, dir category.Direction, raw []interval.Interval, cfg *Config, res *Result, rep *DirectionReport, dx *dirExplain) error {
	rep.RawOps = len(raw)
	rep.Temporal = category.Insignificant

	ops := interval.Clip(raw, j.Runtime)
	var merged []interval.Interval
	if dx == nil {
		merged = interval.Merge(ops, j.Runtime, cfg.neighborPolicy())
	} else {
		// Split the merge so the funnel (raw → clipped → concurrent →
		// neighbor) is observable; the composition is identical to
		// interval.Merge.
		conc := interval.MergeConcurrent(ops)
		merged = interval.MergeNeighbors(conc, j.Runtime, cfg.neighborPolicy())
		dx.preprocess(len(raw), len(ops), len(conc), j.Runtime, cfg)
	}
	if len(ops) == 0 {
		merged = nil
	}
	rep.MergedOps = len(merged)
	rep.TotalBytes = interval.TotalBytes(merged)
	rep.BusyTime = interval.BusyTime(merged)

	// Temporality (3b).
	rep.Chunks = Chunks(merged, j.Runtime, cfg.ChunkCount)
	var ttr *temporalTrace
	if dx != nil {
		ttr = &temporalTrace{}
	}
	rep.Temporal = classifyTemporalityTraced(rep.Chunks, rep.TotalBytes, cfg, ttr)
	rep.TemporalS = rep.Temporal.String()
	res.Categories.Add(category.Temporal(dir, rep.Temporal))
	if dx != nil {
		dx.temporality(rep, ttr, cfg)
	}

	// Periodicity (3a) — only significant directions are characterized.
	if rep.Temporal == category.Insignificant {
		return nil
	}
	var ptr *periodicityTrace
	if dx != nil {
		ptr = &periodicityTrace{}
	}
	groups, err := detectPeriodicity(merged, j.Runtime, cfg, ptr)
	if err != nil {
		return err
	}
	rep.Groups = groups
	for pc := range segment.Categories(dir, groups) {
		res.Categories.Add(pc)
	}
	if dx != nil {
		dx.periodicity(merged, rep, ptr, j.Runtime, cfg)
	}
	return nil
}

// Significant reports whether the direction crossed the significance
// threshold (i.e. was characterized at all).
func (r *DirectionReport) Significant() bool {
	return r.Temporal != category.Insignificant
}

// Periodic reports whether at least one periodic group was detected on the
// direction.
func (r *DirectionReport) Periodic() bool { return len(r.Groups) > 0 }

// DominantPeriod returns the period of the largest group (by occurrence
// count), or 0 when the direction is not periodic.
func (r *DirectionReport) DominantPeriod() float64 {
	best, bestCount := 0.0, 0
	for _, g := range r.Groups {
		if g.Count > bestCount {
			best, bestCount = g.Period, g.Count
		}
	}
	return best
}
