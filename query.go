package mosaic

import (
	"github.com/mosaic-hpc/mosaic/internal/index"
)

// Query engine, re-exported. The index answers boolean category queries
// ("write_on_end AND NOT metadata_high_spike") over categorized traces
// using compact posting lists: trace IDs live in a dense lexicographic
// dictionary, categories map to sorted ordinal arrays, and negation is
// evaluated lazily against the implicit universe. Readers run against
// immutable epoch snapshots, so queries never block ingest.
type (
	// Index is the in-memory category index behind mosaic-serve's
	// /v1/query and /v1/stats.
	Index = index.Index
	// IndexEntry is one trace and its category set, the bulk-load unit.
	IndexEntry = index.Entry
	// CategoryCount is one category's population within an axis.
	CategoryCount = index.CategoryCount
)

// NewIndex returns an empty query index.
func NewIndex() *Index { return index.New() }

// ParseQuery validates a boolean category query without evaluating it:
// the syntax check behind client-side validation and the peer RPC.
func ParseQuery(q string) error { return index.Parse(q) }

// MergeSorted merges sorted, deduplicated ID lists into their sorted
// union — the scatter-gather reduce step, two-pointer for few lists and
// a loser tree for many.
func MergeSorted(lists ...[]string) []string { return index.MergeSorted(lists...) }
