package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
)

// Machine-readable exports of MOSAIC's output (step 4): per-trace JSON —
// as the paper's implementation produced — plus CSV views of the
// aggregate tables for spreadsheet/plotting pipelines.

// Export is the JSON document written for one analyzed corpus.
type Export struct {
	Funnel  core.FunnelStats `json:"funnel"`
	Apps    []ExportApp      `json:"apps"`
	Summary ExportSummary    `json:"summary"`
}

// ExportApp is one deduplicated application in the export.
type ExportApp struct {
	Result *core.Result `json:"result"`
	Runs   int          `json:"runs"`
}

// ExportSummary carries the aggregate distributions.
type ExportSummary struct {
	Apps         int                `json:"apps"`
	Runs         int                `json:"runs"`
	SingleRates  map[string]float64 `json:"single_rates"`
	AllRates     map[string]float64 `json:"all_rates"`
	Correlations Correlations       `json:"correlations"`
	JaccardPairs []ExportPair       `json:"jaccard_pairs"`
}

// ExportPair is one significant Jaccard pair.
type ExportPair struct {
	A       string  `json:"a"`
	B       string  `json:"b"`
	Jaccard float64 `json:"jaccard"`
}

// BuildExport assembles the export document from a funnel, per-app
// results and an aggregator. pairThreshold filters the Jaccard pair list
// (the paper's Figure 5 shows values above 1%).
func BuildExport(funnel core.FunnelStats, apps []ExportApp, agg *Aggregator, pairThreshold float64) *Export {
	summary := ExportSummary{
		Apps:         agg.Apps(),
		Runs:         agg.Runs(),
		SingleRates:  map[string]float64{},
		AllRates:     map[string]float64{},
		Correlations: agg.Correlations(),
	}
	for _, c := range category.All() {
		if r := agg.SingleRate(c); r > 0 {
			summary.SingleRates[string(c)] = r
		}
		if r := agg.AllRate(c); r > 0 {
			summary.AllRates[string(c)] = r
		}
	}
	for _, p := range agg.Co().TopPairs(pairThreshold) {
		summary.JaccardPairs = append(summary.JaccardPairs, ExportPair{
			A: string(p.A), B: string(p.B), Jaccard: p.Jaccard,
		})
	}
	return &Export{Funnel: funnel, Apps: apps, Summary: summary}
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadExport parses a JSON export document.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("report: decoding export: %w", err)
	}
	return &e, nil
}

// WriteCategoriesCSV writes one row per category with single-run and
// all-runs rates: the data behind Tables II/III and Figure 4.
func WriteCategoriesCSV(w io.Writer, agg *Aggregator) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"category", "axis", "direction", "single_rate", "all_rate"}); err != nil {
		return err
	}
	for _, c := range category.All() {
		single, all := agg.SingleRate(c), agg.AllRate(c)
		if single == 0 && all == 0 {
			continue
		}
		rec := []string{
			string(c),
			c.Axis().String(),
			c.Direction().String(),
			strconv.FormatFloat(single, 'f', 6, 64),
			strconv.FormatFloat(all, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJaccardCSV writes the full pairwise Jaccard matrix in long form:
// one row per (a, b) pair with index >= threshold — the data behind
// Figure 5.
func WriteJaccardCSV(w io.Writer, agg *Aggregator, threshold float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"category_a", "category_b", "jaccard"}); err != nil {
		return err
	}
	for _, p := range agg.Co().TopPairs(threshold) {
		rec := []string{string(p.A), string(p.B), strconv.FormatFloat(p.Jaccard, 'f', 6, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAppsCSV writes one row per application: identity, run count,
// volumes, dominant period and assigned categories. The flat file a
// scheduler integration would ingest.
func WriteAppsCSV(w io.Writer, apps []ExportApp) error {
	cw := csv.NewWriter(w)
	header := []string{"user", "app", "runs", "nprocs", "runtime_s",
		"bytes_read", "bytes_written", "write_period_s", "read_period_s", "categories"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range apps {
		r := a.Result
		if r == nil {
			continue
		}
		rec := []string{
			r.User,
			r.App,
			strconv.Itoa(a.Runs),
			strconv.Itoa(int(r.NProcs)),
			strconv.FormatFloat(r.Runtime, 'f', 1, 64),
			strconv.FormatInt(r.Read.TotalBytes, 10),
			strconv.FormatInt(r.Write.TotalBytes, 10),
			strconv.FormatFloat(r.Write.DominantPeriod(), 'f', 1, 64),
			strconv.FormatFloat(r.Read.DominantPeriod(), 'f', 1, 64),
			r.Categories.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
