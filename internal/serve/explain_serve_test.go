package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

func TestServeExplainEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 16, Explain: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := testJob(21)
	blob := encodeJob(t, j)
	if resp, body := postBlob(t, ts.URL, blob); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %s", resp.StatusCode, body)
	}
	id, _, err := store.TraceKey(j)
	if err != nil {
		t.Fatal(err)
	}
	resultBody := waitResult(t, ts.URL, id)

	resp, body := getBody(t, ts.URL+"/v1/explain/"+string(id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("explain Content-Type = %q", ct)
	}
	var e explain.Explanation
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("explain body not an Explanation: %v\n%s", err, body)
	}
	if e.EvidenceCount() == 0 {
		t.Fatal("served explanation has no evidence")
	}
	if len(e.Labels) == 0 {
		t.Fatal("served explanation has no labels")
	}
	// Labels must agree with the served result.
	var res struct {
		Categories []string `json:"categories"`
	}
	if err := json.Unmarshal([]byte(resultBody), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Categories) != len(e.Labels) {
		t.Fatalf("result categories %v != explanation labels %v", res.Categories, e.Labels)
	}

	// Category filter keeps only matching evidence.
	resp, body = getBody(t, ts.URL+"/v1/explain/"+string(id)+"?category=write")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered explain: status %d", resp.StatusCode)
	}
	var f explain.Explanation
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		t.Fatal(err)
	}
	if f.EvidenceCount() == 0 {
		t.Fatal("category filter removed all evidence")
	}
	for _, ev := range f.AllEvidence() {
		if !strings.Contains(ev.Category, "write") {
			t.Fatalf("filter leaked evidence for category %q", ev.Category)
		}
	}
	// A filter matching nothing still answers 200 with empty evidence.
	resp, body = getBody(t, ts.URL+"/v1/explain/"+string(id)+"?category=no-such-category")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-filter explain: status %d", resp.StatusCode)
	}
	var z explain.Explanation
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatal(err)
	}
	if z.EvidenceCount() != 0 {
		t.Fatal("nonsense filter retained evidence")
	}
}

func TestServeExplainStatusCodes(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Explain: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed IDs are rejected before any store lookup.
	for _, bad := range []string{"nope", strings.Repeat("g", 64), strings.Repeat("a", 63)} {
		resp, _ := getBody(t, ts.URL+"/v1/explain/"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("explain %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// A well-formed but unknown ID is a 404.
	unknown := strings.Repeat("ab", 32)
	resp, body := getBody(t, ts.URL+"/v1/explain/"+unknown)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown explain: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "unknown trace") {
		t.Fatalf("unknown explain body: %s", body)
	}
}

// A server with explanation collection disabled serves results but
// answers 404 with a remediation hint for /v1/explain.
func TestServeExplainDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Explain: false})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := testJob(23)
	if resp, body := postBlob(t, ts.URL, encodeJob(t, j)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %s", resp.StatusCode, body)
	}
	id, _, err := store.TraceKey(j)
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, ts.URL, id)

	resp, body := getBody(t, ts.URL+"/v1/explain/"+string(id))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled explain: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "no explanation is stored") {
		t.Fatalf("disabled explain body lacks remediation hint: %s", body)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-Id", reqID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// A valid client ID is echoed unchanged.
	if got := get("abc-123").Header.Get("X-Request-Id"); got != "abc-123" {
		t.Fatalf("valid request ID not echoed: %q", got)
	}
	// No client ID: one is generated (16 hex chars).
	gen := get("").Header.Get("X-Request-Id")
	if len(gen) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex chars", gen)
	}
	// Invalid client IDs are replaced, never echoed. (Only values the
	// Go HTTP client will transmit; control bytes are covered by the
	// direct middleware test below.)
	for _, bad := range []string{strings.Repeat("x", 200), "has\ttab"} {
		got := get(bad).Header.Get("X-Request-Id")
		if got == bad || got == "" {
			t.Fatalf("invalid request ID %q handled as %q", bad, got)
		}
	}
	// Two bare requests get distinct IDs.
	if a, b := get("").Header.Get("X-Request-Id"), get("").Header.Get("X-Request-Id"); a == b {
		t.Fatalf("request IDs not unique: %q", a)
	}
}

func TestValidRequestID(t *testing.T) {
	cases := []struct {
		id   string
		want bool
	}{
		{"", false},
		{"a", true},
		{"abc-123_XYZ.42", true},
		{strings.Repeat("a", 128), true},
		{strings.Repeat("a", 129), false},
		{"has space", false}, // space is <= ' '
		{"tab\there", false},
		{"high\x80bit", false},
		{"del\x7f", false},
	}
	for _, c := range cases {
		if got := validRequestID(c.id); got != c.want {
			t.Errorf("validRequestID(%q) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestRequestIDFrom(t *testing.T) {
	if id := RequestIDFrom(context.Background()); id != "" {
		t.Fatalf("RequestIDFrom(empty ctx) = %q, want empty", id)
	}
	var seen string
	h := RequestIDMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-Id", "ctx-check")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seen != "ctx-check" {
		t.Fatalf("RequestIDFrom(handler ctx) = %q, want ctx-check", seen)
	}

	// A control byte in the header (never transmittable by a real
	// client, but possible from a buggy proxy) is replaced.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header["X-Request-Id"] = []string{"bad\x7fbyte"}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen == "bad\x7fbyte" || seen == "" {
		t.Fatalf("control-byte request ID handled as %q", seen)
	}
	if echoed := rec.Header().Get("X-Request-Id"); echoed != seen {
		t.Fatalf("echoed ID %q != context ID %q", echoed, seen)
	}
}
