package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// Pipeline-level invariants, checked over randomly generated valid traces:
// whatever the workload, the categorization must be structurally sound.

// randomValidJob produces an arbitrary valid trace via a random archetype.
func randomValidJob(seed int64) *darshan.Job {
	rng := rand.New(rand.NewSource(seed))
	archs := gen.DefaultArchetypes()
	arch := archs[rng.Intn(len(archs))]
	p := arch.Params(rng)
	b := gen.NewBuilder(rng, "inv", arch.Exe, uint64(seed), p.Ranks, p.RuntimeBase)
	arch.Build(b, p)
	return b.Job()
}

func countTemporal(s category.Set, dir category.Direction) int {
	n := 0
	for _, k := range category.TemporalKinds() {
		if s.Has(category.Temporal(dir, k)) {
			n++
		}
	}
	return n
}

func countMetadata(s category.Set) int {
	n := 0
	for _, c := range []category.Category{
		category.MetaHighSpike, category.MetaMultipleSpikes,
		category.MetaHighDensity, category.MetaInsignificantLoad,
	} {
		if s.Has(c) {
			n++
		}
	}
	return n
}

// Invariant: exactly one temporality label per direction, at least one
// metadata label, insignificant directions carry no periodicity labels,
// and every label belongs to the closed taxonomy.
func TestCategorizeStructuralInvariants(t *testing.T) {
	all := map[category.Category]bool{}
	for _, c := range category.All() {
		all[c] = true
	}
	cfg := core.DefaultConfig()
	f := func(seed int64) bool {
		j := randomValidJob(seed)
		if darshan.Validate(j) != nil {
			return true // generator bug guarded by other tests
		}
		res, err := core.Categorize(j, cfg)
		if err != nil {
			return false
		}
		s := res.Categories
		if countTemporal(s, category.DirRead) != 1 || countTemporal(s, category.DirWrite) != 1 {
			return false
		}
		if countMetadata(s) < 1 {
			return false
		}
		for _, dir := range []category.Direction{category.DirRead, category.DirWrite} {
			if s.Has(category.Temporal(dir, category.Insignificant)) && s.Has(category.Periodic(dir)) {
				return false
			}
		}
		for c := range s {
			if !all[c] {
				return false
			}
		}
		// Labels mirror the set.
		return len(res.Labels) == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Invariant: categorization is deterministic.
func TestCategorizeDeterministic(t *testing.T) {
	cfg := core.DefaultConfig()
	for seed := int64(0); seed < 10; seed++ {
		j := randomValidJob(seed)
		a, err := core.Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Categories.Equal(b.Categories) {
			t.Fatalf("seed %d: nondeterministic categories: %v vs %v", seed, a.Categories, b.Categories)
		}
		if a.Write.DominantPeriod() != b.Write.DominantPeriod() {
			t.Fatalf("seed %d: nondeterministic period", seed)
		}
	}
}

// Invariant: categorization must not mutate the input job.
func TestCategorizeDoesNotMutateJob(t *testing.T) {
	j := randomValidJob(42)
	before, err := darshan.MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Categorize(j, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	after, err := darshan.MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("Categorize mutated the job")
	}
}

// Invariant: merged totals in the report equal the job's raw totals (no
// bytes invented or lost by clipping valid traces).
func TestCategorizeConservesVolumes(t *testing.T) {
	cfg := core.DefaultConfig()
	for seed := int64(0); seed < 30; seed++ {
		j := randomValidJob(seed)
		if darshan.Validate(j) != nil {
			continue
		}
		if j.HasDXT() {
			continue // DXT volumes checked in dxt tests
		}
		res, err := core.Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Valid generator traces stay within [0, runtime], so clipping
		// must not drop volume.
		if res.Read.TotalBytes != j.TotalBytesRead() {
			t.Fatalf("seed %d: read bytes %d != %d", seed, res.Read.TotalBytes, j.TotalBytesRead())
		}
		if res.Write.TotalBytes != j.TotalBytesWritten() {
			t.Fatalf("seed %d: write bytes %d != %d", seed, res.Write.TotalBytes, j.TotalBytesWritten())
		}
	}
}
