// Package dist implements distributed trace categorization over net/rpc:
// a master streams traces to remote workers, which run the MOSAIC pipeline
// and return results. It substitutes the Dispy cluster parallelization of
// the paper's Python implementation and backs the Section IV-E performance
// experiment in its distributed variant.
//
// Traces travel in the binary log format (internal/darshan), results as
// JSON; both are stable, versioned encodings, so master and workers can
// run different builds.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// ServiceName is the RPC service name workers register.
const ServiceName = "Mosaic"

// CategorizeArgs is the RPC request: one binary-encoded trace and the
// pipeline configuration to apply.
type CategorizeArgs struct {
	Trace  []byte
	Config core.Config
}

// CategorizeReply is the RPC response. Invalid traces are not errors at
// the RPC layer: the master counts them as funnel evictions.
type CategorizeReply struct {
	Valid  bool
	Reason string // corruption reason when !Valid
	Result []byte // JSON-encoded core.Result when Valid
}

// Service is the worker-side RPC receiver.
type Service struct{}

// Categorize decodes, validates and categorizes one trace.
func (s *Service) Categorize(args *CategorizeArgs, reply *CategorizeReply) error {
	j, err := darshan.UnmarshalBinary(args.Trace)
	if err != nil {
		reply.Valid = false
		reply.Reason = "unreadable: " + err.Error()
		return nil
	}
	if err := darshan.Validate(j); err != nil {
		reply.Valid = false
		reply.Reason = err.Error()
		return nil
	}
	res, err := core.Categorize(j, args.Config)
	if err != nil {
		return fmt.Errorf("dist: categorize job %d: %w", j.JobID, err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding result: %w", err)
	}
	reply.Valid = true
	reply.Result = data
	return nil
}

// Serve registers the service on a fresh RPC server and accepts
// connections on l until it is closed. It blocks.
func Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, &Service{}); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go srv.ServeConn(conn)
	}
}

// ListenAndServe serves workers on the given TCP address. It blocks.
func ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(l)
}

// Client is a connection to one worker.
type Client struct {
	c *rpc.Client
}

// Dial connects to a worker at addr.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// Categorize sends one trace to the worker. An invalid trace returns
// (nil, reason, nil).
func (c *Client) Categorize(j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return nil, "", err
	}
	args := &CategorizeArgs{Trace: data, Config: cfg}
	var reply CategorizeReply
	if err := c.c.Call(ServiceName+".Categorize", args, &reply); err != nil {
		return nil, "", fmt.Errorf("dist: RPC: %w", err)
	}
	if !reply.Valid {
		return nil, reply.Reason, nil
	}
	var res core.Result
	if err := json.Unmarshal(reply.Result, &res); err != nil {
		return nil, "", fmt.Errorf("dist: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	return &res, "", nil
}

// Outcome is the master-side result for one submitted trace.
type Outcome struct {
	Result *core.Result // nil when the trace was invalid
	Reason string       // eviction reason for invalid traces
	Err    error        // transport or pipeline failure
}

// Master fans traces out over a set of workers, each handling several
// in-flight requests, with failover across workers.
type Master struct {
	clients []*Client
	cfg     core.Config
	dead    []atomic.Bool // dead[i]: worker i hit a transport error
}

// NewMaster wraps the given worker connections.
func NewMaster(clients []*Client, cfg core.Config) *Master {
	return &Master{clients: clients, cfg: cfg, dead: make([]atomic.Bool, len(clients))}
}

// LiveWorkers returns how many workers have not failed.
func (m *Master) LiveWorkers() int {
	n := 0
	for i := range m.dead {
		if !m.dead[i].Load() {
			n++
		}
	}
	return n
}

// dispatch categorizes one job with failover: starting from the stream's
// home worker, it tries every live worker in round-robin order, marking
// workers dead on transport errors. When every worker has failed, the
// last error is reported in the outcome.
func (m *Master) dispatch(j *darshan.Job, home int) Outcome {
	n := len(m.clients)
	var lastErr error
	for k := 0; k < n; k++ {
		ci := (home + k) % n
		if m.dead[ci].Load() {
			continue
		}
		res, reason, err := m.clients[ci].Categorize(j, m.cfg)
		if err != nil {
			m.dead[ci].Store(true)
			lastErr = err
			continue
		}
		return Outcome{Result: res, Reason: reason}
	}
	if lastErr == nil {
		lastErr = errors.New("dist: no live workers")
	}
	return Outcome{Err: lastErr}
}

// Run streams jobs to the workers with the given per-worker concurrency
// and sends one Outcome per job on the returned channel, closed when the
// input channel is exhausted. Order is not preserved. Transport failures
// fail over to the remaining workers; a job is reported with an error
// only when every worker has failed.
func (m *Master) Run(jobs <-chan *darshan.Job, perWorker int) <-chan Outcome {
	if perWorker < 1 {
		perWorker = 2
	}
	out := make(chan Outcome, len(m.clients)*perWorker)
	var wg sync.WaitGroup
	for ci := range m.clients {
		for s := 0; s < perWorker; s++ {
			wg.Add(1)
			go func(home int) {
				defer wg.Done()
				for j := range jobs {
					out <- m.dispatch(j, home)
				}
			}(ci)
		}
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
