package core

import (
	"errors"
	"sort"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Pre-processing (Section III-B1): validate every trace, evict corrupted
// ones, and deduplicate executions per (user, application), keeping only
// the heaviest (most I/O-intensive) run. On the Blue Waters corpus this
// funnel went from 462,502 traces to 24,606 retained entries (Figure 3).

// FunnelStats summarizes the pre-processing funnel.
type FunnelStats struct {
	Total      int            `json:"total"`       // traces seen
	Corrupted  int            `json:"corrupted"`   // evicted by validation
	Valid      int            `json:"valid"`       // Total - Corrupted
	UniqueApps int            `json:"unique_apps"` // retained after deduplication
	ByReason   map[string]int `json:"by_reason"`   // eviction reason -> count
}

// CorruptedFraction returns Corrupted/Total (0 when empty).
func (s *FunnelStats) CorruptedFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Corrupted) / float64(s.Total)
}

// UniqueFraction returns UniqueApps/Valid (0 when empty).
func (s *FunnelStats) UniqueFraction() float64 {
	if s.Valid == 0 {
		return 0
	}
	return float64(s.UniqueApps) / float64(s.Valid)
}

// AppGroup is the deduplicated unit: all valid executions of one
// application by one user, represented by the heaviest run.
type AppGroup struct {
	App      string
	User     string
	Runs     int          // number of valid executions in the group
	Heaviest *darshan.Job // the run MOSAIC analyzes
}

// Preprocessor is a streaming implementation of the funnel: feed every
// trace with Add, then read Groups and Stats. It never holds more than one
// job per application group, so memory stays proportional to the number
// of distinct applications, not the corpus size — this is how the
// 300 GB-of-RAM bottleneck of the paper's Python implementation is
// avoided.
type Preprocessor struct {
	stats  FunnelStats
	groups map[string]*AppGroup
}

// NewPreprocessor returns an empty funnel.
func NewPreprocessor() *Preprocessor {
	return &Preprocessor{
		stats:  FunnelStats{ByReason: make(map[string]int)},
		groups: make(map[string]*AppGroup),
	}
}

// Add feeds one trace into the funnel. readErr, when non-nil, is the
// error that prevented decoding the trace (decode failures count as
// corrupted). Add reports whether the trace was accepted as valid.
func (p *Preprocessor) Add(j *darshan.Job, readErr error) bool {
	p.stats.Total++
	if readErr != nil {
		p.stats.Corrupted++
		p.stats.ByReason["unreadable"]++
		return false
	}
	if err := darshan.Validate(j); err != nil {
		p.stats.Corrupted++
		var verr *darshan.ValidationError
		if errors.As(err, &verr) {
			p.stats.ByReason[verr.Kind.String()]++
		} else {
			p.stats.ByReason["invalid"]++
		}
		return false
	}
	p.stats.Valid++
	key := j.AppKey()
	g, ok := p.groups[key]
	if !ok {
		p.groups[key] = &AppGroup{App: j.AppName(), User: j.User, Runs: 1, Heaviest: j}
		return true
	}
	g.Runs++
	if j.Weight() > g.Heaviest.Weight() {
		g.Heaviest = j
	}
	return true
}

// Groups returns the deduplicated application groups sorted by (user,
// app) for deterministic downstream processing.
func (p *Preprocessor) Groups() []*AppGroup {
	out := make([]*AppGroup, 0, len(p.groups))
	for _, g := range p.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].App < out[j].App
	})
	return out
}

// Stats returns the funnel statistics; UniqueApps reflects the current
// group count.
func (p *Preprocessor) Stats() FunnelStats {
	s := p.stats
	s.UniqueApps = len(p.groups)
	// Copy the reason map so callers cannot mutate internal state.
	s.ByReason = make(map[string]int, len(p.stats.ByReason))
	for k, v := range p.stats.ByReason {
		s.ByReason[k] = v
	}
	return s
}

// Preprocess runs the funnel over a slice of jobs (all assumed readable).
// Convenience for tests and examples; large corpora should stream through
// a Preprocessor directly.
func Preprocess(jobs []*darshan.Job) ([]*AppGroup, FunnelStats) {
	p := NewPreprocessor()
	for _, j := range jobs {
		p.Add(j, nil)
	}
	return p.Groups(), p.Stats()
}
