package core

import (
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// explainCorpus generates a small clean synthetic corpus spanning every
// generator archetype.
func explainCorpus(t testing.TB) []*darshan.Job {
	t.Helper()
	c := gen.Plan(gen.Profile{
		Apps:           48,
		Seed:           11,
		CorruptionRate: 0,
		MaxRunsPerApp:  1,
		Users:          12,
		Archetypes:     gen.DefaultArchetypes(),
	})
	var jobs []*darshan.Job
	for _, run := range c.Generate() {
		if run.Corrupted {
			continue
		}
		if err := darshan.Validate(run.Job); err != nil {
			continue
		}
		jobs = append(jobs, run.Job)
	}
	if len(jobs) < 20 {
		t.Fatalf("synthetic corpus too small: %d jobs", len(jobs))
	}
	return jobs
}

// catDirection maps a category to its direction report, or "" for
// metadata categories.
func catDirection(c category.Category) string {
	s := string(c)
	switch {
	case strings.HasPrefix(s, "read_"):
		return "read"
	case strings.HasPrefix(s, "write_"):
		return "write"
	default:
		return ""
	}
}

// TestExplainInvariants is the acceptance gate of the explain
// subsystem, checked over a synthetic corpus spanning every archetype:
//
//  1. CategorizeExplained assigns exactly the labels Categorize does;
//  2. every assigned label is backed by at least one passing evidence
//     entry naming it;
//  3. every category of the closed taxonomy that was NOT assigned —
//     on a direction that crossed the significance threshold, plus all
//     metadata categories — carries at least one failing rule (or
//     recorded near-miss) explaining the rejection.
func TestExplainInvariants(t *testing.T) {
	cfg := DefaultConfig()
	all := category.All()
	for _, j := range explainCorpus(t) {
		plain, err := Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, exp, err := CategorizeExplained(j, cfg, explain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// (1) identical labels.
		if len(res.Labels) != len(plain.Labels) {
			t.Fatalf("job %d: labels diverge: %v vs %v", j.JobID, res.Labels, plain.Labels)
		}
		for i := range res.Labels {
			if res.Labels[i] != plain.Labels[i] {
				t.Fatalf("job %d: labels diverge: %v vs %v", j.JobID, res.Labels, plain.Labels)
			}
		}
		// (2) every assigned label is supported.
		for _, l := range res.Labels {
			if len(exp.Supporting(l)) == 0 {
				t.Errorf("job %d: label %q has no supporting evidence", j.JobID, l)
			}
		}
		// (3) every rejected category is explained.
		sig := map[string]bool{
			"read":  res.Read.Significant(),
			"write": res.Write.Significant(),
		}
		for _, c := range all {
			if res.Categories.Has(c) {
				continue
			}
			if dir := catDirection(c); dir != "" && !sig[dir] {
				// Insignificant directions are rejected wholesale by the
				// significance rule; per-category rules never ran.
				continue
			}
			against := exp.Against(string(c))
			nearMiss := false
			for _, ev := range against {
				if ev.NearMiss {
					nearMiss = true
				}
			}
			if len(against) == 0 && !nearMiss {
				t.Errorf("job %d: rejected category %q has no failing rule", j.JobID, c)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestExplainInsignificantDirectionIsExplained pins invariant (3)'s
// escape hatch: an insignificant direction still carries the passing
// significance rule for its _insignificant label and a failing entry is
// not required for its other categories.
func TestExplainInsignificantDirectionIsExplained(t *testing.T) {
	j := &darshan.Job{
		JobID: 9, User: "u", Exe: "/bin/w", NProcs: 4,
		Start: 0, End: 1200, Runtime: 1200,
	}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/out",
		C: darshan.Counters{
			Opens: 4, Closes: 4,
			Writes: 6, BytesWritten: 1 << 30,
			OpenStart: 9, OpenEnd: 10, WriteStart: 10, WriteEnd: 90,
			CloseStart: 91, CloseEnd: 92,
		},
	})
	res, exp, err := CategorizeExplained(j, DefaultConfig(), explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Read.Significant() {
		t.Fatal("read direction unexpectedly significant")
	}
	if len(exp.Supporting("read_insignificant")) == 0 {
		t.Fatal("read_insignificant not supported by the significance rule")
	}
	if exp.Read == nil || exp.Read.Preprocess.RawOps != 0 {
		t.Fatal("read preprocess funnel missing for zero-byte direction")
	}
}

// BenchmarkCategorizePlain is the no-explanation baseline: the nil
// collector must keep this path allocation- and branch-identical to the
// pre-explain pipeline (PR acceptance: <= 1% overhead when disabled).
func BenchmarkCategorizePlain(b *testing.B) {
	j := checkpointJob()
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Categorize(j, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCategorizeExplained measures the opt-in provenance cost on
// the same trace, for comparison against the plain baseline.
func BenchmarkCategorizeExplained(b *testing.B) {
	j := checkpointJob()
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CategorizeExplained(j, cfg, explain.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
