// Package report aggregates per-trace categorization results into the
// statistics MOSAIC outputs (step 4 of the workflow): single-run and
// all-runs category distributions, periodicity and temporality tables,
// the metadata category distribution and the Jaccard co-occurrence
// heatmap. It also renders them as text tables mirroring the paper's
// Tables II/III and Figures 3/4/5.
package report

import (
	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/stats"
)

// Aggregator accumulates categorization results. Each result represents
// one deduplicated application (the heaviest run); runs is the number of
// executions the application had, used to weight the "all runs"
// distributions. The paper contrasts the two views: single-run describes
// the behaviour of applications, all-runs the load on the file system.
type Aggregator struct {
	apps int
	runs int

	single map[category.Category]int // apps carrying the category
	all    map[category.Category]int // runs carrying it (weighted)

	co *stats.CoMatrix // app-level co-occurrence for Jaccard/conditionals

	readPeriods  []float64 // dominant read periods of periodic apps
	writePeriods []float64

	writeMagSingle map[category.PeriodMagnitude]int
	writeMagAll    map[category.PeriodMagnitude]int
	readMagSingle  map[category.PeriodMagnitude]int
	readMagAll     map[category.PeriodMagnitude]int
}

// NewAggregator returns an empty aggregator tracking the full closed
// category set.
func NewAggregator() *Aggregator {
	return &Aggregator{
		single:         make(map[category.Category]int),
		all:            make(map[category.Category]int),
		co:             stats.NewCoMatrix(category.All()),
		writeMagSingle: make(map[category.PeriodMagnitude]int),
		writeMagAll:    make(map[category.PeriodMagnitude]int),
		readMagSingle:  make(map[category.PeriodMagnitude]int),
		readMagAll:     make(map[category.PeriodMagnitude]int),
	}
}

// Add records one application's result with its execution count.
func (a *Aggregator) Add(res *core.Result, runs int) {
	if runs < 1 {
		runs = 1
	}
	a.apps++
	a.runs += runs
	for c := range res.Categories {
		a.single[c]++
		a.all[c] += runs
	}
	a.co.Observe(res.Categories)

	if res.Write.Periodic() {
		a.writePeriods = append(a.writePeriods, res.Write.DominantPeriod())
		m := category.MagnitudeOf(res.Write.DominantPeriod())
		a.writeMagSingle[m]++
		a.writeMagAll[m] += runs
	}
	if res.Read.Periodic() {
		a.readPeriods = append(a.readPeriods, res.Read.DominantPeriod())
		m := category.MagnitudeOf(res.Read.DominantPeriod())
		a.readMagSingle[m]++
		a.readMagAll[m] += runs
	}
}

// Apps returns the number of applications aggregated.
func (a *Aggregator) Apps() int { return a.apps }

// Runs returns the total number of executions represented.
func (a *Aggregator) Runs() int { return a.runs }

// SingleRate returns the fraction of applications carrying the category.
func (a *Aggregator) SingleRate(c category.Category) float64 {
	if a.apps == 0 {
		return 0
	}
	return float64(a.single[c]) / float64(a.apps)
}

// AllRate returns the fraction of executions carrying the category.
func (a *Aggregator) AllRate(c category.Category) float64 {
	if a.runs == 0 {
		return 0
	}
	return float64(a.all[c]) / float64(a.runs)
}

// Co exposes the application-level co-occurrence matrix.
func (a *Aggregator) Co() *stats.CoMatrix { return a.co }

// TemporalityRow is one row of Table III: the distribution of the main
// temporality labels for one direction and one population view.
type TemporalityRow struct {
	View          string  `json:"view"` // "single" or "all"
	Insignificant float64 `json:"insignificant"`
	OnStart       float64 `json:"on_start"`
	OnEnd         float64 `json:"on_end"`
	Steady        float64 `json:"steady"`
	Others        float64 `json:"others"`
}

// Temporality builds the Table III rows for a direction.
func (a *Aggregator) Temporality(dir category.Direction) (single, all TemporalityRow) {
	build := func(rate func(category.Category) float64, view string) TemporalityRow {
		row := TemporalityRow{View: view}
		row.Insignificant = rate(category.Temporal(dir, category.Insignificant))
		row.OnStart = rate(category.Temporal(dir, category.OnStart))
		row.OnEnd = rate(category.Temporal(dir, category.OnEnd))
		row.Steady = rate(category.Temporal(dir, category.Steady))
		for _, k := range []category.TemporalKind{category.AfterStart, category.BeforeEnd, category.AfterStartBeforeEnd} {
			row.Others += rate(category.Temporal(dir, k))
		}
		return row
	}
	return build(a.SingleRate, "single"), build(a.AllRate, "all")
}

// PeriodicityRow is one row of Table II: periodic vs non-periodic shares
// and the period-magnitude breakdown for one population view.
type PeriodicityRow struct {
	View        string                               `json:"view"`
	NonPeriodic float64                              `json:"non_periodic"`
	Periodic    float64                              `json:"periodic"`
	Magnitudes  map[category.PeriodMagnitude]float64 `json:"-"`
}

// Periodicity builds the Table II rows for a direction.
func (a *Aggregator) Periodicity(dir category.Direction) (single, all PeriodicityRow) {
	base := category.Periodic(dir)
	magSingle, magAll := a.writeMagSingle, a.writeMagAll
	if dir == category.DirRead {
		magSingle, magAll = a.readMagSingle, a.readMagAll
	}
	mk := func(rate float64, mags map[category.PeriodMagnitude]int, total int, view string) PeriodicityRow {
		row := PeriodicityRow{View: view, Periodic: rate, NonPeriodic: 1 - rate, Magnitudes: map[category.PeriodMagnitude]float64{}}
		if total > 0 {
			for m, n := range mags {
				row.Magnitudes[m] = float64(n) / float64(total)
			}
		}
		return row
	}
	return mk(a.SingleRate(base), magSingle, a.apps, "single"),
		mk(a.AllRate(base), magAll, a.runs, "all")
}

// MetadataDist returns the single-run and all-runs rates of every metadata
// category (Figure 4).
func (a *Aggregator) MetadataDist() (single, all map[category.Category]float64) {
	single = make(map[category.Category]float64)
	all = make(map[category.Category]float64)
	for _, c := range []category.Category{
		category.MetaHighSpike, category.MetaMultipleSpikes,
		category.MetaHighDensity, category.MetaInsignificantLoad,
	} {
		single[c] = a.SingleRate(c)
		all[c] = a.AllRate(c)
	}
	return single, all
}

// Periods returns the dominant detected periods (seconds) for the
// direction, for reporting period ranges like Table II's Min/Hour split.
func (a *Aggregator) Periods(dir category.Direction) []float64 {
	if dir == category.DirRead {
		return a.readPeriods
	}
	return a.writePeriods
}

// Correlations gathers the Section IV-D statements so the bench can print
// paper-vs-measured values.
type Correlations struct {
	// MetaDenseReadStartOrWriteEnd: P(read_on_start ∪ write_on_end | high
	// density and high spikes).
	MetaDenseReadStartOrWriteEnd float64 `json:"meta_dense_read_start_or_write_end"`
	// InsigReadAlsoInsigWrite: P(write insignificant | read
	// insignificant) — paper: 95%.
	InsigReadAlsoInsigWrite float64 `json:"insig_read_also_insig_write"`
	// ReadStartWritesEnd: P(write_on_end | read_on_start) — paper: 66%.
	ReadStartWritesEnd float64 `json:"read_start_writes_end"`
	// PeriodicWriteLowBusy: P(low busy | write periodic) — paper: 96%.
	PeriodicWriteLowBusy float64 `json:"periodic_write_low_busy"`
}

// Correlations computes the headline correlations over the application
// population.
func (a *Aggregator) Correlations() Correlations {
	co := a.co
	c := Correlations{
		InsigReadAlsoInsigWrite: co.Conditional(
			category.Temporal(category.DirWrite, category.Insignificant),
			category.Temporal(category.DirRead, category.Insignificant)),
		ReadStartWritesEnd: co.Conditional(
			category.Temporal(category.DirWrite, category.OnEnd),
			category.Temporal(category.DirRead, category.OnStart)),
	}
	// P(low busy | periodic write): low-busy carriers among periodic
	// writers.
	if n := co.Count(category.Periodic(category.DirWrite)); n > 0 {
		c.PeriodicWriteLowBusy = co.Conditional(
			category.PeriodicBusy(category.DirWrite, false),
			category.Periodic(category.DirWrite))
	}
	// Density+spikes → read on start or write on end: approximate the
	// union with the max of the two conditionals (the matrix stores
	// pairwise counts only; exact union would need triple counts).
	p1 := co.Conditional(category.Temporal(category.DirRead, category.OnStart), category.MetaHighDensity)
	p2 := co.Conditional(category.Temporal(category.DirWrite, category.OnEnd), category.MetaHighDensity)
	if p1 > p2 {
		c.MetaDenseReadStartOrWriteEnd = p1
	} else {
		c.MetaDenseReadStartOrWriteEnd = p2
	}
	return c
}
