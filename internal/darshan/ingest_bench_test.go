package darshan_test

// Benchmarks of the zero-copy ingest hot path. The pinned sub-benchmarks
// (BenchmarkIngest/decode_warm, /decode_gzip, /encode, /store_append) are
// defined once in internal/benchsuite and shared with `mosaic-bench
// -bench-json`, which records them into the committed BENCH_ingest.json
// baseline that CI's regression gate compares against.
//
// Run locally with:
//
//	go test ./internal/darshan -bench BenchmarkIngest -run ^$

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/benchsuite"
)

func BenchmarkIngest(b *testing.B) {
	b.Run("decode_warm", benchsuite.IngestDecodeWarm)
	b.Run("decode_gzip", benchsuite.IngestDecodeGzip)
	b.Run("encode", benchsuite.IngestEncode)
	b.Run("store_append", benchsuite.IngestStoreAppend)
}
