package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Profile describes a synthetic corpus: how many distinct applications to
// synthesize, the archetype mixture, the trace corruption rate (the Blue
// Waters funnel evicted 32% of traces) and the determinism seed.
type Profile struct {
	Apps           int     // number of unique (user, application) pairs
	Seed           int64   // master seed; same profile ⇒ same corpus
	CorruptionRate float64 // fraction of traces corrupted in storage
	MaxRunsPerApp  int     // cap on the geometric run-count tail
	Users          int     // distinct users
	Archetypes     []Archetype
}

// DefaultProfile returns a Blue-Waters-shaped corpus scaled to run on a
// laptop: ~1,500 applications whose execution counts expand to tens of
// thousands of traces.
func DefaultProfile() Profile {
	return Profile{
		Apps:           1500,
		Seed:           1,
		CorruptionRate: 0.32,
		MaxRunsPerApp:  3000,
		Users:          180,
		Archetypes:     DefaultArchetypes(),
	}
}

// App is one planned application: its archetype, fixed parameters, and how
// many times it ran.
type App struct {
	Index     int
	Archetype Archetype
	Params    AppParams
	User      string
	Exe       string
	Runs      int
	seed      int64
}

// Run is one generated execution.
type Run struct {
	Job       *darshan.Job
	App       *App
	RunIndex  int
	Corrupted bool // the stored trace was corrupted
}

// Corpus is a deterministic plan of applications and runs; traces are
// generated on demand so that corpora far larger than memory can be
// streamed (the paper's Python pipeline needed 300 GB of RAM — we do not).
type Corpus struct {
	Profile Profile
	Apps    []*App
	total   int
}

// Plan lays out the corpus: archetypes are assigned to applications
// proportionally to their AppShare, per-application parameters are drawn,
// and run counts are sampled from a geometric tail with the archetype's
// mean.
func Plan(p Profile) *Corpus {
	if p.Apps <= 0 {
		p.Apps = 1
	}
	if p.Users <= 0 {
		p.Users = 1
	}
	if p.MaxRunsPerApp <= 0 {
		p.MaxRunsPerApp = 3000
	}
	if len(p.Archetypes) == 0 {
		p.Archetypes = DefaultArchetypes()
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Corpus{Profile: p}

	// Deterministic largest-remainder apportionment of apps to archetypes.
	counts := apportion(p.Apps, p.Archetypes)
	idx := 0
	for ai, arch := range p.Archetypes {
		for k := 0; k < counts[ai]; k++ {
			app := &App{
				Index:     idx,
				Archetype: arch,
				Params:    arch.Params(rng),
				User:      fmt.Sprintf("user%03d", rng.Intn(p.Users)),
				Exe:       fmt.Sprintf("%s-v%d", arch.Exe, idx),
				Runs:      geometricRuns(rng, arch.MeanRuns, p.MaxRunsPerApp),
				seed:      rng.Int63(),
			}
			c.Apps = append(c.Apps, app)
			c.total += app.Runs
			idx++
		}
	}
	return c
}

// apportion distributes n apps over the archetypes proportionally to
// AppShare using largest remainders.
func apportion(n int, archetypes []Archetype) []int {
	var shareSum float64
	for _, a := range archetypes {
		shareSum += a.AppShare
	}
	counts := make([]int, len(archetypes))
	rema := make([]float64, len(archetypes))
	used := 0
	for i, a := range archetypes {
		exact := float64(n) * a.AppShare / shareSum
		counts[i] = int(exact)
		rema[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < n {
		best := 0
		for i := 1; i < len(rema); i++ {
			if rema[i] > rema[best] {
				best = i
			}
		}
		counts[best]++
		rema[best] = -1
		used++
	}
	return counts
}

// geometricRuns samples a run count with the given mean: P(k) declines
// geometrically, producing the heavy tail of "the same application run
// several hundred times" the paper describes.
func geometricRuns(rng *rand.Rand, mean float64, cap int) int {
	if mean <= 1 {
		return 1
	}
	p := 1 - 1/mean
	k := 1
	for rng.Float64() < p && k < cap {
		k++
	}
	return k
}

// TotalRuns returns the number of traces the corpus will generate.
func (c *Corpus) TotalRuns() int { return c.total }

// GenerateRun materializes one execution of one application. Runs are
// independent and deterministic in (profile seed, app index, run index),
// so corpora can be generated in parallel and in any order.
func (c *Corpus) GenerateRun(app *App, runIdx int) Run {
	rng := rand.New(rand.NewSource(app.seed ^ (int64(runIdx)+1)*0x7F4A7C159E3779B9))
	runtime := runJitter(rng, app.Params.RuntimeBase)
	jobID := uint64(app.Index)*1_000_000 + uint64(runIdx) + 1
	b := NewBuilder(rng, app.User, app.Exe, jobID, app.Params.Ranks, runtime)
	b.Annotate(ArchetypeKey, app.Archetype.Name)
	app.Archetype.Build(b, app.Params)
	job := b.Job()

	run := Run{Job: job, App: app, RunIndex: runIdx}
	if rng.Float64() < c.Profile.CorruptionRate {
		Corrupt(job, rng)
		run.Corrupted = true
	}
	return run
}

// Each streams every run of the corpus in plan order. The callback returns
// false to stop early.
func (c *Corpus) Each(fn func(Run) bool) {
	for _, app := range c.Apps {
		for r := 0; r < app.Runs; r++ {
			if !fn(c.GenerateRun(app, r)) {
				return
			}
		}
	}
}

// Generate materializes the whole corpus in memory. Only for small
// profiles (tests, disk export); large experiments stream with Each.
func (c *Corpus) Generate() []Run {
	out := make([]Run, 0, c.total)
	c.Each(func(r Run) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Reservoir samples k runs uniformly from the corpus stream without
// materializing it (Vitter's algorithm R). Used by the accuracy
// experiment's 512-trace sampling protocol.
func (c *Corpus) Reservoir(k int, seed int64) []Run {
	rng := rand.New(rand.NewSource(seed))
	sample := make([]Run, 0, k)
	n := 0
	c.Each(func(r Run) bool {
		if len(sample) < k {
			sample = append(sample, r)
		} else if j := rng.Intn(n + 1); j < k {
			sample[j] = r
		}
		n++
		return true
	})
	return sample
}
