package core

import (
	"encoding/json"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func ev(offset, length int64, t float64) darshan.DXTEvent {
	return darshan.DXTEvent{Start: t, End: t + 1, Offset: offset, Length: length}
}

func TestClassifySpatialSequential(t *testing.T) {
	events := []darshan.DXTEvent{ev(0, 100, 1), ev(100, 100, 2), ev(200, 100, 3), ev(300, 100, 4)}
	if got := classifySpatial(events); got != SpatialSequential {
		t.Fatalf("got %v", got)
	}
}

func TestClassifySpatialStrided(t *testing.T) {
	// 100-byte accesses every 1000 bytes: constant gap of 900.
	events := []darshan.DXTEvent{ev(0, 100, 1), ev(1000, 100, 2), ev(2000, 100, 3), ev(3000, 100, 4)}
	if got := classifySpatial(events); got != SpatialStrided {
		t.Fatalf("got %v", got)
	}
}

func TestClassifySpatialRandom(t *testing.T) {
	events := []darshan.DXTEvent{ev(5000, 10, 1), ev(10, 10, 2), ev(90000, 10, 3), ev(700, 10, 4), ev(42000, 10, 5)}
	if got := classifySpatial(events); got != SpatialRandom {
		t.Fatalf("got %v", got)
	}
}

func TestClassifySpatialTooFew(t *testing.T) {
	if got := classifySpatial([]darshan.DXTEvent{ev(0, 1, 1), ev(1, 1, 2)}); got != SpatialUnknown {
		t.Fatalf("got %v", got)
	}
	if got := classifySpatial(nil); got != SpatialUnknown {
		t.Fatalf("got %v", got)
	}
}

func TestSpatialPatternStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []SpatialPattern{SpatialUnknown, SpatialSequential, SpatialStrided, SpatialRandom} {
		s := p.String()
		if s == "" || seen[s] {
			t.Fatalf("bad string for %d: %q", p, s)
		}
		seen[s] = true
		if b, err := p.MarshalText(); err != nil || string(b) != s {
			t.Fatal("MarshalText mismatch")
		}
	}
	if SpatialPattern(77).String() == "" {
		t.Fatal("unknown value should render")
	}
}

func TestCategorizeReportsSpatialOnDXT(t *testing.T) {
	j := &darshan.Job{
		JobID: 1, User: "u", Exe: "/bin/sp", NProcs: 4,
		Start: 0, End: 1000, Runtime: 1000,
	}
	rec := darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/f",
		C: darshan.Counters{
			Writes: 4, BytesWritten: 400 << 20,
			WriteStart: 100, WriteEnd: 900,
		},
	}
	for i := int64(0); i < 6; i++ {
		rec.DXTWrites = append(rec.DXTWrites, darshan.DXTEvent{
			Start: 100 + float64(i)*150, End: 110 + float64(i)*150,
			Offset: i * (100 << 20) / 6, Length: 100 << 20 / 6,
		})
	}
	// Make the offsets exactly sequential.
	var off int64
	for i := range rec.DXTWrites {
		rec.DXTWrites[i].Offset = off
		off += rec.DXTWrites[i].Length
	}
	j.Records = append(j.Records, rec)
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.Spatial != SpatialSequential {
		t.Fatalf("spatial = %v", res.Write.Spatial)
	}
	// Aggregate-only job: unknown.
	j2 := &darshan.Job{JobID: 2, User: "u", Exe: "/bin/sp", NProcs: 4, Runtime: 100, End: 100}
	res2, err := Categorize(j2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Write.Spatial != SpatialUnknown {
		t.Fatalf("aggregate spatial = %v", res2.Write.Spatial)
	}
}

func TestSpatialPatternJSONRoundTrip(t *testing.T) {
	for _, p := range []SpatialPattern{SpatialUnknown, SpatialSequential, SpatialStrided, SpatialRandom} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var got SpatialPattern
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v does not round-trip: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip changed %v to %v", p, got)
		}
	}
	var bad SpatialPattern
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Fatal("bogus pattern accepted")
	}
}
