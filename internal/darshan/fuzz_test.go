package darshan

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for every parser that faces the network (serve ingest
// sniffs uploads into exactly these three decoders). The contract under
// test: torn or hostile input must yield an error, never a panic or an
// unbounded allocation, and anything that decodes must re-encode
// canonically to a fixed point.

// fuzzSeeds returns representative valid encodings: canonical raw
// bodies, gzip file bodies, a v1-style body (no DXT lists), and an
// empty job.
func fuzzSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	j := sampleJob()
	canonical, err := MarshalBinary(j)
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, canonical)
	var gz bytes.Buffer
	if err := WriteBinary(&gz, j); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, gz.Bytes())
	dxt := sampleJob()
	dxt.Records[0].DXTReads = []DXTEvent{{Start: 1, End: 2, Offset: 0, Length: 4096}}
	dxt.Records[0].DXTWrites = []DXTEvent{{Start: 3, End: 4, Offset: 4096, Length: 4096}}
	withDXT, err := MarshalBinary(dxt)
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, withDXT)
	empty, err := MarshalBinary(&Job{Runtime: 1, NProcs: 1})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, empty)
	// A hand-built version-1 header over the same body layout (DXT lists
	// absent in v1 bodies: drop the two trailing zero-length lists of
	// the single-record canonical job).
	v1 := append([]byte{}, canonical...)
	v1[4], v1[5] = 1, 0
	seeds = append(seeds, v1[:len(v1)-8])
	return seeds
}

func FuzzDecodeBinary(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte("MOSD"))
	f.Add([]byte("MOSD\x02\x00\x00\x00"))
	f.Add([]byte("not a log"))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to a canonical fixed point,
		// bit-for-bit (floats compared through their encodings, so NaN
		// timestamps — valid in corrupted traces — round-trip too).
		enc1, err := MarshalBinary(j)
		if err != nil {
			t.Fatalf("re-encoding decoded job: %v", err)
		}
		j2, err := UnmarshalBinary(enc1)
		if err != nil {
			t.Fatalf("decoding canonical re-encoding: %v", err)
		}
		enc2, err := MarshalBinary(j2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		// DecodeInto over a dirty reused job must agree with a fresh
		// decode: stale records, DXT lists and metadata must not leak.
		dirty := sampleJob()
		dirty.Records[0].DXTReads = []DXTEvent{{Start: 9, End: 9, Length: 9}}
		dirty.Metadata = map[string]string{"stale": "value"}
		if err := DecodeInto(dirty, data); err != nil {
			t.Fatalf("DecodeInto failed where UnmarshalBinary succeeded: %v", err)
		}
		enc3, err := MarshalBinary(dirty)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc3) {
			t.Fatal("DecodeInto into a reused job diverges from a fresh decode")
		}
	})
}

func FuzzReadParserText(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteParserText(&buf, sampleJob()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# darshan log version: 3.41\n")
	f.Add("POSIX\t0\t42\tPOSIX_OPENS\t3\t/scratch/x\n")
	f.Add("nprocs: -1\nrun time: 1e309\n")
	f.Fuzz(func(t *testing.T, text string) {
		j, err := ReadParserText(strings.NewReader(text))
		if err != nil || len(j.Records) == 0 {
			return
		}
		var out bytes.Buffer
		if err := WriteParserText(&out, j); err != nil {
			t.Fatalf("re-encoding parsed text: %v", err)
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleJob()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"records":[{"module":"POSIX","path":"x","rank":0,"counters":{}}]}`)
	f.Add(`{"nprocs": 1e99}`)
	f.Fuzz(func(t *testing.T, text string) {
		j, err := ReadJSON(strings.NewReader(text))
		if err != nil {
			return
		}
		if _, err := MarshalBinary(j); err != nil {
			// JSON places no length limit on strings; only the binary
			// string limit may reject here.
			if !strings.Contains(err.Error(), "string too long") {
				t.Fatalf("binary encoding of JSON-decoded job: %v", err)
			}
		}
	})
}
