// Command mosaic-bench regenerates every table and figure of the MOSAIC
// paper's evaluation on the synthetic Blue-Waters-shaped corpus and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	mosaic-bench [-exp all|fig3|table2|table3|fig4|fig5|accuracy|stability|perf|ablation]
//	             [-apps N] [-seed S] [-workers W] [-sample N]
//
// With -bench-json (and friends) the command instead runs the pinned
// performance benchmark suite (internal/benchsuite) and records or checks
// the BENCH_meanshift.json / BENCH_pipeline.json / BENCH_ingest.json
// baselines:
//
//	mosaic-bench -bench-json .                         # refresh baselines
//	mosaic-bench -bench-json /tmp/b -bench-against . \
//	             -bench-tolerance 0.10 -bench-count 5  # CI regression gate
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"encoding/json"

	"github.com/mosaic-hpc/mosaic/internal/benchio"
	"github.com/mosaic-hpc/mosaic/internal/benchsuite"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/experiments"
	"github.com/mosaic-hpc/mosaic/internal/report"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, fig3, table2, table3, fig4, fig5, accuracy, stability, perf, ablation, dxt, sched")
		apps     = flag.Int("apps", 1500, "number of unique applications in the synthetic corpus")
		seed     = flag.Int64("seed", 1, "corpus seed")
		workers  = flag.Int("workers", 0, "categorization workers (0 = NumCPU)")
		sample   = flag.Int("sample", 512, "sample size for the accuracy experiment")
		outDir   = flag.String("out", "", "also write machine-readable artifacts (JSON, CSV, PNG figures) to this directory")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON of the shared corpus run to this file")

		benchJSON  = flag.String("bench-json", "", "run the pinned benchmark suite and write BENCH_*.json into this directory (instead of the experiments)")
		benchOld   = flag.String("bench-against", "", "compare the fresh pinned results against the BENCH_*.json baselines in this directory; exit non-zero on regression")
		benchTol   = flag.Float64("bench-tolerance", 0.10, "allowed fractional ns/op slowdown before -bench-against fails (0.10 = +10%)")
		benchCount = flag.Int("bench-count", 3, "runs per pinned benchmark; the fastest is recorded")
		benchText  = flag.String("bench-text", "", "also write the fresh results in Go benchmark text format (benchstat input)")
		benchBase  = flag.String("bench-baseline-text", "", "convert the committed BENCH_*.json baselines in the current directory to Go benchmark text at this path, without running anything")
	)
	flag.Parse()
	if *benchBase != "" {
		if err := writeBaselineText(*benchBase); err != nil {
			fmt.Fprintln(os.Stderr, "mosaic-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" || *benchOld != "" {
		if err := runBench(*benchJSON, *benchOld, *benchTol, *benchCount, *benchText); err != nil {
			fmt.Fprintln(os.Stderr, "mosaic-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *apps, *seed, *workers, *sample, *outDir, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-bench:", err)
		os.Exit(1)
	}
}

// writeBaselineText renders the committed baselines as benchstat input so
// CI can print a human-readable old-vs-new table.
func writeBaselineText(path string) error {
	var all []benchio.File
	for _, name := range benchsuite.Files() {
		f, err := benchio.Read(name)
		if err != nil {
			return err
		}
		all = append(all, f)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := benchio.WriteGoBench(out, all...)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// runBench executes the pinned benchmark suite, optionally persisting the
// results (JSON baselines + benchstat text) and gating against committed
// baselines.
func runBench(jsonDir, againstDir string, tol float64, count int, textPath string) error {
	fmt.Printf("pinned benchmark suite: %d targets, best of %d runs each\n\n",
		len(benchsuite.Targets()), count)
	files := benchsuite.Run(count, func(line string) { fmt.Println(line) })

	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		for _, name := range benchsuite.Files() {
			path := filepath.Join(jsonDir, name)
			if err := benchio.Write(path, files[name]); err != nil {
				return err
			}
			fmt.Printf("\nwrote %s (%d entries)", path, len(files[name].Entries))
		}
		fmt.Println()
	}
	if textPath != "" {
		f, err := os.Create(textPath)
		if err != nil {
			return err
		}
		var ordered []benchio.File
		for _, name := range benchsuite.Files() {
			ordered = append(ordered, files[name])
		}
		werr := benchio.WriteGoBench(f, ordered...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", textPath, werr)
		}
	}
	if againstDir != "" {
		var regs []benchio.Regression
		for _, name := range benchsuite.Files() {
			base, err := benchio.Read(filepath.Join(againstDir, name))
			if err != nil {
				return fmt.Errorf("baseline %s: %w", name, err)
			}
			regs = append(regs, benchio.Compare(base, files[name], tol)...)
		}
		if len(regs) > 0 {
			fmt.Println()
			for _, r := range regs {
				fmt.Println("REGRESSION:", r)
			}
			return fmt.Errorf("%d pinned benchmark(s) regressed beyond %.0f%%", len(regs), tol*100)
		}
		fmt.Printf("\nno regressions beyond %.0f%% against %s\n", tol*100, againstDir)
	}
	return nil
}

func run(exp string, apps int, seed int64, workers, sample int, outDir, traceOut string) error {
	out := os.Stdout
	cfg := core.DefaultConfig()
	profile := experiments.ScaledProfile(seed, apps)
	want := func(name string) bool { return exp == "all" || exp == name }
	header := func(name string) {
		fmt.Fprintf(out, "\n%s\n%s\n", name, strings.Repeat("=", len(name)))
	}

	// Experiments that need the full corpus run share one; -trace-out
	// forces the run so the span recorder has something to export.
	var cr *experiments.CorpusRun
	needCorpus := want("table2") || want("table3") || want("fig4") || want("fig5") || traceOut != ""
	if needCorpus {
		var tel *telemetry.Telemetry
		var obs engine.Observer
		if traceOut != "" {
			tel = telemetry.New(telemetry.Config{Spans: true})
			obs = tel
		}
		var err error
		cr, err = experiments.RunObserved(context.Background(), profile, cfg, workers, obs)
		if err != nil {
			return err
		}
		if tel != nil {
			tel.FinishRun()
			if err := writeChromeTrace(traceOut, tel); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace written to %s (%d spans)\n", traceOut, tel.Spans().Len())
		}
		fmt.Fprintf(out, "corpus: %d traces / %d valid / %d unique apps — generated+funneled in %v, categorized in %v\n",
			cr.Funnel.Total, cr.Funnel.Valid, cr.Funnel.UniqueApps,
			cr.GenerateTime.Round(time.Millisecond), cr.CategorizeTime.Round(time.Millisecond))
		writeStageBreakdown(out, cr.Stages)
	}

	if want("fig3") {
		header("Figure 3: pre-processing funnel")
		experiments.Fig3(profile).Write(out)
	}
	if want("table2") {
		header("Table II: periodic write detection")
		experiments.Table2(cr).Write(out, cr.Agg)
	}
	if want("table3") {
		header("Table III: access temporality")
		experiments.Table3(cr).Write(out, cr.Agg)
	}
	if want("fig4") {
		header("Figure 4: metadata category distribution")
		experiments.Fig4(cr).Write(out, cr.Agg)
	}
	if want("fig5") {
		header("Figure 5 / Section IV-D: correlations")
		experiments.Fig5(cr).Write(out, cr.Agg)
	}
	if outDir != "" && cr != nil {
		if err := writeArtifacts(outDir, cr); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nartifacts written to %s (export.json, categories.csv, jaccard.csv, apps.csv, heatmap.png, metadata.png, stages.json)\n", outDir)
	}
	if want("accuracy") {
		header("Section IV-E: accuracy (sampled validation)")
		acc, err := experiments.Accuracy(profile, cfg, sample, seed+100)
		if err != nil {
			return err
		}
		acc.Write(out)
	}
	if want("stability") {
		header("Section III-B1: per-application stability")
		st, err := experiments.Stability(seed, 4, 12, cfg)
		if err != nil {
			return err
		}
		st.Write(out)
	}
	if want("perf") {
		header("Section IV-E: performance and scaling")
		counts := []int{1, 2}
		for w := 4; w <= runtime.GOMAXPROCS(0); w *= 2 {
			counts = append(counts, w)
		}
		perfProfile := experiments.ScaledProfile(seed, min(apps, 600))
		pr, err := experiments.Perf(perfProfile, cfg, counts)
		if err != nil {
			return err
		}
		pr.Write(out)
	}
	if want("dxt") {
		header("DXT: hidden periodicity under aggregated tracing (Section IV-A caveat)")
		dx, err := experiments.DXT(seed, 30, cfg)
		if err != nil {
			return err
		}
		dx.Write(out)
	}
	if want("sched") {
		header("I/O-aware scheduling (Section V application)")
		sr, err := experiments.Sched(seed, 8)
		if err != nil {
			return err
		}
		sr.Write(out)
	}
	if want("ablation") {
		header("Ablations: merging thresholds, bandwidth, detector comparison")
		ab, err := experiments.Ablation(seed, 40, cfg)
		if err != nil {
			return err
		}
		ab.Write(out)
	}
	return nil
}

// writeStageBreakdown prints the engine's per-stage counters and wall
// times via the renderer shared with `mosaic -progress`, so a perf
// regression in BENCH_*.json runs can be attributed to one stage
// (decode vs categorize throughput, funnel stall, ...).
func writeStageBreakdown(out io.Writer, stages []engine.StageSnapshot) {
	if len(stages) == 0 {
		return
	}
	fmt.Fprintf(out, "pipeline stage breakdown:\n")
	engine.WriteStageTable(out, stages)
}

// writeChromeTrace stores the recorded spans as a Chrome trace-event
// JSON document.
func writeChromeTrace(path string, tel *telemetry.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tel.Spans().WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing %s: %w", path, werr)
	}
	return nil
}

// writeArtifacts stores the machine-readable outputs of a corpus run:
// the step-4 JSON export, CSV views of the tables, and PNG figures.
func writeArtifacts(dir string, cr *experiments.CorpusRun) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	apps := make([]report.ExportApp, 0, len(cr.Results))
	for _, r := range cr.Results {
		apps = append(apps, report.ExportApp{Result: r.Result, Runs: r.Runs})
	}
	exp := report.BuildExport(cr.Funnel, apps, cr.Agg, 0.01)
	writers := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"export.json", exp.WriteJSON},
		{"categories.csv", func(w io.Writer) error { return report.WriteCategoriesCSV(w, cr.Agg) }},
		{"jaccard.csv", func(w io.Writer) error { return report.WriteJaccardCSV(w, cr.Agg, 0.01) }},
		{"apps.csv", func(w io.Writer) error { return report.WriteAppsCSV(w, apps) }},
		{"heatmap.png", func(w io.Writer) error { return report.HeatmapPNG(w, cr.Agg, 0.002, 12) }},
		{"metadata.png", func(w io.Writer) error { return report.MetadataBarsPNG(w, cr.Agg) }},
		{"stages.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(cr.Stages)
		}},
	}
	for _, art := range writers {
		f, err := os.Create(filepath.Join(dir, art.name))
		if err != nil {
			return err
		}
		werr := art.fn(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", art.name, werr)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
