package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// The cluster observability plane, server side: the event journal
// endpoint, the SLO burn-rate alert endpoint (with diagnostic bundle
// capture on fire), and the federation endpoints that turn any node
// into a fleet-wide health and metrics vantage point.

// backpressureEventInterval rate-limits backpressure journal entries: a
// saturated queue rejects thousands of requests per second, and one
// event per rejection would evict everything else from the ring.
const backpressureEventInterval = 5 * time.Second

// emitBackpressure journals a 429'd ingest, coalescing bursts.
func (s *Server) emitBackpressure(reqID string) {
	now := time.Now().UnixNano()
	last := s.lastBP.Load()
	if now-last < int64(backpressureEventInterval) || !s.lastBP.CompareAndSwap(last, now) {
		return
	}
	s.events.Emit(events.SevWarn, events.TypeBackpressure,
		"ingest queue full, rejecting with 429",
		"request_id", reqID,
		"queue_capacity", strconv.Itoa(s.queueCap))
}

// ---- SLO burn-rate alerting ----

// startAlerts wires the burn-rate evaluator over the serve tier's
// cumulative good/total signals and starts it. Two rules:
//
//   - http_slo_burn: requests under the latency SLO vs all requests,
//     from the per-route RED histograms and breach counters (only when
//     tracing and an SLO target are configured — the instruments do not
//     exist otherwise).
//   - ingest_error_burn: ingested traces that were not rejected or
//     unreadable vs all ingested traces.
func (s *Server) startAlerts(opts *telemetry.AlertOptions) {
	var o telemetry.AlertOptions
	if opts != nil {
		o = *opts
	}
	emit := o.OnTransition
	o.OnTransition = func(st telemetry.AlertState) {
		s.onAlertTransition(st)
		if emit != nil {
			emit(st)
		}
	}
	var rules []telemetry.AlertRule
	if s.traceOn && s.slo > 0 {
		rules = append(rules, telemetry.AlertRule{
			Name:      "http_slo_burn",
			Objective: 0.99,
			Source:    s.sloBurnSource,
		})
	}
	rules = append(rules, telemetry.AlertRule{
		Name:      "ingest_error_burn",
		Objective: 0.99,
		Source:    s.ingestErrorSource,
	})
	s.alerts = telemetry.NewAlertEvaluator(s.reg, o, rules...)
	s.alerts.Start()
}

// sloBurnSource sums the per-route request and SLO-breach counts.
func (s *Server) sloBurnSource() (good, total float64) {
	var breaches float64
	for _, ri := range s.routeMetrics {
		total += float64(ri.latency.Snapshot().Count)
		breaches += float64(ri.sloBreaches.Value())
	}
	return total - breaches, total
}

// ingestErrorSource counts rejected and unreadable traces as errors;
// accepted, cached and pending all served the client.
func (s *Server) ingestErrorSource() (good, total float64) {
	var bad float64
	for st, c := range s.ingestStatus {
		v := float64(c.Value())
		total += v
		if st == StatusRejected || st == StatusUnreadable {
			bad += v
		}
	}
	return total - bad, total
}

// onAlertTransition journals the transition and, on fire, captures a
// diagnostic bundle.
func (s *Server) onAlertTransition(st telemetry.AlertState) {
	if st.Active {
		s.events.Emit(events.SevError, events.TypeAlertFired, "SLO burn-rate alert fired",
			"alert", st.Name,
			"fast_burn", strconv.FormatFloat(st.FastBurn, 'f', 2, 64),
			"slow_burn", strconv.FormatFloat(st.SlowBurn, 'f', 2, 64))
		s.captureDiagBundle(st.Name)
		return
	}
	s.events.Emit(events.SevInfo, events.TypeAlertResolved, "SLO burn-rate alert resolved",
		"alert", st.Name)
}

// captureDiagBundle snapshots the process at the moment an alert fired:
// a CPU profile, a heap profile, and the flight recorder's retained
// request traces as one Chrome-trace document. Capture runs in a
// goroutine (the CPU profile takes seconds) and at most one bundle is
// in flight — a flapping alert cannot stack profilers.
func (s *Server) captureDiagBundle(alert string) {
	if s.diagDir == "" || !s.diagBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.diagBusy.Store(false)
		if err := os.MkdirAll(s.diagDir, 0o755); err != nil {
			if s.log != nil {
				s.log.Warn("diag bundle: creating dir failed", "dir", s.diagDir, "err", err)
			}
			return
		}
		prefix := filepath.Join(s.diagDir, fmt.Sprintf("alert-%s-%d", alert, time.Now().Unix()))
		if f, err := os.Create(prefix + ".cpu.pprof"); err == nil {
			// StartCPUProfile fails when another profile is running
			// (e.g. an operator's manual pprof session); skip, keep the rest.
			if pprof.StartCPUProfile(f) == nil {
				time.Sleep(s.diagCPU)
				pprof.StopCPUProfile()
			}
			f.Close()
		}
		if f, err := os.Create(prefix + ".heap.pprof"); err == nil {
			_ = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if s.flight != nil {
			if err := s.flight.DumpSnapshot(prefix + ".trace.json"); err != nil && s.log != nil {
				s.log.Warn("diag bundle: flight dump failed", "err", err)
			}
		}
		if s.log != nil {
			s.log.Info("diag bundle captured", "alert", alert, "prefix", prefix)
		}
	}()
}

// ---- local status ----

// localStatus is this node's self-assessment: ok unless something an
// operator should know about is true right now. Down is never
// self-reported — an unreachable node cannot answer at all, so the
// gatherer assigns it.
func (s *Server) localStatus() ring.StatusSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := s.st.Stats()
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	ss := ring.StatusSnapshot{
		Status:        ring.StatusHealthOK,
		BuildVersion:  telemetry.BuildVersion(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.queueCap,
		Pending:       pending,
		StoreTraces:   int64(st.Traces),
		StoreResults:  int64(st.Results),
		StoreSegments: st.Segments,
		StoreBytes:    st.DiskBytes,
		LastEventSeq:  s.events.LastSeq(),
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     ms.HeapAlloc,
	}
	if s.alerts != nil {
		ss.ActiveAlerts = s.alerts.ActiveCount()
	}
	if s.cluster != nil {
		c := s.cluster.ring
		ss.Node = c.Self().ID
		ss.RoutingVersion = strconv.FormatUint(c.Table().Version(), 16)
		ss.HintsPending = c.HintsPending()
		ss.PeersUp, ss.PeersTotal = c.PeersUp()
	}
	var reasons []string
	if ss.QueueDepth*10 >= s.queueCap*9 {
		reasons = append(reasons, fmt.Sprintf("ingest queue ≥90%% full (%d/%d)", ss.QueueDepth, s.queueCap))
	}
	if ss.HintsPending > 0 {
		reasons = append(reasons, fmt.Sprintf("%d hinted handoffs pending replay", ss.HintsPending))
	}
	if s.cluster != nil && ss.PeersUp < ss.PeersTotal {
		reasons = append(reasons, fmt.Sprintf("%d of %d peers down", ss.PeersTotal-ss.PeersUp, ss.PeersTotal))
	}
	if ss.ActiveAlerts > 0 {
		reasons = append(reasons, fmt.Sprintf("%d alerts firing", ss.ActiveAlerts))
	}
	if len(reasons) > 0 {
		ss.Status = ring.StatusHealthDegraded
		ss.Reasons = reasons
	}
	return ss
}

// ---- HTTP endpoints ----

// eventsResponse is the /v1/events document.
type eventsResponse struct {
	Node     string         `json:"node,omitempty"`
	Earliest uint64         `json:"earliest_seq"`
	Last     uint64         `json:"last_seq"`
	Count    int            `json:"count"`
	Events   []events.Event `json:"events"`
}

// handleEvents serves the event journal with cursor pagination:
// ?since=<seq> resumes after a sequence number, ?severity= filters
// (info|warn|error), ?limit= caps the page (default 256, max 4096).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "since must be a non-negative integer"})
			return
		}
		since = n
	}
	minSev := events.SevInfo
	if v := q.Get("severity"); v != "" {
		sev, ok := events.ParseSeverity(v)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "severity must be info, warn or error"})
			return
		}
		minSev = sev
	}
	limit := 256
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a non-negative integer"})
			return
		}
		limit = min(n, 4096)
	}
	page := s.events.Since(since, minSev, limit)
	node := ""
	if s.cluster != nil {
		node = s.cluster.ring.Self().ID
	}
	if page.Events == nil {
		page.Events = []events.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{
		Node: node, Earliest: page.Earliest, Last: page.Last,
		Count: len(page.Events), Events: page.Events,
	})
}

// handleAlerts serves the burn-rate evaluator's current state.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	node := ""
	if s.cluster != nil {
		node = s.cluster.ring.Self().ID
	}
	alerts := []telemetry.AlertState{}
	if s.alerts != nil {
		alerts = s.alerts.Snapshot()
	}
	writeJSON(w, http.StatusOK, struct {
		Node   string                 `json:"node,omitempty"`
		Alerts []telemetry.AlertState `json:"alerts"`
	}{Node: node, Alerts: alerts})
}

// healthResponse is the /v1/cluster/health document.
type healthResponse struct {
	Status  string                `json:"status"` // ok | degraded
	Node    string                `json:"node,omitempty"`
	Partial bool                  `json:"partial,omitempty"` // a live peer failed to answer
	Nodes   []ring.StatusSnapshot `json:"nodes"`
}

// handleClusterHealth scatter-gathers every node's StatusSnapshot and
// rolls them up: ok only when every member self-reports ok. Any node
// answers for the whole fleet. In single-node mode the document holds
// just this node.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	local := s.localStatus()
	nodes := []ring.StatusSnapshot{local}
	partial := false
	if s.cluster != nil {
		snaps, p := s.cluster.ring.ScatterStatus(r.Context(), RequestIDFrom(r.Context()))
		nodes = append(nodes, snaps...)
		partial = p
	}
	rollup := ring.StatusHealthOK
	for _, n := range nodes {
		if n.Status != ring.StatusHealthOK {
			rollup = ring.StatusHealthDegraded
			break
		}
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status: rollup, Node: local.Node, Partial: partial, Nodes: nodes,
	})
}

// clusterGaugeRules overrides the default sum-merge for gauges whose
// fleet-wide meaning is not additive.
var clusterGaugeRules = map[string]telemetry.GaugeMergeRule{
	"mosaic_slo_target_seconds":   telemetry.MergeMax,
	"mosaic_build_info":           telemetry.MergeMax,
	"mosaic_runtime_gomaxprocs":   telemetry.MergeMax,
	"mosaic_ring_peers_up":        telemetry.MergeMin,
	"mosaic_cluster_ring_version": telemetry.MergeMax,
}

// handleClusterMetrics federates the fleet's metrics into one
// Prometheus exposition: every live peer's registry export is merged
// with this node's (counters sum, histogram buckets merge, gauges per
// clusterGaugeRules). ?node=1 keeps the series separate instead,
// adding a node label to each. mosaic_cluster_metrics_partial reports
// whether any peer's registry is missing from the document.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	self := ""
	if s.cluster != nil {
		self = s.cluster.ring.Self().ID
	}
	perNode := map[string][]telemetry.FamilySnapshot{self: s.reg.Export()}
	partial := 0
	if s.cluster != nil {
		blobs, errs := s.cluster.ring.ScatterMetrics(r.Context(), RequestIDFrom(r.Context()))
		for pid, blob := range blobs {
			var fams []telemetry.FamilySnapshot
			if err := json.Unmarshal(blob, &fams); err != nil {
				partial++
				continue
			}
			perNode[pid] = fams
		}
		partial += len(errs)
	}
	var fams []telemetry.FamilySnapshot
	if r.URL.Query().Get("node") != "" {
		fams = telemetry.LabelFamilies(perNode, "node")
	} else {
		fams = telemetry.MergeFamilies(perNode, clusterGaugeRules)
	}
	fams = append(fams, telemetry.FamilySnapshot{
		Name: "mosaic_cluster_metrics_partial",
		Help: "Peers whose metrics are missing from this federated exposition.",
		Kind: "gauge",
		Series: []telemetry.SeriesSnapshot{
			{Value: float64(partial)},
		},
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WriteFamilies(w, fams); err != nil && s.log != nil {
		s.log.Warn("federated metrics write failed", "err", err)
	}
}
