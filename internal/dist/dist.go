// Package dist implements distributed trace categorization over net/rpc:
// a master streams traces to remote workers, which run the MOSAIC pipeline
// and return results. It substitutes the Dispy cluster parallelization of
// the paper's Python implementation and backs the Section IV-E performance
// experiment in its distributed variant.
//
// Traces travel in the binary log format (internal/darshan), results as
// JSON; both are stable, versioned encodings, so master and workers can
// run different builds.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// ServiceName is the RPC service name workers register.
const ServiceName = "Mosaic"

// CategorizeArgs is the RPC request: one binary-encoded trace and the
// pipeline configuration to apply.
type CategorizeArgs struct {
	Trace  []byte
	Config core.Config
}

// CategorizeReply is the RPC response. Invalid traces are not errors at
// the RPC layer: the master counts them as funnel evictions.
type CategorizeReply struct {
	Valid  bool
	Reason string // corruption reason when !Valid
	Result []byte // JSON-encoded core.Result when Valid
}

// Service is the worker-side RPC receiver. The metric fields are nil
// on uninstrumented servers.
type Service struct {
	rpcSeconds *telemetry.Histogram
	rpcTotal   *telemetry.Counter
	rpcInvalid *telemetry.Counter
}

// Categorize decodes, validates and categorizes one trace.
func (s *Service) Categorize(args *CategorizeArgs, reply *CategorizeReply) error {
	if s.rpcTotal != nil {
		s.rpcTotal.Inc()
		start := time.Now()
		defer func() { s.rpcSeconds.Observe(time.Since(start).Seconds()) }()
	}
	j, err := darshan.UnmarshalBinary(args.Trace)
	if err != nil {
		reply.Valid = false
		reply.Reason = "unreadable: " + err.Error()
		if s.rpcInvalid != nil {
			s.rpcInvalid.Inc()
		}
		return nil
	}
	if err := darshan.Validate(j); err != nil {
		reply.Valid = false
		reply.Reason = err.Error()
		if s.rpcInvalid != nil {
			s.rpcInvalid.Inc()
		}
		return nil
	}
	res, err := core.Categorize(j, args.Config)
	if err != nil {
		return fmt.Errorf("dist: categorize job %d: %w", j.JobID, err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding result: %w", err)
	}
	reply.Valid = true
	reply.Result = data
	return nil
}

// Server is the worker-side RPC endpoint with observability and
// graceful shutdown: it tracks every open master connection, logs
// connect/disconnect events, counts served RPCs, and on Shutdown stops
// accepting, then drains in-flight connections instead of dying
// mid-RPC.
type Server struct {
	// Log receives connection lifecycle events (nil: silent).
	Log *slog.Logger
	// Metrics, when non-nil, receives worker metrics
	// (mosaic_dist_worker_*): open connections, totals, RPC latency.
	Metrics *telemetry.Registry

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  bool
	drained  sync.WaitGroup
}

// NewServer returns a worker server. Both fields may be set before
// Serve.
func NewServer(log *slog.Logger, reg *telemetry.Registry) *Server {
	return &Server{Log: log, Metrics: reg, conns: make(map[net.Conn]struct{})}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.drained.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.drained.Done()
	}
	s.mu.Unlock()
}

// Serve accepts master connections on l until the listener closes (or
// Shutdown is called). It blocks; a clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()

	srv := rpc.NewServer()
	svc := &Service{}
	if s.Metrics != nil {
		svc.rpcSeconds = s.Metrics.Histogram("mosaic_dist_worker_rpc_seconds", "Latency of one worker-side Categorize RPC.", nil, nil)
		svc.rpcTotal = s.Metrics.Counter("mosaic_dist_worker_rpc_total", "Categorize RPCs served by this worker.", nil)
		svc.rpcInvalid = s.Metrics.Counter("mosaic_dist_worker_rpc_invalid_total", "Categorize RPCs that carried an invalid trace.", nil)
	}
	if err := srv.RegisterName(ServiceName, svc); err != nil {
		return err
	}
	var openConns *telemetry.Gauge
	var connsTotal *telemetry.Counter
	if s.Metrics != nil {
		openConns = s.Metrics.Gauge("mosaic_dist_worker_connections", "Currently open master connections.", nil)
		connsTotal = s.Metrics.Counter("mosaic_dist_worker_connections_total", "Master connections accepted since start.", nil)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) { // shutting down: refuse late arrivals
			conn.Close()
			continue
		}
		if s.Log != nil {
			s.Log.Info("master connected", "remote", conn.RemoteAddr().String())
		}
		if openConns != nil {
			openConns.Inc()
			connsTotal.Inc()
		}
		go func(c net.Conn) {
			srv.ServeConn(c)
			s.untrack(c)
			if openConns != nil {
				openConns.Dec()
			}
			if s.Log != nil {
				s.Log.Info("master disconnected", "remote", c.RemoteAddr().String())
			}
		}(conn)
	}
}

// Shutdown stops accepting new connections and waits for in-flight
// connections to drain, or for ctx to end — at which point remaining
// connections are closed forcibly. It is safe to call concurrently
// with Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	l := s.listener
	open := len(s.conns)
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if s.Log != nil {
		s.Log.Info("draining", "open_connections", open)
	}
	done := make(chan struct{})
	go func() {
		s.drained.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Serve registers the service on a fresh RPC server and accepts
// connections on l until it is closed. It blocks. Kept as the plain
// uninstrumented path; new callers wanting logs, metrics or graceful
// drain should use Server.
func Serve(l net.Listener) error {
	return (&Server{}).Serve(l)
}

// ListenAndServe serves workers on the given TCP address. It blocks.
func ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(l)
}

// Client is a connection to one worker, over one of two transports:
// net/rpc (Dial) or the cluster's binary frame protocol (DialFrame).
// Exactly one of c / fc is set; Master treats both kinds alike.
type Client struct {
	c    *rpc.Client  // net/rpc transport
	fc   *ring.Client // frame transport (frame.go)
	addr string
}

// Dial connects to a worker at addr.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	return &Client{c: c, addr: addr}, nil
}

// Addr returns the worker address the client dialed ("" for clients
// constructed around an existing rpc.Client in tests).
func (c *Client) Addr() string { return c.addr }

// Close releases the connection.
func (c *Client) Close() error {
	if c.fc != nil {
		return c.fc.Close()
	}
	return c.c.Close()
}

// Categorize sends one trace to the worker. An invalid trace returns
// (nil, reason, nil).
func (c *Client) Categorize(j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	return c.CategorizeContext(context.Background(), j, cfg)
}

// CategorizeContext is Categorize with cancellation: when ctx ends
// before the RPC completes, it returns ctx.Err() without waiting for the
// reply (the in-flight call is abandoned to net/rpc's bookkeeping).
func (c *Client) CategorizeContext(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	if c.fc != nil {
		return c.categorizeFrame(ctx, j, cfg)
	}
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return nil, "", err
	}
	args := &CategorizeArgs{Trace: data, Config: cfg}
	var reply CategorizeReply
	call := c.c.Go(ServiceName+".Categorize", args, &reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, "", ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			return nil, "", fmt.Errorf("dist: RPC: %w", done.Error)
		}
	}
	if !reply.Valid {
		return nil, reply.Reason, nil
	}
	var res core.Result
	if err := json.Unmarshal(reply.Result, &res); err != nil {
		return nil, "", fmt.Errorf("dist: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	return &res, "", nil
}

// Outcome is the master-side result for one submitted trace.
type Outcome struct {
	Result *core.Result // nil when the trace was invalid
	Reason string       // eviction reason for invalid traces
	Err    error        // transport or pipeline failure
}

// Master fans traces out over a set of workers, each handling several
// in-flight requests, with failover across workers. It is an alternate
// executor for the engine's Categorize stage (it satisfies
// engine.Executor): pass it as mosaic.Options.Executor and the staged
// pipeline runs its detection chain on the remote cluster instead of
// in-process — no separate orchestration loop.
type Master struct {
	clients []*Client
	cfg     core.Config
	dead    []atomic.Bool // dead[i]: worker i hit a transport error
	next    atomic.Int64  // round-robin home-worker cursor
	// PerWorker is the number of in-flight requests per worker used to
	// size the stage concurrency (Concurrency); <= 0 means 2, enough to
	// overlap RPC round trips with remote compute.
	PerWorker int
	// Log, when non-nil, receives dispatch lifecycle events: retries
	// after a transport error, workers marked dead, dispatch exhaustion.
	Log *slog.Logger

	// Master-side metrics; nil unless Instrument was called.
	rpcSeconds *telemetry.Histogram
	retries    *telemetry.Counter
	rpcErrors  *telemetry.Counter
	deadTotal  *telemetry.Counter
	liveGauge  *telemetry.Gauge
}

// NewMaster wraps the given worker connections.
func NewMaster(clients []*Client, cfg core.Config) *Master {
	return &Master{clients: clients, cfg: cfg, dead: make([]atomic.Bool, len(clients))}
}

// Instrument registers master-side RPC metrics (mosaic_dist_rpc_*,
// mosaic_dist_workers_live) in reg and routes dispatch lifecycle
// events to log. Either argument may be nil. Call before the first
// dispatch.
func (m *Master) Instrument(reg *telemetry.Registry, log *slog.Logger) *Master {
	m.Log = log
	if reg != nil {
		m.rpcSeconds = reg.Histogram("mosaic_dist_rpc_seconds", "Latency of one master-side Categorize RPC attempt.", nil, nil)
		m.retries = reg.Counter("mosaic_dist_rpc_retries_total", "Dispatch attempts re-routed to another worker after a transport error.", nil)
		m.rpcErrors = reg.Counter("mosaic_dist_rpc_errors_total", "Categorize RPC attempts that failed with a transport error.", nil)
		m.deadTotal = reg.Counter("mosaic_dist_workers_dead_total", "Workers marked dead after a transport error.", nil)
		m.liveGauge = reg.Gauge("mosaic_dist_workers_live", "Workers not yet marked dead.", nil)
		m.liveGauge.Set(float64(len(m.clients)))
	}
	return m
}

// Concurrency implements the engine executor contract: how many
// categorizations the engine should keep in flight across the cluster.
func (m *Master) Concurrency() int {
	per := m.PerWorker
	if per < 1 {
		per = 2
	}
	return len(m.clients) * per
}

// Categorize implements the engine's Categorize-stage executor: one
// validated trace in, one result out, with round-robin load spreading
// and failover across workers. Traces the cluster judges invalid (a
// master/worker validation skew) surface as errors here, since the
// engine's funnel has already filtered corrupted traces.
func (m *Master) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	home := int(m.next.Add(1)-1) % max(len(m.clients), 1)
	out := m.dispatch(ctx, j, cfg, home)
	switch {
	case out.Err != nil:
		return nil, out.Err
	case out.Result == nil:
		return nil, fmt.Errorf("dist: worker rejected validated trace %d: %s", j.JobID, out.Reason)
	default:
		return out.Result, nil
	}
}

// LiveWorkers returns how many workers have not failed.
func (m *Master) LiveWorkers() int {
	n := 0
	for i := range m.dead {
		if !m.dead[i].Load() {
			n++
		}
	}
	return n
}

// dispatch categorizes one job with failover: starting from the job's
// home worker, it tries every live worker in round-robin order, marking
// workers dead on transport errors. When every worker has failed, the
// last error is reported in the outcome; cancellation surfaces as
// ctx.Err() without marking workers dead.
func (m *Master) dispatch(ctx context.Context, j *darshan.Job, cfg core.Config, home int) Outcome {
	n := len(m.clients)
	var lastErr error
	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			return Outcome{Err: err}
		}
		ci := (home + k) % n
		if m.dead[ci].Load() {
			continue
		}
		if k > 0 && m.retries != nil {
			m.retries.Inc()
		}
		start := time.Now()
		res, reason, err := m.clients[ci].CategorizeContext(ctx, j, cfg)
		if m.rpcSeconds != nil {
			m.rpcSeconds.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			if ctx.Err() != nil {
				return Outcome{Err: ctx.Err()}
			}
			if m.rpcErrors != nil {
				m.rpcErrors.Inc()
			}
			if !m.dead[ci].Swap(true) {
				if m.deadTotal != nil {
					m.deadTotal.Inc()
				}
				if m.liveGauge != nil {
					m.liveGauge.Set(float64(m.LiveWorkers()))
				}
				if m.Log != nil {
					m.Log.Error("worker marked dead", "worker", m.clients[ci].Addr(), "err", err)
				}
			}
			if m.Log != nil {
				m.Log.Warn("dispatch retrying on next worker", "job", j.JobID, "failed_worker", m.clients[ci].Addr(), "err", err)
			}
			lastErr = err
			continue
		}
		return Outcome{Result: res, Reason: reason}
	}
	if lastErr == nil {
		lastErr = errors.New("dist: no live workers")
	}
	if m.Log != nil {
		m.Log.Error("dispatch exhausted all workers", "job", j.JobID, "err", lastErr)
	}
	return Outcome{Err: lastErr}
}

// Run streams jobs to the workers with the given per-worker concurrency
// and sends one Outcome per job on the returned channel, closed when the
// input channel is exhausted. Order is not preserved. Transport failures
// fail over to the remaining workers; a job is reported with an error
// only when every worker has failed.
//
// Run predates the engine and is kept for direct channel-style use; the
// fan-out itself is parallel.Map, so there is no second orchestration
// loop. New code should prefer driving the engine with the Master as
// Options.Executor, which adds the funnel and aggregation around the
// same dispatch path.
func (m *Master) Run(jobs <-chan *darshan.Job, perWorker int) <-chan Outcome {
	if perWorker < 1 {
		perWorker = 2
	}
	return parallel.Map(context.Background(), len(m.clients)*perWorker, jobs, func(j *darshan.Job) Outcome {
		home := int(m.next.Add(1)-1) % max(len(m.clients), 1)
		return m.dispatch(context.Background(), j, m.cfg, home)
	})
}
