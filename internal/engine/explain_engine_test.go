package engine

import (
	"context"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func TestRunExplainThreadsExplanations(t *testing.T) {
	jobs := testJobs(t, 40)
	res, err := Run(context.Background(), Jobs(jobs), Options{Workers: 4, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) == 0 {
		t.Fatal("no apps analyzed")
	}
	for _, a := range res.Apps {
		if a.Explanation == nil {
			t.Fatalf("app %s/%s: Explain run produced no explanation", a.User, a.App)
		}
		if a.Explanation.EvidenceCount() == 0 {
			t.Fatalf("app %s/%s: explanation carries no evidence", a.User, a.App)
		}
		// The explanation's labels are the result's labels.
		if got, want := len(a.Explanation.Labels), len(a.Result.Labels); got != want {
			t.Fatalf("app %s/%s: explanation labels %v, result labels %v",
				a.User, a.App, a.Explanation.Labels, a.Result.Labels)
		}
		for i, l := range a.Explanation.Labels {
			if l != a.Result.Labels[i] {
				t.Fatalf("app %s/%s: label mismatch %v vs %v",
					a.User, a.App, a.Explanation.Labels, a.Result.Labels)
			}
		}
	}
	// An explained run categorizes identically to a plain one.
	plain, err := Run(context.Background(), Jobs(jobs), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Apps) != len(res.Apps) {
		t.Fatalf("app count differs: explained %d plain %d", len(res.Apps), len(plain.Apps))
	}
	for i := range res.Apps {
		if !res.Apps[i].Result.Categories.Equal(plain.Apps[i].Result.Categories) {
			t.Fatalf("app %d: explained categories differ from plain run", i)
		}
	}
}

func TestRunWithoutExplainLeavesExplanationsNil(t *testing.T) {
	res, err := Run(context.Background(), Jobs(testJobs(t, 20)), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.Explanation != nil {
			t.Fatalf("app %s/%s: explanation collected without Explain", a.User, a.App)
		}
	}
}

// plainOnlyExec hides Local's ExplainExecutor capability, standing in
// for an executor that cannot collect evidence.
type plainOnlyExec struct{ inner Local }

func (p plainOnlyExec) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	return p.inner.Categorize(ctx, j, cfg)
}

func (p plainOnlyExec) Concurrency() int { return p.inner.Concurrency() }

func TestRunExplainDegradesWithoutCapability(t *testing.T) {
	res, err := Run(context.Background(), Jobs(testJobs(t, 20)), Options{
		Workers:  2,
		Explain:  true,
		Executor: plainOnlyExec{Local{Workers: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) == 0 {
		t.Fatal("no apps analyzed")
	}
	for _, a := range res.Apps {
		if a.Result == nil {
			t.Fatalf("app %s/%s: no result from degraded run", a.User, a.App)
		}
		if a.Explanation != nil {
			t.Fatalf("app %s/%s: capability-less executor produced an explanation", a.User, a.App)
		}
	}
}
