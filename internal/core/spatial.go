package core

import (
	"fmt"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Spatial access classification — an extension beyond the paper. MOSAIC's
// three axes (temporality, periodicity, metadata) deliberately ignore
// *where* in the file accesses land, because aggregated Darshan records
// carry no offsets. With DXT segments the offset sequence is available,
// and the spatial dimension of the I/O-pattern survey the paper builds on
// (Bez et al. 2023) becomes classifiable: sequential, strided, or random.
// The result is reported per direction alongside the categories (it is
// not part of the paper's closed category set).

// SpatialPattern classifies the offset sequence of traced accesses.
type SpatialPattern uint8

// Spatial patterns.
const (
	SpatialUnknown    SpatialPattern = iota // no DXT data or too few accesses
	SpatialSequential                       // each access starts where the previous ended
	SpatialStrided                          // constant non-zero gap between accesses
	SpatialRandom                           // no dominant structure
)

// String implements fmt.Stringer.
func (s SpatialPattern) String() string {
	switch s {
	case SpatialUnknown:
		return "unknown"
	case SpatialSequential:
		return "sequential"
	case SpatialStrided:
		return "strided"
	case SpatialRandom:
		return "random"
	default:
		return fmt.Sprintf("SpatialPattern(%d)", uint8(s))
	}
}

// MarshalText makes the pattern JSON-friendly.
func (s SpatialPattern) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText is MarshalText's inverse, so stored results holding a
// spatial verdict round-trip through the store's JSON encoding.
func (s *SpatialPattern) UnmarshalText(text []byte) error {
	switch string(text) {
	case "unknown":
		*s = SpatialUnknown
	case "sequential":
		*s = SpatialSequential
	case "strided":
		*s = SpatialStrided
	case "random":
		*s = SpatialRandom
	default:
		return fmt.Errorf("unknown spatial pattern %q", text)
	}
	return nil
}

// spatialThreshold is the fraction of transitions that must agree for a
// sequential/strided verdict; below it the record is random.
const spatialThreshold = 0.75

// classifySpatial inspects one record's DXT event sequence (in trace
// order). Needs at least 3 events to commit to a verdict.
func classifySpatial(events []darshan.DXTEvent) SpatialPattern {
	if len(events) < 3 {
		return SpatialUnknown
	}
	var seq, strided, total int
	var stride int64
	strideSet := false
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		gap := cur.Offset - (prev.Offset + prev.Length)
		total++
		switch {
		case gap == 0:
			seq++
		default:
			if !strideSet {
				stride, strideSet = gap, true
				strided++
			} else if gap == stride {
				strided++
			}
		}
	}
	switch {
	case float64(seq)/float64(total) >= spatialThreshold:
		return SpatialSequential
	case strideSet && float64(strided)/float64(total) >= spatialThreshold:
		return SpatialStrided
	default:
		return SpatialRandom
	}
}

// spatialForJob aggregates the per-record verdicts of one direction by
// majority over records carrying DXT data (ties resolve toward the less
// structured pattern).
func spatialForJob(j *darshan.Job, write bool) SpatialPattern {
	counts := map[SpatialPattern]int{}
	for i := range j.Records {
		events := j.Records[i].DXTReads
		if write {
			events = j.Records[i].DXTWrites
		}
		if p := classifySpatial(events); p != SpatialUnknown {
			counts[p]++
		}
	}
	best, bestN := SpatialUnknown, 0
	// Order: random > strided > sequential on ties (less structure wins,
	// the conservative answer for prefetchers).
	for _, p := range []SpatialPattern{SpatialSequential, SpatialStrided, SpatialRandom} {
		if counts[p] >= bestN && counts[p] > 0 {
			best, bestN = p, counts[p]
		}
	}
	return best
}
