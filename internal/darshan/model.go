// Package darshan implements a Darshan-compatible data model for HPC I/O
// traces, together with binary and JSON codecs and corpus utilities.
//
// Darshan (Carns et al., "24/7 characterization of petascale I/O
// workloads") aggregates the I/O activity of an application between the
// opening and the closing of each file: one record per (file, rank) with
// operation counters and coarse timing counters. The Blue Waters dataset
// used by the MOSAIC paper was collected with the DXT module disabled, so
// this aggregated view is exactly the information available to the
// categorization algorithms. This package reproduces that model: it is the
// substrate the rest of the repository consumes.
package darshan

import (
	"fmt"
	"path"
	"strings"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Module identifies the I/O API that produced a file record.
type Module uint8

// Supported Darshan modules.
const (
	ModPOSIX Module = iota
	ModMPIIO
	ModSTDIO
	modCount // sentinel
)

// String implements fmt.Stringer.
func (m Module) String() string {
	switch m {
	case ModPOSIX:
		return "POSIX"
	case ModMPIIO:
		return "MPI-IO"
	case ModSTDIO:
		return "STDIO"
	default:
		return fmt.Sprintf("Module(%d)", uint8(m))
	}
}

// Valid reports whether m names a known module.
func (m Module) Valid() bool { return m < modCount }

// SharedRank is the rank value Darshan uses for records aggregated across
// all ranks of the job (shared files).
const SharedRank = -1

// Counters mirrors the subset of Darshan's POSIX counter set that MOSAIC
// consumes. Volumes are bytes; timestamps are float64 seconds relative to
// the start of the job, following Darshan's F_*_START_TIMESTAMP /
// F_*_END_TIMESTAMP semantics. A timestamp pair (0, 0) means "no such
// operation happened on this record".
type Counters struct {
	Opens  int64 // POSIX_OPENS
	Closes int64 // implicit in Darshan; tracked explicitly here
	Seeks  int64 // POSIX_SEEKS
	Stats  int64 // POSIX_STATS
	Reads  int64 // POSIX_READS
	Writes int64 // POSIX_WRITES

	BytesRead    int64 // POSIX_BYTES_READ
	BytesWritten int64 // POSIX_BYTES_WRITTEN

	OpenStart  float64 // POSIX_F_OPEN_START_TIMESTAMP
	OpenEnd    float64 // POSIX_F_OPEN_END_TIMESTAMP
	ReadStart  float64 // POSIX_F_READ_START_TIMESTAMP
	ReadEnd    float64 // POSIX_F_READ_END_TIMESTAMP
	WriteStart float64 // POSIX_F_WRITE_START_TIMESTAMP
	WriteEnd   float64 // POSIX_F_WRITE_END_TIMESTAMP
	CloseStart float64 // POSIX_F_CLOSE_START_TIMESTAMP
	CloseEnd   float64 // POSIX_F_CLOSE_END_TIMESTAMP
}

// MetaOps returns the number of metadata requests carried by the record:
// OPEN, CLOSE, SEEK and STAT operations. The paper additionally assumes
// every OPEN is accompanied by a SEEK (Darshan does not time SEEKs), which
// is applied at interval-extraction time, not here.
func (c Counters) MetaOps() int64 { return c.Opens + c.Closes + c.Seeks + c.Stats }

// HasRead reports whether the record carries read activity.
func (c Counters) HasRead() bool { return c.Reads > 0 || c.BytesRead > 0 }

// HasWrite reports whether the record carries write activity.
func (c Counters) HasWrite() bool { return c.Writes > 0 || c.BytesWritten > 0 }

// FileRecord is the per-(file, rank) aggregation unit of a Darshan log.
type FileRecord struct {
	Module Module
	Path   string // file path as recorded (may be anonymized/hashed upstream)
	Rank   int32  // MPI rank, or SharedRank for cross-rank records
	C      Counters

	// DXT extended tracing segments, present only when the log was
	// collected with the DXT module enabled (empty on Blue-Waters-style
	// corpora). See dxt.go.
	DXTReads  []DXTEvent
	DXTWrites []DXTEvent
}

// Job is one Darshan log: a single execution of an application.
type Job struct {
	JobID    uint64
	UID      uint32
	User     string
	Exe      string  // full executable path with arguments stripped
	NProcs   int32   // number of MPI ranks
	Start    int64   // job start, unix seconds
	End      int64   // job end, unix seconds
	Runtime  float64 // seconds; authoritative over End-Start for sub-second runs
	Records  []FileRecord
	Metadata map[string]string // free-form annotations (generator ground truth, ...)
}

// AppName derives the application identity used for deduplication: the
// base name of the executable. The paper groups runs by (user,
// application) and assumes all runs of an application by a user share I/O
// behaviour (Section III-B1).
func (j *Job) AppName() string {
	exe := j.Exe
	if i := strings.IndexByte(exe, ' '); i >= 0 {
		exe = exe[:i]
	}
	return path.Base(exe)
}

// AppKey returns the (user, application) deduplication key.
func (j *Job) AppKey() string { return j.User + "\x00" + j.AppName() }

// TotalBytesRead sums read volume across all records.
func (j *Job) TotalBytesRead() int64 {
	var n int64
	for i := range j.Records {
		n += j.Records[i].C.BytesRead
	}
	return n
}

// TotalBytesWritten sums write volume across all records.
func (j *Job) TotalBytesWritten() int64 {
	var n int64
	for i := range j.Records {
		n += j.Records[i].C.BytesWritten
	}
	return n
}

// TotalMetaOps sums metadata requests across all records.
func (j *Job) TotalMetaOps() int64 {
	var n int64
	for i := range j.Records {
		n += j.Records[i].C.MetaOps()
	}
	return n
}

// Weight is the I/O intensity used to select the heaviest run of an
// application during deduplication: total bytes moved plus a small
// contribution for metadata traffic so that metadata-only jobs still rank.
func (j *Job) Weight() int64 {
	return j.TotalBytesRead() + j.TotalBytesWritten() + j.TotalMetaOps()
}

// ReadIntervals extracts the read operations of the job as time intervals.
// Each record with read activity contributes one interval spanning
// [ReadStart, ReadEnd) carrying its read volume. Metadata requests are
// attributed to the operation (paper: SEEKs co-located with OPENs).
func (j *Job) ReadIntervals() []interval.Interval {
	out := make([]interval.Interval, 0, len(j.Records))
	for i := range j.Records {
		c := &j.Records[i].C
		if !c.HasRead() {
			continue
		}
		out = append(out, interval.Interval{
			Start: c.ReadStart,
			End:   c.ReadEnd,
			Bytes: c.BytesRead,
			Meta:  c.Opens + c.Seeks,
		})
	}
	return out
}

// WriteIntervals extracts the write operations of the job as intervals.
func (j *Job) WriteIntervals() []interval.Interval {
	out := make([]interval.Interval, 0, len(j.Records))
	for i := range j.Records {
		c := &j.Records[i].C
		if !c.HasWrite() {
			continue
		}
		out = append(out, interval.Interval{
			Start: c.WriteStart,
			End:   c.WriteEnd,
			Bytes: c.BytesWritten,
			Meta:  c.Opens + c.Seeks,
		})
	}
	return out
}

// MetaEvents returns one (time, count) event per metadata burst in the
// job. Darshan does not time individual metadata calls, so the paper
// attributes a record's OPEN/SEEK requests to the open timestamp and its
// CLOSE requests to the close timestamp.
type MetaEvent struct {
	Time  float64
	Count int64
}

// MetaEvents extracts metadata request events ordered arbitrarily.
func (j *Job) MetaEvents() []MetaEvent {
	out := make([]MetaEvent, 0, 2*len(j.Records))
	for i := range j.Records {
		c := &j.Records[i].C
		if n := c.Opens + c.Seeks + c.Stats; n > 0 {
			out = append(out, MetaEvent{Time: c.OpenStart, Count: n})
		}
		if c.Closes > 0 {
			out = append(out, MetaEvent{Time: c.CloseStart, Count: c.Closes})
		}
	}
	return out
}

// Clone returns a deep copy of the job.
func (j *Job) Clone() *Job {
	cp := *j
	cp.Records = make([]FileRecord, len(j.Records))
	copy(cp.Records, j.Records)
	if j.Metadata != nil {
		cp.Metadata = make(map[string]string, len(j.Metadata))
		for k, v := range j.Metadata {
			cp.Metadata[k] = v
		}
	}
	return &cp
}

// String implements fmt.Stringer with a compact one-line summary.
func (j *Job) String() string {
	return fmt.Sprintf("job %d app=%s user=%s nprocs=%d runtime=%.1fs records=%d read=%dB written=%dB",
		j.JobID, j.AppName(), j.User, j.NProcs, j.Runtime, len(j.Records),
		j.TotalBytesRead(), j.TotalBytesWritten())
}
