package telemetry

// RingMetrics is the pre-registered instrument bundle of the cluster
// subsystem (internal/ring), mirroring ExplainMetrics: the ring layer
// increments fields directly, so the inter-node hot path never touches
// the registry's registration lock.
type RingMetrics struct {
	// RPCSeconds is the client-side latency of one inter-node call.
	RPCSeconds *Histogram
	// RPCErrors counts failed inter-node calls (transport or peer error).
	RPCErrors *Counter
	// ForwardedTraces counts ingested traces routed to their ring owner
	// on another node.
	ForwardedTraces *Counter
	// ReplicatedTraces counts trace copies shipped to follower replicas.
	ReplicatedTraces *Counter
	// ResultPushes counts categorization results pushed to replicas.
	ResultPushes *Counter
	// HedgedRequests counts reads re-issued to a replica because the
	// owner missed the hedge deadline.
	HedgedRequests *Counter
	// DegradedAcks counts ingest acknowledgments issued with fewer
	// durable replica copies than configured (followers down).
	DegradedAcks *Counter
	// HintsQueued / HintsReplayed / HintsDropped track hinted handoff:
	// replications deferred because a follower was down, later replayed,
	// or dropped past the per-peer hint cap.
	HintsQueued   *Counter
	HintsReplayed *Counter
	HintsDropped  *Counter
	// HintsPending is the current hinted-handoff backlog.
	HintsPending *Gauge
	// PeersUp is how many peers the health prober currently considers
	// reachable.
	PeersUp *Gauge
	// ProbeFailures counts failed health probes.
	ProbeFailures *Counter
	// VersionMismatches counts probes answered by a peer running a
	// different routing-table version — a misconfigured cluster.
	VersionMismatches *Counter
}

// NewRingMetrics registers the mosaic_ring_* instruments in reg.
func NewRingMetrics(reg *Registry) *RingMetrics {
	return &RingMetrics{
		RPCSeconds: reg.Histogram("mosaic_ring_rpc_seconds",
			"Latency of one inter-node RPC (client side).", nil, nil),
		RPCErrors: reg.Counter("mosaic_ring_rpc_errors_total",
			"Inter-node RPCs that failed (transport or peer error).", nil),
		ForwardedTraces: reg.Counter("mosaic_ring_forwarded_traces_total",
			"Ingested traces forwarded to their ring owner on another node.", nil),
		ReplicatedTraces: reg.Counter("mosaic_ring_replicated_traces_total",
			"Trace copies shipped to follower replicas.", nil),
		ResultPushes: reg.Counter("mosaic_ring_result_pushes_total",
			"Categorization results pushed to follower replicas.", nil),
		HedgedRequests: reg.Counter("mosaic_ring_hedged_requests_total",
			"Reads re-issued to a replica after the owner missed the hedge deadline.", nil),
		DegradedAcks: reg.Counter("mosaic_ring_degraded_acks_total",
			"Ingest acks issued with fewer durable replica copies than configured.", nil),
		HintsQueued: reg.Counter("mosaic_ring_hints_queued_total",
			"Replications deferred as hints because the follower was down.", nil),
		HintsReplayed: reg.Counter("mosaic_ring_hints_replayed_total",
			"Hinted replications successfully replayed.", nil),
		HintsDropped: reg.Counter("mosaic_ring_hints_dropped_total",
			"Hints dropped past the per-peer backlog cap.", nil),
		HintsPending: reg.Gauge("mosaic_ring_hints_pending",
			"Current hinted-handoff backlog across all peers.", nil),
		PeersUp: reg.Gauge("mosaic_ring_peers_up",
			"Peers the health prober currently considers reachable.", nil),
		ProbeFailures: reg.Counter("mosaic_ring_probe_failures_total",
			"Failed peer health probes.", nil),
		VersionMismatches: reg.Counter("mosaic_ring_version_mismatches_total",
			"Health probes answered with a different routing-table version.", nil),
	}
}
