package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Timeline rendering: the ASCII counterpart of the paper's Figure 2 — raw
// operations, operations after pre-processing, detected periodic groups
// and temporal chunk volumes, drawn over a common time axis.

// TimelineConfig controls the rendering.
type TimelineConfig struct {
	Width int // columns of the time axis (default 72)
}

func (c TimelineConfig) width() int {
	if c.Width < 16 {
		return 72
	}
	return c.Width
}

// track rasterizes intervals onto a width-column strip; glyph marks
// active columns.
func track(ops []interval.Interval, runtime float64, width int, glyph byte) string {
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '.'
	}
	if runtime <= 0 {
		return string(cells)
	}
	for _, op := range ops {
		lo := int(op.Start / runtime * float64(width))
		hi := int(op.End / runtime * float64(width))
		if hi >= width {
			hi = width - 1
		}
		if lo < 0 {
			lo = 0
		}
		for c := lo; c <= hi && c < width; c++ {
			cells[c] = glyph
		}
	}
	return string(cells)
}

// WriteTimeline renders the processing of one trace as aligned tracks:
// the raw read/write operations, the merged operations, and per-group
// periodic occurrence marks. It re-runs the merging stage on the job so
// the visualization always reflects the given configuration.
func WriteTimeline(w io.Writer, j *darshan.Job, res *core.Result, cfg core.Config) {
	tl := TimelineConfig{}
	width := tl.width()
	rt := j.Runtime
	pol := interval.NeighborPolicy{
		RuntimeFraction:  cfg.MergeRuntimeFraction,
		NeighborFraction: cfg.MergeNeighborFraction,
	}

	fmt.Fprintf(w, "Trace timeline — job %d (%s), runtime %.0fs, %d columns of %.1fs\n",
		j.JobID, j.AppName(), rt, width, rt/float64(width))
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '-'
	}
	for i := 0; i < width; i += width / 4 {
		axis[i] = '+'
	}
	fmt.Fprintf(w, "  %-22s %s\n", "time axis (quarters)", string(axis))

	reads, writes := j.ReadIntervals(), j.WriteIntervals()
	if !cfg.DisableDXT && j.HasDXT() {
		reads, writes = j.ReadIntervalsDXT(), j.WriteIntervalsDXT()
	}
	mergedR := interval.Merge(interval.Clip(reads, rt), rt, pol)
	mergedW := interval.Merge(interval.Clip(writes, rt), rt, pol)

	fmt.Fprintf(w, "  %-22s %s\n", "reads (raw)", track(reads, rt, width, 'r'))
	fmt.Fprintf(w, "  %-22s %s\n", "reads (merged)", track(mergedR, rt, width, 'R'))
	fmt.Fprintf(w, "  %-22s %s\n", "writes (raw)", track(writes, rt, width, 'w'))
	fmt.Fprintf(w, "  %-22s %s\n", "writes (merged)", track(mergedW, rt, width, 'W'))

	if res != nil {
		writeGroupTracks(w, "write periodic", res.Write, mergedW, rt, width)
		writeGroupTracks(w, "read periodic", res.Read, mergedR, rt, width)
		writeChunkBars(w, "read chunks", res.Read.Chunks)
		writeChunkBars(w, "write chunks", res.Write.Chunks)
	}
}

func writeGroupTracks(w io.Writer, label string, rep core.DirectionReport, merged []interval.Interval, rt float64, width int) {
	for gi, g := range rep.Groups {
		var ops []interval.Interval
		for _, si := range g.Segments {
			if si >= 0 && si < len(merged) {
				ops = append(ops, merged[si])
			}
		}
		name := fmt.Sprintf("%s #%d (%.0fs)", label, gi+1, g.Period)
		if len(ops) == 0 {
			// Frequency-detector groups carry no segment indices; mark
			// the expected cadence instead.
			for t := g.Period / 2; t < rt; t += g.Period {
				ops = append(ops, interval.Interval{Start: t, End: t})
			}
		}
		fmt.Fprintf(w, "  %-22s %s\n", name, track(ops, rt, width, 'P'))
	}
}

func writeChunkBars(w io.Writer, label string, chunks []float64) {
	if len(chunks) == 0 {
		return
	}
	var max float64
	for _, c := range chunks {
		if c > max {
			max = c
		}
	}
	parts := make([]string, len(chunks))
	for i, c := range chunks {
		const barW = 12
		n := 0
		if max > 0 {
			n = int(c / max * barW)
		}
		parts[i] = fmt.Sprintf("%s%s", strings.Repeat("#", n), strings.Repeat(".", barW-n))
	}
	fmt.Fprintf(w, "  %-22s %s\n", label, strings.Join(parts, "|"))
}
