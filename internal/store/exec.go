package store

import (
	"context"
	"sync/atomic"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/explain"
)

// CachingExecutor wraps any engine.Executor (the in-process Local
// executor or the distributed Master) with the result store: before
// categorizing a trace it looks up (content address, config
// fingerprint), and after a miss it persists the fresh result. This
// is the warm-start path — repeat corpus runs over an unchanged
// corpus under unchanged thresholds skip categorization entirely.
//
// The engine does not know the difference: caching plugs into the
// same Categorize-stage seam as the distributed backend.
type CachingExecutor struct {
	store *Store
	inner engine.Executor
	// StoreTraces additionally persists each trace's canonical blob on
	// a miss, making the store self-contained (the serving layer wants
	// this; CLI warm-starts usually do not, since the corpus files are
	// the source of truth).
	StoreTraces bool

	hits, misses atomic.Int64
}

// NewCachingExecutor wraps inner with the store. inner must not be nil.
func NewCachingExecutor(s *Store, inner engine.Executor) *CachingExecutor {
	return &CachingExecutor{store: s, inner: inner}
}

// Categorize implements engine.Executor: store lookup, then the inner
// executor on a miss, then write-back. Write-back failures are
// returned (a persistence error should fail loudly rather than
// silently degrade to a cold cache).
func (e *CachingExecutor) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fp := cfg.Fingerprint()
	id, data, err := TraceKey(j)
	if err != nil {
		return nil, err
	}
	if res, ok, err := e.store.GetResult(id, fp); err != nil {
		return nil, err
	} else if ok {
		e.hits.Add(1)
		return res, nil
	}
	res, err := e.inner.Categorize(ctx, j, cfg)
	if err != nil {
		return nil, err
	}
	e.misses.Add(1)
	if e.StoreTraces {
		if _, _, err := e.store.PutTraceBytes(data); err != nil {
			return nil, err
		}
	}
	if err := e.store.PutResult(id, fp, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CategorizeExplained implements engine.ExplainExecutor: a warm hit
// requires both the result and its explanation to be stored; when the
// result is present but the explanation is not (e.g. it was computed
// before explanations existed, or with explain disabled), both are
// recomputed and only the missing explanation is written back — the
// stored result stays authoritative. Inner executors without the
// ExplainExecutor capability degrade to the plain path with a nil
// explanation.
func (e *CachingExecutor) CategorizeExplained(ctx context.Context, j *darshan.Job, cfg core.Config, opts explain.Options) (*core.Result, *explain.Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ex, ok := e.inner.(engine.ExplainExecutor)
	if !ok {
		res, err := e.Categorize(ctx, j, cfg)
		return res, nil, err
	}
	fp := cfg.Fingerprint()
	id, data, err := TraceKey(j)
	if err != nil {
		return nil, nil, err
	}
	res, haveRes, err := e.store.GetResult(id, fp)
	if err != nil {
		return nil, nil, err
	}
	if haveRes {
		if expl, haveExpl, err := e.store.GetExplanation(id, fp); err != nil {
			return nil, nil, err
		} else if haveExpl {
			e.hits.Add(1)
			return res, expl, nil
		}
	}
	fresh, expl, err := ex.CategorizeExplained(ctx, j, cfg, opts)
	if err != nil {
		return nil, nil, err
	}
	e.misses.Add(1)
	if e.StoreTraces {
		if _, _, err := e.store.PutTraceBytes(data); err != nil {
			return nil, nil, err
		}
	}
	if !haveRes {
		if err := e.store.PutResult(id, fp, fresh); err != nil {
			return nil, nil, err
		}
		res = fresh
	}
	if _, err := e.store.PutExplanation(id, fp, expl); err != nil {
		return nil, nil, err
	}
	return res, expl, nil
}

// Concurrency implements engine.Executor, deferring to the inner
// executor's parallelism.
func (e *CachingExecutor) Concurrency() int { return e.inner.Concurrency() }

// Hits returns how many categorizations were served from the store.
func (e *CachingExecutor) Hits() int64 { return e.hits.Load() }

// Misses returns how many categorizations ran and were written back.
func (e *CachingExecutor) Misses() int64 { return e.misses.Load() }

var (
	_ engine.Executor        = (*CachingExecutor)(nil)
	_ engine.ExplainExecutor = (*CachingExecutor)(nil)
)
