package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/engine"
)

func TestMuxMetricsAndEngineEndpoints(t *testing.T) {
	tel := New(Config{SlowK: 3})
	// Simulate a little pipeline traffic.
	tel.StageStarted(engine.StageDecode)
	for i := 0; i < 5; i++ {
		tel.ItemIn(engine.StageDecode)
		tel.ItemOut(engine.StageDecode)
	}
	tel.StageFinished(engine.StageDecode)

	srv := httptest.NewServer(NewMux(tel.Registry(), tel))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	// /metrics: Prometheus exposition with engine families.
	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE mosaic_engine_items_in_total counter",
		`mosaic_engine_items_out_total{stage="decode"} 5`,
		"# TYPE mosaic_engine_item_seconds histogram",
		"# TYPE mosaic_engine_stage_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /healthz: liveness.
	code, body, _ = get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /debug/engine: live stage snapshot JSON.
	code, body, hdr = get("/debug/engine")
	if code != http.StatusOK {
		t.Fatalf("/debug/engine status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/debug/engine content-type = %q", ct)
	}
	var state struct {
		Stages []engine.StageSnapshot `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("/debug/engine is not valid JSON: %v\n%s", err, body)
	}
	if len(state.Stages) != 1 || state.Stages[0].Stage != engine.StageDecode {
		t.Fatalf("/debug/engine stages = %+v, want one decode snapshot", state.Stages)
	}
	if state.Stages[0].Out != 5 {
		t.Fatalf("/debug/engine decode out = %d, want 5", state.Stages[0].Out)
	}
	if !strings.Contains(body, "items_per_sec") {
		t.Fatalf("/debug/engine snapshot lacks items_per_sec:\n%s", body)
	}

	// pprof index responds.
	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

func TestStartServerServesAndCloses(t *testing.T) {
	tel := New(Config{})
	srv, err := StartServer("127.0.0.1:0", tel.Registry(), tel, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
