package stats

import (
	"math"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
)

const (
	catA = category.Category("read_on_start")
	catB = category.Category("write_on_end")
	catC = category.Category("metadata_high_spike")
)

func observeMany(m *CoMatrix, sets ...[]category.Category) {
	for _, s := range sets {
		m.Observe(category.NewSet(s...))
	}
}

func TestCoMatrixCounts(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB, catC})
	observeMany(m,
		[]category.Category{catA, catB},
		[]category.Category{catA},
		[]category.Category{catB},
		[]category.Category{},
	)
	if m.Total() != 4 {
		t.Fatalf("Total = %d", m.Total())
	}
	if m.Count(catA) != 2 || m.Count(catB) != 2 || m.Count(catC) != 0 {
		t.Fatal("counts wrong")
	}
	if got := m.Rate(catA); got != 0.5 {
		t.Fatalf("Rate = %g", got)
	}
}

func TestCoMatrixJaccard(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB})
	observeMany(m,
		[]category.Category{catA, catB}, // both
		[]category.Category{catA},       // only A
		[]category.Category{catB},       // only B
		[]category.Category{catB},       // only B
	)
	// |A∩B| = 1, |A∪B| = 4
	if got := m.Jaccard(catA, catB); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Jaccard = %g, want 0.25", got)
	}
	if got := m.Jaccard(catA, catA); got != 1 {
		t.Fatalf("self Jaccard = %g", got)
	}
	if got := m.Jaccard(catA, "unknown"); got != 0 {
		t.Fatalf("unknown label Jaccard = %g", got)
	}
}

func TestCoMatrixConditional(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB})
	observeMany(m,
		[]category.Category{catA, catB},
		[]category.Category{catA, catB},
		[]category.Category{catA},
	)
	// P(B | A) = 2/3
	if got := m.Conditional(catB, catA); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Conditional = %g", got)
	}
	// P(A | B) = 1
	if got := m.Conditional(catA, catB); got != 1 {
		t.Fatalf("Conditional = %g", got)
	}
}

func TestCoMatrixDuplicateLabels(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catA, catB})
	if len(m.Labels) != 2 {
		t.Fatalf("duplicate labels not collapsed: %v", m.Labels)
	}
}

func TestJaccardMatrixSymmetry(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB, catC})
	observeMany(m,
		[]category.Category{catA, catB, catC},
		[]category.Category{catA, catC},
		[]category.Category{catB},
	)
	jm := m.JaccardMatrix()
	for i := range jm {
		for j := range jm {
			if jm[i][j] != jm[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if jm[i][j] < 0 || jm[i][j] > 1 {
				t.Fatalf("matrix value out of range: %g", jm[i][j])
			}
		}
		if m.Count(m.Labels[i]) > 0 && jm[i][i] != 1 {
			t.Fatalf("diagonal for populated label = %g", jm[i][i])
		}
	}
}

func TestTopPairs(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB, catC})
	for i := 0; i < 10; i++ {
		m.Observe(category.NewSet(catA, catB))
	}
	m.Observe(category.NewSet(catC))
	pairs := m.TopPairs(0.01)
	if len(pairs) != 1 {
		t.Fatalf("TopPairs = %v", pairs)
	}
	if pairs[0].A != catA || pairs[0].B != catB || pairs[0].Jaccard != 1 {
		t.Fatalf("top pair = %+v", pairs[0])
	}
	if got := m.TopPairs(1.1); len(got) != 0 {
		t.Fatal("threshold above 1 should return nothing")
	}
}

func TestTopPairsSorted(t *testing.T) {
	m := NewCoMatrix([]category.Category{catA, catB, catC})
	observeMany(m,
		[]category.Category{catA, catB, catC},
		[]category.Category{catA, catB},
		[]category.Category{catA, catC},
		[]category.Category{catC},
	)
	pairs := m.TopPairs(0)
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Jaccard < pairs[i].Jaccard {
			t.Fatal("pairs not sorted by decreasing Jaccard")
		}
	}
}
