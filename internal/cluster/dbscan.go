package cluster

import (
	"errors"
	"math"
)

// DBSCAN (Ester et al. 1996): density-based clustering, the third
// grouping baseline in the ablation suite. Unlike Mean Shift it has an
// explicit notion of noise, which maps naturally onto "segments that
// belong to no periodic operation" — but its two coupled parameters
// (eps, minPts) are harder to set than one bandwidth, which the ablation
// bench illustrates.

// DBSCANConfig parametrizes DBSCAN.
type DBSCANConfig struct {
	Eps    float64 // neighbourhood radius; must be > 0
	MinPts int     // minimum neighbourhood size (incl. the point) to be a core point
}

// Noise is the label DBSCAN assigns to points in no cluster.
const Noise = -1

// ErrBadEps reports a non-positive eps.
var ErrBadEps = errors.New("cluster: eps must be positive")

// DBSCAN clusters the points; Labels contains dense cluster ids with
// Noise (-1) for unclustered points. Centers holds the mean of each
// cluster.
func DBSCAN(points []Point, cfg DBSCANConfig) (*Result, error) {
	if cfg.Eps <= 0 || math.IsNaN(cfg.Eps) {
		return nil, ErrBadEps
	}
	if err := checkPoints(points); err != nil {
		return nil, err
	}
	if cfg.MinPts < 1 {
		cfg.MinPts = 2
	}
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	eps2 := cfg.Eps * cfg.Eps

	neighbours := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if Dist2(points[i], points[j]) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}

	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nb := neighbours(i)
		if len(nb) < cfg.MinPts {
			continue // noise (may be claimed by a later cluster as border)
		}
		id := next
		next++
		labels[i] = id
		// Expand the cluster breadth-first.
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = id // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = id
			nbj := neighbours(j)
			if len(nbj) >= cfg.MinPts {
				queue = append(queue, nbj...)
			}
		}
	}

	res := &Result{Labels: labels}
	if next == 0 {
		return res, nil
	}
	dim := 0
	if n > 0 {
		dim = len(points[0])
	}
	sums := make([]Point, next)
	counts := make([]int, next)
	for i := range sums {
		sums[i] = make(Point, dim)
	}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		counts[l]++
		for d := range points[i] {
			sums[l][d] += points[i][d]
		}
	}
	res.Centers = make([]Point, next)
	for c := range sums {
		ctr := make(Point, dim)
		for d := range ctr {
			if counts[c] > 0 {
				ctr[d] = sums[c][d] / float64(counts[c])
			}
		}
		res.Centers[c] = ctr
	}
	return res, nil
}

// NoiseCount returns the number of points labelled Noise.
func (r *Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}
