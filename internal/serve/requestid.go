package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// requestIDHeader is the header carrying the request correlation ID.
const requestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied IDs; longer (or
// non-printable) values are replaced with a generated one so log lines
// stay clean.
const maxRequestIDLen = 128

type requestIDKey struct{}

// RequestIDFrom returns the request ID stored in ctx by
// RequestIDMiddleware, or "" when the request did not pass through it.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestIDMiddleware assigns every request a correlation ID: a valid
// client-supplied X-Request-Id is kept (so callers can trace a request
// across systems), otherwise one is generated. The ID is echoed in the
// response header and stored in the request context for handler and
// worker log lines.
func RequestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// validRequestID accepts printable-ASCII IDs up to maxRequestIDLen.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// newRequestID returns a 16-hex-char random ID. crypto/rand never
// fails on supported platforms; on the impossible error path a fixed
// marker keeps requests flowing rather than failing them over an ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}
