package store

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
)

// TestScanCategories checks the labels fast path against encoding/json:
// wherever the scanner claims success it must produce exactly the
// decoded "categories" field, and wherever it bails the caller's
// fallback must be reachable (the input still decodes, or is junk the
// full decoder rejects too).
func TestScanCategories(t *testing.T) {
	full, err := json.Marshal(&core.Result{
		JobID: 42, App: "ior", User: "u1", NProcs: 64, Runtime: 100,
		Labels: []string{"read_on_start", "write_on_end"},
		Truth:  map[string]string{"categories": "decoy [not] {real}", "k": "v,]}"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		doc    string
		wantOK bool
	}{
		{"full result", string(full), true},
		{"empty object", `{}`, true},
		{"missing field", `{"app":"x","read":{"chunks":[1,2,3]}}`, true},
		{"null labels", `{"categories":null,"app":"x"}`, true},
		{"empty labels", `{"categories":[],"app":"x"}`, true},
		{"labels only", `{"categories":["a","b"]}`, true},
		{"whitespace", " {\n\t\"categories\" : [ \"a\" ,\t\"b\" ] , \"n\" : 1.5e3 }", true},
		{"nested decoy key", `{"truth":{"categories":["x"]},"categories":["y"]}`, true},
		{"escaped elsewhere", `{"app":"a\"b\\c","categories":["a"]}`, true},
		{"unicode escape elsewhere", `{"app":"caf\u00e9","categories":["a"]}`, true},
		{"raw utf8 elsewhere", `{"app":"é","categories":["a"]}`, true},
		{"escaped label", `{"categories":["a\"b"]}`, false}, // falls back
		{"escaped key", `{"categor\u0069es":["a"]}`, false}, // falls back
		{"truncated", `{"categories":["a"`, false},
		{"not an object", `["categories"]`, false},
		{"non-string label", `{"categories":[1]}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := scanCategories([]byte(tc.doc), nil)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			var want struct {
				Labels []string `json:"categories"`
			}
			if err := json.Unmarshal([]byte(tc.doc), &want); err != nil {
				if ok {
					t.Fatalf("scanner accepted what encoding/json rejects: %v", err)
				}
				return
			}
			if !ok {
				return // fallback handles it
			}
			if len(got) == 0 && len(want.Labels) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want.Labels) {
				t.Fatalf("labels = %q, want %q", got, want.Labels)
			}
		})
	}
}

// FuzzScanCategories: on arbitrary input the scanner must never panic,
// and whenever it reports success on something encoding/json accepts,
// the two must agree on the labels.
func FuzzScanCategories(f *testing.F) {
	f.Add(`{"categories":["read_on_start"],"app":"ior"}`)
	f.Add(`{"truth":{"categories":["x"]},"categories":null}`)
	f.Add(`{"a":[[{"b":"]"}]],"categories":["y","z"]}`)
	f.Add(`{"categories":["😀"]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<16 {
			return
		}
		got, ok := scanCategories([]byte(doc), nil)
		if !ok {
			return
		}
		var want struct {
			Labels []string `json:"categories"`
		}
		if err := json.Unmarshal([]byte(doc), &want); err != nil {
			return // scanner is laxer than the fallback; EachResultLabels only sees docs the store wrote
		}
		if len(got) == 0 && len(want.Labels) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want.Labels) {
			t.Fatalf("scanner %q vs encoding/json %q for %q", got, want.Labels, doc)
		}
	})
}
