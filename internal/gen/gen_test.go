package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func TestAppSharesSumToOne(t *testing.T) {
	var sum float64
	for _, a := range DefaultArchetypes() {
		if a.AppShare <= 0 {
			t.Errorf("archetype %s has non-positive share", a.Name)
		}
		sum += a.AppShare
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("app shares sum to %g, want 1", sum)
	}
}

func TestArchetypesProduceValidTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, arch := range DefaultArchetypes() {
		t.Run(arch.Name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				p := arch.Params(rng)
				b := NewBuilder(rng, "u1", arch.Exe, uint64(trial+1), p.Ranks, runJitter(rng, p.RuntimeBase))
				arch.Build(b, p)
				j := b.Job()
				if err := darshan.Validate(j); err != nil {
					t.Fatalf("trial %d: generated trace invalid: %v", trial, err)
				}
				if Truth(j) == nil || len(Truth(j)) == 0 {
					t.Fatalf("trial %d: no ground truth recorded", trial)
				}
				if j.Metadata[ArchetypeKey] == "" && arch.Name != "" {
					// ArchetypeKey is set by the corpus, not the builder.
					_ = j
				}
			}
		})
	}
}

func TestTruthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(rng, "u", "/bin/x", 1, 8, 100)
	b.Label(category.Temporal(category.DirRead, category.OnStart), category.MetaHighSpike)
	j := b.Job()
	truth := Truth(j)
	if !truth.Has(category.Temporal(category.DirRead, category.OnStart)) || !truth.Has(category.MetaHighSpike) {
		t.Fatalf("truth round trip lost labels: %v", truth)
	}
	if Truth(&darshan.Job{}) != nil {
		t.Fatal("Truth of unannotated job should be nil")
	}
}

func TestPlanDeterminism(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 50
	c1 := Plan(p)
	c2 := Plan(p)
	if c1.TotalRuns() != c2.TotalRuns() {
		t.Fatalf("plans differ: %d vs %d runs", c1.TotalRuns(), c2.TotalRuns())
	}
	r1 := c1.GenerateRun(c1.Apps[3], 2)
	r2 := c2.GenerateRun(c2.Apps[3], 2)
	if r1.Job.JobID != r2.Job.JobID || r1.Job.Runtime != r2.Job.Runtime ||
		len(r1.Job.Records) != len(r2.Job.Records) || r1.Corrupted != r2.Corrupted {
		t.Fatal("run generation not deterministic")
	}
	b1, err := darshan.MarshalBinary(r1.Job)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := darshan.MarshalBinary(r2.Job)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) && len(r1.Job.Metadata) <= 1 {
		t.Fatal("binary encodings differ")
	}
}

func TestPlanApportionment(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 1000
	c := Plan(p)
	if len(c.Apps) != 1000 {
		t.Fatalf("planned %d apps, want 1000", len(c.Apps))
	}
	counts := map[string]int{}
	for _, a := range c.Apps {
		counts[a.Archetype.Name]++
	}
	for _, arch := range DefaultArchetypes() {
		got := counts[arch.Name]
		want := arch.AppShare * 1000
		if math.Abs(float64(got)-want) > 1.5 {
			t.Errorf("archetype %s: %d apps, want ~%.0f", arch.Name, got, want)
		}
	}
}

func TestPlanUniqueAppKeys(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 300
	c := Plan(p)
	seen := map[string]bool{}
	for _, a := range c.Apps {
		r := c.GenerateRun(a, 0)
		key := r.Job.AppKey()
		if seen[key] {
			t.Fatalf("duplicate app key %q", key)
		}
		seen[key] = true
	}
}

func TestCorruptionRate(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 120
	c := Plan(p)
	var corrupted, total int
	c.Each(func(r Run) bool {
		total++
		if r.Corrupted {
			corrupted++
		}
		return total < 5000
	})
	frac := float64(corrupted) / float64(total)
	if frac < 0.25 || frac > 0.40 {
		t.Fatalf("corruption fraction %.2f outside [0.25, 0.40]", frac)
	}
}

func TestCorruptedTracesFailValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arch, _ := ArchetypeByName("read-compute-write")
	for kind := 0; kind < CorruptKinds; kind++ {
		// Corrupt picks its kind from the rng; try until each kind hits.
		p := arch.Params(rng)
		b := NewBuilder(rng, "u", arch.Exe, 1, p.Ranks, p.RuntimeBase)
		arch.Build(b, p)
		j := b.Job()
		applied := Corrupt(j, rng)
		if err := darshan.Validate(j); err == nil {
			t.Fatalf("corruption kind %d not detected by validation", applied)
		}
	}
}

func TestGeometricRunsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const mean = 40.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(geometricRuns(rng, mean, 100000))
	}
	got := sum / n
	if got < mean*0.9 || got > mean*1.1 {
		t.Fatalf("geometric mean = %.1f, want ~%.0f", got, mean)
	}
	if geometricRuns(rng, 0.5, 10) != 1 {
		t.Fatal("mean <= 1 should give exactly 1 run")
	}
}

func TestReservoirSampling(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 60
	c := Plan(p)
	k := 32
	sample := c.Reservoir(k, 7)
	if len(sample) != k && c.TotalRuns() >= k {
		t.Fatalf("reservoir returned %d, want %d", len(sample), k)
	}
	for _, r := range sample {
		if r.Job == nil {
			t.Fatal("nil job in sample")
		}
	}
}

func TestBuilderBurstClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBuilder(rng, "u", "/bin/x", 1, 4, 100)
	b.Burst(BurstSpec{At: 99.5, Duration: 10, Bytes: 1000, Records: 3, Write: true})
	j := b.Job()
	if err := darshan.Validate(j); err != nil {
		t.Fatalf("clamped burst invalid: %v", err)
	}
	for _, r := range j.Records {
		if r.C.WriteEnd > 100 {
			t.Fatalf("write end %g beyond runtime", r.C.WriteEnd)
		}
	}
}

func TestPeriodicPhaseCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(rng, "u", "/bin/x", 1, 4, 1000)
	n := b.Periodic(PeriodicSpec{Period: 100, PhaseFrac: 0.1, BytesPer: 1 << 20, Records: 2, Write: true})
	if n < 8 || n > 11 {
		t.Fatalf("periodic emitted %d phases over 10 periods", n)
	}
	if got := len(b.Job().Records); got != n*2 {
		t.Fatalf("records = %d, want %d", got, n*2)
	}
}

func TestMetadataStormEventSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBuilder(rng, "u", "/bin/x", 1, 4, 1000)
	b.MetadataStorm(10, 990, 50, 100)
	j := b.Job()
	events := j.MetaEvents()
	if len(events) < 50 {
		t.Fatalf("storm produced %d events, want >= 50", len(events))
	}
	if j.TotalMetaOps() < 50*100 {
		t.Fatalf("total meta ops = %d", j.TotalMetaOps())
	}
}

func TestSteadyHiddenPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBuilder(rng, "u", "/bin/h", 1, 8, 6000)
	n := b.SteadyHiddenPeriodic(true, 500, 0.05, 8<<30, 4, true)
	if n < 10 {
		t.Fatalf("phases = %d", n)
	}
	j := b.Job()
	if err := darshan.Validate(j); err != nil {
		t.Fatalf("hidden-periodic trace invalid: %v", err)
	}
	if len(j.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(j.Records))
	}
	if !j.HasDXT() {
		t.Fatal("DXT events missing")
	}
	// Each record's aggregate window spans most of the run while DXT
	// events are short bursts inside it.
	rec := j.Records[0]
	if len(rec.DXTWrites) != n {
		t.Fatalf("DXT events = %d, want %d", len(rec.DXTWrites), n)
	}
	aggSpan := rec.C.WriteEnd - rec.C.WriteStart
	if aggSpan < 4000 {
		t.Fatalf("aggregate window = %g, should span most of the run", aggSpan)
	}
	// Without DXT: no events.
	b2 := NewBuilder(rng, "u", "/bin/h", 2, 8, 6000)
	b2.SteadyHiddenPeriodic(true, 500, 0.05, 8<<30, 4, false)
	if b2.Job().HasDXT() {
		t.Fatal("aggregate-only trace carries DXT")
	}
	// Degenerate parameters produce nothing.
	b3 := NewBuilder(rng, "u", "/bin/h", 3, 8, 100)
	if b3.SteadyHiddenPeriodic(true, 200, 0.05, 1<<20, 2, true) != 0 {
		t.Fatal("period beyond runtime should emit nothing")
	}
}

func TestDXTArchetypesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, withDXT := range []bool{false, true} {
		arch := DXTCheckpointerArchetype(withDXT)
		p := arch.Params(rng)
		b := NewBuilder(rng, "u", arch.Exe, 1, p.Ranks, p.RuntimeBase)
		arch.Build(b, p)
		j := b.Job()
		if err := darshan.Validate(j); err != nil {
			t.Fatalf("withDXT=%v: invalid: %v", withDXT, err)
		}
		if j.HasDXT() != withDXT {
			t.Fatalf("withDXT=%v: HasDXT=%v", withDXT, j.HasDXT())
		}
		truth := Truth(j)
		if withDXT && !truth.Has(category.Periodic(category.DirWrite)) {
			t.Fatal("DXT variant truth missing periodicity")
		}
		if !withDXT && truth.Has(category.Periodic(category.DirWrite)) {
			t.Fatal("aggregate variant truth should not promise periodicity")
		}
	}
}

func TestCorpusModuleDiversity(t *testing.T) {
	p := DefaultProfile()
	p.Apps = 150
	p.CorruptionRate = 0
	c := Plan(p)
	counts := map[darshan.Module]int{}
	n := 0
	c.Each(func(r Run) bool {
		for _, rec := range r.Job.Records {
			counts[rec.Module]++
		}
		n++
		return n < 400
	})
	if counts[darshan.ModPOSIX] == 0 || counts[darshan.ModMPIIO] == 0 || counts[darshan.ModSTDIO] == 0 {
		t.Fatalf("missing module diversity: %v", counts)
	}
	// Record mix depends on which archetypes land in the sampled prefix;
	// presence of all three APIs is the invariant.
}
