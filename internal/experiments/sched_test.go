package experiments

import (
	"bytes"
	"testing"
)

func TestSchedExperiment(t *testing.T) {
	res, err := Sched(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStallFCFS <= 0 {
		t.Fatal("FCFS workload not contended")
	}
	if res.StallReduction < 0.3 {
		t.Fatalf("stall reduction = %.2f, want >= 0.3", res.StallReduction)
	}
	if res.MakespanChange > 0.5 {
		t.Fatalf("makespan regression %.2f too large", res.MakespanChange)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}
