package gen

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// DXT-enabled generation: applications that keep their files open for the
// whole run while doing periodic I/O inside. With aggregate-only tracing
// (Blue Waters) such a trace collapses to one steady record — the paper's
// Section IV-A caveat; with DXT the per-operation segments survive and
// MOSAIC can recover the periodicity. The dxt experiment measures both
// sides.

// SteadyHiddenPeriodic emits, per participating record, a single
// whole-run file record whose aggregate counters span the execution,
// optionally annotated with the true per-checkpoint DXT events.
func (b *Builder) SteadyHiddenPeriodic(write bool, period, phaseFrac float64, bytesPer int64, records int, withDXT bool) int {
	rt := b.job.Runtime
	if period <= 0 || period >= rt || records <= 0 {
		return 0
	}
	if phaseFrac <= 0 {
		phaseFrac = 0.05
	}
	// Plan the checkpoint times once so every record shares them.
	var phases []float64
	for at := period * 0.5; at+period*phaseFrac < rt; at += period {
		phases = append(phases, at)
	}
	if len(phases) < 2 {
		return 0
	}
	perRecBytes := bytesPer / int64(records)
	phaseDur := period * phaseFrac

	first := phases[0]
	last := phases[len(phases)-1] + phaseDur
	for r := 0; r < records; r++ {
		rec := darshan.FileRecord{
			Module: darshan.ModPOSIX,
			Path:   b.nextPath("stream"),
			Rank:   int32(r % int(b.job.NProcs)),
			C: darshan.Counters{
				Opens: 1, Closes: 1, Seeks: 1,
				OpenStart:  b.clampT(first - 1),
				OpenEnd:    b.clampT(first - 0.5),
				CloseStart: b.clampT(last + 0.5),
				CloseEnd:   b.clampT(last + 1),
			},
		}
		total := perRecBytes * int64(len(phases))
		if write {
			rec.C.Writes = int64(len(phases))
			rec.C.BytesWritten = total
			rec.C.WriteStart = first
			rec.C.WriteEnd = last
		} else {
			rec.C.Reads = int64(len(phases))
			rec.C.BytesRead = total
			rec.C.ReadStart = first
			rec.C.ReadEnd = last
		}
		if withDXT {
			events := make([]darshan.DXTEvent, 0, len(phases))
			var offset int64
			for _, at := range phases {
				jitter := (b.rng.Float64()*2 - 1) * 0.02 * period
				start := b.clampT(at + jitter)
				events = append(events, darshan.DXTEvent{
					Start:  start,
					End:    b.clampT(start + phaseDur),
					Offset: offset,
					Length: jitterBytes(b.rng, perRecBytes, 0.05),
				})
				offset += perRecBytes
			}
			if write {
				rec.DXTWrites = events
			} else {
				rec.DXTReads = events
			}
		}
		b.job.Records = append(b.job.Records, rec)
	}
	return len(phases)
}

// DXTCheckpointerArchetype models a simulation that checkpoints into files
// held open for the entire run. Variant selects DXT availability: with
// p.Variant == 1 the trace carries DXT events (periodicity recoverable),
// with 0 it is aggregate-only (collapses to steady). Not part of the
// default Blue-Waters-shaped mixture — the dxt experiment instantiates it
// explicitly.
func DXTCheckpointerArchetype(withDXT bool) Archetype {
	name := "dxt-checkpointer-aggregate"
	if withDXT {
		name = "dxt-checkpointer-dxt"
	}
	return Archetype{
		Name: name, Exe: "/apps/bin/gromacs", AppShare: 0, MeanRuns: 1,
		Params: func(rng *rand.Rand) AppParams {
			p := AppParams{
				Ranks:    64,
				Records:  8 + rng.Intn(8),
				Bytes:    significantBytes(rng, 8*gb),
				Period:   uniformF(rng, 120, 900),
				BusyFrac: uniformF(rng, 0.05, 0.15),
			}
			p.RuntimeBase = p.Period * uniformF(rng, 12, 25)
			if withDXT {
				p.Variant = 1
			}
			return p
		},
		Build: func(b *Builder, p AppParams) {
			b.SteadyHiddenPeriodic(true, p.Period, p.BusyFrac, p.Bytes, p.Records, p.Variant == 1)
			b.Label(category.Temporal(category.DirRead, category.Insignificant))
			if p.Variant == 1 {
				// With DXT the true structure is visible.
				b.Label(category.Temporal(category.DirWrite, category.Steady))
				b.Label(category.Periodic(category.DirWrite))
				b.Label(category.PeriodicMagnitude(category.DirWrite, category.MagnitudeOf(p.Period)))
				b.Label(category.PeriodicBusy(category.DirWrite, p.BusyFrac >= 0.25))
			} else {
				// Aggregate-only: one open-to-close window per record.
				b.Label(category.Temporal(category.DirWrite, category.Steady))
			}
			b.Annotate(TruthPeriodKey, formatSeconds(p.Period))
			b.Label(category.MetaInsignificantLoad)
		},
	}
}
