package serve_test

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/benchsuite"
)

// BenchmarkServe exposes the pinned serve benchmarks (the tracing and
// observability overhead budget pairs in BENCH_serve.json) to plain
// `go test -bench`. The bodies live in internal/benchsuite so
// `mosaic-bench -bench-json` runs the identical code; this file is in
// the external test package because benchsuite imports serve.
func BenchmarkServe(b *testing.B) {
	b.Run("ingest_warm_untraced", benchsuite.ServeIngestWarm(false))
	b.Run("ingest_warm_traced", benchsuite.ServeIngestWarm(true))
	b.Run("ingest_warm_unobserved", benchsuite.ServeIngestObserved(false))
	b.Run("ingest_warm_observed", benchsuite.ServeIngestObserved(true))
}

// BenchmarkCluster exposes the pinned cluster benchmarks (the n4/n1
// distribution-overhead contract plus the scatter-gather read path in
// BENCH_cluster.json).
func BenchmarkCluster(b *testing.B) {
	b.Run("ingest_n1", benchsuite.ClusterIngest(1, 1))
	b.Run("ingest_n4_rf1", benchsuite.ClusterIngest(4, 1))
	b.Run("ingest_n4_rf2", benchsuite.ClusterIngest(4, 2))
	b.Run("scatter_query_n4", benchsuite.ClusterScatterQuery(4))
}
