// Package sched implements a discrete-event simulator of jobs sharing a
// parallel file system, used to evaluate the scheduling application the
// paper motivates: categorization-aware placement that avoids I/O
// interference ("two jobs categorized as reading large volumes of data at
// the start of execution could be scheduled so as not to overlap",
// Section V).
//
// The model is deliberately simple — the goal is to measure the *relative*
// benefit of using MOSAIC categories, not to simulate Lustre: jobs are
// sequences of compute and I/O phases; concurrent I/O phases share the
// PFS bandwidth fairly; an I/O phase stretches proportionally to the
// contention it experiences. Compute capacity is modelled as a bounded
// number of slots.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Phase is one step of a job: Compute seconds of CPU work, or an I/O
// transfer of Bytes at the job's native bandwidth.
type Phase struct {
	Compute float64 // seconds of computation (0 for I/O phases)
	Bytes   float64 // bytes transferred (0 for compute phases)
}

// IsIO reports whether the phase does I/O.
func (p Phase) IsIO() bool { return p.Bytes > 0 }

// Job is a simulated application: its phases plus the MOSAIC categories
// that a scheduler may exploit.
type Job struct {
	ID     int
	Phases []Phase
	// Hints available to category-aware policies.
	ReadOnStart   bool    // heavy read in the first phase
	PeriodicWrite bool    // checkpoint-style periodic writes
	Period        float64 // detected checkpoint period, seconds
}

// Duration returns the job's ideal runtime on an uncontended system with
// the given per-job bandwidth.
func (j *Job) Duration(bw float64) float64 {
	var d float64
	for _, p := range j.Phases {
		if p.IsIO() {
			d += p.Bytes / bw
		} else {
			d += p.Compute
		}
	}
	return d
}

// Config describes the simulated platform.
type Config struct {
	Slots        int     // concurrent job slots (compute nodes groups)
	PFSBandwidth float64 // aggregate PFS bandwidth, bytes/s
	JobBandwidth float64 // max bandwidth one job can draw, bytes/s
}

// Validate checks the platform description.
func (c Config) Validate() error {
	if c.Slots < 1 {
		return errors.New("sched: need at least one slot")
	}
	if c.PFSBandwidth <= 0 || c.JobBandwidth <= 0 {
		return errors.New("sched: bandwidths must be positive")
	}
	return nil
}

// Metrics summarizes one simulation.
type Metrics struct {
	Makespan     float64 // time until the last job finishes
	TotalIOTime  float64 // cumulative wall time jobs spent in I/O phases
	IdealIOTime  float64 // same, had every transfer run at full job bandwidth
	StallTime    float64 // TotalIOTime - IdealIOTime: time lost to contention
	MeanSlowdown float64 // mean of per-job (actual runtime / ideal runtime)
	PeakDemand   float64 // peak instantaneous bandwidth demand / PFS bandwidth
}

// Stretch returns the aggregate I/O stretch factor (1 = no contention).
func (m Metrics) Stretch() float64 {
	if m.IdealIOTime == 0 {
		return 1
	}
	return m.TotalIOTime / m.IdealIOTime
}

// state of one running job inside the simulator.
type running struct {
	job       *Job
	phase     int
	remaining float64 // seconds of compute, or bytes of I/O, left in the phase
	started   float64
	ioTime    float64
}

// Order is a start schedule: Delay[i] is the earliest time job i may
// start (on top of slot availability). Policies produce Orders.
type Order struct {
	Sequence []int     // submission order (indices into the job slice)
	Delay    []float64 // per-job release offsets, aligned with Sequence
}

// Simulate runs the jobs through the platform honoring the order and
// returns the metrics. Event-driven: between events, every active I/O
// phase progresses at bandwidth min(JobBandwidth, PFS/activeIO).
func Simulate(jobs []*Job, cfg Config, order Order) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(order.Sequence) != len(jobs) || len(order.Delay) != len(jobs) {
		return Metrics{}, fmt.Errorf("sched: order covers %d/%d jobs", len(order.Sequence), len(jobs))
	}

	type pending struct {
		job     *Job
		release float64
	}
	queue := make([]pending, len(order.Sequence))
	for qi, ji := range order.Sequence {
		if ji < 0 || ji >= len(jobs) {
			return Metrics{}, fmt.Errorf("sched: order references job %d", ji)
		}
		queue[qi] = pending{job: jobs[ji], release: order.Delay[qi]}
	}

	var (
		now     float64
		active  []*running
		metrics Metrics
		slowSum float64
		done    int
	)
	const eps = 1e-9

	startEligible := func() {
		for len(active) < cfg.Slots && len(queue) > 0 && queue[0].release <= now+eps {
			j := queue[0]
			queue = queue[1:]
			r := &running{job: j.job, started: now}
			if len(j.job.Phases) > 0 {
				ph := j.job.Phases[0]
				if ph.IsIO() {
					r.remaining = ph.Bytes
				} else {
					r.remaining = ph.Compute
				}
			}
			active = append(active, r)
		}
	}

	ioBandwidth := func(nIO int) float64 {
		if nIO == 0 {
			return 0
		}
		return math.Min(cfg.JobBandwidth, cfg.PFSBandwidth/float64(nIO))
	}

	for done < len(jobs) {
		startEligible()
		if len(active) == 0 {
			// Idle until the next release.
			if len(queue) == 0 {
				return Metrics{}, errors.New("sched: deadlock — no active jobs and empty queue")
			}
			if queue[0].release > now {
				now = queue[0].release
			}
			continue
		}
		// Count active I/O phases to size the fair share.
		nIO := 0
		for _, r := range active {
			if r.phase < len(r.job.Phases) && r.job.Phases[r.phase].IsIO() {
				nIO++
			}
		}
		bw := ioBandwidth(nIO)
		if demand := float64(nIO) * cfg.JobBandwidth / cfg.PFSBandwidth; demand > metrics.PeakDemand {
			metrics.PeakDemand = demand
		}

		// Time to the next phase completion.
		dt := math.Inf(1)
		for _, r := range active {
			if r.phase >= len(r.job.Phases) {
				dt = 0
				break
			}
			ph := r.job.Phases[r.phase]
			var t float64
			if ph.IsIO() {
				t = r.remaining / bw
			} else {
				t = r.remaining
			}
			if t < dt {
				dt = t
			}
		}
		// Next queue release can also be the next event.
		if len(queue) > 0 && len(active) < cfg.Slots {
			if t := queue[0].release - now; t >= 0 && t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			return Metrics{}, errors.New("sched: no progress possible")
		}

		// Advance all active jobs by dt.
		now += dt
		keep := active[:0]
		for _, r := range active {
			if r.phase < len(r.job.Phases) {
				ph := r.job.Phases[r.phase]
				if ph.IsIO() {
					r.remaining -= bw * dt
					r.ioTime += dt
				} else {
					r.remaining -= dt
				}
				for r.phase < len(r.job.Phases) && r.remaining <= eps {
					r.phase++
					if r.phase < len(r.job.Phases) {
						nph := r.job.Phases[r.phase]
						if nph.IsIO() {
							r.remaining = nph.Bytes
						} else {
							r.remaining = nph.Compute
						}
					}
				}
			}
			if r.phase >= len(r.job.Phases) {
				// Job finished.
				metrics.TotalIOTime += r.ioTime
				ideal := r.job.Duration(cfg.JobBandwidth)
				metrics.IdealIOTime += idealIO(r.job, cfg.JobBandwidth)
				actual := now - r.started
				if ideal > 0 {
					slowSum += actual / ideal
				} else {
					slowSum++
				}
				done++
				continue
			}
			keep = append(keep, r)
		}
		active = keep
	}
	metrics.Makespan = now
	metrics.StallTime = metrics.TotalIOTime - metrics.IdealIOTime
	if metrics.StallTime < 0 {
		metrics.StallTime = 0
	}
	metrics.MeanSlowdown = slowSum / float64(len(jobs))
	return metrics, nil
}

func idealIO(j *Job, bw float64) float64 {
	var t float64
	for _, p := range j.Phases {
		if p.IsIO() {
			t += p.Bytes / bw
		}
	}
	return t
}

// ---- Policies -----------------------------------------------------------

// FCFS releases every job immediately in submission order: the baseline.
func FCFS(jobs []*Job) Order {
	o := Order{Sequence: make([]int, len(jobs)), Delay: make([]float64, len(jobs))}
	for i := range jobs {
		o.Sequence[i] = i
	}
	return o
}

// CategoryAware builds a schedule from MOSAIC hints:
//
//   - jobs that read heavily on start are released with staggered offsets
//     so their input phases do not overlap (the paper's Section V
//     example);
//   - periodic writers are interleaved between the start-readers so the
//     PFS sees checkpoint traffic while readers compute;
//   - everything else keeps FCFS order after them.
//
// stagger is the release offset between consecutive start-readers,
// typically the duration of their read phase.
func CategoryAware(jobs []*Job, stagger float64) Order {
	var readers, periodic, rest []int
	for i, j := range jobs {
		switch {
		case j.ReadOnStart:
			readers = append(readers, i)
		case j.PeriodicWrite:
			periodic = append(periodic, i)
		default:
			rest = append(rest, i)
		}
	}
	// Heaviest readers first: their staggering matters most.
	sort.SliceStable(readers, func(a, b int) bool {
		return startReadBytes(jobs[readers[a]]) > startReadBytes(jobs[readers[b]])
	})
	o := Order{}
	for k, ji := range readers {
		o.Sequence = append(o.Sequence, ji)
		o.Delay = append(o.Delay, float64(k)*stagger)
	}
	for _, ji := range periodic {
		o.Sequence = append(o.Sequence, ji)
		o.Delay = append(o.Delay, 0)
	}
	phaseShiftPeriodic(jobs, &o, periodic)
	for _, ji := range rest {
		o.Sequence = append(o.Sequence, ji)
		o.Delay = append(o.Delay, 0)
	}
	return o
}

// phaseShiftPeriodic desynchronizes checkpoint windows: periodic writers
// whose detected periods agree within 20% are released with offsets of
// period/n so their I/O phases interleave instead of colliding every
// cycle. This uses the period magnitude MOSAIC computes per periodic
// group (Section III-B3a).
func phaseShiftPeriodic(jobs []*Job, o *Order, periodic []int) {
	// Group by compatible period.
	type group struct {
		period  float64
		members []int // positions in o.Sequence
	}
	var groups []*group
	pos := map[int]int{}
	for qi, ji := range o.Sequence {
		pos[ji] = qi
	}
	for _, ji := range periodic {
		p := jobs[ji].Period
		if p <= 0 {
			continue
		}
		var g *group
		for _, cand := range groups {
			if math.Abs(cand.period-p)/cand.period <= 0.2 {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{period: p}
			groups = append(groups, g)
		}
		g.members = append(g.members, pos[ji])
	}
	for _, g := range groups {
		n := len(g.members)
		if n < 2 {
			continue
		}
		for k, qi := range g.members {
			o.Delay[qi] = g.period * float64(k) / float64(n)
		}
	}
}

func startReadBytes(j *Job) float64 {
	if len(j.Phases) > 0 && j.Phases[0].IsIO() {
		return j.Phases[0].Bytes
	}
	return 0
}
