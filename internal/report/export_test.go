package report

import (
	"bytes"
	"encoding/csv"
	"image/png"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
)

func exportFixture() (*Aggregator, []ExportApp, core.FunnelStats) {
	agg := NewAggregator()
	apps := []ExportApp{
		{Result: resultWith(1,
			category.Temporal(category.DirRead, category.OnStart),
			category.Temporal(category.DirWrite, category.OnEnd),
			category.MetaHighSpike), Runs: 5},
		{Result: resultWith(2,
			category.Temporal(category.DirRead, category.Insignificant),
			category.Temporal(category.DirWrite, category.Insignificant),
			category.Periodic(category.DirWrite)), Runs: 2},
	}
	for _, a := range apps {
		agg.Add(a.Result, a.Runs)
	}
	funnel := core.FunnelStats{Total: 10, Corrupted: 3, Valid: 7, UniqueApps: 2,
		ByReason: map[string]int{"bad_header": 3}}
	return agg, apps, funnel
}

func TestExportJSONRoundTrip(t *testing.T) {
	agg, apps, funnel := exportFixture()
	e := BuildExport(funnel, apps, agg, 0.01)
	if e.Summary.Apps != 2 || e.Summary.Runs != 7 {
		t.Fatalf("summary = %+v", e.Summary)
	}
	if len(e.Summary.SingleRates) == 0 || len(e.Summary.JaccardPairs) == 0 {
		t.Fatal("summary rates/pairs missing")
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Funnel.Total != 10 || len(back.Apps) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Summary.SingleRates["read_on_start"] != 0.5 {
		t.Fatalf("rates = %v", back.Summary.SingleRates)
	}
}

func TestReadExportRejectsGarbage(t *testing.T) {
	if _, err := ReadExport(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteCategoriesCSV(t *testing.T) {
	agg, _, _ := exportFixture()
	var buf bytes.Buffer
	if err := WriteCategoriesCSV(&buf, agg); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 { // header + at least 3 populated categories
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "category" || rows[0][3] != "single_rate" {
		t.Fatalf("header = %v", rows[0])
	}
	found := false
	for _, r := range rows[1:] {
		if r[0] == "read_on_start" {
			found = true
			if r[1] != "temporality" || r[2] != "read" {
				t.Fatalf("row = %v", r)
			}
			if r[3] != "0.500000" {
				t.Fatalf("single rate = %s", r[3])
			}
		}
	}
	if !found {
		t.Fatal("read_on_start row missing")
	}
}

func TestWriteJaccardCSV(t *testing.T) {
	agg, _, _ := exportFixture()
	var buf bytes.Buffer
	if err := WriteJaccardCSV(&buf, agg, 0.01); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestWriteAppsCSV(t *testing.T) {
	_, apps, _ := exportFixture()
	apps = append(apps, ExportApp{Result: nil, Runs: 3}) // must be skipped
	var buf bytes.Buffer
	if err := WriteAppsCSV(&buf, apps); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 apps
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][2] != "5" {
		t.Fatalf("runs column = %s", rows[1][2])
	}
	if !strings.Contains(rows[1][9], "read_on_start") {
		t.Fatalf("categories column = %s", rows[1][9])
	}
}

func TestHeatmapPNG(t *testing.T) {
	agg, _, _ := exportFixture()
	var buf bytes.Buffer
	if err := HeatmapPNG(&buf, agg, 0, 8); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	if img.Bounds().Dx() < 10 || img.Bounds().Dx() != img.Bounds().Dy() {
		t.Fatalf("bounds = %v", img.Bounds())
	}
	// No populated categories above an impossible rate: error.
	if err := HeatmapPNG(&buf, agg, 2, 8); err == nil {
		t.Fatal("impossible rate accepted")
	}
}

func TestMetadataBarsPNG(t *testing.T) {
	agg, _, _ := exportFixture()
	var buf bytes.Buffer
	if err := MetadataBarsPNG(&buf, agg); err != nil {
		t.Fatal(err)
	}
	cfgImg, err := png.DecodeConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfgImg.Width != 420 {
		t.Fatalf("width = %d", cfgImg.Width)
	}
	if err := BarsPNG(&buf, nil, 8, 100); err == nil {
		t.Fatal("empty values accepted")
	}
}

func TestRamp(t *testing.T) {
	lo, mid, hi := ramp(0), ramp(0.5), ramp(1)
	if lo == hi || mid == lo || mid == hi {
		t.Fatal("ramp not monotone-ish")
	}
	if ramp(-1) != lo || ramp(2) != hi {
		t.Fatal("ramp clamping")
	}
}
