// Package segment implements MOSAIC's trace segmentation and
// segmentation-based periodic-operation detection (Section III-B3a).
//
// After merging, the trace is divided into segments: a segment starts at
// the beginning of an I/O operation and ends at the beginning of the next
// one (the last segment ends at the end of the execution). Each segment is
// described by its duration and the volume of data moved by the operation
// that opens it. Segments sharing comparable duration and volume are
// grouped with Mean Shift; any group with more than one member is a
// periodic operation.
package segment

import (
	"math"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Segment spans from the start of one merged operation to the start of the
// next.
type Segment struct {
	Op       interval.Interval // the operation opening the segment
	Duration float64           // inter-arrival time to the next operation (or to end of run)
}

// Split segments a merged, sorted operation list. runtime closes the last
// segment. Operations must be disjoint and sorted (the output of
// interval.Merge); Split does not re-sort.
func Split(ops []interval.Interval, runtime float64) []Segment {
	segs := make([]Segment, len(ops))
	for i, op := range ops {
		end := runtime
		if i+1 < len(ops) {
			end = ops[i+1].Start
		}
		d := end - op.Start
		if d < 0 {
			d = 0
		}
		segs[i] = Segment{Op: op, Duration: d}
	}
	return segs
}

// FeatureConfig controls how segments are embedded into the 2D feature
// space used for clustering.
type FeatureConfig struct {
	// Runtime normalizes segment durations so that the duration axis is
	// a fraction of the execution. Must be > 0.
	Runtime float64
	// VolumeLogScale divides log2(1+bytes) to put the volume axis on a
	// comparable scale; with the default 64, one unit spans the entire
	// representable byte range, and a 2x volume change moves a point by
	// 1/64 ≈ 0.016.
	VolumeLogScale float64
}

// DefaultVolumeLogScale is the default divisor for the log-volume axis.
const DefaultVolumeLogScale = 64

// Features embeds segments as (duration/runtime, log2(1+bytes)/scale)
// points. This scaling realizes the paper's "comparable duration and data
// size" criterion: the Mean Shift bandwidth then expresses, in one number,
// how much two occurrences of the same logical operation may drift apart
// in time and volume.
func Features(segs []Segment, cfg FeatureConfig) []cluster.Point {
	scale := cfg.VolumeLogScale
	if scale <= 0 {
		scale = DefaultVolumeLogScale
	}
	rt := cfg.Runtime
	if rt <= 0 {
		rt = 1
	}
	pts := make([]cluster.Point, len(segs))
	for i, s := range segs {
		pts[i] = cluster.Point{
			s.Duration / rt,
			math.Log2(1+float64(s.Op.Bytes)) / scale,
		}
	}
	return pts
}

// Group is a detected periodic operation: a cluster of at least two
// segments with comparable duration and volume.
type Group struct {
	Count     int                      // number of occurrences
	Period    float64                  // mean inter-arrival time, seconds
	Magnitude category.PeriodMagnitude // order of magnitude of the period
	MeanBytes float64                  // mean volume per occurrence
	BusyRatio float64                  // mean fraction of the period spent doing I/O
	Segments  []int                    // indices into the segment slice
}

// DetectConfig parametrizes periodic-group detection.
type DetectConfig struct {
	// Bandwidth is the Mean Shift bandwidth in feature-space units
	// (default 0.05 — set empirically like the paper's thresholds:
	// occurrences may drift by 5% of the runtime in cadence or ~8x in
	// volume and still group).
	Bandwidth float64
	// Kernel is the Mean Shift kernel (default flat, like the paper's
	// scikit-learn).
	Kernel cluster.Kernel
	// MinGroupSize is the minimum cluster size to call a group periodic
	// (paper: strictly greater than 1, i.e. 2).
	MinGroupSize int
	// Feature scaling.
	Features FeatureConfig
	// MinCoverage is the minimum fraction of the runtime the group's
	// occurrences must span for the periodicity to be meaningful; it
	// guards against two accidental near-identical operations at the
	// very start of a long job (default 0.5).
	MinCoverage float64
}

// DefaultDetectConfig returns the detection defaults for a job of the
// given runtime.
func DefaultDetectConfig(runtime float64) DetectConfig {
	return DetectConfig{
		Bandwidth:    0.05,
		Kernel:       cluster.FlatKernel,
		MinGroupSize: 2,
		Features:     FeatureConfig{Runtime: runtime, VolumeLogScale: DefaultVolumeLogScale},
		MinCoverage:  0.5,
	}
}

// busyHighThreshold splits periodic_low_busy_time from
// periodic_high_busy_time: the paper observes that almost all periodic
// writers spend less than 25% of the time writing.
const busyHighThreshold = 0.25

// Detect clusters the segments and returns every periodic group found, or
// nil when the trace has no periodic behaviour. Multiple groups model
// applications with several interleaved periodic operations (e.g.
// checkpointing and regular input reading).
func Detect(segs []Segment, cfg DetectConfig) ([]Group, error) {
	if cfg.MinGroupSize < 2 {
		cfg.MinGroupSize = 2
	}
	if cfg.MinCoverage <= 0 {
		cfg.MinCoverage = 0.5
	}
	if len(segs) < cfg.MinGroupSize {
		return nil, nil
	}
	pts := Features(segs, cfg.Features)
	res, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{
		Bandwidth: cfg.Bandwidth,
		Kernel:    cfg.Kernel,
	})
	if err != nil {
		return nil, err
	}
	byCluster := make(map[int][]int)
	for i, l := range res.Labels {
		byCluster[l] = append(byCluster[l], i)
	}
	runtime := cfg.Features.Runtime
	var groups []Group
	for l := 0; l < len(res.Centers); l++ {
		members := byCluster[l]
		if len(members) < cfg.MinGroupSize {
			continue
		}
		g := buildGroup(segs, members)
		if runtime > 0 {
			span := spanOf(segs, members)
			if span/runtime < cfg.MinCoverage {
				continue
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

func buildGroup(segs []Segment, members []int) Group {
	var sumDur, sumBytes, sumBusy float64
	for _, i := range members {
		s := segs[i]
		sumDur += s.Duration
		sumBytes += float64(s.Op.Bytes)
		if s.Duration > 0 {
			sumBusy += s.Op.Duration() / s.Duration
		}
	}
	n := float64(len(members))
	period := sumDur / n
	return Group{
		Count:     len(members),
		Period:    period,
		Magnitude: category.MagnitudeOf(period),
		MeanBytes: sumBytes / n,
		BusyRatio: sumBusy / n,
		Segments:  append([]int(nil), members...),
	}
}

// spanOf returns the time covered from the first to the last member
// segment (including the last member's duration).
func spanOf(segs []Segment, members []int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range members {
		s := segs[i]
		if s.Op.Start < lo {
			lo = s.Op.Start
		}
		if end := s.Op.Start + s.Duration; end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// BusyHigh reports whether a group's busy ratio crosses the
// low/high-busy-time boundary.
func (g Group) BusyHigh() bool { return g.BusyRatio >= busyHighThreshold }

// Categories returns the periodicity categories implied by the groups for
// the given direction: the base periodic label, one magnitude label per
// distinct magnitude, and a busy-time label per group.
func Categories(dir category.Direction, groups []Group) category.Set {
	s := category.NewSet()
	if len(groups) == 0 {
		return s
	}
	s.Add(category.Periodic(dir))
	for _, g := range groups {
		if g.Magnitude != category.MagNone {
			s.Add(category.PeriodicMagnitude(dir, g.Magnitude))
		}
		s.Add(category.PeriodicBusy(dir, g.BusyHigh()))
	}
	return s
}
