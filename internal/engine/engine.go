// Package engine is the single implementation of the MOSAIC corpus
// pipeline: an explicit staged stream
//
//	Scan → Decode → Funnel → Categorize → Aggregate
//
// with bounded channels between stages (real backpressure: a slow
// categorizer throttles the scanner), context cancellation plumbed
// end-to-end (cancelling mid-corpus drains every worker and returns
// ctx.Err() with no goroutine leaks), a selectable error policy
// (fail-fast with cancellation of in-flight work, or collect-all via
// errors.Join), and an Observer exposing per-stage counters and
// timings.
//
// Every frontend drives this one graph: the library facade
// (mosaic.AnalyzeCorpusContext), the mosaic CLI, the bench harness and
// the distributed master (as an alternate Categorize-stage Executor).
// The paper's fixed funnel — validate, dedup, merge, detect, aggregate
// — therefore exists exactly once.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
	"github.com/mosaic-hpc/mosaic/internal/report"
)

// entryName identifies one corpus entry for spans and slow logs: the
// on-disk path when the trace came from a file, the (user, app)
// identity for in-memory jobs, a placeholder for unreadable entries.
func entryName(e darshan.CorpusEntry) string {
	switch {
	case e.Path != "":
		return e.Path
	case e.Job != nil:
		return e.Job.User + "/" + e.Job.AppName()
	default:
		return "<unreadable>"
	}
}

// ErrorPolicy selects how the pipeline reacts to per-item errors
// (categorization failures; decode failures are funnel data, not
// errors).
type ErrorPolicy int

const (
	// FailFast cancels all in-flight work on the first error and
	// returns it. The default.
	FailFast ErrorPolicy = iota
	// CollectAll skips failed items, keeps the pipeline running, and
	// returns every error joined via errors.Join alongside the partial
	// analysis.
	CollectAll
)

// Options configures one pipeline run.
type Options struct {
	// Config holds the detection thresholds. A zero Config (Config.IsZero)
	// selects core.DefaultConfig; either way the config is normalized
	// (sane-clamped) once at the engine boundary.
	Config core.Config
	// Workers is the decode and (local) categorize parallelism
	// (<= 0: parallel.DefaultWorkers).
	Workers int
	// Policy selects the error policy (default FailFast).
	Policy ErrorPolicy
	// Observer receives stage lifecycle events (nil: none). Use *Stats
	// for the built-in counter collector.
	Observer Observer
	// Executor runs the Categorize stage (nil: Local in-process).
	Executor Executor
	// Buffer is the capacity of inter-stage channels (<= 0: 64). Bounded
	// buffers are what make backpressure real: a full channel blocks the
	// upstream stage.
	Buffer int
	// Explain enables decision-provenance collection during the
	// Categorize stage: each AppResult carries an explain.Explanation
	// recording why every category was (or wasn't) assigned. Requires an
	// executor implementing ExplainExecutor (Local and the caching store
	// executor do); otherwise explanations stay nil. Disabled, the hot
	// path is untouched.
	Explain bool
	// ExplainOptions tunes collection (near-miss margin, segment cap);
	// the zero value selects the explain package defaults.
	ExplainOptions explain.Options
}

// AppResult is one deduplicated application's outcome.
type AppResult struct {
	App    string
	User   string
	Runs   int          // valid executions in the group
	Job    *darshan.Job // the heaviest run, the one analyzed
	Result *core.Result
	// Explanation is the decision-provenance record of Result, collected
	// only when Options.Explain was set and the executor supports it.
	Explanation *explain.Explanation
}

// Result is the outcome of a pipeline run.
type Result struct {
	Funnel core.FunnelStats
	Apps   []AppResult // sorted by (user, app); errored apps omitted under CollectAll
	Agg    *report.Aggregator
}

// errCollector implements the error policy: under FailFast the first
// error cancels the pipeline; under CollectAll errors accumulate.
type errCollector struct {
	mu     sync.Mutex
	policy ErrorPolicy
	cancel context.CancelFunc
	errs   []error
}

func (c *errCollector) add(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.policy == FailFast {
		if len(c.errs) == 0 {
			c.errs = append(c.errs, err)
			c.cancel()
		}
	} else {
		c.errs = append(c.errs, err)
	}
	c.mu.Unlock()
}

func (c *errCollector) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return errors.Join(c.errs...)
}

// Run executes the five-stage pipeline over src and blocks until every
// stage goroutine has exited. On cancellation it returns ctx.Err();
// otherwise it returns the per-item errors according to the policy.
func Run(ctx context.Context, src Source, opts Options) (*Result, error) {
	cfg := opts.Config.Normalized()
	workers := opts.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	obs := opts.Observer
	if obs == nil {
		obs = NopObserver{}
	}
	exec := opts.Executor
	if exec == nil {
		exec = Local{Workers: workers}
	}
	buf := opts.Buffer
	if buf <= 0 {
		buf = 64
	}
	// Per-item spans are an opt-in extension: when the observer does not
	// implement SpanObserver, span == nil and no per-item clock reads
	// happen on the hot path.
	span, _ := obs.(SpanObserver)
	// Explanation collection is an opt-in executor capability, asserted
	// once per run like SpanObserver above.
	var exExec ExplainExecutor
	if opts.Explain {
		exExec, _ = exec.(ExplainExecutor)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ec := &errCollector{policy: opts.Policy, cancel: cancel}

	var wg sync.WaitGroup

	// Stage 1: Scan — enumerate trace references.
	refs := make(chan Ref, buf)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(refs)
		obs.StageStarted(StageScan)
		defer obs.StageFinished(StageScan)
		err := src.Scan(ctx, func(r Ref) bool {
			select {
			case refs <- r:
				obs.ItemOut(StageScan)
				return true
			case <-ctx.Done():
				return false
			}
		})
		if err != nil && ctx.Err() == nil {
			obs.ItemError(StageScan, err)
			ec.add(fmt.Errorf("engine: scan: %w", err))
		}
	}()

	// Stage 2: Decode — parse traces in parallel while preserving scan
	// order, so funnel statistics (and heaviest-run tie-breaks) stay
	// deterministic. Ordering and worker lifecycle come from
	// parallel.MapOrdered, whose goroutines all exit on ctx cancellation
	// even when downstream stops reading.
	//
	// Buffer pooling happens inside darshan.ReadFile: file bytes,
	// inflate arenas and gzip readers are sync.Pool-recycled across
	// decodes (mirroring core's cluster.Scratch pooling downstream).
	// The contract that makes this safe is that returned Jobs never
	// alias pooled memory — decoded strings are copied or interned —
	// because Jobs outlive this stage: the funnel keeps the heaviest
	// run of each group until the final aggregate.
	obs.StageStarted(StageDecode)
	traces := parallel.MapOrdered(ctx, workers, refs, func(r Ref) darshan.CorpusEntry {
		obs.ItemIn(StageDecode)
		var start time.Time
		if span != nil {
			start = time.Now()
		}
		e := darshan.CorpusEntry{Path: r.Path, Job: r.Job, Err: r.Err}
		if e.Job == nil && e.Err == nil && r.Path != "" {
			e.Job, e.Err = darshan.ReadFile(r.Path)
		}
		if span != nil {
			span.ItemSpan(StageDecode, entryName(e), start, time.Since(start))
		}
		obs.ItemOut(StageDecode)
		return e
	})

	// Stage 3: Funnel — validate and deduplicate. The Preprocessor is a
	// streaming barrier: groups are only final once the input is
	// exhausted, so this stage emits downstream only at end-of-stream.
	type indexedGroup struct {
		idx int
		g   *core.AppGroup
	}
	groups := make(chan indexedGroup, buf)
	var funnel core.FunnelStats
	var groupCount int
	funnelDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(groups)
		obs.StageStarted(StageFunnel)
		defer obs.StageFinished(StageFunnel)
		defer obs.StageFinished(StageDecode)
		pre := core.NewPreprocessor()
	consume:
		for {
			select {
			case e, ok := <-traces:
				if !ok {
					break consume
				}
				obs.ItemIn(StageFunnel)
				if span != nil {
					start := time.Now()
					pre.Add(e.Job, e.Err)
					span.ItemSpan(StageFunnel, entryName(e), start, time.Since(start))
				} else {
					pre.Add(e.Job, e.Err)
				}
			case <-ctx.Done():
				close(funnelDone)
				return
			}
		}
		funnel = pre.Stats()
		gs := pre.Groups()
		groupCount = len(gs)
		close(funnelDone) // aggregate may now size its result slice
		for i, g := range gs {
			select {
			case groups <- indexedGroup{idx: i, g: g}:
				obs.ItemOut(StageFunnel)
			case <-ctx.Done():
				return
			}
		}
	}()

	// Stage 4: Categorize — the pluggable executor stage.
	catWorkers := exec.Concurrency()
	if catWorkers <= 0 {
		catWorkers = workers
	}
	type indexedResult struct {
		idx int
		res AppResult
	}
	results := make(chan indexedResult, buf)
	var catWG sync.WaitGroup
	obs.StageStarted(StageCategorize)
	for w := 0; w < catWorkers; w++ {
		catWG.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer catWG.Done()
			for {
				select {
				case ig, ok := <-groups:
					if !ok {
						return
					}
					obs.ItemIn(StageCategorize)
					var start time.Time
					if span != nil {
						start = time.Now()
					}
					var res *core.Result
					var expl *explain.Explanation
					var err error
					if exExec != nil {
						res, expl, err = exExec.CategorizeExplained(ctx, ig.g.Heaviest, cfg, opts.ExplainOptions)
					} else {
						res, err = exec.Categorize(ctx, ig.g.Heaviest, cfg)
					}
					if span != nil {
						span.ItemSpan(StageCategorize, ig.g.User+"/"+ig.g.App, start, time.Since(start))
					}
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						obs.ItemError(StageCategorize, err)
						ec.add(fmt.Errorf("engine: app %s/%s: %w", ig.g.User, ig.g.App, err))
						continue
					}
					obs.ItemOut(StageCategorize)
					out := indexedResult{idx: ig.idx, res: AppResult{
						App: ig.g.App, User: ig.g.User, Runs: ig.g.Runs,
						Job: ig.g.Heaviest, Result: res, Explanation: expl,
					}}
					select {
					case results <- out:
					case <-ctx.Done():
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		catWG.Wait()
		obs.StageFinished(StageCategorize)
		close(results)
	}()

	// Stage 5: Aggregate — accumulate distributions. Aggregation is
	// commutative, so results may arrive in any order; the Apps slice is
	// rebuilt in funnel order from the carried indices.
	agg := report.NewAggregator()
	var ordered []AppResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		obs.StageStarted(StageAggregate)
		defer obs.StageFinished(StageAggregate)
		select {
		case <-funnelDone:
			ordered = make([]AppResult, groupCount)
		case <-ctx.Done():
			return
		}
		for {
			select {
			case ir, ok := <-results:
				if !ok {
					return
				}
				obs.ItemIn(StageAggregate)
				agg.Add(ir.res.Result, ir.res.Runs)
				ordered[ir.idx] = ir.res
				obs.ItemOut(StageAggregate)
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Cancellation (parent cancel, timeout, or fail-fast). Fail-fast
		// reports the causing item error; external cancellation reports
		// the context's cause (context.Canceled / DeadlineExceeded).
		if ierr := ec.err(); opts.Policy == FailFast && ierr != nil {
			return nil, ierr
		}
		return nil, context.Cause(ctx)
	}
	err := ec.err()
	if opts.Policy == FailFast && err != nil {
		return nil, err
	}
	apps := make([]AppResult, 0, len(ordered))
	for _, r := range ordered {
		if r.Result != nil {
			apps = append(apps, r)
		}
	}
	return &Result{Funnel: funnel, Apps: apps, Agg: agg}, err
}
