// Command mosaic-worker runs a distributed categorization worker: it
// listens for RPC connections from a mosaic master (see the
// examples/distributed program) and categorizes the traces it receives.
// This is the role Dispy workers played in the paper's Python
// implementation.
//
// Usage:
//
//	mosaic-worker [-listen :7464]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mosaic-hpc/mosaic/internal/dist"
)

func main() {
	listen := flag.String("listen", ":7464", "TCP address to listen on")
	flag.Parse()
	fmt.Printf("mosaic-worker: serving on %s\n", *listen)
	if err := dist.ListenAndServe(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-worker:", err)
		os.Exit(1)
	}
}
