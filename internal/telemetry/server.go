package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// EngineState is the /debug/engine JSON document: the live per-stage
// snapshot plus the slowest traces per stage.
type EngineState struct {
	Stages []any                  `json:"stages"` // []engine.StageSnapshot (kept as any to avoid a JSON-only import)
	Slow   map[string][]SlowEntry `json:"slow,omitempty"`
}

// Route is one extra handler mounted on the introspection mux — how
// subsystems (the serve tier's flight recorder, say) surface their own
// debug endpoints on the shared debug server.
type Route struct {
	Pattern string
	Handler http.Handler
}

// MetricsHandler serves reg with scrape-format negotiation: an Accept
// header asking for application/openmetrics-text gets the OpenMetrics
// exposition (trace-ID exemplars included), anything else the classic
// Prometheus 0.0.4 text format.
func MetricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}
}

// NewMux builds the introspection handler set:
//
//	/metrics       Prometheus/OpenMetrics exposition of reg
//	/healthz       200 "ok" liveness probe
//	/debug/engine  live engine stage snapshot + slow-trace log (JSON)
//	/debug/pprof/  net/http/pprof profiles
//
// plus any extra routes. t may be nil, in which case /debug/engine
// reports an empty state.
func NewMux(reg *Registry, t *Telemetry, extra ...Route) *http.ServeMux {
	RegisterRuntimeMetrics(reg) // every /metrics surface reports runtime + build info
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/engine", func(w http.ResponseWriter, r *http.Request) {
		state := EngineState{Stages: []any{}}
		if t != nil {
			for _, s := range t.Stats().Snapshot() {
				state.Stages = append(state.Stages, s)
			}
			state.Slow = t.Slow().Snapshot()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(state)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// Server is a running introspection HTTP server.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the server down, draining in-flight requests briefly.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// StartServer binds addr and serves the introspection mux (plus any
// extra routes) in a background goroutine. A nil log discards serve
// errors.
func StartServer(addr string, reg *Registry, t *Telemetry, log *slog.Logger, extra ...Route) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, t, extra...), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			if log != nil {
				log.Error("debug server failed", "addr", addr, "err", err)
			}
		}
	}()
	if log != nil {
		log.Info("debug server listening", "addr", l.Addr().String())
	}
	return &Server{srv: srv, addr: l.Addr()}, nil
}
