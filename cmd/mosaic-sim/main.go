// Command mosaic-sim runs the I/O-aware scheduling simulation (the
// Section V application of the paper): it analyzes a trace corpus with
// MOSAIC, converts the categorized applications into simulated jobs
// sharing a parallel file system, and compares FCFS against the
// category-aware policy (staggered start-readers, phase-shifted periodic
// writers).
//
// Usage:
//
//	mosaic-sim [-corpus dir | -synthetic] [-slots N] [-pfs-gbs 20] [-job-gbs 10]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"

	"github.com/mosaic-hpc/mosaic"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func main() {
	var (
		corpusDir = flag.String("corpus", "", "trace corpus directory to schedule (omit for -synthetic)")
		synthetic = flag.Bool("synthetic", false, "use the built-in contended synthetic workload")
		slots     = flag.Int("slots", 32, "concurrent job slots")
		pfsGBs    = flag.Float64("pfs-gbs", 20, "aggregate PFS bandwidth, GB/s")
		jobGBs    = flag.Float64("job-gbs", 10, "per-job bandwidth cap, GB/s")
		seed      = flag.Int64("seed", 1, "workload seed (synthetic mode)")
		maxJobs   = flag.Int("max-jobs", 64, "cap on scheduled jobs (corpus mode)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-sim:", err)
		os.Exit(2)
	}
	if err := run(*corpusDir, *synthetic, *slots, *pfsGBs, *jobGBs, *seed, *maxJobs, log); err != nil {
		log.Error("simulation failed", "err", err)
		os.Exit(1)
	}
}

func run(corpusDir string, synthetic bool, slots int, pfsGBs, jobGBs float64, seed int64, maxJobs int, log *slog.Logger) error {
	cfg := mosaic.SchedConfig{
		Slots:        slots,
		PFSBandwidth: pfsGBs * 1e9,
		JobBandwidth: jobGBs * 1e9,
	}

	var jobs []*mosaic.SchedJob
	var stagger float64
	switch {
	case corpusDir != "":
		analysis, err := mosaic.AnalyzeCorpus(corpusDir, mosaic.Options{})
		if err != nil {
			return err
		}
		for _, app := range analysis.Apps {
			if len(jobs) >= maxJobs {
				break
			}
			jobs = append(jobs, mosaic.SchedJobFromResult(app.Result, len(jobs)))
		}
		log.Info("scheduling corpus applications",
			"jobs", len(jobs), "corpus", corpusDir, "traces", analysis.Funnel.Total)
		// Stagger by the heaviest observed start-read at job bandwidth.
		var maxRead float64
		for _, j := range jobs {
			if j.ReadOnStart && len(j.Phases) > 0 && j.Phases[0].Bytes > maxRead {
				maxRead = j.Phases[0].Bytes
			}
		}
		stagger = maxRead / cfg.JobBandwidth
	case synthetic:
		spec := mosaic.DefaultSchedWorkloadSpec()
		jobs = mosaic.BuildSchedWorkload(spec, rand.New(rand.NewSource(seed)))
		stagger = spec.ReadBytes / cfg.JobBandwidth
		log.Info("scheduling synthetic contended workload", "jobs", len(jobs))
	default:
		return fmt.Errorf("pass -corpus <dir> or -synthetic")
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no jobs to schedule")
	}

	cmp, err := mosaic.CompareSchedules(jobs, cfg, stagger)
	if err != nil {
		return err
	}
	fmt.Printf("\nplatform: %d slots, PFS %.0f GB/s, per-job cap %.0f GB/s\n", slots, pfsGBs, jobGBs)
	row := func(name string, m mosaic.SchedMetrics) {
		fmt.Printf("  %-16s makespan %8.0fs   I/O stall %8.0fs   stretch %.2fx   mean slowdown %.2fx\n",
			name, m.Makespan, m.StallTime, m.Stretch(), m.MeanSlowdown)
	}
	row("FCFS", cmp.FCFS)
	row("category-aware", cmp.Aware)
	fmt.Printf("\nstall reduction: %.1f%%   slowdown reduction: %.1f%%\n",
		cmp.StallReduction*100, cmp.SlowdownReduction*100)
	return nil
}
