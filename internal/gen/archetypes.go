package gen

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Archetypes model the application families observed on Blue Waters. Each
// archetype fixes per-application parameters once (an application behaves
// the same across its executions — the hypothesis MOSAIC validates on
// LAMMPS/NEK5000 in Section III-B1) and adds small per-run jitter.
//
// The AppShare/MeanRuns columns are calibrated so that the corpus
// reproduces the paper's reported distributions. With apps-to-runs
// expansion R/A ≈ 18, the run-share targets are (all-runs view):
//
//	read:  insignificant 27%, on_start 38%, steady 30%, others 5%
//	write: insignificant 47%, on_end 14%, steady 37%, others 2%
//	periodic writes 8%, metadata high_spike 60%, multiple_spikes 46%,
//	high_density 13%
//
// and (single-run view) read insignificant 85%, read on_start 9%, write
// on_end 8%, periodic apps 2%, P(write_on_end | read_on_start) = 66%.

// AppParams are the per-application parameters drawn once and reused by
// every execution of the application.
type AppParams struct {
	RuntimeBase float64 // typical runtime, seconds
	Ranks       int32   // MPI ranks
	Records     int     // records per I/O phase
	Bytes       int64   // bytes per significant phase
	Period      float64 // checkpoint period for periodic archetypes
	BusyFrac    float64 // fraction of the period spent in the phase
	Variant     int     // archetype-specific sub-behaviour selector
}

// Archetype is one application family.
type Archetype struct {
	Name     string
	Exe      string  // executable name used for the trace
	AppShare float64 // fraction of unique applications in the corpus
	MeanRuns float64 // mean executions per application (geometric tail)
	Params   func(rng *rand.Rand) AppParams
	Build    func(b *Builder, p AppParams)
}

// Byte-size helpers.
const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// Record-count regimes for metadata intent. With one OPEN and one SEEK per
// record landing in the same second (collective open), `records` records
// produce 2×records requests: ≥130 records crosses the 250 req/s
// high-spike threshold with margin; ≤20 records stays under the 50 req/s
// spike threshold.
const (
	recsHighSpike = 130
	recsQuietMeta = 12
)

func uniformF(rng *rand.Rand, lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

func uniformI64(rng *rand.Rand, lo, hi int64) int64 { return lo + rng.Int63n(hi-lo+1) }

// runJitter perturbs the per-app runtime for one execution.
func runJitter(rng *rand.Rand, base float64) float64 {
	return base * uniformF(rng, 0.9, 1.15)
}

// insignificantBytes returns a volume safely below the 100 MB threshold.
func insignificantBytes(rng *rand.Rand) int64 { return uniformI64(rng, 1*mb, 40*mb) }

// significantBytes returns a volume safely above the threshold.
func significantBytes(rng *rand.Rand, scale int64) int64 {
	return uniformI64(rng, 300*mb, scale)
}

// labelQuietData marks both directions insignificant.
func labelQuietData(b *Builder) {
	b.Label(category.Temporal(category.DirRead, category.Insignificant))
	b.Label(category.Temporal(category.DirWrite, category.Insignificant))
}

// sustainedMetaChurn adds metadata traffic spread over the whole run at a
// mean rate safely above the high-density threshold (50 req/s), and labels
// the resulting categories. Each churn record is itself a >=250 req/s
// spike.
func sustainedMetaChurn(b *Builder) {
	rt := b.Runtime()
	records := 120 + b.Rng().Intn(80)
	per := int64(75*rt/float64(records)) + 300
	b.MetadataStorm(0.02*rt, 0.98*rt, records, per)
	b.Label(category.MetaHighSpike, category.MetaMultipleSpikes, category.MetaHighDensity)
}

// quiet: negligible I/O — the bulk of unique applications (85%+ read
// insignificant in Table III single-run).
func quietArchetype() Archetype {
	return Archetype{
		Name: "quiet", Exe: "/apps/bin/solver", AppShare: 0.492, MeanRuns: 1.8,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 400, 14400),
				Ranks:       int32(32 << rng.Intn(3)),
				Records:     2 + rng.Intn(6),
				Bytes:       insignificantBytes(rng),
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			b.Burst(BurstSpec{At: 0.01 * rt, Duration: 0.02 * rt, Bytes: p.Bytes / 2, Records: p.Records, Write: false})
			b.Burst(BurstSpec{At: 0.9 * rt, Duration: 0.02 * rt, Bytes: p.Bytes / 2, Records: p.Records, Write: true, Module: darshan.ModSTDIO})
			labelQuietData(b)
			b.Label(category.MetaInsignificantLoad)
		},
	}
}

// quietLong: like quiet but mostly executed once with longer runs; kept
// distinct so the dominant class has diversity.
func quietLongArchetype() Archetype {
	a := quietArchetype()
	a.Name, a.Exe = "quiet-long", "/apps/bin/mdrun"
	a.AppShare, a.MeanRuns = 0.284, 1.4
	return a
}

// readerOnStart: loads a large input at the very beginning, computes, and
// barely writes. Mirrors the dominant all-runs read behaviour (38%
// read_on_start). Variants: 0-3 shared-file collective input (few
// records, insignificant metadata), 4-6 file-per-process open storm (high
// spike), 7-9 open storm plus sustained small-file churn (high spike +
// high density) — the paper's observed correlation between metadata
// density and read-on-start.
func readerOnStartArchetype() Archetype {
	return Archetype{
		Name: "reader-onstart", Exe: "/apps/bin/milc", AppShare: 0.030, MeanRuns: 145,
		Params: func(rng *rand.Rand) AppParams {
			p := AppParams{
				RuntimeBase: uniformF(rng, 900, 21600),
				Ranks:       int32(128 << rng.Intn(2)),
				Bytes:       significantBytes(rng, 80*gb),
				Variant:     rng.Intn(10),
			}
			if p.Variant < 4 {
				p.Records = 40 + rng.Intn(80) // shared-file collective read
			} else {
				// File per process: one record per rank, so the metadata
				// traffic always exceeds the rank count.
				p.Records = int(p.Ranks) + rng.Intn(60)
			}
			return p
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			dur := minF(120, 0.12*rt)
			mod := darshan.ModPOSIX
			if p.Variant < 4 {
				mod = darshan.ModMPIIO // collective read of a shared dataset
			}
			b.Burst(BurstSpec{At: 0.01 * rt, Duration: dur, Bytes: p.Bytes, Records: p.Records, Desync: 0.05, Write: false, Shared: p.Variant < 4, Module: mod})
			b.Burst(BurstSpec{At: 0.95 * rt, Duration: 0.01 * rt, Bytes: insignificantBytes(b.Rng()), Records: 4, Write: true})
			b.Label(category.Temporal(category.DirRead, category.OnStart))
			b.Label(category.Temporal(category.DirWrite, category.Insignificant))
			switch {
			case p.Variant < 4:
				b.Label(category.MetaInsignificantLoad)
			case p.Variant < 7:
				b.Label(category.MetaHighSpike)
			default:
				b.Label(category.MetaHighSpike)
				sustainedMetaChurn(b)
			}
		},
	}
}

// readComputeWrite: the canonical read-compute-write pattern — read on
// start, write on end. Two out of three read_on_start applications follow
// it (the paper's 66% conditional). Variant 0-7: open storms at both ends;
// 8-9: storms plus sustained metadata churn (density).
func readComputeWriteArchetype() Archetype {
	return Archetype{
		Name: "read-compute-write", Exe: "/apps/bin/vasp", AppShare: 0.060, MeanRuns: 28,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 1200, 28800),
				Ranks:       int32(128 << rng.Intn(3)),
				Records:     recsHighSpike + rng.Intn(100),
				Bytes:       significantBytes(rng, 40*gb),
				Variant:     rng.Intn(10),
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			dur := minF(90, 0.1*rt)
			b.Burst(BurstSpec{At: 0.01 * rt, Duration: dur, Bytes: p.Bytes, Records: p.Records, Desync: 0.05, Write: false})
			b.Burst(BurstSpec{At: 0.85 * rt, Duration: minF(120, 0.1*rt), Bytes: p.Bytes / 2, Records: p.Records, Desync: 0.05, Write: true})
			b.Label(category.Temporal(category.DirRead, category.OnStart))
			b.Label(category.Temporal(category.DirWrite, category.OnEnd))
			b.Label(category.MetaHighSpike)
			if p.Variant >= 8 {
				sustainedMetaChurn(b)
			}
		},
	}
}

// writerOnEnd: computes from generated state and dumps results at the end;
// modest rank counts keep the metadata load below every spike threshold.
func writerOnEndArchetype() Archetype {
	return Archetype{
		Name: "writer-onend", Exe: "/apps/bin/chemshell", AppShare: 0.020, MeanRuns: 28,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 600, 14400),
				Ranks:       64,
				Records:     recsQuietMeta,
				Bytes:       significantBytes(rng, 20*gb),
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			b.Burst(BurstSpec{At: 0.82 * rt, Duration: minF(180, 0.12*rt), Bytes: p.Bytes, Records: p.Records, Desync: 0.05, Write: true})
			b.Burst(BurstSpec{At: 0.01 * rt, Duration: 0.01 * rt, Bytes: insignificantBytes(b.Rng()), Records: 4, Write: false})
			b.Label(category.Temporal(category.DirRead, category.Insignificant))
			b.Label(category.Temporal(category.DirWrite, category.OnEnd))
			b.Label(category.MetaInsignificantLoad)
		},
	}
}

// steadyBoth: reads continuously through rotating input segments (the
// segment windows touch, so merging restores one steady read operation
// per the Darshan aggregated-record caveat) and keeps an output stream
// open for the whole run. The per-rotation collective opens produce both
// a high spike and multiple spikes — the association the paper notes
// between steady behaviour and metadata spikes. The heaviest runs class
// in the corpus.
func steadyBothArchetype() Archetype {
	return Archetype{
		Name: "steady-both", Exe: "/apps/bin/nwchem", AppShare: 0.012, MeanRuns: 414,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 1800, 43200),
				Ranks:       int32(128 << rng.Intn(2)),
				Records:     recsHighSpike + rng.Intn(60), // per rotation
				Bytes:       significantBytes(rng, 60*gb),
				Variant:     8 + rng.Intn(5), // read rotations
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			n := p.Variant
			per := rt / float64(n)
			for i := 0; i < n; i++ {
				b.Burst(BurstSpec{
					At:       float64(i) * per,
					Duration: per, // windows touch: merging yields one steady op
					Bytes:    p.Bytes / int64(n),
					Records:  p.Records,
					Desync:   0.02,
					Write:    false,
				})
			}
			b.Steady(true, p.Bytes/2, p.Records/4)
			b.Label(category.Temporal(category.DirRead, category.Steady))
			b.Label(category.Temporal(category.DirWrite, category.Steady))
			b.Label(category.MetaHighSpike, category.MetaMultipleSpikes)
		},
	}
}

// steadyReader: one whole-run aggregated read record per rank (files held
// open throughout), insignificant writes, quiet metadata.
func steadyReaderArchetype() Archetype {
	return Archetype{
		Name: "steady-reader", Exe: "/apps/bin/ingest", AppShare: 0.008, MeanRuns: 46,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 1800, 28800),
				Ranks:       64,
				Records:     recsQuietMeta,
				Bytes:       significantBytes(rng, 30*gb),
			}
		},
		Build: func(b *Builder, p AppParams) {
			b.Steady(false, p.Bytes, p.Records)
			b.Burst(BurstSpec{At: 0.9 * b.Runtime(), Duration: 5, Bytes: insignificantBytes(b.Rng()), Records: 4, Write: true})
			b.Label(category.Temporal(category.DirRead, category.Steady))
			b.Label(category.Temporal(category.DirWrite, category.Insignificant))
			b.Label(category.MetaInsignificantLoad)
		},
	}
}

// rotatedSteadyWriter: writes continuously but rotates output files every
// tenth of the run. Neighbor merging fuses the rotations back into one
// steady operation, while the per-rotation open bursts leave multiple
// metadata spikes (below the high-spike threshold).
func rotatedSteadyWriterArchetype() Archetype {
	return Archetype{
		Name: "rotated-steady-writer", Exe: "/apps/bin/wrf", AppShare: 0.014, MeanRuns: 26,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 3600, 43200),
				Ranks:       int32(64 << rng.Intn(2)),
				Records:     40 + rng.Intn(40),
				Bytes:       significantBytes(rng, 100*gb),
				Variant:     8 + rng.Intn(5), // rotations
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			n := p.Variant
			per := rt / float64(n)
			for i := 0; i < n; i++ {
				b.Burst(BurstSpec{
					At:       float64(i) * per,
					Duration: per,
					Bytes:    p.Bytes / int64(n),
					Records:  p.Records,
					Desync:   0.02,
					Write:    true,
				})
			}
			b.Burst(BurstSpec{At: 0.01 * rt, Duration: 0.01 * rt, Bytes: insignificantBytes(b.Rng()), Records: 4, Write: false})
			b.Label(category.Temporal(category.DirRead, category.Insignificant))
			b.Label(category.Temporal(category.DirWrite, category.Steady))
			b.Label(category.MetaMultipleSpikes)
		},
	}
}

// checkpointer: the classic HPC simulation — periodic checkpoint writes
// throughout the run. Period magnitude is minutes or hours depending on
// the variant; each checkpoint's open burst is a metadata spike.
func checkpointerArchetype(hourly bool) Archetype {
	name, exe, share := "checkpointer-minute", "/apps/bin/lammps", 0.010
	if hourly {
		name, exe, share = "checkpointer-hour", "/apps/bin/nek5000", 0.006
	}
	return Archetype{
		Name: name, Exe: exe, AppShare: share, MeanRuns: 66,
		Params: func(rng *rand.Rand) AppParams {
			p := AppParams{
				Ranks:    int32(64 << rng.Intn(3)),
				Records:  30 + rng.Intn(160),
				Bytes:    significantBytes(rng, 8*gb),
				BusyFrac: uniformF(rng, 0.03, 0.15),
			}
			if hourly {
				p.Period = uniformF(rng, 4000, 9000)
				p.RuntimeBase = p.Period * uniformF(rng, 9, 14)
			} else {
				p.Period = uniformF(rng, 90, 1500)
				p.RuntimeBase = p.Period * uniformF(rng, 10, 30)
			}
			if rng.Float64() < 0.04 {
				// Rare high-busy checkpointers: the paper reports 96% of
				// periodic writers spend <25% of the time writing.
				p.BusyFrac = uniformF(rng, 0.3, 0.45)
			}
			return p
		},
		Build: func(b *Builder, p AppParams) {
			b.Periodic(PeriodicSpec{
				Period: p.Period, PhaseFrac: p.BusyFrac, BytesPer: p.Bytes,
				Records: p.Records, Jitter: 0.02, Write: true,
			})
			b.Burst(BurstSpec{At: 0.001 * b.Runtime(), Duration: 5, Bytes: insignificantBytes(b.Rng()), Records: 8, Write: false})
			b.Label(category.Temporal(category.DirRead, category.Insignificant))
			b.Label(category.Temporal(category.DirWrite, category.Steady))
			b.Label(category.Periodic(category.DirWrite))
			b.Label(category.PeriodicMagnitude(category.DirWrite, category.MagnitudeOf(p.Period)))
			b.Label(category.PeriodicBusy(category.DirWrite, p.BusyFrac >= 0.25))
			b.Annotate(TruthPeriodKey, formatSeconds(p.Period))
			b.Label(category.MetaMultipleSpikes)
			if p.Records >= recsHighSpike {
				b.Label(category.MetaHighSpike)
			}
		},
	}
}

// periodicReader: re-reads input at short regular intervals (seconds to
// minutes) — e.g. iterative analysis sweeping a dataset.
func periodicReaderArchetype() Archetype {
	return Archetype{
		Name: "periodic-reader", Exe: "/apps/bin/analysis", AppShare: 0.008, MeanRuns: 23,
		Params: func(rng *rand.Rand) AppParams {
			p := AppParams{
				Ranks:    64,
				Records:  30 + rng.Intn(40),
				Bytes:    significantBytes(rng, 2*gb),
				Period:   uniformF(rng, 8, 45),
				BusyFrac: uniformF(rng, 0.05, 0.2),
			}
			p.RuntimeBase = p.Period * uniformF(rng, 15, 60)
			return p
		},
		Build: func(b *Builder, p AppParams) {
			b.Periodic(PeriodicSpec{
				Period: p.Period, PhaseFrac: p.BusyFrac, BytesPer: p.Bytes,
				Records: p.Records, Jitter: 0.02, Write: false,
			})
			b.Label(category.Temporal(category.DirRead, category.Steady))
			b.Label(category.Temporal(category.DirWrite, category.Insignificant))
			b.Label(category.Periodic(category.DirRead))
			b.Label(category.PeriodicMagnitude(category.DirRead, category.MagnitudeOf(p.Period)))
			b.Label(category.PeriodicBusy(category.DirRead, p.BusyFrac >= 0.25))
			b.Annotate(TruthPeriodKey, formatSeconds(p.Period))
			b.Label(category.MetaMultipleSpikes)
		},
	}
}

// metastorm: small-file churn — negligible data volume but a sustained
// metadata request rate, driving the high_density category.
func metastormArchetype() Archetype {
	return Archetype{
		Name: "metastorm", Exe: "/apps/bin/untar-stage", AppShare: 0.012, MeanRuns: 46,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 400, 1500),
				Ranks:       64,
				Records:     200 + rng.Intn(100),
				Bytes:       insignificantBytes(rng),
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			// requestsPer × records / runtime >= 70 req/s mean with margin.
			per := int64(70*rt/float64(p.Records)) + 300
			b.MetadataStorm(0.01*rt, 0.99*rt, p.Records, per)
			labelQuietData(b)
			b.Label(category.MetaHighSpike, category.MetaMultipleSpikes, category.MetaHighDensity)
		},
	}
}

// miscTemporal covers the rarer temporality labels: after_start,
// before_end, and after_start_before_end bursts (the "Others" column of
// Table III).
func miscTemporalArchetype() Archetype {
	return Archetype{
		Name: "misc-temporal", Exe: "/apps/bin/postproc", AppShare: 0.044, MeanRuns: 21,
		Params: func(rng *rand.Rand) AppParams {
			return AppParams{
				RuntimeBase: uniformF(rng, 900, 14400),
				Ranks:       64,
				Records:     recsQuietMeta,
				Bytes:       significantBytes(rng, 10*gb),
				Variant:     rng.Intn(6),
			}
		},
		Build: func(b *Builder, p AppParams) {
			rt := b.Runtime()
			write := p.Variant%2 == 1
			dir := category.DirRead
			if write {
				dir = category.DirWrite
			}
			other := category.DirWrite
			if write {
				other = category.DirRead
			}
			dur := minF(120, 0.1*rt)
			switch p.Variant / 2 {
			case 0: // after_start: burst in the second quarter
				b.Burst(BurstSpec{At: 0.3 * rt, Duration: dur, Bytes: p.Bytes, Records: p.Records, Write: write})
				b.Label(category.Temporal(dir, category.AfterStart))
			case 1: // before_end: burst in the third quarter
				b.Burst(BurstSpec{At: 0.58 * rt, Duration: dur, Bytes: p.Bytes, Records: p.Records, Write: write})
				b.Label(category.Temporal(dir, category.BeforeEnd))
			default: // after_start_before_end: both interior quarters
				b.Burst(BurstSpec{At: 0.3 * rt, Duration: dur, Bytes: p.Bytes / 2, Records: p.Records, Write: write})
				b.Burst(BurstSpec{At: 0.58 * rt, Duration: dur, Bytes: p.Bytes / 2, Records: p.Records, Write: write})
				b.Label(category.Temporal(dir, category.AfterStartBeforeEnd))
			}
			b.Label(category.Temporal(other, category.Insignificant))
			b.Label(category.MetaInsignificantLoad)
		},
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func formatSeconds(s float64) string {
	return fmtFloat(s)
}

// DefaultArchetypes returns the corpus mixture calibrated so that the
// harness reproduces the shape of the paper's Tables II/III and Figures
// 3/4/5 (see DESIGN.md §4 for the per-experiment mapping).
func DefaultArchetypes() []Archetype {
	return []Archetype{
		quietArchetype(),
		quietLongArchetype(),
		readerOnStartArchetype(),
		readComputeWriteArchetype(),
		writerOnEndArchetype(),
		steadyBothArchetype(),
		steadyReaderArchetype(),
		rotatedSteadyWriterArchetype(),
		checkpointerArchetype(false),
		checkpointerArchetype(true),
		periodicReaderArchetype(),
		metastormArchetype(),
		miscTemporalArchetype(),
	}
}

// ArchetypeByName returns the named archetype from DefaultArchetypes.
func ArchetypeByName(name string) (Archetype, bool) {
	for _, a := range DefaultArchetypes() {
		if a.Name == name {
			return a, true
		}
	}
	return Archetype{}, false
}
