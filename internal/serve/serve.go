// Package serve turns the batch MOSAIC pipeline into a long-running,
// incrementally updated analysis service. It exposes an HTTP API —
//
//	POST /v1/traces        multipart (or raw-body) trace ingest
//	POST /v1/traces:batch  batch ingest: multipart or length-prefixed
//	                       concatenation, one store write + one fsync
//	GET  /v1/results/{id}  categorization of one trace by content address
//	GET  /v1/query?q=...   boolean category query over the live index
//	GET  /v1/stats         store, index, queue and ingest statistics
//	GET  /metrics          Prometheus exposition   GET /healthz  liveness
//
// — backed by the content-addressed result store (internal/store) and
// the inverted category index (internal/index). Ingested traces are
// persisted synchronously (content addressing makes re-ingest
// idempotent), then categorized asynchronously by a bounded worker
// queue feeding the existing engine pipeline; a full queue answers
// 429 with Retry-After, which is the service's backpressure, exactly
// like a full inter-stage channel throttles the batch engine.
//
// A trace already analyzed under the server's effective configuration
// (store key: trace hash × Config fingerprint) is served from the
// store without re-categorization — the cache-hit fast path. On
// startup the index is rebuilt from the store, and any stored trace
// missing its result under the current fingerprint is backfilled
// through the same queue, so a config change or a crash mid-ingest
// heals automatically.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/index"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/store"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// Config configures an analysis server.
type Config struct {
	// Store is the backing result store (required).
	Store *store.Store
	// Analysis holds the detection thresholds; a zero value selects the
	// defaults. Its fingerprint defines result identity.
	Analysis core.Config
	// Workers is the number of ingest workers draining the queue
	// (<= 0: 2).
	Workers int
	// QueueDepth bounds the ingest queue; a full queue answers 429
	// (<= 0: 256).
	QueueDepth int
	// MaxUploadBytes caps one uploaded trace (<= 0: 256 MiB).
	MaxUploadBytes int64
	// Executor, when non-nil, replaces the in-process Categorize
	// backend — pass a dist Master to categorize on remote workers.
	Executor engine.Executor
	// Telemetry, when non-nil, observes every per-ingest engine run
	// (per-trace spans, engine stage metrics) and hosts the serve
	// metrics in its registry.
	Telemetry *telemetry.Telemetry
	// Metrics, when non-nil (and Telemetry is nil), hosts the serve
	// metrics. With both nil a private registry is created.
	Metrics *telemetry.Registry
	// Log receives structured request/worker logs (nil: silent).
	Log *slog.Logger
	// NoBackfill disables the startup pass that re-enqueues stored
	// traces lacking a result under the current fingerprint.
	NoBackfill bool
	// Explain enables decision-provenance collection: every
	// categorization additionally produces an explain.Explanation,
	// persisted under the same (trace hash × config fingerprint) key as
	// the result and served on GET /v1/explain/{id}.
	Explain bool
	// ExplainMargin is the near-miss margin for evidence collection
	// (<= 0: explain.DefaultMargin).
	ExplainMargin float64
	// Flight is the flight recorder receiving completed request traces.
	// nil gets a default in-memory recorder (ring of 256, no dumps) so
	// /debug/requests always works while tracing is on.
	Flight *reqtrace.Recorder
	// DisableTracing turns request tracing off entirely: no trace
	// context at the edge, no spans, no flight recording. The zero value
	// traces — tracing is the default.
	DisableTracing bool
	// SLO, when > 0, is the per-request edge latency target; requests
	// exceeding it increment mosaic_slo_latency_breaches_total{route=}.
	SLO time.Duration
	// Cluster, when non-nil, runs this server as one node of a sharded,
	// replicated cluster (see cluster.go): ingest routes each trace to
	// its consistent-hash owner, queries and stats scatter-gather, and
	// GET /v1/cluster serves the routing table. The config's Log,
	// Registry, Flight and Events fields are filled from the server's
	// own when unset. The caller still provides the RPC listener via
	// ServeCluster.
	Cluster *ring.Config
	// Events is the cluster event journal served on GET /v1/events and
	// fed by the ring, store and serve layers. nil gets a default
	// in-memory journal (ring of 1024, no persistence) so the endpoint
	// always works.
	Events *events.Log
	// AlertOptions tunes the SLO burn-rate evaluator (windows, burn
	// thresholds, cadence). nil selects the multi-window defaults
	// (5m/1h at 14.4x/6x, evaluated every 15s).
	AlertOptions *telemetry.AlertOptions
	// DisableAlerts turns the burn-rate evaluator off entirely. The
	// zero value evaluates — alerting is the default.
	DisableAlerts bool
	// DiagDir, when set, receives a diagnostic bundle (CPU profile,
	// heap profile, flight-recorder trace dump) every time an alert
	// fires. "" disables capture.
	DiagDir string
	// DiagCPUProfile bounds the CPU profile captured into a diagnostic
	// bundle (<= 0: 2s).
	DiagCPUProfile time.Duration
}

// Ingest item statuses reported per uploaded trace.
const (
	StatusAccepted   = "accepted"   // queued for categorization
	StatusCached     = "cached"     // result already stored: cache hit
	StatusPending    = "pending"    // same trace already queued or in flight
	StatusRejected   = "rejected"   // queue full: retry later
	StatusUnreadable = "unreadable" // blob did not decode as a trace
)

// IngestItem is the per-trace outcome of one ingest request. RequestID
// echoes the originating request's correlation ID into every per-item
// status, so a batch response's items remain correlatable after the
// client has fanned them out.
type IngestItem struct {
	Name      string        `json:"name,omitempty"`
	ID        store.TraceID `json:"id,omitempty"`
	Status    string        `json:"status"`
	Error     string        `json:"error,omitempty"`
	RequestID string        `json:"request_id,omitempty"`
}

// ingestJob is one queued categorization. reqID names the HTTP request
// (or synthetic origin, e.g. "backfill") that enqueued it, so worker
// log lines correlate with the ingest request that caused them. When
// the enqueuing request was traced, t carries its trace (one reference
// held until the worker finishes) and parent the span to hang the
// worker's spans under; enq timestamps admission for the queue-wait
// span and histogram.
type ingestJob struct {
	id     store.TraceID
	job    *darshan.Job
	reqID  string
	t      *reqtrace.Trace
	parent reqtrace.SpanID
	enq    time.Time
}

// Server is a running analysis service (HTTP handler + worker pool).
type Server struct {
	st  *store.Store
	ix  *index.Index
	cfg core.Config
	fp  string
	log *slog.Logger
	tel *telemetry.Telemetry

	exec       engine.Executor
	maxUpload  int64
	queueCap   int
	queue      chan ingestJob
	quit       chan struct{} // closed on Shutdown: aborts backfill sends
	draining   atomic.Bool
	workerWG   sync.WaitGroup
	backfillWG sync.WaitGroup
	runCtx     context.Context
	runCancel  context.CancelFunc

	cluster *clusterNode // nil in single-node mode

	explainOn bool
	exOpts    explain.Options

	traceOn     bool
	flight      *reqtrace.Recorder
	onTraceDone func(*reqtrace.Trace) // flight.Complete, bound once
	slo         time.Duration

	events    *events.Log
	alerts    *telemetry.AlertEvaluator
	startedAt time.Time
	diagDir   string
	diagCPU   time.Duration
	diagBusy  atomic.Bool  // one bundle capture at a time
	lastBP    atomic.Int64 // unix nanos of the last backpressure event (rate limit)

	mu      sync.Mutex
	pending map[store.TraceID]struct{} // queued or in-flight
	failed  map[store.TraceID]string   // categorization/funnel failures

	// Metrics.
	reg            *telemetry.Registry
	ingestRequests *telemetry.Counter
	batchRequests  *telemetry.Counter
	batchTraces    *telemetry.Histogram
	ingestStatus   map[string]*telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	queueDepth     *telemetry.Gauge
	queueWaitSecs  *telemetry.Histogram
	routeMetrics   map[string]routeInstruments
	ingestSecs     *telemetry.Histogram
	categorizeSecs *telemetry.Histogram
	querySecs      *telemetry.Histogram
	queries        *telemetry.Counter
	resultsServed  *telemetry.Counter
	explainsServed *telemetry.Counter
	exMetrics      *telemetry.ExplainMetrics
}

// New builds a server over an open store: it rebuilds the category
// index from the store, starts the worker pool, and (unless disabled)
// backfills categorizations missing under the current fingerprint.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	maxUpload := cfg.MaxUploadBytes
	if maxUpload <= 0 {
		maxUpload = 256 << 20
	}
	exec := cfg.Executor
	if exec == nil {
		exec = engine.Local{Workers: 1}
	}
	reg := cfg.Metrics
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Registry()
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	telemetry.RegisterClusterMetrics(reg)
	analysis := cfg.Analysis.Normalized()
	s := &Server{
		st:        cfg.Store,
		ix:        index.New(),
		cfg:       analysis,
		fp:        analysis.Fingerprint(),
		log:       cfg.Log,
		tel:       cfg.Telemetry,
		exec:      exec,
		maxUpload: maxUpload,
		queueCap:  depth,
		queue:     make(chan ingestJob, depth),
		quit:      make(chan struct{}),
		pending:   make(map[store.TraceID]struct{}),
		failed:    make(map[store.TraceID]string),
		reg:       reg,
		explainOn: cfg.Explain,
		exOpts:    explain.Options{Margin: cfg.ExplainMargin}.Normalized(),
		traceOn:   !cfg.DisableTracing,
		flight:    cfg.Flight,
		slo:       cfg.SLO,
		events:    cfg.Events,
		startedAt: time.Now(),
		diagDir:   cfg.DiagDir,
		diagCPU:   cfg.DiagCPUProfile,
	}
	if s.events == nil {
		node := ""
		if cfg.Cluster != nil {
			node = cfg.Cluster.Self
		}
		s.events = events.NewLog(events.Config{Node: node, Logger: cfg.Log})
	}
	if s.diagCPU <= 0 {
		s.diagCPU = 2 * time.Second
	}
	if s.traceOn && s.flight == nil {
		s.flight = reqtrace.NewRecorder(reqtrace.RecorderConfig{Log: cfg.Log})
	}
	if s.traceOn {
		s.onTraceDone = s.flight.Complete
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.registerMetrics()

	// Crash-recovery findings surface as journal events: a torn segment
	// tail truncated during the store's open is exactly the kind of fact
	// an operator wants in /v1/events after an incident.
	if st := s.st.Stats(); st.DroppedTailBytes > 0 {
		s.events.Emit(events.SevWarn, events.TypeRecoveryTruncation,
			"store recovery truncated a torn segment tail",
			"dropped_bytes", strconv.FormatInt(st.DroppedTailBytes, 10),
			"recovered_frames", strconv.Itoa(st.RecoveredFrames))
	}
	// The hook runs under the store's locks: hand the emit to a
	// goroutine so a slow journal sink never stalls the write path.
	s.st.SetRotateHook(func(segment int) {
		go s.events.Emit(events.SevInfo, events.TypeSegmentRotation,
			"segment rotated", "segment", strconv.Itoa(segment))
	})

	n, err := s.ix.Rebuild(s.st, s.fp)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding index: %w", err)
	}
	if s.log != nil {
		s.log.Info("index rebuilt", "traces", n, "fingerprint", s.fp)
	}
	if cfg.Cluster != nil {
		cn, err := newClusterNode(s, *cfg.Cluster)
		if err != nil {
			return nil, err
		}
		s.cluster = cn
	}
	if !cfg.DisableAlerts {
		s.startAlerts(cfg.AlertOptions)
	}
	for w := 0; w < workers; w++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if !cfg.NoBackfill {
		s.backfillWG.Add(1)
		go s.backfill()
	}
	return s, nil
}

// Events returns the server's event journal.
func (s *Server) Events() *events.Log { return s.events }

// Alerts returns the burn-rate evaluator, nil when alerting is disabled.
func (s *Server) Alerts() *telemetry.AlertEvaluator { return s.alerts }

func (s *Server) registerMetrics() {
	// Every binary serving /metrics reports build info and Go runtime
	// vitals — the serve handler wires MetricsHandler directly, so the
	// runtime bridge is registered here rather than through NewMux.
	telemetry.RegisterRuntimeMetrics(s.reg)
	s.ingestRequests = s.reg.Counter("mosaic_serve_ingest_requests_total", "Ingest HTTP requests received.", nil)
	s.batchRequests = s.reg.Counter("mosaic_serve_batch_requests_total", "Batch ingest HTTP requests received.", nil)
	s.batchTraces = s.reg.Histogram("mosaic_serve_batch_traces", "Traces per batch ingest request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, nil)
	s.ingestStatus = make(map[string]*telemetry.Counter)
	for _, st := range []string{StatusAccepted, StatusCached, StatusPending, StatusRejected, StatusUnreadable} {
		s.ingestStatus[st] = s.reg.Counter("mosaic_serve_ingested_traces_total",
			"Uploaded traces by ingest outcome.", telemetry.Labels{"status": st})
	}
	s.cacheHits = s.reg.Counter("mosaic_serve_cache_hits_total",
		"Categorizations served from the result store without recomputation.", nil)
	s.cacheMisses = s.reg.Counter("mosaic_serve_cache_misses_total",
		"Categorizations that had to run the detection chain.", nil)
	s.queueDepth = s.reg.Gauge("mosaic_serve_queue_depth", "Traces waiting in the ingest queue.", nil)
	s.queueWaitSecs = s.reg.Histogram("mosaic_serve_queue_wait_seconds",
		"Time a trace spent in the ingest queue before a worker picked it up.", nil, nil)
	s.ingestSecs = s.reg.Histogram("mosaic_serve_ingest_seconds", "Ingest request latency.", nil, nil)
	s.categorizeSecs = s.reg.Histogram("mosaic_serve_categorize_seconds", "Per-trace categorization latency in the worker pool.", nil, nil)
	s.querySecs = s.reg.Histogram("mosaic_serve_query_seconds", "Query request latency.", nil, nil)
	s.queries = s.reg.Counter("mosaic_serve_queries_total", "Category queries served.", nil)
	s.resultsServed = s.reg.Counter("mosaic_serve_results_total", "Result lookups served.", nil)
	s.explainsServed = s.reg.Counter("mosaic_serve_explains_total", "Explanation lookups served.", nil)
	if s.explainOn {
		s.exMetrics = telemetry.NewExplainMetrics(s.reg)
	}
	if s.traceOn {
		s.registerRouteMetrics()
	}
	s.registerStoreGauges()
}

// registerStoreGauges exports the store's own counters as mosaic_store_*
// gauges, pulled lazily at scrape time through the registry's OnCollect
// hook — the figures /v1/stats reports become scrapable without a
// per-operation metrics write in the store.
func (s *Server) registerStoreGauges() {
	g := func(name, help string) *telemetry.Gauge {
		return s.reg.Gauge("mosaic_store_"+name, help, nil)
	}
	var (
		traces       = g("traces", "Distinct traces in the store.")
		results      = g("results", "Stored categorization results (all fingerprints).")
		explanations = g("explanations", "Stored explanations (all fingerprints).")
		segments     = g("segments", "Segment files backing the store.")
		diskBytes    = g("disk_bytes", "Bytes on disk across all segments.")
		cacheItems   = g("cache_items", "Entries in the read cache.")
		cacheBytes   = g("cache_bytes", "Bytes held by the read cache.")
		hits         = g("hits_total", "GetResult calls answered from the store.")
		misses       = g("misses_total", "GetResult calls that found nothing.")
		groupSyncs   = g("group_syncs_total", "Fsyncs issued by group-commit leaders.")
		syncedFrames = g("synced_frames_total", "Frames made durable by those fsyncs.")
	)
	s.reg.OnCollect("serve_store_stats", func() {
		st := s.st.Stats()
		traces.Set(float64(st.Traces))
		results.Set(float64(st.Results))
		explanations.Set(float64(st.Explanations))
		segments.Set(float64(st.Segments))
		diskBytes.Set(float64(st.DiskBytes))
		cacheItems.Set(float64(st.CacheItems))
		cacheBytes.Set(float64(st.CacheBytes))
		hits.Set(float64(st.Hits))
		misses.Set(float64(st.Misses))
		groupSyncs.Set(float64(st.GroupSyncs))
		syncedFrames.Set(float64(st.SyncedFrames))
	})
}

// Flight returns the flight recorder (nil when tracing is disabled and
// none was configured).
func (s *Server) Flight() *reqtrace.Recorder { return s.flight }

// Fingerprint returns the server's effective config fingerprint.
func (s *Server) Fingerprint() string { return s.fp }

// Index returns the live category index (for tests and embedding).
func (s *Server) Index() *index.Index { return s.ix }

// Registry returns the registry hosting the serve metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// backfill enqueues every stored trace lacking a result under the
// current fingerprint — crash healing and config-change re-analysis
// ride the same path as fresh ingests.
func (s *Server) backfill() {
	defer s.backfillWG.Done()
	queued := 0
	// EachTraceBlob streams the segment log sequentially (readahead,
	// no per-trace random read), so a cold start over a large store is
	// disk-bandwidth-bound. The blob slice is reused by the scanner;
	// decoding it produces an independent Job.
	err := s.st.EachTraceBlob(func(id store.TraceID, blob []byte) bool {
		if s.st.HasResult(id, s.fp) || !s.markPending(id) {
			return true
		}
		j, err := darshan.UnmarshalBinary(blob)
		if err != nil {
			s.unmarkPending(id)
			if s.log != nil {
				s.log.Warn("backfill: unreadable stored trace", "id", string(id), "err", err)
			}
			return true
		}
		select {
		case s.queue <- ingestJob{id: id, job: j, reqID: "backfill", enq: time.Now()}:
			s.queueDepth.Inc()
			queued++
			return true
		case <-s.quit:
			s.unmarkPending(id)
			return false
		}
	})
	if err != nil && s.log != nil {
		s.log.Warn("backfill scan failed", "err", err)
	}
	if queued > 0 && s.log != nil {
		s.log.Info("backfill queued", "traces", queued, "fingerprint", s.fp)
	}
}

// markPending registers a trace as queued/in-flight; false when it
// already is (the -dedup that makes double ingest categorize once).
func (s *Server) markPending(id store.TraceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[id]; ok {
		return false
	}
	s.pending[id] = struct{}{}
	return true
}

func (s *Server) unmarkPending(id store.TraceID) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

func (s *Server) isPending(id store.TraceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pending[id]
	return ok
}

// PendingCount reports how many traces are queued or in categorization
// right now — zero once every acknowledged ingest is fully served. A
// state-independent convergence signal for benchmarks and tests.
func (s *Server) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// recordFailure remembers why a trace produced no result (bounded:
// oldest entries are dropped arbitrarily past 4096 — failure detail
// is diagnostic, the authoritative state is the store).
func (s *Server) recordFailure(id store.TraceID, reason string) {
	s.mu.Lock()
	if len(s.failed) >= 4096 {
		for k := range s.failed {
			delete(s.failed, k)
			break
		}
	}
	s.failed[id] = reason
	s.mu.Unlock()
}

func (s *Server) failureOf(id store.TraceID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.failed[id]
	return r, ok
}

// worker drains the ingest queue: each trace runs through the engine
// pipeline (funnel validation + categorization, observed by the
// telemetry bundle when configured), and the result is persisted and
// indexed. Workers exit when the queue is closed and drained, or when
// the run context is cancelled (forced shutdown).
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case item, ok := <-s.queue:
			if !ok {
				return
			}
			s.queueDepth.Dec()
			s.process(item)
		case <-s.runCtx.Done():
			return
		}
	}
}

// process categorizes one queued trace through the engine pipeline.
// For traced jobs it resumes the request's trace across the queue
// boundary — on the server's run context, never the (long-cancelled)
// request context — recording the queue wait, a worker span covering
// the engine run, the engine's per-stage spans, the result's group
// commit, and the index update, then releases the reference held at
// enqueue so the trace can finalize into the flight recorder.
func (s *Server) process(item ingestJob) {
	defer s.unmarkPending(item.id)
	wait := time.Since(item.enq)
	s.queueWaitSecs.Observe(wait.Seconds())
	ctx := s.runCtx
	if item.t != nil {
		defer item.t.Release()
		item.t.AddCompleted(item.parent, "queue.wait", item.enq, wait)
		ctx = reqtrace.ContextWithParent(s.runCtx, item.t, item.parent)
	}
	ctx, wsp := reqtrace.StartSpan(ctx, "worker.categorize", reqtrace.Str("trace", string(item.id)))
	defer wsp.End()
	start := time.Now()
	opts := engine.Options{
		Config: s.cfg, Workers: 1, Executor: s.exec,
		Explain: s.explainOn, ExplainOptions: s.exOpts,
	}
	if s.tel != nil {
		opts.Observer = s.tel
	}
	if item.t != nil {
		spans := engineSpans{t: item.t, parent: wsp.ID()}
		if opts.Observer != nil {
			opts.Observer = engine.MultiObserver(opts.Observer, spans)
		} else {
			opts.Observer = spans
		}
	}
	res, err := engine.Run(ctx, engine.Jobs([]*darshan.Job{item.job}), opts)
	s.categorizeSecs.Observe(time.Since(start).Seconds())
	switch {
	case s.runCtx.Err() != nil:
		return // forced shutdown: trace blob is durable, next startup backfills
	case err != nil:
		wsp.SetError(err)
		s.recordFailure(item.id, err.Error())
		if s.log != nil {
			s.log.Warn("categorization failed", "request_id", item.reqID, "id", string(item.id), "err", err)
		}
		return
	case len(res.Apps) == 0:
		s.recordFailure(item.id, "evicted by the funnel (corrupted or invalid trace)")
		if s.log != nil {
			s.log.Warn("trace evicted by funnel", "request_id", item.reqID, "id", string(item.id))
		}
		return
	}
	result := res.Apps[0].Result
	if err := s.st.PutResultCtx(ctx, item.id, s.fp, result); err != nil {
		wsp.SetError(err)
		s.recordFailure(item.id, err.Error())
		if s.log != nil {
			s.log.Error("persisting result failed", "request_id", item.reqID, "id", string(item.id), "err", err)
		}
		return
	}
	if expl := res.Apps[0].Explanation; expl != nil {
		size, err := s.st.PutExplanation(item.id, s.fp, expl)
		if err != nil {
			// The result is durable; a lost explanation only degrades
			// inspectability, so log and continue rather than fail the trace.
			if s.log != nil {
				s.log.Error("persisting explanation failed", "request_id", item.reqID, "id", string(item.id), "err", err)
			}
		} else {
			s.exMetrics.Observe(expl.EvidenceCount(), expl.NearMissCount(), size)
		}
	}
	s.cacheMisses.Inc()
	s.ix.AddCtx(ctx, item.id, result.Categories)
	if s.cluster != nil {
		// Replicas never re-categorize: ship them the result.
		s.cluster.pushResult(item.reqID, item.id)
	}
	if s.log != nil {
		s.log.Debug("trace categorized", "request_id", item.reqID, "id", string(item.id),
			"categories", len(result.Categories), "dur", time.Since(start))
	}
}

// Shutdown drains the service gracefully, mirroring dist.Server: stop
// accepting ingests, finish the backfill pass, process every queued
// trace, then stop the workers. When ctx expires first, in-flight
// work is cancelled and ctx's error returned — but accepted traces
// are never lost: their blobs are durable and the next startup's
// backfill completes them.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already shut down
	}
	close(s.quit)
	if s.alerts != nil {
		s.alerts.Stop()
	}
	if s.cluster != nil {
		// Stop inbound peer RPCs (and the probe/hint/repair loops)
		// first: their handlers enqueue into the queue being closed.
		if err := s.cluster.shutdown(ctx); err != nil && s.log != nil {
			s.log.Warn("cluster shutdown incomplete", "err", err)
		}
	}
	s.backfillWG.Wait()
	close(s.queue)
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel()
		<-done
		err = ctx.Err()
	}
	s.runCancel()
	if s.log != nil {
		s.log.Info("serve drained", "err", err)
	}
	return err
}

// ---- HTTP layer ----

// Handler returns the service's HTTP API, wrapped in the request-ID
// middleware (every response echoes or is assigned an X-Request-Id)
// and — unless tracing is disabled — the request-trace middleware:
// every response carries a traceparent header, every request becomes a
// span tree in the flight recorder, and GET /debug/requests{,/{id}}
// serve the recent-request table and full span trees.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", s.handleIngest)
	mux.HandleFunc("POST /v1/traces:batch", s.handleIngestBatch)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/explain/{id}", s.handleExplain)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /v1/cluster/health", s.handleClusterHealth)
	mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", telemetry.MetricsHandler(s.reg))
	if s.flight != nil {
		fh := s.flight.Handler()
		mux.Handle("GET /debug/requests", fh)
		mux.Handle("GET /debug/requests/{id}", fh)
	}
	return RequestIDMiddleware(s.traceMiddleware(mux))
}

// reqLog returns the server logger bound to the request's ID, or nil
// when logging is disabled.
func (s *Server) reqLog(r *http.Request) *slog.Logger {
	if s.log == nil {
		return nil
	}
	if id := RequestIDFrom(r.Context()); id != "" {
		return s.log.With("request_id", id)
	}
	return s.log
}

// handleExplain serves the stored decision-provenance record of one
// trace under the server's fingerprint. ?category=<substring> narrows
// the evidence lists to entries about matching categories.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.explainsServed.Inc()
	id := store.TraceID(strings.ToLower(r.PathValue("id")))
	if !id.Valid() {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "id must be a 64-char SHA-256 hex digest"})
		return
	}
	e, ok, err := s.st.GetExplanation(id, s.fp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if ok {
		if c := r.URL.Query().Get("category"); c != "" {
			e = e.FilterCategory(c)
		}
		if log := s.reqLog(r); log != nil {
			log.Debug("explanation served", "id", string(id), "evidence", e.EvidenceCount())
		}
		writeJSON(w, http.StatusOK, e)
		return
	}
	switch {
	case s.isPending(id):
		writeJSON(w, http.StatusAccepted, struct {
			Status string `json:"status"`
		}{Status: "pending"})
	case s.st.HasResult(id, s.fp):
		// Categorized before explanations existed (or with explain
		// disabled): re-ingesting under an explain-enabled server heals.
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "result exists but no explanation is stored; re-ingest with explanation collection enabled"})
	default:
		if reason, failed := s.failureOf(id); failed {
			writeJSON(w, http.StatusUnprocessableEntity, struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}{Status: "failed", Error: reason})
			return
		}
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown trace"})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeBlob parses one uploaded trace, sniffing the format: MOSD
// magic → binary codec, leading '{' → JSON, otherwise darshan-parser
// text. A decode that yields no file records is rejected — the text
// parser is deliberately lenient about unknown lines, so this is what
// distinguishes a trace from arbitrary text.
func decodeBlob(data []byte) (*darshan.Job, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var (
		j   *darshan.Job
		err error
	)
	switch {
	case len(data) >= 4 && bytes.Equal(data[:4], darshan.Magic[:]):
		j, err = darshan.UnmarshalBinary(data)
	case len(trimmed) > 0 && trimmed[0] == '{':
		j, err = darshan.ReadJSON(bytes.NewReader(data))
	default:
		j, err = darshan.ReadParserText(bytes.NewReader(data))
	}
	if err != nil {
		return nil, err
	}
	if len(j.Records) == 0 {
		return nil, errors.New("trace holds no file records")
	}
	return j, nil
}

// ingestOne persists and enqueues a single decoded upload. reqID is
// the originating request's ID, carried to the worker's log lines; ctx
// carries the request trace (when tracing is on) so the store commit
// and the queued categorization hang off the right spans.
func (s *Server) ingestOne(ctx context.Context, name string, data []byte, reqID string) IngestItem {
	dstart := time.Now()
	job, err := decodeBlob(data)
	if err != nil {
		return IngestItem{Name: name, Status: StatusUnreadable, Error: err.Error()}
	}
	id, canonical, err := store.TraceKey(job)
	if err != nil {
		return IngestItem{Name: name, Status: StatusUnreadable, Error: err.Error()}
	}
	reqtrace.AddSpan(ctx, "ingest.decode", dstart, time.Since(dstart),
		reqtrace.Int("bytes", int64(len(data))))
	// Durability before acknowledgment: once the blob is stored, the
	// trace survives any crash (backfill completes it).
	if _, _, err := s.st.PutTraceBytesCtx(ctx, canonical); err != nil {
		return IngestItem{Name: name, ID: id, Status: StatusRejected, Error: err.Error()}
	}
	return s.queueTrace(ctx, name, id, job, reqID)
}

// queueTrace runs the post-persistence tail of an ingest: cache-hit
// check, pending dedup, then a non-blocking enqueue (a full queue is
// the service's backpressure). The trace blob is already durable. A
// traced request holds one trace reference per accepted job, released
// by the worker — that is what keeps the trace open (and out of the
// flight recorder) until its async work lands.
func (s *Server) queueTrace(ctx context.Context, name string, id store.TraceID, job *darshan.Job, reqID string) IngestItem {
	if s.st.HasResult(id, s.fp) {
		s.cacheHits.Inc()
		return IngestItem{Name: name, ID: id, Status: StatusCached}
	}
	if !s.markPending(id) {
		return IngestItem{Name: name, ID: id, Status: StatusPending}
	}
	j := ingestJob{id: id, job: job, reqID: reqID, enq: time.Now()}
	if t, parent, ok := reqtrace.FromContext(ctx); ok {
		t.Hold()
		j.t, j.parent = t, parent
	}
	select {
	case s.queue <- j:
		s.queueDepth.Inc()
		return IngestItem{Name: name, ID: id, Status: StatusAccepted}
	default:
		if j.t != nil {
			j.t.Release()
		}
		s.unmarkPending(id)
		return IngestItem{Name: name, ID: id, Status: StatusRejected, Error: "ingest queue full"}
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.ingestSecs.Observe(time.Since(start).Seconds()) }()
	s.ingestRequests.Inc()
	reqID := RequestIDFrom(r.Context())
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	var items []IngestItem
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "multipart/") {
		ups, bad, err := s.readMultipartUploads(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		items = append(items, bad...)
		if s.cluster != nil {
			items = append(items, s.cluster.ingestRouted(r.Context(), reqID, ups)...)
		} else {
			for _, up := range ups {
				items = append(items, s.ingestOne(r.Context(), up.name, up.data, reqID))
			}
		}
	} else {
		data, err := io.ReadAll(io.LimitReader(r.Body, s.maxUpload+1))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if int64(len(data)) > s.maxUpload {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("trace exceeds %d byte upload limit", s.maxUpload)})
			return
		}
		if len(data) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty request body"})
			return
		}
		if s.cluster != nil {
			items = append(items, s.cluster.ingestRouted(r.Context(), reqID, []upload{{data: data}})...)
		} else {
			items = append(items, s.ingestOne(r.Context(), "", data, reqID))
		}
	}
	if len(items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no traces in request"})
		return
	}
	s.finishIngest(w, r, items)
}

// finishIngest tallies per-item status metrics and writes the ingest
// response, shared by the single and batch endpoints: 200 when all
// items resolved, 202 when any is queued, 429 (with Retry-After) when
// the bounded queue rejected any — items already accepted in the same
// request stay accepted.
func (s *Server) finishIngest(w http.ResponseWriter, r *http.Request, items []IngestItem) {
	code := http.StatusOK
	rejected := false
	reqID := RequestIDFrom(r.Context())
	for i, it := range items {
		items[i].RequestID = reqID
		s.ingestStatus[it.Status].Inc()
		switch it.Status {
		case StatusRejected:
			rejected = true
		case StatusAccepted, StatusPending:
			if code == http.StatusOK {
				code = http.StatusAccepted
			}
		}
	}
	if rejected {
		// Backpressure: the bounded queue is full. Clients retry later.
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
		s.emitBackpressure(reqID)
	}
	if log := s.reqLog(r); log != nil {
		log.Info("ingest handled", "traces", len(items), "status", code)
	}
	writeJSON(w, code, struct {
		Results []IngestItem `json:"results"`
	}{Results: items})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.resultsServed.Inc()
	id := store.TraceID(strings.ToLower(r.PathValue("id")))
	if !id.Valid() {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "id must be a 64-char SHA-256 hex digest"})
		return
	}
	res, ok, err := s.st.GetResult(id, s.fp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	if s.isPending(id) {
		writeJSON(w, http.StatusAccepted, struct {
			Status string `json:"status"`
		}{Status: "pending"})
		return
	}
	if reason, failed := s.failureOf(id); failed {
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}{Status: "failed", Error: reason})
		return
	}
	if s.cluster != nil {
		// Not here: the trace may live on its replica set. Hedged read —
		// the preferred replica first, the next when it misses the hedge
		// deadline.
		data, ok, err := s.cluster.ring.FetchResult(r.Context(), RequestIDFrom(r.Context()), string(id))
		if err == nil && ok {
			if res, derr := store.DecodeResult(data); derr == nil {
				writeJSON(w, http.StatusOK, res)
				return
			}
		}
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown trace"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.querySecs.Observe(time.Since(start).Seconds()) }()
	s.queries.Inc()
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	ids, err := s.ix.QueryIDs(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	partial := false
	if s.cluster != nil {
		// Scatter-gather: every live peer answers for its shard with an
		// already-sorted list, and the reduce is one K-way merge into a
		// pooled buffer, so the combined ordering is as stable as a
		// single node's. A down peer's shard stays covered by its
		// surviving replicas; partial flags that some peer could not
		// answer at all.
		remote, errs := s.cluster.ring.ScatterQuery(r.Context(), RequestIDFrom(r.Context()), q)
		lists := make([][]string, 0, len(remote)+1)
		lists = append(lists, ids)
		lists = append(lists, remote...)
		bufp := queryMergeBufs.Get().(*[]string)
		defer func() {
			// Drop ID references before pooling so merged result
			// strings don't outlive the response.
			b := *bufp
			clear(b[:cap(b)])
			queryMergeBufs.Put(bufp)
		}()
		*bufp = index.MergeSortedInto(*bufp, lists...)
		ids = *bufp
		partial = len(errs) > 0
		if partial {
			if log := s.reqLog(r); log != nil {
				for pid, perr := range errs {
					log.Warn("scatter query: peer failed", "peer", pid, "err", perr)
				}
			}
		}
	}
	if log := s.reqLog(r); log != nil {
		log.Debug("query served", "q", q, "matches", len(ids))
	}
	limit := len(ids)
	if lv := r.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a non-negative integer"})
			return
		}
		if n < limit {
			limit = n
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Query   string   `json:"query"`
		Count   int      `json:"count"`
		Partial bool     `json:"partial,omitempty"`
		IDs     []string `json:"ids"`
	}{Query: q, Count: len(ids), Partial: partial, IDs: ids[:limit]})
}

// queryMergeBufs pools the scatter-gather merge output so the fan-in
// reduce allocates nothing per request beyond what the K-way merge
// appends past pooled capacity.
var queryMergeBufs = sync.Pool{New: func() any { return new([]string) }}

// StatsResponse is the /v1/stats document. In cluster mode Node names
// the answering node and Nodes carries every member's scatter-gathered
// shard statistics (down peers appear with up=false).
type StatsResponse struct {
	Fingerprint string                           `json:"fingerprint"`
	Store       store.Stats                      `json:"store"`
	Indexed     int                              `json:"indexed_traces"`
	Axes        map[string][]index.CategoryCount `json:"axes"`
	QueueDepth  int                              `json:"queue_depth"`
	QueueCap    int                              `json:"queue_capacity"`
	Pending     int                              `json:"pending"`
	Failed      int                              `json:"failed"`
	Node        string                           `json:"node,omitempty"`
	Nodes       []ring.NodeStats                 `json:"nodes,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	pending, failed := len(s.pending), len(s.failed)
	s.mu.Unlock()
	resp := StatsResponse{
		Fingerprint: s.fp,
		Store:       s.st.Stats(),
		Indexed:     s.ix.Len(),
		Axes:        s.ix.AxisCounts(),
		QueueDepth:  len(s.queue),
		QueueCap:    s.queueCap,
		Pending:     pending,
		Failed:      failed,
	}
	if s.cluster != nil {
		resp.Node = s.cluster.ring.Self().ID
		nodes := append([]ring.NodeStats{s.cluster.localStats()},
			s.cluster.ring.ScatterStats(r.Context(), RequestIDFrom(r.Context()))...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
		resp.Nodes = nodes
	}
	writeJSON(w, http.StatusOK, resp)
}
