// Distributed categorization over loopback RPC: start two in-process
// workers (stand-ins for mosaic-worker daemons on other hosts), then
// drive the staged corpus engine with the distributed Master plugged in
// as the Categorize-stage executor — the Dispy-style deployment of the
// paper's Section IV-E, in Go, sharing the exact same pipeline as the
// local CLI.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/mosaic-hpc/mosaic"
)

func main() {
	// Start two workers on ephemeral loopback ports.
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		go func() {
			if err := mosaic.ServeWorker(l); err != nil {
				log.Println("worker:", err)
			}
		}()
	}
	fmt.Println("workers listening on", addrs)

	// Connect the master: it is an alternate executor for the engine's
	// Categorize stage, so the funnel, backpressure, cancellation and
	// observability all come from the same pipeline the CLI uses.
	var clients []*mosaic.WorkerClient
	for _, a := range addrs {
		c, err := mosaic.DialWorker(a)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	master := mosaic.NewMaster(clients, mosaic.DefaultConfig())

	// A small synthetic corpus (including corrupted traces the funnel
	// will evict before they ever reach the cluster).
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 30
	profile.Seed = 11
	corpus := mosaic.PlanCorpus(profile)
	var jobs []*mosaic.Job
	corpus.Each(func(r mosaic.CorpusRun) bool {
		jobs = append(jobs, r.Job)
		return len(jobs) < 400
	})

	// Run the full staged pipeline with remote categorization and a
	// deadline: Scan → Decode → Funnel locally, Categorize on the
	// cluster, Aggregate locally.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	stats := mosaic.NewStageStats()
	analysis, err := mosaic.AnalyzeJobsContext(ctx, jobs, mosaic.Options{
		Executor: master,
		Observer: stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("funnel: %d traces, %d corrupted evicted, %d unique apps categorized on %d workers\n",
		analysis.Funnel.Total, analysis.Funnel.Corrupted, analysis.Funnel.UniqueApps, len(clients))
	fmt.Println("stages:", stats)

	fmt.Println("\ncategory rates over the distributed run:")
	for _, c := range []mosaic.Category{
		mosaic.Temporal(mosaic.DirRead, mosaic.OnStart),
		mosaic.Temporal(mosaic.DirWrite, mosaic.OnEnd),
		mosaic.Periodic(mosaic.DirWrite),
		mosaic.MetaHighSpike,
	} {
		fmt.Printf("  %-28s %5.1f%%\n", c, analysis.Aggregate.SingleRate(c)*100)
	}
}
