package ring

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
)

// errPeerDown marks scatter results skipped because the peer was
// already believed unreachable when the fan-out started.
var errPeerDown = errors.New("peer down")

// Health rollup states. A node self-reports ok or degraded through its
// StatusSnapshot; down is assigned by the gathering node when a peer
// is unreachable or fails to answer the status RPC.
const (
	StatusHealthOK       = "ok"
	StatusHealthDegraded = "degraded"
	StatusHealthDown     = "down"
)

// StatusSnapshot is one node's self-reported health and vitals — the
// OpStatus reply body and the per-node entry in the fleet health
// document.
type StatusSnapshot struct {
	Node           string   `json:"node"`
	Status         string   `json:"status"`            // ok | degraded (self-reported); down set by the gatherer
	Reasons        []string `json:"reasons,omitempty"` // why the node considers itself degraded
	BuildVersion   string   `json:"build_version,omitempty"`
	GoVersion      string   `json:"go_version,omitempty"`
	RoutingVersion string   `json:"routing_version,omitempty"`
	UptimeSeconds  float64  `json:"uptime_seconds,omitempty"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Pending       int `json:"pending"`
	HintsPending  int `json:"hints_pending"`
	PeersUp       int `json:"peers_up"`
	PeersTotal    int `json:"peers_total"`

	StoreTraces   int64 `json:"store_traces"`
	StoreResults  int64 `json:"store_results"`
	StoreSegments int   `json:"store_segments"`
	StoreBytes    int64 `json:"store_bytes"`

	LastEventSeq uint64 `json:"last_event_seq"`
	ActiveAlerts int    `json:"active_alerts"`
	Goroutines   int    `json:"goroutines"`
	HeapBytes    uint64 `json:"heap_bytes"`
}

// HintsPending reports the total hinted-handoff backlog across peers.
func (c *Cluster) HintsPending() int {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	total := 0
	for _, s := range c.hints {
		total += len(s)
	}
	return total
}

// PeersUp reports how many peers are currently believed reachable and
// the total peer count.
func (c *Cluster) PeersUp() (up, total int) {
	for _, p := range c.peers {
		total++
		if p.up.Load() {
			up++
		}
	}
	return up, total
}

// ScatterStatus collects every peer's StatusSnapshot in ring order.
// Down peers — and peers that fail to answer in time — appear with
// Status "down"; partial reports whether any peer that was believed up
// failed to answer (the document may under-report the fleet).
func (c *Cluster) ScatterStatus(ctx context.Context, reqID string) (snaps []StatusSnapshot, partial bool) {
	snaps = make([]StatusSnapshot, len(c.order))
	failed := make([]bool, len(c.order))
	var wg sync.WaitGroup
	for i, pid := range c.order {
		p := c.peers[pid]
		snaps[i] = StatusSnapshot{Node: pid, Status: StatusHealthDown}
		if !p.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
			defer cancel()
			resp, err := c.callPeer(cctx, p, OpStatus, "status", reqID, nil)
			if err != nil {
				failed[i] = true
				return
			}
			var ss StatusSnapshot
			if json.Unmarshal(resp, &ss) != nil {
				failed[i] = true
				return
			}
			if ss.Status == "" {
				ss.Status = StatusHealthOK
			}
			snaps[i] = ss
		}(i, p)
	}
	wg.Wait()
	for _, f := range failed {
		if f {
			partial = true
		}
	}
	return snaps, partial
}

// ScatterMetrics fetches every live peer's metrics export (the
// JSON-encoded telemetry family snapshots OpMetricsSnap returns),
// keyed by node ID. Down or failing peers are reported in errs.
func (c *Cluster) ScatterMetrics(ctx context.Context, reqID string) (map[string][]byte, map[string]error) {
	out := make(map[string][]byte, len(c.order))
	errs := make(map[string]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pid := range c.order {
		p := c.peers[pid]
		if !p.up.Load() {
			errs[pid] = errPeerDown
			continue
		}
		wg.Add(1)
		go func(pid string, p *peer) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
			defer cancel()
			resp, err := c.callPeer(cctx, p, OpMetricsSnap, "metrics", reqID, nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[pid] = err
				return
			}
			out[pid] = resp
		}(pid, p)
	}
	wg.Wait()
	return out, errs
}
