package ring

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Op: OpPing, Status: StatusOK},
		{Op: OpIngest, Status: StatusOK, RequestID: "req-123", Traceparent: "00-aaaa-bbbb-01", Body: []byte("payload")},
		{Op: OpQuery, Status: StatusError, RequestID: "r", Body: []byte("boom")},
		{Op: OpResult, Status: StatusNotFound, Body: nil},
		{Op: OpCategorize, Status: StatusOK, Body: bytes.Repeat([]byte{0xab}, 1<<16)},
	}
	for i, want := range cases {
		enc := AppendFrame(nil, &want)
		got, n, err := ParseFrame(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if got.Op != want.Op || got.Status != want.Status ||
			got.RequestID != want.RequestID || got.Traceparent != want.Traceparent ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("case %d: round trip mismatch: %+v", i, got)
		}
	}
}

// TestParseFrameIncremental feeds a frame one byte at a time: every
// prefix must report "need more" (consumed 0, nil error) and only the
// complete buffer parses.
func TestParseFrameIncremental(t *testing.T) {
	enc := AppendFrame(nil, &Frame{Op: OpStats, RequestID: "abc", Traceparent: "00-1-2-01", Body: []byte("hello")})
	for i := 0; i < len(enc); i++ {
		_, n, err := ParseFrame(enc[:i])
		if err != nil {
			t.Fatalf("prefix %d/%d: unexpected error %v", i, len(enc), err)
		}
		if n != 0 {
			t.Fatalf("prefix %d/%d: parsed a partial frame", i, len(enc))
		}
	}
	if _, n, err := ParseFrame(enc); err != nil || n != len(enc) {
		t.Fatalf("full buffer: n=%d err=%v", n, err)
	}
}

// TestParseFrameBackToBack parses two frames from one buffer, the shape
// serveConn sees when a peer pipelines.
func TestParseFrameBackToBack(t *testing.T) {
	buf := AppendFrame(nil, &Frame{Op: OpPing, Body: []byte("one")})
	buf = AppendFrame(buf, &Frame{Op: OpStats, Body: []byte("two")})
	f1, n1, err := ParseFrame(buf)
	if err != nil || string(f1.Body) != "one" {
		t.Fatalf("first frame: %v %q", err, f1.Body)
	}
	f2, n2, err := ParseFrame(buf[n1:])
	if err != nil || string(f2.Body) != "two" {
		t.Fatalf("second frame: %v %q", err, f2.Body)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d of %d", n1+n2, len(buf))
	}
}

func TestParseFrameRejectsMalformed(t *testing.T) {
	// Declared length below the op+status+ridLen+tpLen minimum.
	short := binary.LittleEndian.AppendUint32(nil, 3)
	short = append(short, 0, 0, 0)
	if _, _, err := ParseFrame(short); err == nil {
		t.Error("undersized frame length accepted")
	}
	// Declared length above the cap.
	huge := binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1)
	if _, _, err := ParseFrame(huge); err == nil {
		t.Error("oversized frame length accepted")
	}
	// Request-id length field pointing past the frame end.
	bad := AppendFrame(nil, &Frame{Op: OpPing, RequestID: "rid", Body: []byte("x")})
	binary.LittleEndian.PutUint16(bad[6:], 60000)
	if _, _, err := ParseFrame(bad); err == nil {
		t.Error("request-id overrun accepted")
	}
}

func TestBlobsRoundTrip(t *testing.T) {
	var body []byte
	blobs := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for _, b := range blobs {
		body = AppendBlob(body, b)
	}
	got, err := SplitBlobs(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blobs) {
		t.Fatalf("got %d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("blob %d: %q != %q", i, got[i], blobs[i])
		}
	}
	if _, err := SplitBlobs([]byte{1, 0}); err == nil {
		t.Error("truncated blob length accepted")
	}
	if _, err := SplitBlobs(binary.LittleEndian.AppendUint32(nil, 100)); err == nil {
		t.Error("blob overrun accepted")
	}
}
