// Command mosaic categorizes Darshan-like I/O traces.
//
// Usage:
//
//	mosaic [flags] <trace-file-or-corpus-dir>
//
// Given a single trace file, it prints the trace's categories (and, with
// -explain, the decision-provenance rule trace: every threshold
// comparison the detectors evaluated, with pass/fail outcomes and
// near-misses; -explain-json writes the same record as JSON and
// -explain-margin tunes the near-miss margin). Given a directory, it
// streams the corpus through the staged
// engine — scan, decode, validation, deduplication, categorization — and
// prints the aggregate report (funnel, Tables II/III, Figures 4/5). With
// -json, per-trace results are written as a JSON array to the given
// file, the paper's step (4).
//
// Corpus runs are cancellable: Ctrl-C (SIGINT) or -timeout drains every
// pipeline stage cleanly, and -progress shows live per-stage counters
// fed by the engine's observer.
//
// Corpus runs are also observable: -trace-out writes a Chrome
// trace-event JSON of every trace's journey through the pipeline
// (openable in Perfetto / chrome://tracing), -slow K reports the K
// slowest traces per stage, -debug-addr serves live /metrics,
// /debug/engine and pprof while the run is in flight, and
// -log-level/-log-format control structured diagnostics.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mosaic-hpc/mosaic"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func main() {
	var (
		explain   = flag.Bool("explain", false, "print the decision-provenance rule trace for a single trace (why every category was or wasn't assigned)")
		explainJS = flag.String("explain-json", "", "write the decision-provenance record as JSON to this file ('-' = stdout; single trace)")
		explainM  = flag.Float64("explain-margin", mosaic.DefaultExplainMargin, "near-miss margin for explanation evidence, as a fraction of each threshold")
		jsonOut   = flag.String("json", "", "write per-trace results as JSON to this file")
		workers  = flag.Int("workers", 0, "parallel categorization workers (0 = NumCPU)")
		sigMB    = flag.Int64("significance-mb", 100, "significance threshold in MB for read/write volumes")
		chunks   = flag.Int("chunks", 4, "number of temporal chunks")
		bw       = flag.Float64("bandwidth", 0.05, "Mean Shift bandwidth for periodicity detection")
		spikeHi  = flag.Float64("spike-high", 250, "metadata high-spike threshold (req/s)")
		spike    = flag.Float64("spike", 50, "metadata spike threshold (req/s)")
		heatmap  = flag.Bool("heatmap", false, "also print the Jaccard heatmap grid (corpus mode)")
		timeline = flag.Bool("timeline", false, "print an ASCII timeline of a single trace (Figure 2 view)")
		convert  = flag.String("convert", "", "convert a single trace to this path (.mosd, .json or .txt) and exit")
		anonSalt = flag.String("anonymize", "", "when converting, anonymize identities with this salt")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		progress = flag.Bool("progress", false, "print live per-stage pipeline progress to stderr (corpus mode)")
		storeDir = flag.String("store", "", "warm-start categorization from this result store directory (corpus mode; created when missing)")

		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON of the corpus run to this file (open in Perfetto / chrome://tracing)")
		slowK     = flag.Int("slow", 0, "print the K slowest traces per stage after a corpus run (0 = off)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/engine and pprof during the run (empty: disabled)")
		logLevel  = flag.String("log-level", "warn", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mosaic [flags] <trace-file | corpus-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := mosaic.DefaultConfig()
	cfg.SignificanceBytes = *sigMB << 20
	cfg.ChunkCount = *chunks
	cfg.MeanShiftBandwidth = *bw
	cfg.SpikeHighRate = *spikeHi
	cfg.SpikeRate = *spike

	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaic:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the pipeline context: the engine drains its
	// stages and the process exits cleanly instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	so := singleOpts{
		explain:       *explain,
		explainJSON:   *explainJS,
		explainMargin: *explainM,
		jsonOut:       *jsonOut,
		timeline:      *timeline,
	}
	err = run(ctx, flag.Arg(0), cfg, *workers, so, *jsonOut, *heatmap, *convert, *anonSalt, corpusOpts{
		progress:  *progress,
		traceOut:  *traceOut,
		slowK:     *slowK,
		debugAddr: *debugAddr,
		storeDir:  *storeDir,
		log:       log,
	})
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "mosaic: interrupted")
		os.Exit(130)
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "mosaic: timeout exceeded")
		os.Exit(1)
	case err != nil:
		fmt.Fprintln(os.Stderr, "mosaic:", err)
		os.Exit(1)
	}
}

// singleOpts bundles the single-trace rendering knobs.
type singleOpts struct {
	explain       bool    // print the decision-provenance rule trace
	explainJSON   string  // write the Explanation JSON here ("-" = stdout)
	explainMargin float64 // near-miss margin for evidence collection
	jsonOut       string  // write the Result JSON array here
	timeline      bool    // print the ASCII timeline
}

// corpusOpts bundles the observability knobs of a corpus run.
type corpusOpts struct {
	progress  bool
	traceOut  string // Chrome trace-event JSON output path
	slowK     int    // slowest-traces-per-stage report size
	debugAddr string // live introspection server address
	storeDir  string // warm-start result store directory
	log       *slog.Logger
}

// telemetryEnabled reports whether any knob needs a telemetry bundle.
func (o corpusOpts) telemetryEnabled() bool {
	return o.traceOut != "" || o.slowK > 0 || o.debugAddr != ""
}

func run(ctx context.Context, target string, cfg mosaic.Config, workers int, so singleOpts, jsonOut string, heatmap bool, convert, anonSalt string, co corpusOpts) error {
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return runCorpus(ctx, target, cfg, workers, jsonOut, heatmap, co)
	}
	if convert != "" {
		return runConvert(target, convert, anonSalt)
	}
	return runSingle(target, cfg, so)
}

// runConvert re-encodes a trace into the format selected by the output
// extension (binary .mosd, .json, or darshan-parser-style .txt).
func runConvert(in, out, anonSalt string) error {
	job, err := mosaic.ReadTrace(in)
	if err != nil {
		return err
	}
	if anonSalt != "" {
		mosaic.Anonymize(job, anonSalt)
	}
	if err := mosaic.WriteTrace(out, job); err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (%d records)\n", in, out, len(job.Records))
	return nil
}

func runSingle(path string, cfg mosaic.Config, so singleOpts) error {
	job, err := mosaic.ReadTrace(path)
	if err != nil {
		return err
	}
	if err := mosaic.Validate(job); err != nil {
		return fmt.Errorf("trace is corrupted and would be evicted: %w", err)
	}
	var res *mosaic.Result
	var expl *mosaic.Explanation
	if so.explain || so.explainJSON != "" {
		// Provenance requested: collect evidence alongside the labels.
		// Labels are guaranteed identical to the plain Categorize path.
		res, expl, err = mosaic.CategorizeExplained(job, cfg,
			mosaic.ExplainOptions{Margin: so.explainMargin})
	} else {
		res, err = mosaic.Categorize(job, cfg)
	}
	if err != nil {
		return err
	}
	if so.timeline {
		mosaic.WriteTimeline(os.Stdout, job, res, cfg)
	}
	switch {
	case so.explain:
		mosaic.RenderExplanation(os.Stdout, expl)
	case so.explainJSON == "-" || so.timeline:
		// stdout is reserved for the requested artifact.
	default:
		fmt.Printf("%s: ", path)
		for i, l := range res.Labels {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(l)
		}
		fmt.Println()
	}
	if so.explainJSON != "" {
		if err := writeExplanationJSON(so.explainJSON, expl); err != nil {
			return err
		}
	}
	if so.jsonOut != "" {
		return writeJSON(so.jsonOut, []*mosaic.Result{res})
	}
	return nil
}

// writeExplanationJSON writes the provenance record as indented JSON to
// path, or to stdout when path is "-".
func writeExplanationJSON(path string, e *mosaic.Explanation) error {
	var w io.Writer = os.Stdout
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	werr := enc.Encode(e)
	if f != nil {
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
	}
	return werr
}

func runCorpus(ctx context.Context, dir string, cfg mosaic.Config, workers int, jsonOut string, heatmap bool, co corpusOpts) error {
	opt := mosaic.Options{Config: cfg, Workers: workers}

	// -store warm-starts categorization: results cached under this
	// config's fingerprint are read back instead of recomputed, and
	// fresh ones are persisted for the next run.
	if co.storeDir != "" {
		st, err := mosaic.OpenStore(co.storeDir)
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		defer func() {
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "store %s: %d results served warm, %d categorized cold (fingerprint %s)\n",
				co.storeDir, s.Hits, s.Misses, cfg.Fingerprint())
			st.Close()
		}()
		opt.Store = st
	}

	var tel *mosaic.Telemetry
	if co.telemetryEnabled() {
		tel = mosaic.NewTelemetry(mosaic.TelemetryConfig{
			Spans:  co.traceOut != "",
			SlowK:  co.slowK,
			Logger: co.log,
		})
		opt.Telemetry = tel
		if co.debugAddr != "" {
			dbg, err := mosaic.StartDebugServer(co.debugAddr, tel)
			if err != nil {
				return fmt.Errorf("debug server: %w", err)
			}
			defer dbg.Close()
		}
	}

	var stats *mosaic.StageStats
	var stopProgress func()
	if co.progress {
		if tel != nil {
			stats = tel.Stats() // one collector feeds progress and /debug/engine
		} else {
			stats = mosaic.NewStageStats()
			opt.Observer = stats
		}
		stopProgress = startProgress(stats)
	}
	analysis, err := mosaic.AnalyzeCorpusContext(ctx, dir, opt)
	if stopProgress != nil {
		stopProgress()
		fmt.Fprintln(os.Stderr, "pipeline stage breakdown:")
		stats.WriteTable(os.Stderr)
	}
	if tel != nil {
		if werr := writeCorpusTelemetry(tel, co); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	analysis.WriteReport(os.Stdout)
	if heatmap {
		fmt.Println()
		mosaic.WriteHeatmap(os.Stdout, analysis.Aggregate, 0.005)
	}
	if jsonOut != "" {
		results := make([]*mosaic.Result, 0, len(analysis.Apps))
		for _, a := range analysis.Apps {
			results = append(results, a.Result)
		}
		return writeJSON(jsonOut, results)
	}
	return nil
}

// writeCorpusTelemetry flushes post-run telemetry artifacts: the Chrome
// trace-event JSON (-trace-out) and the slowest-traces report (-slow).
func writeCorpusTelemetry(tel *mosaic.Telemetry, co corpusOpts) error {
	if co.traceOut != "" {
		f, err := os.Create(co.traceOut)
		if err != nil {
			return err
		}
		werr := tel.Spans().WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", co.traceOut, werr)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans; open in Perfetto or chrome://tracing)\n",
			co.traceOut, tel.Spans().Len())
	}
	if co.slowK > 0 {
		for _, stage := range []string{"decode", "funnel", "categorize"} {
			entries := tel.Slow().Slowest(stage)
			if len(entries) == 0 {
				continue
			}
			fmt.Fprintf(os.Stderr, "slowest in %s:\n", stage)
			for _, e := range entries {
				fmt.Fprintf(os.Stderr, "  %12v  %s\n", e.Dur.Round(time.Microsecond), e.Name)
			}
		}
	}
	return nil
}

// startProgress renders the per-stage counters of a running pipeline to
// stderr a few times per second; the returned stop function prints the
// final line and ends the refresher.
func startProgress(stats *mosaic.StageStats) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "\r\033[K%s", stats.String())
			case <-done:
				fmt.Fprintf(os.Stderr, "\r\033[K%s\n", stats.String())
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func writeJSON(path string, results []*mosaic.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(results)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
