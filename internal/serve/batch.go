package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Batch ingest: POST /v1/traces:batch amortizes the per-request costs
// of ingest — format sniffing, decode, content addressing, and (under
// a Sync store) the fsync — across every trace in the request. One
// store write and one group-committed fsync cover the whole batch,
// which is what makes saturating a cluster's trace firehose feasible
// where one-request-per-trace ingest caps out on disk flushes.

// BatchContentType is the length-prefixed concatenation encoding of a
// batch body: repeated [u32 little-endian blob length][blob] frames.
// Multipart bodies are accepted too; this framing exists for clients
// that stream traces without multipart overhead.
const BatchContentType = "application/x-mosaic-batch"

// maxBatchItems caps the traces in one batch request, bounding the
// memory a single request can pin.
const maxBatchItems = 1024

// AppendBatchFrame appends one blob to a length-prefixed batch body:
// the client-side encoder for BatchContentType.
func AppendBatchFrame(dst, blob []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
	return append(dst, blob...)
}

// upload is one named blob extracted from an ingest request body.
type upload struct {
	name string
	data []byte
}

// readBatchFrames decodes a length-prefixed batch body. Items are named
// by their position so response entries correlate with request order.
func readBatchFrames(r io.Reader, maxItem int64) ([]upload, error) {
	var ups []upload
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return ups, nil
			}
			return nil, fmt.Errorf("reading frame %d length: %w", len(ups), err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n > maxItem {
			return nil, fmt.Errorf("frame %d exceeds %d byte trace limit", len(ups), maxItem)
		}
		if len(ups) >= maxBatchItems {
			return nil, fmt.Errorf("batch exceeds %d traces", maxBatchItems)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("reading frame %d (%d bytes): %w", len(ups), n, err)
		}
		ups = append(ups, upload{name: fmt.Sprintf("frame-%d", len(ups)), data: blob})
	}
}

// readMultipartUploads collects every part of a multipart ingest body.
// Oversized parts become unreadable items rather than failing the
// request; a hard error aborts it.
func (s *Server) readMultipartUploads(r *http.Request) ([]upload, []IngestItem, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, nil, err
	}
	var ups []upload
	var bad []IngestItem
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return ups, bad, nil
		}
		if err != nil {
			return nil, nil, err
		}
		name := part.FileName()
		if name == "" {
			name = part.FormName()
		}
		data, err := io.ReadAll(io.LimitReader(part, s.maxUpload+1))
		part.Close()
		if err != nil {
			return nil, nil, err
		}
		if int64(len(data)) > s.maxUpload {
			bad = append(bad, IngestItem{Name: name, Status: StatusUnreadable,
				Error: fmt.Sprintf("trace exceeds %d byte upload limit", s.maxUpload)})
			continue
		}
		if len(ups)+len(bad) >= maxBatchItems {
			return nil, nil, fmt.Errorf("batch exceeds %d traces", maxBatchItems)
		}
		ups = append(ups, upload{name: name, data: data})
	}
}

// handleIngestBatch ingests many traces in one request. All blobs are
// decoded first, then persisted through store.PutTraceBatch — a single
// staged write acknowledged by one group-committed fsync — and finally
// queued for categorization with the same per-item semantics as the
// single-trace endpoint (cached / pending / accepted / rejected).
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.ingestSecs.Observe(time.Since(start).Seconds()) }()
	s.ingestRequests.Inc()
	s.batchRequests.Inc()
	reqID := RequestIDFrom(r.Context())
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	var (
		ups []upload
		bad []IngestItem
		err error
	)
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "multipart/"):
		ups, bad, err = s.readMultipartUploads(r)
	case strings.HasPrefix(ct, BatchContentType):
		ups, err = readBatchFrames(r.Body, s.maxUpload)
	default:
		writeJSON(w, http.StatusUnsupportedMediaType, errorResponse{
			Error: "batch ingest accepts multipart/form-data or " + BatchContentType})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(ups)+len(bad) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no traces in request"})
		return
	}
	s.batchTraces.Observe(float64(len(ups) + len(bad)))

	if s.cluster != nil {
		// Clustered: the routed path decodes, partitions by ring owner,
		// batch-ingests the local group and forwards the rest.
		items := append(bad, s.cluster.ingestRouted(r.Context(), reqID, ups)...)
		s.finishIngest(w, r, items)
		return
	}

	// Decode everything up front; the canonical encodings of readable
	// traces form one store batch.
	type decoded struct {
		item int // index into items
		job  *darshan.Job
	}
	items := make([]IngestItem, 0, len(ups)+len(bad))
	items = append(items, bad...)
	var (
		jobs  []decoded
		blobs [][]byte
	)
	for _, up := range ups {
		job, err := decodeBlob(up.data)
		if err != nil {
			items = append(items, IngestItem{Name: up.name, Status: StatusUnreadable, Error: err.Error()})
			continue
		}
		id, canonical, err := store.TraceKey(job)
		if err != nil {
			items = append(items, IngestItem{Name: up.name, Status: StatusUnreadable, Error: err.Error()})
			continue
		}
		items = append(items, IngestItem{Name: up.name, ID: id})
		jobs = append(jobs, decoded{item: len(items) - 1, job: job})
		blobs = append(blobs, canonical)
	}
	if len(blobs) > 0 {
		// Durability before acknowledgment, amortized: one write, one
		// group-committed fsync for the entire batch (traced as one
		// store.commit span covering every frame).
		if _, _, err := s.st.PutTraceBatchCtx(r.Context(), blobs); err != nil {
			for _, d := range jobs {
				items[d.item].Status = StatusRejected
				items[d.item].Error = err.Error()
			}
			s.finishIngest(w, r, items)
			return
		}
		// One linked per-item span under the batch root: the item's queue
		// admission happens inside it, so its queued categorization (and
		// everything the worker later records) parents off this span, not
		// the shared root — the span tree keeps items distinguishable.
		for _, d := range jobs {
			ictx, isp := reqtrace.StartSpan(r.Context(), "item:"+items[d.item].Name,
				reqtrace.Str("id", string(items[d.item].ID)))
			it := s.queueTrace(ictx, items[d.item].Name, items[d.item].ID, d.job, reqID)
			isp.SetAttr(reqtrace.Str("status", it.Status))
			isp.End()
			items[d.item] = it
		}
	}
	s.finishIngest(w, r, items)
}
