package telemetry

import (
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	// Force some runtime activity so gauges are non-trivial.
	runtime.GC()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"mosaic_runtime_heap_bytes",
		"mosaic_runtime_goroutines",
		"mosaic_runtime_gomaxprocs",
		"mosaic_runtime_gc_cycles_total",
		"mosaic_runtime_gc_pause_seconds_bucket",
		"mosaic_runtime_sched_latency_seconds_bucket",
		"mosaic_build_info",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}

	// Sanity: goroutines gauge reflects a live process.
	if g := reg.Gauge("mosaic_runtime_goroutines", "", nil).Value(); g < 1 {
		t.Errorf("goroutines gauge = %v", g)
	}
	if g := reg.Gauge("mosaic_runtime_gomaxprocs", "", nil).Value(); g < 1 {
		t.Errorf("gomaxprocs gauge = %v", g)
	}
}

func TestBuildInfoGaugeCarriesVersion(t *testing.T) {
	SetBuildVersion("9.9.9-test")
	defer buildVersion.Store("")

	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `version="9.9.9-test"`) {
		t.Fatalf("build info missing version label:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("go=%q", runtime.Version())) {
		t.Fatalf("build info missing go label:\n%s", out)
	}
}

func TestRegisterRuntimeMetricsIdempotent(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE mosaic_runtime_goroutines "); n != 1 {
		t.Fatalf("duplicate runtime families after double registration (%d)", n)
	}
}

// TestNewMuxExposesRuntimeMetrics pins the contract the CI drill
// asserts: every binary serving /metrics through the shared mux
// reports build info and runtime series.
func TestNewMuxExposesRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewMux(reg, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.Contains(out, "mosaic_build_info") {
		t.Fatalf("/metrics missing mosaic_build_info:\n%.2000s", out)
	}
	if !strings.Contains(out, "mosaic_runtime_") {
		t.Fatalf("/metrics missing mosaic_runtime_*:\n%.2000s", out)
	}
}

// TestOnCollectConcurrentWithCollect hammers hook registration,
// instrument registration inside hooks, and expositions from multiple
// goroutines — the seam the federation path leans on. Run with -race.
func TestOnCollectConcurrentWithCollect(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var registrars, exporters sync.WaitGroup

	for w := 0; w < 4; w++ {
		registrars.Add(1)
		go func(w int) {
			defer registrars.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("hook-%d-%d", w, i%10)
				reg.OnCollect(name, func() {
					reg.Counter("m_hook_total", "", Labels{"w": fmt.Sprintf("%d", w)}).Inc()
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		exporters.Add(1)
		go func() {
			defer exporters.Done()
			for i := 0; i < 100; i++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				reg.Export()
			}
		}()
	}

	exporters.Wait()
	close(stop)
	registrars.Wait()

	if reg.Counter("m_hook_total", "", Labels{"w": "0"}).Value() == 0 {
		t.Fatal("hooks never ran during concurrent expositions")
	}
}
