package store

import (
	"container/list"
	"sync"
)

// lru is a byte-bounded, concurrency-safe LRU cache of stored values.
// It keeps the store's memory footprint flat: the key → location
// index is always resident (small), while value bytes are cached only
// up to maxBytes and re-read from the segment log on miss.
type lru struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU builds a cache bounded to maxBytes (< 0: disabled).
func newLRU(maxBytes int64) *lru {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &lru{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached value and promotes it to most-recent.
func (c *lru) get(key string) ([]byte, bool) {
	if c.maxBytes == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting least-recently-used
// entries until the byte bound holds. Values larger than the whole
// cache are not cached at all.
func (c *lru) put(key string, val []byte) {
	if c.maxBytes == 0 || int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.size += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.size > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= int64(len(e.val))
	}
}

// stats returns the current item count and byte size.
func (c *lru) stats() (items int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.size
}
