package reqtrace

import (
	"encoding/hex"
	"strings"
	"testing"
)

// FuzzParseTraceparent throws arbitrary header values at the W3C
// traceparent parser and checks its invariants: it never panics, an
// accepted value decodes to non-zero IDs that re-encode to the same
// hex, and the format→parse round trip is the identity.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01")
	f.Add("")
	f.Add("00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x")

	f.Fuzz(func(t *testing.T, h string) {
		tid, sid, ok := ParseTraceparent(h)
		if !ok {
			if !tid.IsZero() || !sid.IsZero() {
				t.Fatalf("rejected %q but leaked IDs %s/%s", h, tid, sid)
			}
			return
		}
		// Accepted: the spec's structural invariants must hold.
		if len(h) < 55 {
			t.Fatalf("accepted %d-byte value %q", len(h), h)
		}
		if tid.IsZero() || sid.IsZero() {
			t.Fatalf("accepted zero ID from %q", h)
		}
		if v := strings.ToLower(h[:2]); v == "ff" {
			t.Fatalf("accepted reserved version from %q", h)
		}
		// The IDs must be exactly the header's hex fields (case-folded).
		if got := hex.EncodeToString(tid[:]); got != strings.ToLower(h[3:35]) {
			t.Fatalf("trace ID %s != header field %s", got, h[3:35])
		}
		if got := hex.EncodeToString(sid[:]); got != strings.ToLower(h[36:52]) {
			t.Fatalf("span ID %s != header field %s", got, h[36:52])
		}
		// Round trip: formatting the parsed IDs yields a value the
		// parser accepts and decodes identically.
		tid2, sid2, ok2 := ParseTraceparent(FormatTraceparent(tid, sid))
		if !ok2 || tid2 != tid || sid2 != sid {
			t.Fatalf("format→parse round trip broke: %q → %s/%s ok=%v", h, tid2, sid2, ok2)
		}
	})
}
