package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestAppendLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte(`{"seq":1}`), []byte(`{"seq":2}`), []byte(``), []byte(`{"seq":4}`)}
	for _, v := range want {
		if err := l.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != len(want) {
		t.Fatalf("Records = %d, want %d", l.Records(), len(want))
	}

	var got [][]byte
	if err := l.Replay(func(v []byte) bool {
		got = append(got, append([]byte(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
}

func TestAppendLogReopenResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenAppendLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 3 || l2.DroppedTailBytes() != 0 {
		t.Fatalf("reopen: records=%d dropped=%d", l2.Records(), l2.DroppedTailBytes())
	}
	if err := l2.Append([]byte("rec-3")); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := l2.Replay(func(v []byte) bool { got = append(got, string(v)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != "rec-3" {
		t.Fatalf("after reopen+append got %v", got)
	}
}

func TestAppendLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	l.Close()

	// Simulate a torn write: a partial frame plus garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, kindEvent, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 5 {
		t.Fatalf("recovered %d records, want 5", l2.Records())
	}
	if l2.DroppedTailBytes() == 0 {
		t.Fatal("torn tail not reported")
	}
	if l2.Size() != goodSize {
		t.Fatalf("size after recovery = %d, want %d", l2.Size(), goodSize)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != goodSize {
		t.Fatalf("file not truncated: %d vs %d", info.Size(), goodSize)
	}
	// Appends after recovery land on the clean boundary.
	if err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := l2.Replay(func(v []byte) bool { got = append(got, string(v)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[5] != "post-crash" {
		t.Fatalf("post-recovery replay = %v", got)
	}
}

func TestAppendLogRejectsCorruptedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("first"))
	l.Append([]byte("second"))
	l.Close()

	// Flip one payload byte in the second record: CRC validation must
	// stop the scan there and keep only the first.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-frameCRCLen-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("kept %d records after corruption, want 1", l2.Records())
	}
}

func TestAppendLogConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Records() != 800 {
		t.Fatalf("Records = %d, want 800", l.Records())
	}
	n := 0
	if err := l.Replay(func([]byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Fatalf("replayed %d, want 800", n)
	}
	l.Close()
}

func TestStoreRotateHook(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	var rotations []int
	s.SetRotateHook(func(n int) {
		mu.Lock()
		rotations = append(rotations, n)
		mu.Unlock()
	})

	val := bytes.Repeat([]byte("v"), 600)
	for i := 0; i < 6; i++ {
		if _, _, err := s.PutTraceBytes(val); err != nil {
			t.Fatal(err)
		}
		val = append(val, byte(i)) // distinct content hashes
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rotations) == 0 {
		t.Fatal("no rotations observed")
	}
	for i, n := range rotations {
		if n < 2 {
			t.Fatalf("rotation %d reported segment %d", i, n)
		}
	}
}
