package core

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// DominantPeriod breaks ties by slice order: with equal occurrence
// counts the first group wins, so the choice is deterministic for a
// given detection (groups arrive sorted by the detector, not by map
// iteration).
func TestDominantPeriodTieBreak(t *testing.T) {
	r := DirectionReport{Groups: []segment.Group{
		{Count: 5, Period: 60},
		{Count: 5, Period: 600},
	}}
	if p := r.DominantPeriod(); p != 60 {
		t.Fatalf("equal counts: want first group's period 60, got %g", p)
	}
	// Reversing the slice flips the winner: order is the tie-break.
	r.Groups[0], r.Groups[1] = r.Groups[1], r.Groups[0]
	if p := r.DominantPeriod(); p != 600 {
		t.Fatalf("equal counts reversed: want 600, got %g", p)
	}
}

// A strictly larger count wins regardless of position.
func TestDominantPeriodLargestCount(t *testing.T) {
	r := DirectionReport{Groups: []segment.Group{
		{Count: 2, Period: 600},
		{Count: 9, Period: 60},
		{Count: 3, Period: 3600},
	}}
	if p := r.DominantPeriod(); p != 60 {
		t.Fatalf("want period of the largest group (60), got %g", p)
	}
}

// A direction can be significant without being periodic: zero groups
// means Periodic() is false and DominantPeriod is 0, but Significant()
// still reports true.
func TestSignificantWithZeroGroups(t *testing.T) {
	r := DirectionReport{Temporal: category.OnStart}
	if !r.Significant() {
		t.Fatal("non-insignificant temporality must be significant")
	}
	if r.Periodic() || r.DominantPeriod() != 0 {
		t.Fatalf("zero groups: Periodic()=%v DominantPeriod()=%g", r.Periodic(), r.DominantPeriod())
	}
}

// A zero-byte direction never crosses the significance threshold: the
// read side of a write-only job is categorized insignificant, carries
// no bytes, and is skipped by periodicity detection entirely.
func TestSignificantZeroByteDirection(t *testing.T) {
	j := &darshan.Job{
		JobID: 7, User: "u", Exe: "/bin/w", NProcs: 8,
		Start: 0, End: 3600, Runtime: 3600,
	}
	j.Records = append(j.Records, darshan.FileRecord{
		Module: darshan.ModPOSIX, Path: "/out",
		C: darshan.Counters{
			Opens: 8, Closes: 8,
			Writes: 10, BytesWritten: 1 << 30,
			OpenStart: 9, OpenEnd: 10, WriteStart: 10, WriteEnd: 100,
			CloseStart: 101, CloseEnd: 102,
		},
	})
	res, err := Categorize(j, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Read
	if r.Significant() {
		t.Fatal("zero-byte read direction reported significant")
	}
	if r.TotalBytes != 0 || r.RawOps != 0 {
		t.Fatalf("zero-byte direction carries data: bytes=%d ops=%d", r.TotalBytes, r.RawOps)
	}
	if r.Temporal != category.Insignificant {
		t.Fatalf("temporal = %v, want insignificant", r.Temporal)
	}
	if r.Periodic() || r.DominantPeriod() != 0 {
		t.Fatal("insignificant direction must not be periodic")
	}
	if !res.Categories.Has(category.Temporal(category.DirRead, category.Insignificant)) {
		t.Fatalf("missing read_insignificant in %v", res.Categories)
	}
}

// Equal non-zero volumes below the significance threshold stay
// insignificant; the same shape above the threshold is steady (CV 0).
func TestSignificanceThresholdBoundary(t *testing.T) {
	cfg := DefaultConfig().Normalized()
	even := func(per int64) []float64 {
		return []float64{float64(per), float64(per), float64(per), float64(per)}
	}
	below := cfg.SignificanceBytes/4 - 1
	if got := classifyTemporality(even(below), 4*below, &cfg); got != category.Insignificant {
		t.Fatalf("below threshold: %v, want insignificant", got)
	}
	above := cfg.SignificanceBytes / 4
	if got := classifyTemporality(even(above), 4*above, &cfg); got != category.Steady {
		t.Fatalf("at threshold with zero CV: %v, want steady", got)
	}
}
