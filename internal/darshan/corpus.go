package darshan

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/parallel"
)

// Corpus utilities: reading and writing directories of trace files, the
// on-disk shape of the Blue Waters dataset (one Darshan log per job).

// Extensions recognized by the corpus scanner.
const (
	ExtBinary = ".mosd"
	ExtJSON   = ".json"
	ExtText   = ".txt" // darshan-parser output
)

// ReadFile loads a single trace, dispatching on the file extension.
func ReadFile(path string) (*Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ExtJSON:
		return ReadJSON(f)
	case ExtText:
		return ReadParserText(f)
	default:
		return readBinaryFile(f)
	}
}

// WriteFile stores a trace, dispatching on the file extension.
func WriteFile(path string, j *Job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch strings.ToLower(filepath.Ext(path)) {
	case ExtJSON:
		werr = WriteJSON(f, j)
	case ExtText:
		werr = WriteParserText(f, j)
	default:
		werr = WriteBinary(f, j)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// isTempName reports whether a file name looks like a temporary or
// partial artifact that should never be read as a trace: dotfiles
// (including editor state like .#foo and rsync/atomic-rename spools
// like ..mosd.tmp123), explicit *.tmp / *.partial markers, and
// editor backups ending in '~'. Skipping them lets a store or
// generator writer share a directory with a live corpus scanner
// without the scanner racing on half-written files.
func isTempName(name string) bool {
	return strings.HasPrefix(name, ".") ||
		strings.HasSuffix(name, "~") ||
		strings.HasSuffix(strings.ToLower(name), ".tmp") ||
		strings.HasSuffix(strings.ToLower(name), ".partial")
}

// isTraceName reports whether a file name should be picked up by the
// corpus scanner: a recognized trace extension and not a temp/partial
// artifact.
func isTraceName(name string) bool {
	if isTempName(name) {
		return false
	}
	switch strings.ToLower(filepath.Ext(name)) {
	case ExtBinary, ExtJSON, ExtText:
		return true
	}
	return false
}

// ListCorpus returns the sorted paths of all trace files under dir
// (recursively). Files with unknown extensions and temp/partial
// artifacts (dotfiles, *.tmp, *.partial, backups ending in '~') are
// ignored; hidden directories are skipped entirely.
func ListCorpus(dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if isTraceName(d.Name()) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("darshan: scanning corpus %s: %w", dir, err)
	}
	sort.Strings(paths)
	return paths, nil
}

// ScanCorpus streams the trace paths under dir in deterministic lexical
// walk order, calling fn for each. It stops early — returning ctx.Err()
// — when ctx is cancelled or fn returns false. Unlike ListCorpus it
// never materializes the full path list, so the first trace can flow
// into a pipeline before the walk finishes: this is the Scan stage of
// the engine.
func ScanCorpus(ctx context.Context, dir string, fn func(path string) bool) error {
	errStop := fmt.Errorf("darshan: scan stopped")
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			if path != dir && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if isTraceName(d.Name()) {
			if !fn(path) {
				return errStop
			}
		}
		return nil
	})
	switch {
	case err == nil:
		return nil
	case err == errStop: //nolint:errorlint // sentinel, never wrapped
		return ctx.Err()
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return fmt.Errorf("darshan: scanning corpus %s: %w", dir, err)
	}
}

// CorpusEntry is one trace streamed out of a corpus directory: either a
// decoded job or the error that prevented decoding it (the path is always
// set). Decoding errors are data, not failures: the pre-processing funnel
// counts them as evictions.
type CorpusEntry struct {
	Path string
	Job  *Job
	Err  error
}

// StreamCorpus reads every trace under dir and sends one CorpusEntry per
// file on the returned channel, closing it when done. Reading is
// sequential; parallel decode belongs to the caller (internal/parallel)
// so back-pressure stays explicit.
func StreamCorpus(dir string) (<-chan CorpusEntry, error) {
	paths, err := ListCorpus(dir)
	if err != nil {
		return nil, err
	}
	ch := make(chan CorpusEntry, 64)
	go func() {
		defer close(ch)
		for _, p := range paths {
			j, err := ReadFile(p)
			ch <- CorpusEntry{Path: p, Job: j, Err: err}
		}
	}()
	return ch, nil
}

// WriteCorpus stores jobs into dir using the binary format and a
// Blue-Waters-like naming scheme: <user>_<app>_id<jobid>.mosd.
func WriteCorpus(dir string, jobs []*Job) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, j := range jobs {
		name := fmt.Sprintf("%s_%s_id%d%s", sanitize(j.User), sanitize(j.AppName()), j.JobID, ExtBinary)
		if err := WriteFile(filepath.Join(dir, name), j); err != nil {
			return fmt.Errorf("darshan: writing %s: %w", name, err)
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// StreamCorpusParallel decodes the corpus with the given number of
// decoder workers while preserving file order in the output stream, so
// funnel statistics stay deterministic. Decoding dominates corpus
// ingestion cost (gzip inflate), which makes this the lever for the
// paper's 165-minute whole-year runs.
func StreamCorpusParallel(dir string, workers int) (<-chan CorpusEntry, error) {
	paths, err := ListCorpus(dir)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = parallel.DefaultWorkers()
	}
	type slot struct {
		idx   int
		entry CorpusEntry
	}
	jobs := make(chan int, workers)
	results := make(chan slot, workers)
	go func() {
		defer close(jobs)
		for i := range paths {
			jobs <- i
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				j, err := ReadFile(paths[i])
				results <- slot{idx: i, entry: CorpusEntry{Path: paths[i], Job: j, Err: err}}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	out := make(chan CorpusEntry, workers)
	go func() {
		defer close(out)
		pending := make(map[int]CorpusEntry)
		next := 0
		for r := range results {
			pending[r.idx] = r.entry
			for {
				e, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- e
				next++
			}
		}
	}()
	return out, nil
}
