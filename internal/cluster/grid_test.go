package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// randFlat fills a flattened n*d coordinate store with uniform points.
func randFlat(rng *rand.Rand, n, d int) []float64 {
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64()
	}
	return coords
}

// gridCandidates collects the point indices found by a radius-r neighbor
// probe around query q, mimicking the odometer in shiftOne.
func gridCandidates(g *grid, q []float64, r int64) map[int]bool {
	d := g.d
	base := make([]int64, d)
	off := make([]int64, d)
	cell := make([]int64, d)
	quantizeInto(q, g.inv, base)
	for i := range off {
		off[i] = -r
	}
	out := make(map[int]bool)
	for {
		for i := range cell {
			cell[i] = base[i] + off[i]
		}
		for _, pi := range g.bucket(cell) {
			out[int(pi)] = true
		}
		k := 0
		for k < d {
			off[k]++
			if off[k] <= r {
				break
			}
			off[k] = -r
			k++
		}
		if k == d {
			break
		}
	}
	return out
}

// TestGridNeighborhoodComplete verifies the core guarantee of the spatial
// index: every point within distance h (= cell edge) of a query lies in
// one of the 3^d cells around the query's cell.
func TestGridNeighborhoodComplete(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(7 + d)))
		const n = 400
		coords := randFlat(rng, n, d)
		h := 0.07
		g := buildGrid(coords, n, d, h, NewScratch())
		for qi := 0; qi < n; qi++ {
			q := coords[qi*d : (qi+1)*d]
			cand := gridCandidates(&g, q, 1)
			for pi := 0; pi < n; pi++ {
				p := coords[pi*d : (pi+1)*d]
				if math.Sqrt(dist2F(q, p)) <= h && !cand[pi] {
					t.Fatalf("d=%d: point %d within h of query %d but not probed", d, pi, qi)
				}
			}
		}
	}
}

// TestGridDeterministicLayout: two builds over the same input produce the
// same CSR layout, and items stay ascending within each cell.
func TestGridDeterministicLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, d = 500, 2
	coords := randFlat(rng, n, d)
	g1 := buildGrid(coords, n, d, 0.05, NewScratch())
	g2 := buildGrid(coords, n, d, 0.05, NewScratch())
	if g1.nCells != g2.nCells {
		t.Fatalf("cell counts differ: %d vs %d", g1.nCells, g2.nCells)
	}
	for i := range g1.items {
		if g1.items[i] != g2.items[i] {
			t.Fatalf("item order differs at %d: %d vs %d", i, g1.items[i], g2.items[i])
		}
	}
	for c := 0; c < g1.nCells; c++ {
		bucket := g1.items[g1.starts[c]:g1.starts[c+1]]
		if len(bucket) == 0 {
			t.Fatalf("cell %d empty: occupied cells only", c)
		}
		for i := 1; i < len(bucket); i++ {
			if bucket[i] <= bucket[i-1] {
				t.Fatalf("cell %d items not ascending: %v", c, bucket)
			}
		}
	}
	// Every point appears exactly once.
	seen := make([]bool, n)
	for _, pi := range g1.items {
		if seen[pi] {
			t.Fatalf("point %d indexed twice", pi)
		}
		seen[pi] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("point %d missing from index", i)
		}
	}
}

// TestGridScratchReuse: rebuilding through the same scratch over inputs of
// shrinking and growing sizes stays correct.
func TestGridScratchReuse(t *testing.T) {
	sc := NewScratch()
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{300, 50, 700, 10} {
		coords := randFlat(rng, n, 2)
		g := buildGrid(coords, n, 2, 0.1, sc)
		total := 0
		for c := 0; c < g.nCells; c++ {
			total += int(g.starts[c+1] - g.starts[c])
		}
		if total != n {
			t.Fatalf("n=%d: CSR holds %d items", n, total)
		}
	}
}

// TestQuantizeCoordClamp: extreme coordinate/bandwidth ratios must not
// overflow the int64 cell index.
func TestQuantizeCoordClamp(t *testing.T) {
	big := quantizeCoord(math.MaxFloat64, 1e300)
	small := quantizeCoord(-math.MaxFloat64, 1e300)
	if big <= 0 || small >= 0 {
		t.Fatalf("clamped quantization has wrong signs: %d, %d", big, small)
	}
}
