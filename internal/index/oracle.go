package index

import (
	"sort"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Oracle is the original hash-map inverted index, retained verbatim
// in spirit as the differential-testing reference for the posting-list
// engine: same grammar, same semantics, independent evaluation
// strategy. One fix over its production ancestor: NOT is evaluated
// lazily as a complemented set, so queries without (or with nested)
// negation never materialize the full-universe map — the property
// that lets the differential corpus reach millions of traces without
// the oracle itself becoming the memory bottleneck.
type Oracle struct {
	mu      sync.RWMutex
	byCat   map[category.Category]map[store.TraceID]struct{}
	byTrace map[store.TraceID][]category.Category
}

// NewOracle returns an empty reference index.
func NewOracle() *Oracle {
	return &Oracle{
		byCat:   make(map[category.Category]map[store.TraceID]struct{}),
		byTrace: make(map[store.TraceID][]category.Category),
	}
}

// Add (re-)indexes one trace under its category set, replacing any
// previous postings.
func (o *Oracle) Add(id store.TraceID, cats category.Set) {
	sorted := cats.Sorted()
	o.mu.Lock()
	defer o.mu.Unlock()
	if old, ok := o.byTrace[id]; ok {
		o.removeLocked(id, old)
	}
	o.byTrace[id] = sorted
	for _, c := range sorted {
		posting, ok := o.byCat[c]
		if !ok {
			posting = make(map[store.TraceID]struct{})
			o.byCat[c] = posting
		}
		posting[id] = struct{}{}
	}
}

// Remove drops a trace from every posting list.
func (o *Oracle) Remove(id store.TraceID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if old, ok := o.byTrace[id]; ok {
		o.removeLocked(id, old)
		delete(o.byTrace, id)
	}
}

func (o *Oracle) removeLocked(id store.TraceID, cats []category.Category) {
	for _, c := range cats {
		if posting, ok := o.byCat[c]; ok {
			delete(posting, id)
			if len(posting) == 0 {
				delete(o.byCat, c)
			}
		}
	}
}

// Categories returns the indexed category set of one trace (nil when
// unknown).
func (o *Oracle) Categories(id store.TraceID) []category.Category {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]category.Category(nil), o.byTrace[id]...)
}

// Len returns the number of indexed traces.
func (o *Oracle) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.byTrace)
}

// Count returns how many traces carry the exact category.
func (o *Oracle) Count(c category.Category) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.byCat[c])
}

// AxisCounts returns the per-axis distribution of indexed categories,
// each axis sorted by decreasing count then name.
func (o *Oracle) AxisCounts() map[string][]CategoryCount {
	o.mu.RLock()
	out := map[string][]CategoryCount{
		category.AxisTemporality.String(): {},
		category.AxisPeriodicity.String(): {},
		category.AxisMetadata.String():    {},
	}
	for c, posting := range o.byCat {
		axis := c.Axis().String()
		out[axis] = append(out[axis], CategoryCount{Category: c, Count: len(posting)})
	}
	o.mu.RUnlock()
	for _, counts := range out {
		sort.Slice(counts, func(i, j int) bool {
			if counts[i].Count != counts[j].Count {
				return counts[i].Count > counts[j].Count
			}
			return counts[i].Category < counts[j].Category
		})
	}
	return out
}

// Rebuild repopulates the oracle from every stored result under the
// given config fingerprint — the original random-read, full-decode
// path, kept as the baseline Rebuild measures against.
func (o *Oracle) Rebuild(s *store.Store, fingerprint string) (int, error) {
	byCat := make(map[category.Category]map[store.TraceID]struct{})
	byTrace := make(map[store.TraceID][]category.Category)
	err := s.EachResult(fingerprint, func(id store.TraceID, res *core.Result) bool {
		sorted := res.Categories.Sorted()
		byTrace[id] = sorted
		for _, c := range sorted {
			posting, ok := byCat[c]
			if !ok {
				posting = make(map[store.TraceID]struct{})
				byCat[c] = posting
			}
			posting[id] = struct{}{}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	o.byCat = byCat
	o.byTrace = byTrace
	n := len(byTrace)
	o.mu.Unlock()
	return n, nil
}

// oset is a hash-map set with lazy complement: when neg is set the
// value is "every indexed trace except m".
type oset struct {
	m   map[store.TraceID]struct{}
	neg bool
}

func (o *Oracle) evalNode(n node) oset {
	switch t := n.(type) {
	case termNode:
		out := make(map[store.TraceID]struct{})
		o.mu.RLock()
		for _, c := range t.cats {
			for id := range o.byCat[c] {
				out[id] = struct{}{}
			}
		}
		o.mu.RUnlock()
		return oset{m: out}
	case notNode:
		s := o.evalNode(t.n)
		s.neg = !s.neg
		return s
	case andNode:
		return osetAnd(o.evalNode(t.l), o.evalNode(t.r))
	case orNode:
		return osetOr(o.evalNode(t.l), o.evalNode(t.r))
	}
	return oset{m: map[store.TraceID]struct{}{}}
}

func osetAnd(a, b oset) oset {
	switch {
	case !a.neg && !b.neg:
		if len(b.m) < len(a.m) {
			a, b = b, a
		}
		out := make(map[store.TraceID]struct{}, len(a.m))
		for id := range a.m {
			if _, ok := b.m[id]; ok {
				out[id] = struct{}{}
			}
		}
		return oset{m: out}
	case !a.neg && b.neg:
		return oset{m: mapSubtract(a.m, b.m)}
	case a.neg && !b.neg:
		return oset{m: mapSubtract(b.m, a.m)}
	default: // ¬a ∧ ¬b = ¬(a ∪ b)
		return oset{m: mapUnion(a.m, b.m), neg: true}
	}
}

func osetOr(a, b oset) oset {
	switch {
	case !a.neg && !b.neg:
		return oset{m: mapUnion(a.m, b.m)}
	case !a.neg && b.neg: // a ∨ ¬b = ¬(b \ a)
		return oset{m: mapSubtract(b.m, a.m), neg: true}
	case a.neg && !b.neg:
		return oset{m: mapSubtract(a.m, b.m), neg: true}
	default: // ¬a ∨ ¬b = ¬(a ∩ b)
		if len(b.m) < len(a.m) {
			a, b = b, a
		}
		out := make(map[store.TraceID]struct{}, len(a.m))
		for id := range a.m {
			if _, ok := b.m[id]; ok {
				out[id] = struct{}{}
			}
		}
		return oset{m: out, neg: true}
	}
}

func mapUnion(a, b map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	out := make(map[store.TraceID]struct{}, len(a)+len(b))
	for id := range a {
		out[id] = struct{}{}
	}
	for id := range b {
		out[id] = struct{}{}
	}
	return out
}

func mapSubtract(a, b map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	out := make(map[store.TraceID]struct{}, len(a))
	for id := range a {
		if _, ok := b[id]; !ok {
			out[id] = struct{}{}
		}
	}
	return out
}

// Query evaluates a boolean category expression, returning matching
// trace IDs in lexicographic order. The universe map only
// materializes when a complement survives to the top of the
// expression.
func (o *Oracle) Query(q string) ([]store.TraceID, error) {
	root, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	s := o.evalNode(root)
	var out []store.TraceID
	if s.neg {
		o.mu.RLock()
		out = make([]store.TraceID, 0, len(o.byTrace))
		for id := range o.byTrace {
			if _, ok := s.m[id]; !ok {
				out = append(out, id)
			}
		}
		o.mu.RUnlock()
	} else {
		out = make([]store.TraceID, 0, len(s.m))
		for id := range s.m {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// QueryIDs is Query returning plain strings, mirroring the engine's
// API for differential tests.
func (o *Oracle) QueryIDs(q string) ([]string, error) {
	ids, err := o.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out, nil
}
