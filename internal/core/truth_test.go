package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// The generator records the intended category set of every trace; the
// detector must agree with it on the vast majority of clean traces. This
// is the machine-checkable version of the paper's manual-sampling
// validation (Section IV-E, 92% accuracy) and the main calibration guard
// for the whole pipeline.

func categorizeArchetype(t *testing.T, name string, seed int64) (category.Set, category.Set, *core.Result) {
	t.Helper()
	arch, ok := gen.ArchetypeByName(name)
	if !ok {
		t.Fatalf("unknown archetype %s", name)
	}
	rng := rand.New(rand.NewSource(seed))
	p := arch.Params(rng)
	b := gen.NewBuilder(rng, "u1", arch.Exe, 1, p.Ranks, p.RuntimeBase)
	arch.Build(b, p)
	j := b.Job()
	if err := darshan.Validate(j); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	res, err := core.Categorize(j, core.DefaultConfig())
	if err != nil {
		t.Fatalf("categorize: %v", err)
	}
	return gen.Truth(j), res.Categories, res
}

// exactMatchRate generates n traces of the archetype with distinct seeds
// and returns the fraction whose detected set equals the truth exactly.
func exactMatchRate(t *testing.T, name string, n int) float64 {
	t.Helper()
	match := 0
	for i := 0; i < n; i++ {
		truth, got, _ := categorizeArchetype(t, name, int64(1000+i*7))
		if got.Equal(truth) {
			match++
		} else if i == 0 {
			t.Logf("%s seed0 mismatch:\n  truth: %v\n  got:   %v", name, truth, got)
		}
	}
	return float64(match) / float64(n)
}

func TestArchetypeAgreement(t *testing.T) {
	// Per-archetype minimum exact-match rates. Most archetypes are
	// unambiguous; the paper's own accuracy is 92% overall, dominated by
	// temporality edge cases.
	cases := []struct {
		name string
		min  float64
	}{
		{"quiet", 0.95},
		{"quiet-long", 0.95},
		{"reader-onstart", 0.9},
		{"read-compute-write", 0.9},
		{"writer-onend", 0.9},
		{"steady-both", 0.9},
		{"rotated-steady-writer", 0.85},
		{"checkpointer-minute", 0.8},
		{"checkpointer-hour", 0.8},
		{"periodic-reader", 0.8},
		{"metastorm", 0.9},
		{"misc-temporal", 0.8},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			if rate := exactMatchRate(t, c.name, 20); rate < c.min {
				t.Errorf("archetype %s exact-match rate %.2f < %.2f", c.name, rate, c.min)
			}
		})
	}
}

func TestCheckpointerPeriodEstimate(t *testing.T) {
	for i := 0; i < 10; i++ {
		truth, _, res := categorizeArchetype(t, "checkpointer-minute", int64(50+i))
		_ = truth
		if !res.Write.Periodic() {
			t.Fatalf("seed %d: checkpointer not detected periodic", i)
		}
		// The detected dominant period must be close to ground truth.
		period := res.Write.DominantPeriod()
		truthStr := res.Truth[gen.TruthPeriodKey]
		if truthStr == "" {
			t.Fatal("no truth period recorded")
		}
		var want float64
		if _, err := sscan(truthStr, &want); err != nil {
			t.Fatalf("parsing truth period %q: %v", truthStr, err)
		}
		rel := abs(period-want) / want
		if rel > 0.15 {
			t.Errorf("seed %d: period %.1fs vs truth %.1fs (%.0f%% off)", i, period, want, rel*100)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%g", v)
}
