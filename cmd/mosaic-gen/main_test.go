package main

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestGenWritesBinaryCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 5, 1, 0.32, 40, false, testLogger()); err != nil {
		t.Fatal(err)
	}
	paths, err := mosaic.ListCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) > 40 {
		t.Fatalf("corpus size = %d", len(paths))
	}
	// Every file decodes (corrupted traces are still well-formed files).
	for _, p := range paths[:min(5, len(paths))] {
		if _, err := mosaic.ReadTrace(p); err != nil {
			t.Fatalf("decoding %s: %v", p, err)
		}
	}
}

func TestGenWritesJSONCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 3, 2, 0, 10, true, testLogger()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("non-JSON file in JSON corpus: %s", e.Name())
		}
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	// JSON corpus with zero corruption rate must fully validate.
	paths, _ := mosaic.ListCorpus(dir)
	for _, p := range paths {
		j, err := mosaic.ReadTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := mosaic.Validate(j); err != nil {
			t.Fatalf("%s invalid: %v", filepath.Base(p), err)
		}
	}
}

func TestGenDeterministicBySeed(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	if err := run(d1, 3, 7, 0.3, 25, false, testLogger()); err != nil {
		t.Fatal(err)
	}
	if err := run(d2, 3, 7, 0.3, 25, false, testLogger()); err != nil {
		t.Fatal(err)
	}
	p1, _ := mosaic.ListCorpus(d1)
	p2, _ := mosaic.ListCorpus(d2)
	if len(p1) != len(p2) {
		t.Fatalf("sizes differ: %d vs %d", len(p1), len(p2))
	}
	b1, err := os.ReadFile(p1[0])
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different corpora")
	}
}

// testLogger returns a discard-backed slog logger for run() calls.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
