package experiments

import (
	"bytes"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
)

func TestDXTExperiment(t *testing.T) {
	res, err := DXT(3, 15, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The caveat: aggregate-only traces hide the periodicity entirely...
	if res.AggregateRecall > 0.1 {
		t.Fatalf("aggregate recall = %g, expected ~0 (hidden periodicity)", res.AggregateRecall)
	}
	// ...and land in write_steady, the category the paper flags.
	if res.SteadyRate < 0.9 {
		t.Fatalf("steady rate = %g, expected ~1", res.SteadyRate)
	}
	// DXT recovers it.
	if res.DXTRecall < 0.9 {
		t.Fatalf("DXT recall = %g, expected ~1", res.DXTRecall)
	}
	// Disabling DXT restores the aggregate behaviour.
	if res.DXTDisabledRecall > 0.1 {
		t.Fatalf("disabled-DXT recall = %g, expected ~0", res.DXTDisabledRecall)
	}
	if res.MeanPeriodError > 0.15 {
		t.Fatalf("period error = %g", res.MeanPeriodError)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}
