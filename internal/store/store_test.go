package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
)

// testJob builds a small valid trace whose identity varies with seed.
func testJob(seed int) *darshan.Job {
	j := &darshan.Job{
		JobID:   uint64(1000 + seed),
		UID:     42,
		User:    fmt.Sprintf("user%d", seed%3),
		Exe:     fmt.Sprintf("/apps/sim%d", seed),
		NProcs:  8,
		Start:   1_600_000_000,
		End:     1_600_000_000 + 3600,
		Runtime: 3600,
	}
	j.Records = []darshan.FileRecord{{
		Module: darshan.ModPOSIX,
		Path:   "/scratch/out.dat",
		Rank:   -1,
		C: darshan.Counters{
			Opens: 4, Closes: 4, Writes: 100, BytesWritten: 200 << 20,
			OpenStart: 1, OpenEnd: 2, WriteStart: 10, WriteEnd: 3000,
			CloseStart: 3500, CloseEnd: 3550,
		},
	}}
	return j
}

func testResult(t *testing.T, j *darshan.Job) *core.Result {
	t.Helper()
	res, err := core.Categorize(j, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTraceKeyDeterministic(t *testing.T) {
	a, dataA, err := TraceKey(testJob(1))
	if err != nil {
		t.Fatal(err)
	}
	b, dataB, err := TraceKey(testJob(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b || string(dataA) != string(dataB) {
		t.Fatal("identical jobs must share one content address")
	}
	if !a.Valid() {
		t.Fatalf("TraceID %q not a sha256 hex digest", a)
	}
	c, _, err := TraceKey(testJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different jobs must not collide")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j := testJob(1)
	id, existed, err := s.PutTrace(j)
	if err != nil || existed {
		t.Fatalf("PutTrace = %v, existed=%v", err, existed)
	}
	if _, existed, err = s.PutTrace(j); err != nil || !existed {
		t.Fatalf("second PutTrace: err=%v existed=%v, want idempotent hit", err, existed)
	}
	got, ok, err := s.GetTrace(id)
	if err != nil || !ok {
		t.Fatalf("GetTrace: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatal("trace round trip mismatch")
	}

	fp := core.DefaultConfig().Fingerprint()
	res := testResult(t, j)
	if err := s.PutResult(id, fp, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := s.GetResult(id, fp)
	if err != nil || !ok {
		t.Fatalf("GetResult: ok=%v err=%v", ok, err)
	}
	if !back.Categories.Equal(res.Categories) {
		t.Fatalf("categories mismatch: %v vs %v", back.Categories, res.Categories)
	}
	if back.Write.Temporal != res.Write.Temporal {
		t.Fatalf("temporal kind not rehydrated: %v vs %v", back.Write.Temporal, res.Write.Temporal)
	}
	// A different fingerprint is a different identity: miss.
	if _, ok, err := s.GetResult(id, "cfg-ffffffffffffffff"); err != nil || ok {
		t.Fatalf("foreign fingerprint must miss (ok=%v err=%v)", ok, err)
	}
	st := s.Stats()
	if st.Traces != 1 || st.Results != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := core.DefaultConfig().Fingerprint()
	var ids []TraceID
	for i := 0; i < 10; i++ {
		j := testJob(i)
		id, _, err := s.PutTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult(id, fp, testResult(t, j)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Traces != 10 || st.Results != 10 || st.DroppedTailBytes != 0 {
		t.Fatalf("after reopen: %+v", st)
	}
	for _, id := range ids {
		if _, ok, err := s2.GetResult(id, fp); err != nil || !ok {
			t.Fatalf("result %s lost across reopen (ok=%v err=%v)", id, ok, err)
		}
	}
	// Appends must keep working after recovery.
	j := testJob(99)
	id, _, err := s2.PutTrace(j)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasTrace(id) {
		t.Fatal("post-recovery append not indexed")
	}
}

// TestStoreCrashRecoveryDropsOnlyTornTail is the crash test: append
// records, then simulate a mid-append kill by truncating the active
// segment inside the last frame. Reopen must recover every earlier
// record and drop exactly the torn tail.
func TestStoreCrashRecoveryDropsOnlyTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := core.DefaultConfig().Fingerprint()
	var ids []TraceID
	for i := 0; i < 5; i++ {
		j := testJob(i)
		id, _, err := s.PutTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult(id, fp, testResult(t, j)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Remember where the log stood before the doomed append.
	segPath := filepath.Join(dir, "000001.seg")
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := info.Size()
	// One more record, then "crash" mid-append: keep only part of it.
	lastJob := testJob(5)
	lastID, _, err := s.PutTrace(lastJob)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Truncate(segPath, goodSize+7); err != nil { // 7 bytes: torn inside the frame
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.DroppedTailBytes != 7 {
		t.Fatalf("dropped %d tail bytes, want 7", st.DroppedTailBytes)
	}
	if st.Traces != 5 || st.Results != 5 {
		t.Fatalf("recovered %d traces / %d results, want 5/5", st.Traces, st.Results)
	}
	if s2.HasTrace(lastID) {
		t.Fatal("torn record must not be indexed")
	}
	for _, id := range ids {
		res, ok, err := s2.GetResult(id, fp)
		if err != nil || !ok || len(res.Labels) == 0 {
			t.Fatalf("pre-crash record %s damaged (ok=%v err=%v)", id, ok, err)
		}
	}
	// The torn tail was truncated away: re-appending the same trace
	// must succeed and be readable.
	id, existed, err := s2.PutTrace(lastJob)
	if err != nil || existed || id != lastID {
		t.Fatalf("re-append after recovery: id=%s existed=%v err=%v", id, existed, err)
	}
	got, ok, err := s2.GetTrace(lastID)
	if err != nil || !ok || !reflect.DeepEqual(lastJob, got) {
		t.Fatalf("re-appended trace unreadable (ok=%v err=%v)", ok, err)
	}
}

func TestStoreCrashRecoveryCorruptedCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := s.PutTrace(testJob(1))
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "000001.seg")
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := info.Size()
	id2, _, err := s.PutTrace(testJob(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Flip a byte inside the second frame's value: length intact, CRC wrong.
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, firstEnd+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.HasTrace(id1) {
		t.Fatal("first record must survive")
	}
	if s2.HasTrace(id2) {
		t.Fatal("CRC-corrupted record must be dropped")
	}
	if s2.Stats().DroppedTailBytes == 0 {
		t.Fatal("corruption not accounted")
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := s.PutTrace(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Traces; got != 8 {
		t.Fatalf("recovered %d traces across segments, want 8", got)
	}
	n := 0
	s2.EachTraceID(func(id TraceID) bool {
		if _, ok, err := s2.GetTraceBytes(id); err != nil || !ok {
			t.Fatalf("trace %s unreadable after rotation (ok=%v err=%v)", id, ok, err)
		}
		n++
		return true
	})
	if n != 8 {
		t.Fatalf("EachTraceID visited %d, want 8", n)
	}
}

func TestStoreEachResultFiltersFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fpA := core.DefaultConfig().Fingerprint()
	cfgB := core.DefaultConfig()
	cfgB.ChunkCount = 8
	fpB := cfgB.Fingerprint()
	for i := 0; i < 4; i++ {
		j := testJob(i)
		id, _, err := s.PutTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult(id, fpA, testResult(t, j)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.PutResult(id, fpB, testResult(t, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	count := func(fp string) int {
		n := 0
		if err := s.EachResult(fp, func(TraceID, *core.Result) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if a, b := count(fpA), count(fpB); a != 4 || b != 2 {
		t.Fatalf("EachResult: fpA=%d fpB=%d, want 4/2", a, b)
	}
}

func TestLRUBound(t *testing.T) {
	c := newLRU(100)
	for i := 0; i < 20; i++ {
		c.put(fmt.Sprintf("k%d", i), make([]byte, 10))
	}
	items, bytes := c.stats()
	if bytes > 100 {
		t.Fatalf("cache %d bytes exceeds bound", bytes)
	}
	if items != 10 {
		t.Fatalf("cache holds %d items, want 10", items)
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := c.get("k19"); !ok {
		t.Fatal("newest entry should remain")
	}
	// Oversized values are not cached at all.
	c.put("huge", make([]byte, 1000))
	if _, ok := c.get("huge"); ok {
		t.Fatal("value larger than the cache must not be cached")
	}
}

func TestStoreBoundedMemory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CacheBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp := core.DefaultConfig().Fingerprint()
	for i := 0; i < 30; i++ {
		j := testJob(i)
		id, _, err := s.PutTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult(id, fp, testResult(t, j)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheBytes > 2048 {
		t.Fatalf("cache grew to %d bytes beyond the 2048 bound", st.CacheBytes)
	}
	// Values evicted from cache must still be readable from disk.
	n := 0
	if err := s.EachResult(fp, func(_ TraceID, res *core.Result) bool {
		if len(res.Labels) == 0 {
			t.Fatal("decoded result lost its labels")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("EachResult visited %d, want 30", n)
	}
}

func TestCachingExecutor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exec := NewCachingExecutor(s, engine.Local{Workers: 2})
	cfg := core.DefaultConfig()
	j := testJob(7)

	res1, err := exec.Categorize(context.Background(), j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Hits() != 0 || exec.Misses() != 1 {
		t.Fatalf("after cold run: hits=%d misses=%d", exec.Hits(), exec.Misses())
	}
	res2, err := exec.Categorize(context.Background(), j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Hits() != 1 || exec.Misses() != 1 {
		t.Fatalf("after warm run: hits=%d misses=%d", exec.Hits(), exec.Misses())
	}
	if !res1.Categories.Equal(res2.Categories) {
		t.Fatal("cached result categories differ from fresh ones")
	}
	// A different effective config must recompute.
	cfg2 := core.DefaultConfig()
	cfg2.SignificanceBytes = 1 << 20
	if _, err := exec.Categorize(context.Background(), j, cfg2); err != nil {
		t.Fatal(err)
	}
	if exec.Misses() != 2 {
		t.Fatalf("changed config should miss: misses=%d", exec.Misses())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CacheBytes: 4096, MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp := core.DefaultConfig().Fingerprint()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j := testJob(g*20 + i)
				id, _, err := s.PutTrace(j)
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.PutResult(id, fp, testResult(t, j)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.GetResult(id, fp); err != nil {
					t.Error(err)
					return
				}
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Traces != 160 || st.Results != 160 {
		t.Fatalf("stats after concurrent load: %+v", st)
	}
}
