package serve

import (
	"net/http"
	"strings"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// Request tracing at the HTTP edge: every request gets a reqtrace.Trace
// (adopting an incoming W3C traceparent when present, else minting a
// fresh trace ID), carried through the handler in the request context
// and across the queue boundary to the worker. The root span covers
// edge → response write; the trace itself finalizes — and reaches the
// flight recorder — only when the async work the request spawned has
// released its references, so a 202-acked ingest's trace still ends up
// containing the queue wait, the engine stages, the group commit and
// the index update that happened after the response went out.

// routePatterns are the service's route identities, used both to
// normalize metric labels (bounded cardinality: {id} stays literal) and
// to pre-register the per-route RED instruments.
var routePatterns = []struct {
	method, prefix, route string
}{
	{http.MethodPost, "/v1/traces:batch", "/v1/traces:batch"},
	{http.MethodPost, "/v1/traces", "/v1/traces"},
	{http.MethodGet, "/v1/results/", "/v1/results/{id}"},
	{http.MethodGet, "/v1/explain/", "/v1/explain/{id}"},
	{http.MethodGet, "/v1/query", "/v1/query"},
	{http.MethodGet, "/v1/stats", "/v1/stats"},
	{http.MethodGet, "/v1/events", "/v1/events"},
	{http.MethodGet, "/v1/alerts", "/v1/alerts"},
	{http.MethodGet, "/v1/cluster/health", "/v1/cluster/health"},
	{http.MethodGet, "/v1/cluster/metrics", "/v1/cluster/metrics"},
	{http.MethodGet, "/v1/cluster", "/v1/cluster"},
	{http.MethodGet, "/debug/requests", "/debug/requests"},
	{http.MethodGet, "/healthz", "/healthz"},
	{http.MethodGet, "/metrics", "/metrics"},
}

// routeOther labels requests that match no known pattern.
const routeOther = "other"

// normalizeRoute maps a request to its bounded route label. Done by
// prefix rather than http.Request.Pattern so the module keeps building
// under its declared go 1.22.
func normalizeRoute(r *http.Request) string {
	for _, rp := range routePatterns {
		if r.Method == rp.method && strings.HasPrefix(r.URL.Path, rp.prefix) {
			return rp.route
		}
	}
	return routeOther
}

// routeInstruments is one route's RED instrument pair.
type routeInstruments struct {
	latency     *telemetry.Histogram
	sloBreaches *telemetry.Counter
}

// registerRouteMetrics pre-registers the per-route latency histograms
// and SLO breach counters so the request path does a map read, never a
// registry registration.
func (s *Server) registerRouteMetrics() {
	s.routeMetrics = make(map[string]routeInstruments, len(routePatterns)+1)
	add := func(route string) {
		s.routeMetrics[route] = routeInstruments{
			latency: s.reg.Histogram("mosaic_http_request_seconds",
				"HTTP request latency by route (exemplars carry the trace ID).",
				nil, telemetry.Labels{"route": route}),
			sloBreaches: s.reg.Counter("mosaic_slo_latency_breaches_total",
				"Requests whose edge latency exceeded the configured SLO target.",
				telemetry.Labels{"route": route}),
		}
	}
	for _, rp := range routePatterns {
		add(rp.route)
	}
	add(routeOther)
	if s.slo > 0 {
		s.reg.Gauge("mosaic_slo_target_seconds",
			"Configured per-request latency SLO target.", nil).Set(s.slo.Seconds())
	}
}

// statusRecorder captures the response status for the root span.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// traceMiddleware opens the request trace, echoes the traceparent
// header, runs the handler with the trace in context, then finishes the
// root span and records the RED/SLO metrics. With tracing disabled it
// is the identity — the handler chain pays nothing.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	if !s.traceOn {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := normalizeRoute(r)
		t := reqtrace.New(reqtrace.StartOptions{
			Traceparent: r.Header.Get(reqtrace.TraceparentHeader),
			RequestID:   RequestIDFrom(r.Context()),
			Method:      r.Method,
			Route:       route,
			Start:       start,
			OnDone:      s.onTraceDone,
		})
		w.Header().Set(reqtrace.TraceparentHeader, t.Traceparent())
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(reqtrace.NewContext(r.Context(), t)))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		ri, ok := s.routeMetrics[route]
		if !ok {
			ri = s.routeMetrics[routeOther]
		}
		ri.latency.ObserveWithExemplar(elapsed.Seconds(), t.IDString())
		if s.slo > 0 && elapsed > s.slo {
			ri.sloBreaches.Inc()
		}
		t.FinishRoot(rec.status)
	})
}

// engineSpans replays the engine's per-item stage spans (decode,
// funnel, categorize — the SpanObserver seam from the batch telemetry
// layer) into a request trace as "engine:<stage>" spans, children of
// the worker's categorize span.
type engineSpans struct {
	engine.NopObserver
	t      *reqtrace.Trace
	parent reqtrace.SpanID
}

// ItemSpan implements engine.SpanObserver.
func (o engineSpans) ItemSpan(stage engine.StageID, name string, start time.Time, d time.Duration) {
	o.t.AddCompleted(o.parent, "engine:"+string(stage), start, d, reqtrace.Str("item", name))
}
