// Package benchio defines the on-disk format of MOSAIC's pinned benchmark
// results (the BENCH_*.json files at the repository root) and the
// comparison logic behind the CI regression gate.
//
// The format is deliberately tiny: a schema version, the environment the
// numbers were taken on, and one entry per pinned benchmark with its
// ns/op, B/op and allocs/op. WriteGoBench renders the same data in the
// standard Go benchmark text format so benchstat can diff two files.
package benchio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Schema is the current file schema version.
const Schema = 1

// Entry is one pinned benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`         // full name, e.g. BenchmarkMeanShift/n=5k/binned
	NsPerOp     float64 `json:"ns_per_op"`    // best (minimum) over the run count
	BytesPerOp  int64   `json:"bytes_per_op"` // allocated bytes per op
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"` // b.N of the best run
}

// File is one benchmark result file.
type File struct {
	Schema  int     `json:"schema"`
	Go      string  `json:"go,omitempty"`   // runtime.Version()
	OS      string  `json:"os,omitempty"`   // GOOS
	Arch    string  `json:"arch,omitempty"` // GOARCH
	Entries []Entry `json:"entries"`
}

// Lookup returns the entry with the given name.
func (f *File) Lookup(name string) (Entry, bool) {
	for _, e := range f.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Read loads a benchmark file.
func Read(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("benchio: parse %s: %w", path, err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("benchio: %s has schema %d, want %d", path, f.Schema, Schema)
	}
	return f, nil
}

// Write stores a benchmark file with stable formatting (sorted entries,
// indented JSON, trailing newline) so committed baselines diff cleanly.
func Write(path string, f File) error {
	f.Schema = Schema
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Name < f.Entries[j].Name })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteGoBench renders the entries in the Go benchmark text format
// understood by benchstat:
//
//	BenchmarkName	N	ns/op	B/op	allocs/op
func WriteGoBench(w io.Writer, files ...File) error {
	var entries []Entry
	for _, f := range files {
		entries = append(entries, f.Entries...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		n := e.Iterations
		if n <= 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.1f ns/op\t%d B/op\t%d allocs/op\n",
			e.Name, n, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}

// Regression is one benchmark that got slower than the baseline allows.
type Regression struct {
	Name   string
	OldNs  float64
	NewNs  float64
	Ratio  float64 // NewNs / OldNs
	Missed bool    // baseline entry absent from the fresh run
}

func (r Regression) String() string {
	if r.Missed {
		return fmt.Sprintf("%s: present in baseline but not measured", r.Name)
	}
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.2fx, tolerance exceeded)",
		r.Name, r.OldNs, r.NewNs, r.Ratio)
}

// Compare returns every baseline entry whose fresh ns/op exceeds the
// baseline by more than the tolerance (e.g. 0.10 for +10%), and every
// baseline entry missing from the fresh results. Fresh entries without a
// baseline are ignored — adding a benchmark is not a regression.
func Compare(baseline, fresh File, tolerance float64) []Regression {
	var regs []Regression
	for _, old := range baseline.Entries {
		cur, ok := fresh.Lookup(old.Name)
		if !ok {
			regs = append(regs, Regression{Name: old.Name, Missed: true})
			continue
		}
		if old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{
				Name:  old.Name,
				OldNs: old.NsPerOp,
				NewNs: cur.NsPerOp,
				Ratio: cur.NsPerOp / old.NsPerOp,
			})
		}
	}
	return regs
}
