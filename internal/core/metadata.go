package core

import (
	"math"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// Metadata-impact characterization (Section III-B3c). MOSAIC counts the
// OPEN, CLOSE and SEEK requests attributed to each I/O operation; Darshan
// does not time SEEKs precisely, so they are assumed co-located with the
// OPENs (darshan.MetaEvents applies that convention). The per-second
// request rate then yields the spike/density categories.

// MetaReport carries the measured metadata quantities alongside the
// assigned categories; they are serialized into the per-trace JSON output.
type MetaReport struct {
	TotalOps   int64   `json:"total_ops"`
	PeakRate   float64 `json:"peak_rate"`   // max requests in any one second
	MeanRate   float64 `json:"mean_rate"`   // requests per second over the execution
	SpikeCount int     `json:"spike_count"` // seconds with at least SpikeRate requests
	HighSpikes int     `json:"high_spikes"` // seconds with at least SpikeHighRate requests
}

// maxRateBins caps the per-second histogram size; beyond this, seconds are
// coalesced. A week-long job stays under it.
const maxRateBins = 1 << 21

// rateHistogram accumulates events into per-second request counts over
// [0, runtime]. Events outside the range clamp into the edge bins (their
// traces passed validation within tsSlack).
func rateHistogram(events []darshan.MetaEvent, runtime float64) []float64 {
	n := int(math.Ceil(runtime))
	if n < 1 {
		n = 1
	}
	scale := 1.0
	if n > maxRateBins {
		scale = float64(n) / float64(maxRateBins)
		n = maxRateBins
	}
	bins := make([]float64, n)
	for _, ev := range events {
		i := int(ev.Time / scale)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i] += float64(ev.Count)
	}
	if scale != 1 {
		// Coalesced bins cover `scale` seconds; convert to rates.
		for i := range bins {
			bins[i] /= scale
		}
	}
	return bins
}

// classifyMetadata assigns the metadata categories of a job.
func classifyMetadata(j *darshan.Job, cfg *Config) (category.Set, MetaReport) {
	out := category.NewSet()
	rep := MetaReport{TotalOps: j.TotalMetaOps()}

	// The insignificant threshold: fewer metadata operations than ranks
	// means the job barely touched the metadata server (each rank opening
	// its own file once already costs nprocs OPENs).
	if rep.TotalOps < int64(j.NProcs) {
		out.Add(category.MetaInsignificantLoad)
		return out, rep
	}
	bins := rateHistogram(j.MetaEvents(), j.Runtime)
	var total float64
	for _, r := range bins {
		total += r
		if r > rep.PeakRate {
			rep.PeakRate = r
		}
		if r >= cfg.SpikeRate {
			rep.SpikeCount++
		}
		if r >= cfg.SpikeHighRate {
			rep.HighSpikes++
		}
	}
	if j.Runtime > 0 {
		rep.MeanRate = total / j.Runtime
	}

	if rep.HighSpikes >= 1 {
		out.Add(category.MetaHighSpike)
	}
	if rep.SpikeCount >= cfg.MultipleSpikes {
		out.Add(category.MetaMultipleSpikes)
	}
	if rep.SpikeCount >= cfg.MultipleSpikes && rep.MeanRate >= cfg.DensityRate {
		out.Add(category.MetaHighDensity)
	}
	if len(out) == 0 {
		// Some metadata traffic, but no pattern crossing any threshold:
		// the load is insignificant for the metadata server.
		out.Add(category.MetaInsignificantLoad)
	}
	return out, rep
}
