package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

func id(n int) store.TraceID {
	return store.TraceID(fmt.Sprintf("%064x", n))
}

func set(cats ...category.Category) category.Set { return category.NewSet(cats...) }

func TestIndexAddQuery(t *testing.T) {
	ix := New()
	ix.Add(id(1), set("write_periodic_minute", "write_on_end", "metadata_high_spike"))
	ix.Add(id(2), set("write_periodic_minute", "metadata_insignificant_load"))
	ix.Add(id(3), set("read_periodic_minute", "write_on_end", "metadata_insignificant_load"))
	ix.Add(id(4), set("read_on_start"))

	cases := []struct {
		q    string
		want []store.TraceID
	}{
		{"write_periodic_minute", []store.TraceID{id(1), id(2)}},
		// Substring terms expand over the closed category set.
		{"periodic_minute", []store.TraceID{id(1), id(2), id(3)}},
		{"periodic_minute AND write_on_end", []store.TraceID{id(1), id(3)}},
		// The issue's example: juxtaposed NOT means AND NOT.
		{"periodic_minute AND write_on_end NOT insignificant_load", []store.TraceID{id(1)}},
		{"write_on_end OR read_on_start", []store.TraceID{id(1), id(3), id(4)}},
		// Bare juxtaposition is AND.
		{"periodic_minute metadata_high_spike", []store.TraceID{id(1)}},
		{"NOT periodic_minute", []store.TraceID{id(4)}},
		{"(write_on_end OR read_on_start) AND NOT metadata_high_spike", []store.TraceID{id(3), id(4)}},
		{"read_periodic_minute OR (write_periodic_minute NOT write_on_end)", []store.TraceID{id(2), id(3)}},
	}
	for _, tc := range cases {
		got, err := ix.Query(tc.q)
		if err != nil {
			t.Fatalf("Query(%q): %v", tc.q, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Query(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestIndexQueryErrors(t *testing.T) {
	ix := New()
	ix.Add(id(1), set("read_on_start"))
	for _, q := range []string{
		"",
		"(read_on_start",
		"read_on_start)",
		"AND read_on_start",
		"read_on_start AND",
		"no_such_category_xyz",
		"NOT",
	} {
		if _, err := ix.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
	// Parse mirrors Query's validation without evaluating.
	if err := Parse("read_on_start AND (write_on_end OR read_steady)"); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if err := Parse("((("); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func TestIndexReAddReplacesPostings(t *testing.T) {
	ix := New()
	ix.Add(id(1), set("read_on_start", "metadata_high_spike"))
	ix.Add(id(1), set("write_on_end")) // re-categorized under a new config
	if got := ix.Count(category.Category("read_on_start")); got != 0 {
		t.Fatalf("stale posting survived re-add: count=%d", got)
	}
	if got := ix.Count(category.Category("write_on_end")); got != 1 {
		t.Fatalf("new posting missing: count=%d", got)
	}
	ix.Remove(id(1))
	if ix.Len() != 0 {
		t.Fatal("Remove left the trace indexed")
	}
	if got, _ := ix.Query("write_on_end"); len(got) != 0 {
		t.Fatalf("Remove left postings: %v", got)
	}
}

func TestIndexAxisCounts(t *testing.T) {
	ix := New()
	ix.Add(id(1), set("write_on_end", "write_periodic", "metadata_high_spike"))
	ix.Add(id(2), set("write_on_end", "metadata_insignificant_load"))
	ac := ix.AxisCounts()
	if got := ac["temporality"]; len(got) != 1 || got[0].Category != "write_on_end" || got[0].Count != 2 {
		t.Fatalf("temporality counts = %v", got)
	}
	if got := ac["periodicity"]; len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("periodicity counts = %v", got)
	}
	if got := ac["metadata"]; len(got) != 2 {
		t.Fatalf("metadata counts = %v", got)
	}
}

func TestIndexRebuildFromStore(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := core.DefaultConfig()
	fp := cfg.Fingerprint()
	var want []store.TraceID
	for i := 0; i < 6; i++ {
		j := &darshan.Job{
			JobID: uint64(i + 1), UID: 1, User: "u", Exe: fmt.Sprintf("/a%d", i),
			NProcs: 4, Start: 0, End: 100, Runtime: 100,
			Records: []darshan.FileRecord{{
				Module: darshan.ModPOSIX, Path: "/f", Rank: -1,
				C: darshan.Counters{
					Opens: 1, Closes: 1, Writes: 10, BytesWritten: 200 << 20,
					OpenStart: 1, OpenEnd: 2, WriteStart: 90, WriteEnd: 99,
					CloseStart: 99, CloseEnd: 100,
				},
			}},
		}
		tid, _, err := s.PutTrace(j)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutResult(tid, fp, res); err != nil {
			t.Fatal(err)
		}
		want = append(want, tid)
	}
	ix := New()
	n, err := ix.Rebuild(s, fp)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || ix.Len() != 6 {
		t.Fatalf("Rebuild indexed %d/%d traces, want 6", n, ix.Len())
	}
	// All test jobs write at the very end of the run: write_on_end.
	got, err := ix.Query("write_on_end")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("query after rebuild = %d traces, want 6 (cats of first: %v)", len(got), ix.Categories(want[0]))
	}
}

func TestIndexConcurrent(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := g*50 + i
				ix.Add(id(n), set("write_on_end", "metadata_high_spike"))
				if _, err := ix.Query("write_on_end NOT read_on_start"); err != nil {
					t.Error(err)
					return
				}
				ix.AxisCounts()
			}
		}(g)
	}
	wg.Wait()
	if ix.Len() != 400 {
		t.Fatalf("Len = %d, want 400", ix.Len())
	}
}
