package engine

import (
	"context"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
)

// Executor runs the Categorize stage for one validated trace. The
// default Local executor calls the in-process detection chain; the
// distributed Master (internal/dist) satisfies the same interface and
// fans the stage out over RPC workers — the engine does not know the
// difference, which is the seam future backends (sharded, cached,
// accelerated) plug into.
type Executor interface {
	// Categorize analyzes one validated trace under ctx. Implementations
	// must return promptly with ctx.Err() once ctx is cancelled.
	Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error)
	// Concurrency returns how many in-flight categorizations the engine
	// should maintain (<= 0 selects the engine's worker default).
	Concurrency() int
}

// ExplainExecutor is the optional capability of executors that can
// collect decision provenance alongside the result. The engine
// type-asserts once per run (mirroring SpanObserver): executors without
// the capability — e.g. the distributed master, whose wire protocol does
// not carry explanations — run the plain stage and the engine records a
// nil Explanation.
type ExplainExecutor interface {
	Executor
	// CategorizeExplained analyzes one validated trace and returns the
	// result together with its provenance record.
	CategorizeExplained(ctx context.Context, j *darshan.Job, cfg core.Config, opts explain.Options) (*core.Result, *explain.Explanation, error)
}

// Local is the in-process executor: one categorization per worker
// goroutine, the Dispy-free fast path.
type Local struct {
	// Workers is the desired stage concurrency (<= 0: engine default).
	Workers int
}

// Categorize implements Executor.
func (l Local) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.Categorize(j, cfg)
}

// CategorizeExplained implements ExplainExecutor.
func (l Local) CategorizeExplained(ctx context.Context, j *darshan.Job, cfg core.Config, opts explain.Options) (*core.Result, *explain.Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return core.CategorizeExplained(j, cfg, opts)
}

// Concurrency implements Executor.
func (l Local) Concurrency() int { return l.Workers }
