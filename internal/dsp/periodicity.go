package dsp

import (
	"math"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Frequency-domain periodicity detector: the FTIO-style baseline [24]
// against which MOSAIC's segmentation approach is compared in the
// ablation experiments.

// DetectorConfig parametrizes the DFT detector.
type DetectorConfig struct {
	// Bins is the number of samples the trace activity is discretized
	// into (default 1024). Higher resolutions resolve shorter periods at
	// the cost of O(n log n) work.
	Bins int
	// MinConfidence is the dominance ratio (peak power over mean
	// off-peak power) above which a periodicity is reported (default 8).
	MinConfidence float64
	// MinCycles is the minimum number of full periods that must fit in
	// the runtime for a detection to be trusted (default 3).
	MinCycles float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Bins <= 0 {
		c.Bins = 1024
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 8
	}
	if c.MinCycles <= 0 {
		c.MinCycles = 3
	}
	return c
}

// Detection is the outcome of the frequency analysis.
type Detection struct {
	Periodic   bool
	Period     float64 // seconds; dominant period when Periodic
	Frequency  float64 // Hz
	Confidence float64 // peak power / mean off-peak power
}

// Binned rasterizes a set of operations into a byte-rate signal with the
// given number of bins over [0, runtime): each operation's volume is
// distributed uniformly across the bins it overlaps. This is the signal
// representation frequency techniques operate on.
func Binned(ops []interval.Interval, runtime float64, bins int) []float64 {
	sig := make([]float64, bins)
	binnedInto(sig, ops, runtime)
	return sig
}

// DetectPeriodicity runs the DFT detector on the operations of a trace.
// It reports the dominant period if one frequency concentrates
// sufficiently more power than the background.
func DetectPeriodicity(ops []interval.Interval, runtime float64, cfg DetectorConfig) Detection {
	cfg = cfg.withDefaults()
	if runtime <= 0 || len(ops) < 2 {
		return Detection{}
	}
	sc := detectorPool.Get().(*detectorScratch)
	defer detectorPool.Put(sc)
	signal := growS(&sc.sig, cfg.Bins)
	binnedInto(signal, ops, runtime)
	sampleRate := float64(cfg.Bins) / runtime
	power, freq := periodogramInto(signal, sampleRate, sc)
	if len(power) < 3 {
		return Detection{}
	}
	// Skip DC (k=0); find the dominant peak.
	peakK, peakP := 0, 0.0
	var total float64
	for k := 1; k < len(power); k++ {
		total += power[k]
		if power[k] > peakP {
			peakK, peakP = k, power[k]
		}
	}
	if peakK == 0 || peakP == 0 {
		return Detection{}
	}
	rest := total - peakP
	meanRest := rest / float64(len(power)-2)
	confidence := math.Inf(1)
	if meanRest > 0 {
		confidence = peakP / meanRest
	}
	f := freq[peakK]
	period := 1 / f
	det := Detection{
		Period:     period,
		Frequency:  f,
		Confidence: confidence,
	}
	cycles := runtime / period
	det.Periodic = confidence >= cfg.MinConfidence && cycles >= cfg.MinCycles
	return det
}

// DetectByAutocorrelation is an alternative time-domain detector: it looks
// for the first significant peak of the autocorrelation of the binned
// signal. Exposed for the ablation bench comparing the three approaches
// (Mean Shift segmentation, DFT, autocorrelation).
func DetectByAutocorrelation(ops []interval.Interval, runtime float64, cfg DetectorConfig) Detection {
	cfg = cfg.withDefaults()
	if runtime <= 0 || len(ops) < 2 {
		return Detection{}
	}
	sc := detectorPool.Get().(*detectorScratch)
	defer detectorPool.Put(sc)
	signal := growS(&sc.sig, cfg.Bins)
	binnedInto(signal, ops, runtime)
	binW := runtime / float64(cfg.Bins)
	r := autocorrInto(signal, cfg.Bins/2, sc)
	// Find the first local maximum after the zero-lag peak decays.
	lag := firstPeak(r)
	if lag <= 0 {
		return Detection{}
	}
	period := float64(lag) * binW
	det := Detection{
		Period:     period,
		Frequency:  1 / period,
		Confidence: r[lag] * 10, // scale so thresholds are comparable
	}
	cycles := runtime / period
	det.Periodic = r[lag] >= 0.3 && cycles >= cfg.MinCycles
	return det
}

func firstPeak(r []float64) int {
	// Skip the initial decay from lag 0.
	i := 1
	for i < len(r)-1 && r[i] >= r[i-1] {
		i++
	}
	for ; i < len(r)-1; i++ {
		if r[i] > r[i-1] && r[i] >= r[i+1] && r[i] > 0 {
			return i
		}
	}
	return -1
}
