package explain

import (
	"fmt"
	"io"
)

// Render writes a deterministic human-readable rule trace of the
// explanation: for every axis, the structured statistics followed by
// each rule evaluated with its operands, threshold, outcome and
// near-miss flag. The output is stable for a given explanation (no map
// iteration), which is what the golden-file CI check diffs against.
func Render(w io.Writer, e *Explanation) {
	fmt.Fprintf(w, "explain job=%d app=%s user=%s runtime=%.0fs config=%s margin=%g\n",
		e.JobID, e.App, e.User, e.Runtime, e.Fingerprint, e.Margin)
	fmt.Fprintf(w, "labels:")
	if len(e.Labels) == 0 {
		fmt.Fprintf(w, " (none)")
	}
	for _, l := range e.Labels {
		fmt.Fprintf(w, " %s", l)
	}
	fmt.Fprintln(w)
	if e.Read != nil {
		renderDirection(w, e.Read)
	}
	if e.Write != nil {
		renderDirection(w, e.Write)
	}
	if e.Meta != nil {
		renderMetadata(w, e.Meta)
	}
	fmt.Fprintf(w, "evidence: %d entries, %d near-misses\n", e.EvidenceCount(), e.NearMissCount())
}

func renderDirection(w io.Writer, d *Direction) {
	fmt.Fprintf(w, "\n[%s]\n", d.Direction)
	p := d.Preprocess
	dxt := ""
	if p.DXT {
		dxt = " (dxt)"
	}
	fmt.Fprintf(w, "  preprocess%s: %d raw -> %d clipped -> %d concurrent-merged -> %d neighbor-merged ops, %d bytes, busy %.3fs\n",
		dxt, p.RawOps, p.ClippedOps, p.ConcurrentOps, p.MergedOps, p.TotalBytes, p.BusySeconds)
	fmt.Fprintf(w, "  merge gaps: runtime-fraction %.6gs, neighbor-fraction %g\n",
		p.GapRuntimeSeconds, p.NeighborFraction)
	if len(d.Chunks) > 0 {
		fmt.Fprintf(w, "  chunks (cv %.4f):", d.CV)
		for _, c := range d.Chunks {
			fmt.Fprintf(w, " %.0f", c)
		}
		fmt.Fprintln(w)
	}
	if d.Detector != "" {
		fmt.Fprintf(w, "  periodicity: detector=%s bandwidth=%g segments=%d", d.Detector, d.Bandwidth, d.SegmentCount)
		if d.SpectralPeriod > 0 {
			fmt.Fprintf(w, " spectral_period=%.3fs", d.SpectralPeriod)
		}
		fmt.Fprintln(w)
		for i, c := range d.Clusters {
			fmt.Fprintf(w, "    cluster %d: size=%d period=%.3fs mean_bytes=%.0f centroid=(%.4f,%.4f) spread=(%.4f,%.4f) coverage=%.3f -> %s\n",
				i, c.Size, c.Period, c.MeanBytes,
				c.CentroidDuration, c.CentroidVolume,
				c.SpreadDuration, c.SpreadVolume, c.Coverage, c.Reason)
		}
	}
	renderEvidence(w, d.Evidence)
}

func renderMetadata(w io.Writer, m *Metadata) {
	fmt.Fprintf(w, "\n[metadata]\n")
	fmt.Fprintf(w, "  load: %d ops, peak %.1f req/s, mean %.2f req/s, %d spikes (%d high)\n",
		m.TotalOps, m.PeakRate, m.MeanRate, m.SpikeCount, m.HighSpikes)
	renderEvidence(w, m.Evidence)
}

func renderEvidence(w io.Writer, evs []Evidence) {
	for _, ev := range evs {
		mark := "✗"
		if ev.Outcome == Pass {
			mark = "✓"
		}
		near := ""
		if ev.NearMiss {
			near = "  [near-miss]"
		}
		cat := ""
		if ev.Category != "" {
			cat = " -> " + ev.Category
		}
		detail := ""
		if ev.Detail != "" {
			detail = "  (" + ev.Detail + ")"
		}
		fmt.Fprintf(w, "  %s %-22s %.6g %s %.6g%s%s%s\n",
			mark, ev.Rule, ev.Value, ev.Op, ev.Threshold, cat, near, detail)
	}
}
