package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// burnSource simulates cumulative good/total counters a test can steer.
type burnSource struct {
	good, total atomic.Int64
}

func (s *burnSource) sample() (float64, float64) {
	return float64(s.good.Load()), float64(s.total.Load())
}

// serve traffic: n requests of which bad fail.
func (s *burnSource) serveTraffic(n, bad int64) {
	s.total.Add(n)
	s.good.Add(n - bad)
}

func alertOpts() AlertOptions {
	return AlertOptions{
		Interval:   time.Second,
		FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second,
		FastBurn:   14.4,
		SlowBurn:   6,
	}
}

func TestAlertFiresOnSustainedBurnAndResolves(t *testing.T) {
	src := &burnSource{}
	reg := NewRegistry()
	e := NewAlertEvaluator(reg, alertOpts(), AlertRule{
		Name: "http_slo_burn", Objective: 0.99, Source: src.sample,
	})

	base := time.Unix(0, 0)
	// Healthy traffic: no fire.
	now := base
	for i := 0; i < 70; i++ {
		src.serveTraffic(100, 0)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	if st := e.Snapshot()[0]; st.Active {
		t.Fatalf("fired on healthy traffic: %+v", st)
	}

	// 100% error traffic: burn = 1/0.01 = 100x in both windows.
	for i := 0; i < 70 && !e.Snapshot()[0].Active; i++ {
		src.serveTraffic(100, 100)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	st := e.Snapshot()[0]
	if !st.Active || st.Fires != 1 {
		t.Fatalf("did not fire under sustained burn: %+v", st)
	}
	if st.FastBurn < 14.4 || st.SlowBurn < 6 {
		t.Fatalf("burn below thresholds at fire time: %+v", st)
	}

	// Metrics reflect the transition.
	if v := reg.Gauge("mosaic_alert_active", "", Labels{"alert": "http_slo_burn"}).Value(); v != 1 {
		t.Fatalf("mosaic_alert_active = %v, want 1", v)
	}

	// Healthy again: the fast window clears and the alert resolves.
	for i := 0; i < 70 && e.Snapshot()[0].Active; i++ {
		src.serveTraffic(100, 0)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	st = e.Snapshot()[0]
	if st.Active || st.Resolves != 1 {
		t.Fatalf("did not resolve after recovery: %+v", st)
	}
	if v := reg.Gauge("mosaic_alert_active", "", Labels{"alert": "http_slo_burn"}).Value(); v != 0 {
		t.Fatalf("mosaic_alert_active = %v, want 0", v)
	}
	if v := reg.Counter("mosaic_alert_transitions_total", "", Labels{"alert": "http_slo_burn", "to": "firing"}).Value(); v != 1 {
		t.Fatalf("firing transitions = %d, want 1", v)
	}
	if v := reg.Counter("mosaic_alert_transitions_total", "", Labels{"alert": "http_slo_burn", "to": "resolved"}).Value(); v != 1 {
		t.Fatalf("resolved transitions = %d, want 1", v)
	}
}

func TestAlertShortBlipDoesNotFire(t *testing.T) {
	src := &burnSource{}
	e := NewAlertEvaluator(nil, alertOpts(), AlertRule{
		Name: "blip", Objective: 0.99, Source: src.sample,
	})
	now := time.Unix(0, 0)
	// Long healthy baseline filling the slow window.
	for i := 0; i < 60; i++ {
		src.serveTraffic(100, 0)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	// A 3-second full-error blip: fast window spikes but the slow
	// window's burn stays under its threshold, so no page.
	for i := 0; i < 3; i++ {
		src.serveTraffic(100, 100)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	if st := e.Snapshot()[0]; st.Active {
		t.Fatalf("blip paged: %+v", st)
	}
}

func TestAlertNoTrafficNoFire(t *testing.T) {
	src := &burnSource{}
	e := NewAlertEvaluator(nil, alertOpts(), AlertRule{
		Name: "idle", Objective: 0.99, Source: src.sample,
	})
	now := time.Unix(0, 0)
	for i := 0; i < 120; i++ {
		now = now.Add(time.Second)
		e.Tick(now)
	}
	st := e.Snapshot()[0]
	if st.Active || st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("idle service alerted: %+v", st)
	}
}

func TestAlertOnTransitionCallback(t *testing.T) {
	src := &burnSource{}
	var fired, resolved atomic.Int64
	opts := alertOpts()
	opts.OnTransition = func(st AlertState) {
		if st.Active {
			fired.Add(1)
		} else {
			resolved.Add(1)
		}
	}
	e := NewAlertEvaluator(nil, opts, AlertRule{Name: "cb", Objective: 0.99, Source: src.sample})
	now := time.Unix(0, 0)
	for i := 0; i < 70; i++ {
		src.serveTraffic(10, 10)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	for i := 0; i < 70; i++ {
		src.serveTraffic(10, 0)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	if fired.Load() != 1 || resolved.Load() != 1 {
		t.Fatalf("callback fired/resolved = %d/%d, want 1/1", fired.Load(), resolved.Load())
	}
}

func TestAlertStartStop(t *testing.T) {
	src := &burnSource{}
	opts := alertOpts()
	opts.Interval = time.Millisecond
	e := NewAlertEvaluator(NewRegistry(), opts, AlertRule{Name: "lifecycle", Objective: 0.99, Source: src.sample})
	e.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(e.Snapshot()) == 1 && e.Snapshot()[0].Name == "lifecycle" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
}

func TestAlertEvaluatorSkipsInvalidRules(t *testing.T) {
	e := NewAlertEvaluator(nil, AlertOptions{},
		AlertRule{Name: "", Source: func() (float64, float64) { return 0, 0 }},
		AlertRule{Name: "no-source"},
	)
	if len(e.Snapshot()) != 0 {
		t.Fatalf("invalid rules accepted: %+v", e.Snapshot())
	}
}
