package mosaic

import (
	"context"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
)

// Request tracing, re-exported. The serve tier's per-request span
// trees and black-box flight recorder live in internal/reqtrace; the
// aliases below let a program embedding MOSAIC as a library thread its
// own request traces through AnalyzeJobsContext (via context) and
// retain them in a flight recorder, exactly as cmd/mosaic-serve does.
type (
	// RequestTrace is one request's span tree, completed by reference
	// counting so it can outlive the HTTP response that acknowledged it.
	RequestTrace = reqtrace.Trace
	// RequestTraceOptions configures StartRequestTrace.
	RequestTraceOptions = reqtrace.StartOptions
	// TraceAttr is one span annotation (see TraceStr / TraceInt).
	TraceAttr = reqtrace.Attr
	// FlightRecorder retains the last N completed request traces and
	// dumps Chrome-trace JSON for slow or errored ones.
	FlightRecorder = reqtrace.Recorder
	// FlightRecorderConfig configures NewFlightRecorder.
	FlightRecorderConfig = reqtrace.RecorderConfig
)

// StartRequestTrace opens a request trace: the root span covers the
// request envelope, OnDone (usually FlightRecorder.Complete) fires when
// the root is finished and every held reference released.
func StartRequestTrace(o RequestTraceOptions) *RequestTrace { return reqtrace.New(o) }

// NewFlightRecorder builds a flight recorder; wire it as the trace
// OnDone target and serve its Handler under /debug/requests.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return reqtrace.NewRecorder(cfg)
}

// RequestTraceContext returns ctx carrying the trace with its root span
// as the current parent; spans recorded downstream (TraceSpan, the
// store's commit spans, the engine's stage spans under serve) nest
// beneath it.
func RequestTraceContext(ctx context.Context, t *RequestTrace) context.Context {
	return reqtrace.NewContext(ctx, t)
}

// TraceSpan records one already-timed span under ctx's current parent;
// a context without an active trace makes it a free no-op.
func TraceSpan(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...TraceAttr) {
	reqtrace.AddSpan(ctx, name, start, dur, attrs...)
}

// TraceStr builds a string span attribute.
func TraceStr(key, value string) TraceAttr { return reqtrace.Str(key, value) }

// TraceInt builds an integer span attribute.
func TraceInt(key string, v int64) TraceAttr { return reqtrace.Int(key, v) }
