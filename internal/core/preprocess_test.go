package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

func validJob(user, exe string, id uint64, weight int64) *darshan.Job {
	return &darshan.Job{
		JobID: id, User: user, Exe: exe, NProcs: 4, Runtime: 100, Start: 0, End: 100,
		Records: []darshan.FileRecord{{
			Module: darshan.ModPOSIX, Path: "/x",
			C: darshan.Counters{
				Writes: 1, BytesWritten: weight,
				WriteStart: 10, WriteEnd: 20,
			},
		}},
	}
}

func TestPreprocessorDedupKeepsHeaviest(t *testing.T) {
	p := NewPreprocessor()
	p.Add(validJob("alice", "/bin/app", 1, 100), nil)
	p.Add(validJob("alice", "/bin/app", 2, 5000), nil)
	p.Add(validJob("alice", "/bin/app", 3, 70), nil)
	groups := p.Groups()
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := groups[0]
	if g.Runs != 3 {
		t.Fatalf("runs = %d", g.Runs)
	}
	if g.Heaviest.JobID != 2 {
		t.Fatalf("heaviest = job %d, want 2", g.Heaviest.JobID)
	}
}

func TestPreprocessorSeparatesUsersAndApps(t *testing.T) {
	p := NewPreprocessor()
	p.Add(validJob("alice", "/bin/app", 1, 1), nil)
	p.Add(validJob("bob", "/bin/app", 2, 1), nil)
	p.Add(validJob("alice", "/bin/other", 3, 1), nil)
	if got := len(p.Groups()); got != 3 {
		t.Fatalf("groups = %d, want 3", got)
	}
}

func TestPreprocessorCountsCorruption(t *testing.T) {
	p := NewPreprocessor()
	bad := validJob("alice", "/bin/app", 1, 1)
	bad.Runtime = -1
	if p.Add(bad, nil) {
		t.Fatal("corrupted trace accepted")
	}
	if !p.Add(validJob("alice", "/bin/app", 2, 1), nil) {
		t.Fatal("valid trace rejected")
	}
	p.Add(nil, errors.New("decode failure"))
	s := p.Stats()
	if s.Total != 3 || s.Corrupted != 2 || s.Valid != 1 || s.UniqueApps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ByReason["bad_header"] != 1 || s.ByReason["unreadable"] != 1 {
		t.Fatalf("reasons = %v", s.ByReason)
	}
	if s.CorruptedFraction() != 2.0/3 {
		t.Fatalf("fraction = %g", s.CorruptedFraction())
	}
	if s.UniqueFraction() != 1 {
		t.Fatalf("unique fraction = %g", s.UniqueFraction())
	}
}

func TestPreprocessorGroupOrderDeterministic(t *testing.T) {
	mk := func() []*AppGroup {
		p := NewPreprocessor()
		for i := 0; i < 20; i++ {
			p.Add(validJob(fmt.Sprintf("u%02d", i%5), fmt.Sprintf("/bin/a%d", i%7), uint64(i), 1), nil)
		}
		return p.Groups()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].App != b[i].App {
			t.Fatal("nondeterministic group order")
		}
	}
	// Sorted by (user, app).
	for i := 1; i < len(a); i++ {
		if a[i-1].User > a[i].User {
			t.Fatal("not sorted by user")
		}
	}
}

func TestStatsReasonMapIsCopied(t *testing.T) {
	p := NewPreprocessor()
	bad := validJob("a", "/b", 1, 1)
	bad.Runtime = -1
	p.Add(bad, nil)
	s := p.Stats()
	s.ByReason["bad_header"] = 999
	if p.Stats().ByReason["bad_header"] != 1 {
		t.Fatal("internal reason map leaked")
	}
}

func TestPreprocessConvenience(t *testing.T) {
	groups, stats := Preprocess([]*darshan.Job{
		validJob("a", "/x", 1, 1),
		validJob("a", "/x", 2, 2),
		validJob("b", "/y", 3, 1),
	})
	if len(groups) != 2 || stats.Valid != 3 {
		t.Fatalf("groups=%d stats=%+v", len(groups), stats)
	}
}

func TestEmptyFunnelStats(t *testing.T) {
	var s FunnelStats
	if s.CorruptedFraction() != 0 || s.UniqueFraction() != 0 {
		t.Fatal("empty funnel fractions should be 0")
	}
}
