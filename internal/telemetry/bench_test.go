package telemetry

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// The overhead benchmarks back the <5% telemetry-overhead budget
// documented in DESIGN.md: the same in-memory corpus run with no
// observer vs the full bundle (metrics + spans + slow log).
//
// Jobs are sized like real traces (several phases, dozens of records)
// so the ratio reflects production work per item, not fixed per-item
// observer cost against near-empty jobs.
//
//	go test -bench 'EngineRun' -benchtime 20x ./internal/telemetry

func benchJobs(n int) []*darshan.Job {
	rng := rand.New(rand.NewSource(17))
	jobs := make([]*darshan.Job, 0, n)
	for i := 0; i < n; i++ {
		b := gen.NewBuilder(rng, fmt.Sprintf("u%d", i%3), fmt.Sprintf("/bin/app%d", i%4), uint64(i+1), 64, 7200)
		for p := 0; p < 8; p++ {
			b.Burst(gen.BurstSpec{
				At:       float64(100 + p*800),
				Duration: 120,
				Bytes:    1 << 30,
				Records:  32,
			})
		}
		jobs = append(jobs, b.Job())
	}
	return jobs
}

func benchmarkEngineRun(b *testing.B, mk func() engine.Observer) {
	jobs := benchJobs(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := engine.Run(context.Background(), engine.Jobs(jobs), engine.Options{
			Workers:  4,
			Observer: mk(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRunNopObserver(b *testing.B) {
	benchmarkEngineRun(b, func() engine.Observer { return engine.NopObserver{} })
}

func BenchmarkEngineRunFullTelemetry(b *testing.B) {
	benchmarkEngineRun(b, func() engine.Observer {
		return New(Config{Spans: true, SlowK: 10})
	})
}
