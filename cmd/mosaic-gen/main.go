// Command mosaic-gen writes a synthetic Blue-Waters-shaped trace corpus to
// disk. Each trace is a binary Darshan-like log (.mosd) with the
// generator's ground-truth categories embedded in its metadata, so the
// output corpus can be fed to `mosaic <dir>` and scored against truth.
//
// Usage:
//
//	mosaic-gen -out corpus/ [-apps 40] [-seed 1] [-corruption 0.32] [-max-traces 2000]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (required)")
		apps       = flag.Int("apps", 40, "number of unique applications")
		seed       = flag.Int64("seed", 1, "corpus seed")
		corruption = flag.Float64("corruption", 0.32, "fraction of traces to corrupt")
		maxTraces  = flag.Int("max-traces", 2000, "stop after writing this many traces")
		jsonFmt    = flag.Bool("json", false, "write JSON traces instead of binary")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-gen:", err)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mosaic-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *apps, *seed, *corruption, *maxTraces, *jsonFmt, log); err != nil {
		log.Error("generation failed", "err", err)
		os.Exit(1)
	}
}

func run(out string, apps int, seed int64, corruption float64, maxTraces int, jsonFmt bool, log *slog.Logger) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	profile := gen.DefaultProfile()
	profile.Apps = apps
	profile.Seed = seed
	profile.CorruptionRate = corruption
	corpus := gen.Plan(profile)

	ext := darshan.ExtBinary
	if jsonFmt {
		ext = darshan.ExtJSON
	}
	written, corrupted := 0, 0
	var werr error
	corpus.Each(func(r gen.Run) bool {
		name := fmt.Sprintf("%s_%s_id%d_%d%s", r.Job.User, r.App.Archetype.Name, r.Job.JobID, r.RunIndex, ext)
		if err := darshan.WriteFile(filepath.Join(out, name), r.Job); err != nil {
			werr = err
			return false
		}
		written++
		if r.Corrupted {
			corrupted++
		}
		return written < maxTraces
	})
	if werr != nil {
		return werr
	}
	log.Info("corpus written",
		"traces", written,
		"corrupted", corrupted,
		"corrupted_pct", fmt.Sprintf("%.0f", 100*float64(corrupted)/float64(max(1, written))),
		"apps", len(corpus.Apps),
		"dir", out)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
