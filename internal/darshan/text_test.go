package darshan

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const parserSample = `# darshan log version: 3.41
# compression method: ZLIB
# exe: /apps/bin/lammps -in run.in
# uid: 1001
# jobid: 4478541
# start_time: 1546300800
# start_time_asci: Tue Jan  1 00:00:00 2019
# end_time: 1546304400
# nprocs: 512
# run time: 3600.5

# description of columns:
#<module>	<rank>	<record id>	<counter>	<value>	<file name>	<mount pt>	<fs type>

POSIX	-1	9457796068806373448	POSIX_OPENS	512	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_SEEKS	512	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_READS	4096	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_BYTES_READ	1073741824	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_MMAPS	-1	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_OPEN_START_TIMESTAMP	1.5	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_OPEN_END_TIMESTAMP	2.0	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_READ_START_TIMESTAMP	2.1	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_READ_END_TIMESTAMP	60.9	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_CLOSE_START_TIMESTAMP	61.0	/scratch/in.dat	/scratch	lustre
POSIX	-1	9457796068806373448	POSIX_F_CLOSE_END_TIMESTAMP	61.5	/scratch/in.dat	/scratch	lustre
MPI-IO	0	122233	MPIIO_COLL_OPENS	64	/scratch/out.h5	/scratch	lustre
MPI-IO	0	122233	MPIIO_COLL_WRITES	2048	/scratch/out.h5	/scratch	lustre
MPI-IO	0	122233	MPIIO_BYTES_WRITTEN	2147483648	/scratch/out.h5	/scratch	lustre
MPI-IO	0	122233	MPIIO_F_WRITE_START_TIMESTAMP	3500.0	/scratch/out.h5	/scratch	lustre
MPI-IO	0	122233	MPIIO_F_WRITE_END_TIMESTAMP	3580.0	/scratch/out.h5	/scratch	lustre
LUSTRE	-1	55	LUSTRE_STRIPE_SIZE	1048576	/scratch/out.h5	/scratch	lustre
`

func TestReadParserText(t *testing.T) {
	j, err := ReadParserText(strings.NewReader(parserSample))
	if err != nil {
		t.Fatal(err)
	}
	if j.JobID != 4478541 || j.UID != 1001 || j.NProcs != 512 {
		t.Fatalf("header = %+v", j)
	}
	if j.Runtime != 3600.5 {
		t.Fatalf("runtime = %g", j.Runtime)
	}
	if j.AppName() != "lammps" {
		t.Fatalf("app = %q", j.AppName())
	}
	if len(j.Records) != 2 {
		t.Fatalf("records = %d, want 2 (LUSTRE module skipped)", len(j.Records))
	}
	posix := j.Records[0]
	if posix.Module != ModPOSIX || posix.Rank != -1 || posix.Path != "/scratch/in.dat" {
		t.Fatalf("posix record = %+v", posix)
	}
	if posix.C.Opens != 512 || posix.C.BytesRead != 1<<30 || posix.C.ReadStart != 2.1 {
		t.Fatalf("posix counters = %+v", posix.C)
	}
	// Closes mirrored from opens because close timestamps are present.
	if posix.C.Closes != 512 {
		t.Fatalf("closes = %d, want mirrored 512", posix.C.Closes)
	}
	mpiio := j.Records[1]
	if mpiio.Module != ModMPIIO || mpiio.C.Writes != 2048 || mpiio.C.BytesWritten != 2<<30 {
		t.Fatalf("mpiio record = %+v", mpiio)
	}
	// No close timestamps on the MPI-IO record: closes stay 0.
	if mpiio.C.Closes != 0 {
		t.Fatalf("mpiio closes = %d", mpiio.C.Closes)
	}
	if err := Validate(j); err != nil {
		t.Fatalf("parsed job invalid: %v", err)
	}
}

func TestReadParserTextRuntimeFallback(t *testing.T) {
	src := "# start_time: 100\n# end_time: 400\n# nprocs: 4\n"
	j, err := ReadParserText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if j.Runtime != 300 {
		t.Fatalf("runtime fallback = %g", j.Runtime)
	}
}

func TestReadParserTextErrors(t *testing.T) {
	cases := []string{
		"POSIX -1\n",                             // short row
		"POSIX notarank 5 POSIX_OPENS 3 /f\n",    // bad rank
		"POSIX -1 5 POSIX_OPENS notanumber /f\n", // bad value
		"# uid: notanumber\n",                    // bad header int
		"# run time: notafloat\n",                // bad header float
	}
	for _, src := range cases {
		if _, err := ReadParserText(strings.NewReader(src)); err == nil {
			t.Errorf("input %q accepted", src)
		}
	}
}

func TestReadParserTextSkipsUnknown(t *testing.T) {
	src := "# nprocs: 2\n# run time: 10\nPOSIX -1 5 POSIX_FANCY_NEW_COUNTER 7 /f\nNEWMOD -1 5 X 1 /f\n"
	j, err := ReadParserText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown counters never materialize a record; unknown modules are
	// skipped wholesale.
	if len(j.Records) != 0 {
		t.Fatalf("records = %+v", j.Records)
	}
}

func TestParserTextRoundTrip(t *testing.T) {
	orig := sampleJob()
	var buf bytes.Buffer
	if err := WriteParserText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	j, err := ReadParserText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if j.JobID != orig.JobID || j.NProcs != orig.NProcs || j.Runtime != orig.Runtime {
		t.Fatalf("header mismatch: %+v", j)
	}
	if len(j.Records) != len(orig.Records) {
		t.Fatalf("records = %d, want %d", len(j.Records), len(orig.Records))
	}
	for i := range j.Records {
		g, w := j.Records[i].C, orig.Records[i].C
		if g.Opens != w.Opens || g.BytesRead != w.BytesRead || g.BytesWritten != w.BytesWritten {
			t.Fatalf("record %d counters: got %+v want %+v", i, g, w)
		}
		if g.ReadStart != w.ReadStart || g.WriteEnd != w.WriteEnd || g.CloseEnd != w.CloseEnd {
			t.Fatalf("record %d timestamps: got %+v want %+v", i, g, w)
		}
	}
	// The round-tripped job must categorize identically (checked at the
	// intervals level here: same read/write intervals).
	gr, wr := j.ReadIntervals(), orig.ReadIntervals()
	if len(gr) != len(wr) || gr[0] != wr[0] {
		t.Fatalf("read intervals differ: %v vs %v", gr, wr)
	}
}

func TestReadFileDispatchesParserText(t *testing.T) {
	// .txt files route through the parser-text reader.
	dir := t.TempDir()
	p := dir + "/trace.txt"
	var buf bytes.Buffer
	if err := WriteParserText(&buf, sampleJob()); err != nil {
		t.Fatal(err)
	}
	if err := writeRaw(p, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	j, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if j.JobID != sampleJob().JobID {
		t.Fatal("parser text dispatch failed")
	}
}

func writeRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
