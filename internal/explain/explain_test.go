package explain

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.Normalized()
	if o.Margin != DefaultMargin || o.MaxSegments != DefaultMaxSegments {
		t.Fatalf("zero options not defaulted: %+v", o)
	}
	o = Options{Margin: 0.2, MaxSegments: 8}.Normalized()
	if o.Margin != 0.2 || o.MaxSegments != 8 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
	o = Options{Margin: -1, MaxSegments: -5}.Normalized()
	if o.Margin != DefaultMargin || o.MaxSegments != DefaultMaxSegments {
		t.Fatalf("negative options not defaulted: %+v", o)
	}
}

func TestNearMiss(t *testing.T) {
	cases := []struct {
		margin, value, threshold float64
		want                     bool
	}{
		{0.05, 100, 100, true},     // exact hit
		{0.05, 104, 100, true},     // inside relative margin
		{0.05, 106, 100, false},    // outside
		{0.05, 95, 100, true},      // below, inside
		{0.05, 94, 100, false},     // below, outside
		{0.05, -104, -100, true},   // negative threshold, relative to |T|
		{0.05, 0.04, 0, true},      // zero threshold: absolute margin
		{0.05, 0.06, 0, false},     // zero threshold, outside
		{0, 100, 100, false},       // margin disabled
		{-1, 100, 100, false},      // negative margin disabled
		{0.05, math.NaN(), 1, false},
		{0.05, math.Inf(1), 1, false},
	}
	for _, c := range cases {
		if got := NearMiss(c.margin, c.value, c.threshold); got != c.want {
			t.Errorf("NearMiss(%g, %g, %g) = %v, want %v",
				c.margin, c.value, c.threshold, got, c.want)
		}
	}
}

// sample builds an explanation with evidence in all three sections.
func sample() *Explanation {
	return &Explanation{
		JobID: 42, App: "sim", User: "alice", Runtime: 3600,
		Fingerprint: "cfg-test", Margin: 0.05,
		Labels: []string{"read_on_start", "write_periodic_minute"},
		Read: &Direction{
			Direction: "read", Significant: true,
			Evidence: []Evidence{
				{Axis: AxisTemporality, Direction: "read", Rule: "chunk_set_dominance",
					Category: "read_on_start", Value: 10, Op: ">", Threshold: 4, Outcome: Pass},
				{Axis: AxisTemporality, Direction: "read", Rule: "steady_cv",
					Category: "read_steady", Value: 0.9, Op: "<", Threshold: 0.25, Outcome: Fail},
			},
		},
		Write: &Direction{
			Direction: "write", Significant: true,
			Evidence: []Evidence{
				{Axis: AxisPeriodicity, Direction: "write", Rule: "period_magnitude",
					Category: "write_periodic_minute", Value: 300, Op: "in", Threshold: 60, Outcome: Pass},
				{Axis: AxisPeriodicity, Direction: "write", Rule: "chunk_dominance",
					Value: 1, Op: ">", Threshold: 2, Outcome: Fail, NearMiss: true},
			},
		},
		Meta: &Metadata{
			Evidence: []Evidence{
				{Axis: AxisMetadata, Rule: "spike_high_rate",
					Category: "metadata_high_spike", Value: 10, Op: ">=", Threshold: 250, Outcome: Fail},
			},
		},
	}
}

func TestEvidenceAccounting(t *testing.T) {
	e := sample()
	if n := e.EvidenceCount(); n != 5 {
		t.Fatalf("EvidenceCount = %d, want 5", n)
	}
	if n := e.NearMissCount(); n != 1 {
		t.Fatalf("NearMissCount = %d, want 1", n)
	}
	if n := len(e.AllEvidence()); n != 5 {
		t.Fatalf("AllEvidence length = %d, want 5", n)
	}
	// Nil sections must not panic and count as empty.
	empty := &Explanation{}
	if empty.EvidenceCount() != 0 || empty.NearMissCount() != 0 || len(empty.AllEvidence()) != 0 {
		t.Fatal("empty explanation has evidence")
	}
}

func TestSupportingAndAgainst(t *testing.T) {
	e := sample()
	if s := e.Supporting("read_on_start"); len(s) != 1 || s[0].Rule != "chunk_set_dominance" {
		t.Fatalf("Supporting(read_on_start) = %+v", s)
	}
	if a := e.Against("read_steady"); len(a) != 1 || a[0].Rule != "steady_cv" {
		t.Fatalf("Against(read_steady) = %+v", a)
	}
	// Pass entries never show up as Against and vice versa.
	if len(e.Against("read_on_start")) != 0 || len(e.Supporting("read_steady")) != 0 {
		t.Fatal("outcome filter leaked")
	}
	// Category-less intermediate entries are invisible to both views.
	if len(e.Supporting("")) != 0 || len(e.Against("")) != 0 {
		t.Fatal("category-less evidence matched the empty category")
	}
}

func TestFilterCategory(t *testing.T) {
	e := sample()
	f := e.FilterCategory("periodic")
	if n := f.EvidenceCount(); n != 1 {
		t.Fatalf("filtered count = %d, want 1", n)
	}
	if f.Write.Evidence[0].Category != "write_periodic_minute" {
		t.Fatalf("wrong survivor: %+v", f.Write.Evidence[0])
	}
	// Original untouched (FilterCategory returns a copy).
	if e.EvidenceCount() != 5 {
		t.Fatal("FilterCategory mutated the receiver")
	}
	// Empty filter is the identity.
	if e.FilterCategory("") != e {
		t.Fatal("empty filter did not return the receiver")
	}
	// Structured sections survive filtering.
	if f.Read == nil || f.Write == nil || f.Meta == nil {
		t.Fatal("filtering dropped sections")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := sample()
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Explanation
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.EvidenceCount() != e.EvidenceCount() || back.NearMissCount() != e.NearMissCount() {
		t.Fatal("JSON round trip lost evidence")
	}
	if len(back.Labels) != 2 || back.Fingerprint != "cfg-test" {
		t.Fatal("JSON round trip lost header fields")
	}
}

func TestRenderDeterministicAndComplete(t *testing.T) {
	e := sample()
	var a, b strings.Builder
	Render(&a, e)
	Render(&b, e)
	if a.String() != b.String() {
		t.Fatal("Render is not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"explain job=42 app=sim user=alice",
		"labels: read_on_start write_periodic_minute",
		"[read]", "[write]", "[metadata]",
		"chunk_set_dominance", "near-miss",
		"evidence: 5 entries, 1 near-misses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderHandlesNilSections(t *testing.T) {
	var sb strings.Builder
	Render(&sb, &Explanation{JobID: 1, Labels: []string{"x"}})
	if !strings.Contains(sb.String(), "labels: x") {
		t.Fatal("minimal explanation did not render")
	}
}
