// Package events provides the cluster event journal: a bounded,
// concurrency-safe ring buffer of structured operational events (node
// up/down, hinted-handoff activity, backpressure episodes, crash
// recovery, alert transitions) with monotonic sequence numbers and
// severity levels. Events are mirrored to slog and can optionally be
// persisted through a Sink so the journal survives restarts.
//
// The journal is a diagnostic surface, not a durability primitive: the
// ring holds the most recent Capacity events and readers page through
// them with a cursor (`since` sequence number). A reader whose cursor
// has fallen behind the earliest retained event detects the gap by
// comparing its cursor against the returned Earliest.
package events

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// Severity classifies an event for filtering and slog mirroring.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the severity as its wire form.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "info"
	}
}

// ParseSeverity maps a wire form back to a Severity. Unknown or empty
// strings parse as SevInfo (the least restrictive filter) with ok=false.
func ParseSeverity(s string) (Severity, bool) {
	switch s {
	case "info", "":
		return SevInfo, s != ""
	case "warn", "warning":
		return SevWarn, true
	case "error":
		return SevError, true
	default:
		return SevInfo, false
	}
}

// MarshalJSON renders the severity as a string.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the string forms produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	sev, ok := ParseSeverity(str)
	if !ok && str != "" {
		return fmt.Errorf("events: unknown severity %q", str)
	}
	*s = sev
	return nil
}

// Event types emitted across the cluster. The set is open — consumers
// must tolerate unknown types — but these constants name every event
// the core emits.
const (
	TypeNodeUp             = "node_up"
	TypeNodeDown           = "node_down"
	TypeVersionMismatch    = "routing_version_mismatch"
	TypeHintQueued         = "hint_queued"
	TypeHintReplayed       = "hint_replayed"
	TypeHintDropped        = "hint_dropped"
	TypeDegradedAck        = "degraded_ack"
	TypeBackpressure       = "backpressure"
	TypeRecoveryTruncation = "recovery_truncation"
	TypeSegmentRotation    = "segment_rotation"
	TypeAlertFired         = "alert_fired"
	TypeAlertResolved      = "alert_resolved"
)

// Event is one structured journal entry. Seq is monotonically
// increasing per journal and never reused; Fields carries small
// string-typed details specific to the event type.
type Event struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Type     string            `json:"type"`
	Severity Severity          `json:"severity"`
	Node     string            `json:"node,omitempty"`
	Message  string            `json:"message"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// Sink receives the JSON encoding of every emitted event for optional
// append-only persistence. Append errors are counted but do not block
// or fail emission — the journal is diagnostics, not the write path.
type Sink interface {
	AppendRecord(value []byte) error
}

// Config configures a journal.
type Config struct {
	// Capacity bounds the ring. <=0 defaults to 1024.
	Capacity int
	// Node stamps every event with the local node ID ("" for
	// single-node deployments).
	Node string
	// Logger mirrors events to slog at the level matching their
	// severity. Nil uses slog.Default().
	Logger *slog.Logger
	// Sink, when non-nil, receives each event's JSON encoding.
	Sink Sink
	// Backlog seeds the ring with previously persisted events (e.g.
	// replayed from a store.AppendLog). The journal resumes sequence
	// numbering after the highest backlog Seq.
	Backlog []Event
}

// Log is a bounded in-memory event journal. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.Mutex
	buf      []Event // ring storage
	start    int     // index of the oldest retained event
	n        int     // retained count
	seq      uint64  // last assigned sequence number
	node     string
	logger   *slog.Logger
	sink     Sink
	sinkErrs uint64
	nowFn    func() time.Time // test seam
}

// NewLog builds a journal from cfg.
func NewLog(cfg Config) *Log {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1024
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	l := &Log{
		buf:    make([]Event, capacity),
		node:   cfg.Node,
		logger: logger,
		sink:   cfg.Sink,
		nowFn:  time.Now,
	}
	for _, ev := range cfg.Backlog {
		if ev.Seq > l.seq {
			l.seq = ev.Seq
		}
		l.push(ev)
	}
	return l
}

// push appends to the ring, evicting the oldest entry when full.
// Caller holds no lock (construction) or l.mu (Emit).
func (l *Log) push(ev Event) {
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = ev
		l.n++
		return
	}
	l.buf[l.start] = ev
	l.start = (l.start + 1) % len(l.buf)
}

// Emit records an event and returns it with its assigned sequence
// number. kv lists alternating field key/value pairs; a trailing
// unpaired key is ignored.
func (l *Log) Emit(sev Severity, typ, msg string, kv ...string) Event {
	var fields map[string]string
	if len(kv) >= 2 {
		fields = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			fields[kv[i]] = kv[i+1]
		}
	}
	ev := Event{
		Time:     l.nowFn().UTC(),
		Type:     typ,
		Severity: sev,
		Node:     l.node,
		Message:  msg,
		Fields:   fields,
	}

	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	l.push(ev)
	sink := l.sink
	l.mu.Unlock()

	l.mirror(ev)
	if sink != nil {
		if b, err := json.Marshal(ev); err == nil {
			if err := sink.AppendRecord(b); err != nil {
				l.mu.Lock()
				l.sinkErrs++
				l.mu.Unlock()
			}
		}
	}
	return ev
}

// mirror writes the event to slog at the level matching its severity.
func (l *Log) mirror(ev Event) {
	level := slog.LevelInfo
	switch ev.Severity {
	case SevWarn:
		level = slog.LevelWarn
	case SevError:
		level = slog.LevelError
	}
	if !l.logger.Enabled(context.Background(), level) {
		return
	}
	args := make([]any, 0, 4+2*len(ev.Fields))
	args = append(args, "event", ev.Type, "seq", ev.Seq)
	for k, v := range ev.Fields {
		args = append(args, k, v)
	}
	l.logger.Log(context.Background(), level, ev.Message, args...)
}

// Page is the result of a Since call: the matching events plus the
// cursor bounds a reader needs to paginate and to detect gaps.
type Page struct {
	// Events holds up to limit events with Seq > since and severity >=
	// the filter, oldest first.
	Events []Event
	// Earliest is the sequence number of the oldest event still
	// retained (0 when the ring is empty). A reader whose cursor is
	// below Earliest-1 has missed events to eviction.
	Earliest uint64
	// Last is the highest sequence number assigned so far.
	Last uint64
}

// Since returns events with Seq > after and Severity >= minSev, oldest
// first, capped at limit (<=0 means no cap beyond the ring size).
func (l *Log) Since(after uint64, minSev Severity, limit int) Page {
	l.mu.Lock()
	defer l.mu.Unlock()

	p := Page{Last: l.seq}
	if l.n == 0 {
		return p
	}
	p.Earliest = l.buf[l.start].Seq
	if limit <= 0 || limit > l.n {
		limit = l.n
	}
	for i := 0; i < l.n && len(p.Events) < limit; i++ {
		ev := l.buf[(l.start+i)%len(l.buf)]
		if ev.Seq <= after || ev.Severity < minSev {
			continue
		}
		p.Events = append(p.Events, ev)
	}
	return p
}

// LastSeq returns the highest sequence number assigned so far.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SinkErrors reports how many persistence appends have failed.
func (l *Log) SinkErrors() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErrs
}

// DecodeBacklog parses persisted event records (as written through a
// Sink) back into events, skipping records that fail to decode, and
// returns at most the last keep events. It is the bridge between
// store-level replay and Config.Backlog.
func DecodeBacklog(records [][]byte, keep int) []Event {
	var out []Event
	for _, rec := range records {
		var ev Event
		if err := json.Unmarshal(rec, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	if keep > 0 && len(out) > keep {
		out = out[len(out)-keep:]
	}
	return out
}
