package mosaic

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// Synthetic workload generation, re-exported. The generator produces
// Darshan-like traces for the I/O motifs observed in production HPC
// systems (checkpointing, read-on-start, write-on-end, steady streaming,
// metadata storms), each annotated with its intended ("ground truth")
// category set. It substitutes for the non-redistributable Blue Waters
// corpus in every experiment of this repository and doubles as a test
// fixture factory for downstream users.
type (
	// CorpusProfile describes a synthetic corpus (size, mixture,
	// corruption rate, seed).
	CorpusProfile = gen.Profile
	// Corpus is a deterministic plan of applications and runs.
	Corpus = gen.Corpus
	// CorpusApp is one planned application.
	CorpusApp = gen.App
	// CorpusRun is one generated execution.
	CorpusRun = gen.Run
	// Archetype is one synthetic application family.
	Archetype = gen.Archetype
	// TraceBuilder assembles a single synthetic trace from I/O phases.
	TraceBuilder = gen.Builder
	// BurstSpec describes one I/O phase for TraceBuilder.Burst.
	BurstSpec = gen.BurstSpec
	// PeriodicSpec describes a checkpoint-style phase train.
	PeriodicSpec = gen.PeriodicSpec
)

// DefaultCorpusProfile returns the Blue-Waters-shaped corpus profile used
// by the experiments (calibrated archetype mixture, 32% corruption).
func DefaultCorpusProfile() CorpusProfile { return gen.DefaultProfile() }

// PlanCorpus lays out a deterministic corpus from a profile.
func PlanCorpus(p CorpusProfile) *Corpus { return gen.Plan(p) }

// Archetypes returns the calibrated archetype mixture.
func Archetypes() []Archetype { return gen.DefaultArchetypes() }

// ArchetypeByName looks up one archetype of the default mixture.
func ArchetypeByName(name string) (Archetype, bool) { return gen.ArchetypeByName(name) }

// NewTraceBuilder starts one synthetic trace.
func NewTraceBuilder(rng *rand.Rand, user, exe string, jobID uint64, ranks int32, runtime float64) *TraceBuilder {
	return gen.NewBuilder(rng, user, exe, jobID, ranks, runtime)
}

// Truth extracts the generator's ground-truth category set from a
// synthetic trace (nil for traces without the annotation).
func Truth(j *Job) Set { return gen.Truth(j) }

// TruthKey is the job-metadata key holding the ground-truth categories.
const TruthKey = gen.TruthKey

var _ = category.All // keep the import alive if aliases change
