// Package ring is MOSAIC's cluster subsystem: a deterministic
// consistent-hash ring over the content-addressed trace keys, a
// length-prefixed binary RPC transport shared by every inter-node
// operation, and a cluster manager handling replica-aware ingest,
// scatter-gather fan-out, per-peer health probing, request hedging and
// hinted-handoff replication retry.
//
// The ring is a pure function of the membership list and its tuning
// parameters: every node computes byte-identical routing from the same
// configuration, so there is no coordination service — the routing
// table is static per process lifetime and served to clients from
// GET /v1/cluster, versioned by a hash of the membership so a client
// can detect that two nodes disagree about the cluster.
//
// Trace keys are already perfect shard keys: the SHA-256 content
// address is uniformly distributed and identical on every node that
// sees the same trace, so placement needs no lookup table — owner and
// replicas fall out of hashing the key onto the ring.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Defaults for the tunable ring parameters.
const (
	// DefaultVirtualNodes is the points-per-member default: enough that
	// one join/leave moves close to the ideal 1/N of the keyspace.
	DefaultVirtualNodes = 128
	// DefaultReplication is the default number of copies of each trace
	// (owner + followers).
	DefaultReplication = 2
)

// Node is one cluster member.
type Node struct {
	// ID names the node; membership is keyed by it and it must be
	// unique and identical across every member's configuration.
	ID string `json:"id"`
	// Addr is the node's cluster RPC address (host:port).
	Addr string `json:"addr"`
	// HTTPAddr, when known, is the node's public HTTP API address —
	// served in /v1/cluster so clients can route requests shard-side.
	HTTPAddr string `json:"http_addr,omitempty"`
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int32 // index into Table.nodes
}

// Table is an immutable consistent-hash routing table: the ring's
// virtual-node points plus the membership they map back to. Methods are
// safe for concurrent use (the table never mutates after NewTable).
type Table struct {
	nodes   []Node // sorted by ID
	points  []point
	vnodes  int
	rf      int
	version uint64
}

// NewTable builds the routing table for the given membership. vnodes
// and rf (total copies per key, owner included) fall back to the
// defaults when <= 0; rf is capped at the member count. The table is
// deterministic: any permutation of nodes yields identical routing.
func NewTable(nodes []Node, vnodes, rf int) (*Table, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: empty membership")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if rf <= 0 {
		rf = DefaultReplication
	}
	if rf > len(nodes) {
		rf = len(nodes)
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			return nil, fmt.Errorf("ring: duplicate node ID %q", sorted[i].ID)
		}
	}
	t := &Table{
		nodes:  sorted,
		points: make([]point, 0, len(sorted)*vnodes),
		vnodes: vnodes,
		rf:     rf,
	}
	for ni, n := range sorted {
		for v := 0; v < vnodes; v++ {
			t.points = append(t.points, point{hash: vnodeHash(n.ID, v), node: int32(ni)})
		}
	}
	sort.Slice(t.points, func(i, j int) bool {
		if t.points[i].hash != t.points[j].hash {
			return t.points[i].hash < t.points[j].hash
		}
		// A full 64-bit collision between two members' points is
		// astronomically unlikely; break the tie by node order so the
		// ring still sorts deterministically if it happens.
		return t.points[i].node < t.points[j].node
	})
	t.version = t.membershipHash()
	return t, nil
}

// membershipHash folds the membership and tuning parameters into the
// table version: nodes that disagree about the cluster produce
// different versions, which /v1/cluster exposes to clients.
func (t *Table) membershipHash() uint64 {
	h := fnv.New64a()
	for _, n := range t.nodes {
		h.Write([]byte(n.ID))
		h.Write([]byte{0})
		h.Write([]byte(n.Addr))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "v%d r%d", t.vnodes, t.rf)
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer. Raw FNV over the short, nearly
// identical "id#v" vnode strings leaves correlated low bits — enough
// that one member could own 2x its share of the ring — so every point
// hash gets a full avalanche pass.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeHash places one virtual node on the 64-bit ring.
func vnodeHash(id string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	fmt.Fprintf(h, "#%d", v)
	return mix64(h.Sum64())
}

// keyHash places a trace key on the ring. Keys are SHA-256 hex digests
// (already uniform); FNV keeps placement cheap and, unlike a seeded
// hash, identical across processes.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// Version identifies the membership this table routes over.
func (t *Table) Version() uint64 { return t.version }

// RF returns the replication factor (total copies per key).
func (t *Table) RF() int { return t.rf }

// VirtualNodes returns the points-per-member count.
func (t *Table) VirtualNodes() int { return t.vnodes }

// Nodes returns the membership in ID order. The slice is shared; do
// not mutate.
func (t *Table) Nodes() []Node { return t.nodes }

// NodeByID returns the member with the given ID.
func (t *Table) NodeByID(id string) (Node, bool) {
	i := sort.Search(len(t.nodes), func(i int) bool { return t.nodes[i].ID >= id })
	if i < len(t.nodes) && t.nodes[i].ID == id {
		return t.nodes[i], true
	}
	return Node{}, false
}

// successor returns the index into points of the first point at or
// after h, wrapping at the ring's end.
func (t *Table) successor(h uint64) int {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].hash >= h })
	if i == len(t.points) {
		return 0
	}
	return i
}

// Owner returns the node owning a key: the member whose virtual node
// first succeeds the key's hash on the ring.
func (t *Table) Owner(key string) Node {
	return t.nodes[t.points[t.successor(keyHash(key))].node]
}

// Replicas returns the key's replica set: RF distinct nodes walking
// the ring clockwise from the key, owner first. The returned slice is
// freshly allocated.
func (t *Table) Replicas(key string) []Node {
	out := make([]Node, 0, t.rf)
	seen := make(map[int32]struct{}, t.rf)
	start := t.successor(keyHash(key))
	for i := 0; i < len(t.points) && len(out) < t.rf; i++ {
		p := t.points[(start+i)%len(t.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, t.nodes[p.node])
	}
	return out
}

// IsReplica reports whether nodeID is in the key's replica set.
func (t *Table) IsReplica(key, nodeID string) bool {
	for _, n := range t.Replicas(key) {
		if n.ID == nodeID {
			return true
		}
	}
	return false
}
