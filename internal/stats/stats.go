// Package stats provides the statistical primitives MOSAIC relies on:
// coefficient of variation (temporality's "steady" rule), Jaccard indices
// (category co-occurrence analysis, Figure 5), histograms and percentiles
// for reporting.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns stddev/mean. The paper's temporality rule
// marks a trace "steady" when the CV of per-chunk volumes is below 25%.
// For a zero mean the CV is defined as 0 when all values are zero and +Inf
// otherwise.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m
}

// Min returns the smallest element, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile of xs using linear interpolation
// between closest ranks, with p in [0, 100]. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Jaccard returns |A∩B| / |A∪B| for two sample sets represented as counts:
// both is |A∩B|, onlyA and onlyB the exclusive memberships. Returns 0 when
// the union is empty.
func Jaccard(both, onlyA, onlyB int) float64 {
	union := both + onlyA + onlyB
	if union == 0 {
		return 0
	}
	return float64(both) / float64(union)
}

// JaccardSets computes the Jaccard index between two boolean membership
// vectors of equal length (panics otherwise): element i tells whether
// sample i belongs to the set.
func JaccardSets(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("stats: JaccardSets length mismatch")
	}
	var both, onlyA, onlyB int
	for i := range a {
		switch {
		case a[i] && b[i]:
			both++
		case a[i]:
			onlyA++
		case b[i]:
			onlyB++
		}
	}
	return Jaccard(both, onlyA, onlyB)
}

// ConditionalRate returns P(b | a): among samples where a holds, the
// fraction where b also holds. Used for the paper's "66% of applications
// reading on start write on end" style statements. Returns 0 when a never
// holds.
func ConditionalRate(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("stats: ConditionalRate length mismatch")
	}
	var na, nab int
	for i := range a {
		if a[i] {
			na++
			if b[i] {
				nab++
			}
		}
	}
	if na == 0 {
		return 0
	}
	return float64(nab) / float64(na)
}

// Histogram bins values into n equal-width buckets over [min, max]. Values
// outside the range are clamped into the first/last bucket. Returns the
// counts and the bucket width; width is 0 when max <= min.
func Histogram(xs []float64, n int, min, max float64) (counts []int, width float64) {
	if n <= 0 {
		return nil, 0
	}
	counts = make([]int, n)
	if max <= min {
		counts[0] = len(xs)
		return counts, 0
	}
	width = (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts, width
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using b resamples
// drawn with the provided deterministic seed. Returns (mean, mean) for
// fewer than 2 samples.
func BootstrapCI(xs []float64, level float64, b int, seed int64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || b < 1 {
		return m, m
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, b)
	for i := 0; i < b; i++ {
		var s float64
		for k := 0; k < len(xs); k++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}

// BootstrapProportionCI is BootstrapCI for a Bernoulli sample given as
// (successes, total): the CI of the underlying proportion.
func BootstrapProportionCI(successes, total int, level float64, b int, seed int64) (lo, hi float64) {
	if total <= 0 {
		return 0, 0
	}
	xs := make([]float64, total)
	for i := 0; i < successes; i++ {
		xs[i] = 1
	}
	return BootstrapCI(xs, level, b, seed)
}
