package mosaic

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
	"github.com/mosaic-hpc/mosaic/internal/report"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// Engine types, re-exported. The corpus pipeline exists exactly once, as
// the staged stream Scan → Decode → Funnel → Categorize → Aggregate in
// internal/engine; every entry point below is a thin wrapper over it.
type (
	// ErrorPolicy selects fail-fast vs collect-all error handling.
	ErrorPolicy = engine.ErrorPolicy
	// Observer receives per-stage pipeline events.
	Observer = engine.Observer
	// StageStats is the built-in Observer collecting per-stage counters
	// and timings; safe to snapshot while the pipeline runs.
	StageStats = engine.Stats
	// StageSnapshot is the point-in-time view of one stage's counters.
	StageSnapshot = engine.StageSnapshot
	// StageID names one pipeline stage.
	StageID = engine.StageID
	// Executor runs the Categorize stage; the distributed Master is an
	// alternate implementation.
	Executor = engine.Executor
	// SpanObserver is the optional Observer extension receiving one
	// completed span per item per stage.
	SpanObserver = engine.SpanObserver
	// Telemetry bundles the metrics registry, span recorder, slow-trace
	// log and structured logger behind one pipeline observer; pass it as
	// Options.Telemetry (see NewTelemetry).
	Telemetry = telemetry.Telemetry
	// TelemetryConfig selects which telemetry components to enable.
	TelemetryConfig = telemetry.Config
	// MetricsRegistry is the concurrent-safe metrics registry with
	// Prometheus text exposition backing a Telemetry bundle.
	MetricsRegistry = telemetry.Registry
)

// NewTelemetry builds a telemetry bundle: engine metrics registered
// eagerly, optional span recording and slow-trace log, optional slog
// output. Wire it via Options.Telemetry; serve its registry with
// StartDebugServer (cmd/mosaic -debug-addr does both).
func NewTelemetry(cfg TelemetryConfig) *Telemetry { return telemetry.New(cfg) }

// DebugServer is a running introspection HTTP server (see
// StartDebugServer).
type DebugServer = telemetry.Server

// StartDebugServer serves the bundle's /metrics, /healthz,
// /debug/engine and /debug/pprof endpoints on addr (":0" picks a free
// port; Addr() reports it) in a background goroutine.
func StartDebugServer(addr string, t *Telemetry) (*DebugServer, error) {
	return telemetry.StartServer(addr, t.Registry(), t, t.Logger())
}

// MultiObserver fans pipeline events out to several observers in
// argument order (per-item spans are forwarded to those implementing
// SpanObserver).
func MultiObserver(obs ...Observer) Observer { return engine.MultiObserver(obs...) }

// Error policies.
const (
	// FailFast cancels in-flight work on the first error (default).
	FailFast = engine.FailFast
	// CollectAll skips failed apps and returns every error via errors.Join.
	CollectAll = engine.CollectAll
)

// Pipeline stage identifiers.
const (
	StageScan       = engine.StageScan
	StageDecode     = engine.StageDecode
	StageFunnel     = engine.StageFunnel
	StageCategorize = engine.StageCategorize
	StageAggregate  = engine.StageAggregate
)

// NewStageStats returns an empty per-stage counter collector to pass as
// Options.Observer.
func NewStageStats() *StageStats { return engine.NewStats() }

// Options configures the corpus pipeline.
type Options struct {
	// Config holds the detection thresholds; a zero value (Config.IsZero)
	// selects DefaultConfig. Normalization happens once, at the engine
	// boundary.
	Config Config
	// Workers is the decode/categorization parallelism (<= 0: one per CPU).
	Workers int
	// Policy selects the error policy (default FailFast).
	Policy ErrorPolicy
	// Observer, when non-nil, receives per-stage events (see NewStageStats).
	Observer Observer
	// Executor, when non-nil, replaces the in-process Categorize stage —
	// pass a *Master to categorize on remote workers.
	Executor Executor
	// Store, when non-nil, warm-starts the Categorize stage from the
	// result store: traces already analyzed under this Config's
	// fingerprint are served from disk, fresh results are written back
	// (see OpenStore). Composes with Executor — the store wraps it.
	Store *Store
	// Telemetry, when non-nil, instruments the run with metrics,
	// per-trace spans and the slow-trace log (see NewTelemetry). It
	// composes with Observer via MultiObserver, so both receive events.
	Telemetry *Telemetry
	// Explain enables decision-provenance collection: each AppResult
	// carries the Explanation recording why every category was (or
	// wasn't) assigned. Off by default — the hot path pays nothing.
	// With Store set, explanations are persisted alongside results and
	// warm hits require both to be present.
	Explain bool
	// ExplainOptions tunes collection (near-miss margin, segment cap);
	// the zero value selects the defaults. Ignored unless Explain is set.
	ExplainOptions ExplainOptions
}

// engine lowers the facade options onto the engine, returning the
// caching executor (nil without Options.Store) so callers can export
// its warm/cold counters after the run.
func (o Options) engine() (engine.Options, *CachingExecutor) {
	obs := o.Observer
	if o.Telemetry != nil {
		if obs != nil {
			obs = engine.MultiObserver(obs, o.Telemetry)
		} else {
			obs = o.Telemetry
		}
	}
	exec := o.Executor
	var ce *CachingExecutor
	if o.Store != nil {
		ce = cachingExecutor(o.Store, exec, o.Workers)
		exec = ce
	}
	return engine.Options{
		Config:         o.Config,
		Workers:        o.Workers,
		Policy:         o.Policy,
		Observer:       obs,
		Executor:       exec,
		Explain:        o.Explain,
		ExplainOptions: o.ExplainOptions,
	}, ce
}

// finishRun flushes per-run telemetry: the engine gauges via
// FinishRun, and — when a store warm-started the run — the warm/cold
// counters (mosaic_store_warm_total / mosaic_store_cold_total), so a
// scrape shows how much of the corpus was served from disk.
func (o Options) finishRun(ce *CachingExecutor) {
	if o.Telemetry == nil {
		return
	}
	if ce != nil {
		reg := o.Telemetry.Registry()
		reg.Counter("mosaic_store_warm_total",
			"Categorizations served warm from the result store.", nil).Add(ce.Hits())
		reg.Counter("mosaic_store_cold_total",
			"Categorizations computed cold and written back to the store.", nil).Add(ce.Misses())
	}
	o.Telemetry.FinishRun()
}

// AppResult pairs an application's categorization with its execution
// count, the unit of the "all runs" statistics. Explanation is non-nil
// only when Options.Explain was set.
type AppResult struct {
	Result      *Result      `json:"result"`
	Runs        int          `json:"runs"`
	Explanation *Explanation `json:"explanation,omitempty"`
}

// Analysis is the outcome of a corpus run: the pre-processing funnel, one
// result per deduplicated application, and the aggregate distributions.
type Analysis struct {
	Funnel    FunnelStats
	Apps      []AppResult
	Aggregate *Aggregator
}

func fromEngine(r *engine.Result) *Analysis {
	if r == nil {
		return nil
	}
	apps := make([]AppResult, len(r.Apps))
	for i, a := range r.Apps {
		apps[i] = AppResult{Result: a.Result, Runs: a.Runs, Explanation: a.Explanation}
	}
	return &Analysis{Funnel: r.Funnel, Apps: apps, Aggregate: r.Agg}
}

// AnalyzeJobsContext runs the full pipeline over in-memory traces:
// funnel (validation + deduplication), parallel categorization of each
// application's heaviest run, and aggregation. Cancelling ctx stops
// in-flight work promptly and returns the context's error.
func AnalyzeJobsContext(ctx context.Context, jobs []*Job, opt Options) (*Analysis, error) {
	eopt, ce := opt.engine()
	res, err := engine.Run(ctx, engine.Jobs(jobs), eopt)
	opt.finishRun(ce)
	return fromEngine(res), err
}

// AnalyzeJobs is AnalyzeJobsContext with context.Background, preserved
// for callers predating the context-first API.
func AnalyzeJobs(jobs []*Job, opt Options) (*Analysis, error) {
	return AnalyzeJobsContext(context.Background(), jobs, opt)
}

// AnalyzeCorpusContext streams every trace under dir through the
// pipeline: paths are scanned and decoded concurrently with
// categorization, bounded channels keep memory flat, and cancelling ctx
// drains every stage without goroutine leaks. Decode failures count as
// corrupted traces, like damaged logs in the Blue Waters dataset.
func AnalyzeCorpusContext(ctx context.Context, dir string, opt Options) (*Analysis, error) {
	eopt, ce := opt.engine()
	res, err := engine.Run(ctx, engine.Dir(dir), eopt)
	opt.finishRun(ce)
	return fromEngine(res), err
}

// AnalyzeCorpus is AnalyzeCorpusContext with context.Background,
// preserved for callers predating the context-first API.
func AnalyzeCorpus(dir string, opt Options) (*Analysis, error) {
	return AnalyzeCorpusContext(context.Background(), dir, opt)
}

// CategorizeAll runs Categorize over many traces in parallel, preserving
// input order. Invalid traces yield a nil Result (with validation applied
// first); pipeline errors abort, and cancellation stops remaining work
// promptly.
func CategorizeAll(ctx context.Context, jobs []*Job, opt Options) ([]*Result, error) {
	cfg := opt.Config.Normalized()
	out := make([]*Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Worker defaulting lives in parallel.DefaultWorkers (via ForEachCtx);
	// cancellation — external or fail-fast — stops dispatch promptly.
	perr := parallel.ForEachCtx(ctx, opt.Workers, len(jobs), func(i int) {
		if err := darshan.Validate(jobs[i]); err != nil {
			return // corrupted: nil result
		}
		res, err := Categorize(jobs[i], cfg)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
				cancel() // fail fast: stop remaining categorizations
			}
			mu.Unlock()
			return
		}
		out[i] = res
	})
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	if perr != nil {
		return nil, perr
	}
	return out, nil
}

// WriteReport renders the complete text report of an analysis: funnel,
// periodicity and temporality tables, metadata distribution, correlations
// and the Jaccard pair list.
func (a *Analysis) WriteReport(w io.Writer) {
	report.WriteFunnel(w, a.Funnel)
	fmt.Fprintln(w)
	report.WritePeriodicity(w, a.Aggregate, category.DirWrite)
	report.WritePeriodicity(w, a.Aggregate, category.DirRead)
	fmt.Fprintln(w)
	report.WriteTemporality(w, a.Aggregate)
	fmt.Fprintln(w)
	report.WriteMetadata(w, a.Aggregate)
	fmt.Fprintln(w)
	report.WriteCorrelations(w, a.Aggregate.Correlations())
	fmt.Fprintln(w)
	report.WriteJaccard(w, a.Aggregate, 0.01)
}

// TopCategories returns the categories sorted by decreasing application
// rate, for quick summaries.
func (a *Analysis) TopCategories() []Category {
	agg := a.Aggregate
	cats := AllCategories()
	sort.Slice(cats, func(i, j int) bool {
		return agg.SingleRate(cats[i]) > agg.SingleRate(cats[j])
	})
	var out []Category
	for _, c := range cats {
		if agg.SingleRate(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Explain renders the detection walkthrough of one result — merged
// operation counts, per-chunk volumes, periodic groups and metadata rates
// (the Figure 2 view of the paper).
func Explain(w io.Writer, res *Result) { report.WriteResult(w, res) }

// WriteHeatmap renders the Jaccard co-occurrence grid over all categories
// whose application rate is at least minRate.
func WriteHeatmap(w io.Writer, agg *Aggregator, minRate float64) {
	report.WriteHeatmap(w, agg, minRate)
}

// WriteTimeline renders the ASCII timeline of one trace — raw vs merged
// operations, periodic groups, and chunk volumes (the Figure 2 view).
func WriteTimeline(w io.Writer, j *Job, res *Result, cfg Config) {
	report.WriteTimeline(w, j, res, cfg)
}
