package darshan

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	j := sampleJob()
	data, err := MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", j, got)
	}
}

func TestBinaryRoundTripEmptyJob(t *testing.T) {
	j := &Job{Runtime: 1, NProcs: 1}
	data, err := MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != 0 || len(got.Records) != 0 || got.Metadata != nil {
		t.Fatalf("empty job round trip: %+v", got)
	}
}

func TestBinaryPreservesSpecialFloats(t *testing.T) {
	// Corrupted traces can carry NaN timestamps; the codec must preserve
	// them bit-for-bit so validation sees them.
	j := sampleJob()
	j.Records[0].C.ReadStart = math.NaN()
	j.Records[0].C.ReadEnd = math.Inf(1)
	data, err := MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Records[0].C.ReadStart) || !math.IsInf(got.Records[0].C.ReadEnd, 1) {
		t.Fatal("special floats not preserved")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalBinary([]byte("not a darshan log at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryRejectsBadMagicAndVersion(t *testing.T) {
	j := sampleJob()
	data, _ := MarshalBinary(j)
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := UnmarshalBinary(bad); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v", err)
	}
	badVer := append([]byte{}, data...)
	badVer[4] = 99
	if _, err := UnmarshalBinary(badVer); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	data, _ := MarshalBinary(sampleJob())
	for _, cut := range []int{5, 9, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func randomJob(rng *rand.Rand) *Job {
	j := &Job{
		JobID:   rng.Uint64(),
		UID:     rng.Uint32(),
		User:    randString(rng, 8),
		Exe:     "/bin/" + randString(rng, 12),
		NProcs:  int32(rng.Intn(1024) + 1),
		Start:   rng.Int63n(2_000_000_000),
		Runtime: rng.Float64() * 100000,
	}
	j.End = j.Start + int64(j.Runtime)
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		j.Records = append(j.Records, FileRecord{
			Module: Module(rng.Intn(3)),
			Path:   "/scratch/" + randString(rng, 16),
			Rank:   int32(rng.Intn(100)) - 1,
			C: Counters{
				Opens: rng.Int63n(100), Closes: rng.Int63n(100), Seeks: rng.Int63n(100),
				Stats: rng.Int63n(10), Reads: rng.Int63n(1000), Writes: rng.Int63n(1000),
				BytesRead: rng.Int63n(1 << 40), BytesWritten: rng.Int63n(1 << 40),
				OpenStart: rng.Float64() * 100, OpenEnd: rng.Float64() * 100,
				ReadStart: rng.Float64() * 100, ReadEnd: rng.Float64() * 100,
				WriteStart: rng.Float64() * 100, WriteEnd: rng.Float64() * 100,
				CloseStart: rng.Float64() * 100, CloseEnd: rng.Float64() * 100,
			},
		})
	}
	if rng.Intn(2) == 0 {
		j.Metadata = map[string]string{randString(rng, 5): randString(rng, 9)}
	}
	return j
}

func randString(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789_-"
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// Property: binary round trip is the identity on arbitrary jobs.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		j := randomJob(rng)
		data, err := MarshalBinary(j)
		if err != nil {
			return false
		}
		got, err := UnmarshalBinary(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(j, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	j := sampleJob()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, j); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("JSON round trip mismatch:\n in: %+v\nout: %+v", j, got)
	}
}

func TestJSONRejectsUnknownModule(t *testing.T) {
	data := []byte(`{"runtime": 10, "nprocs": 1, "records": [{"module": "NFS", "path": "x", "rank": 0, "counters": {}}]}`)
	if _, err := UnmarshalJob(data); err == nil {
		t.Fatal("unknown module accepted")
	}
}

func TestJSONModuleAliases(t *testing.T) {
	for _, name := range []string{"MPI-IO", "MPIIO"} {
		m, err := moduleFromString(name)
		if err != nil || m != ModMPIIO {
			t.Fatalf("moduleFromString(%q) = %v, %v", name, m, err)
		}
	}
}

func TestCorpusReadWrite(t *testing.T) {
	dir := t.TempDir()
	jobs := []*Job{sampleJob(), sampleJob()}
	jobs[1].JobID = 8
	jobs[1].User = "bob"
	if err := WriteCorpus(dir, jobs); err != nil {
		t.Fatal(err)
	}
	paths, err := ListCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("corpus has %d files, want 2", len(paths))
	}
	got, err := ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "alice" && got.User != "bob" {
		t.Fatalf("unexpected user %q", got.User)
	}
}

func TestCorpusJSONExtension(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := WriteFile(path, sampleJob()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sampleJob(), got) {
		t.Fatal("JSON file round trip mismatch")
	}
}

func TestListCorpusIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(dir, "a.mosd"), sampleJob()); err != nil {
		t.Fatal(err)
	}
	paths, err := ListCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("ListCorpus = %v", paths)
	}
}

func TestListCorpusSkipsTempAndPartialFiles(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "good.mosd"), sampleJob()); err != nil {
		t.Fatal(err)
	}
	// Half-written artifacts a concurrent writer may leave behind: an
	// atomic-rename spool, an explicit partial marker, a dotfile, an
	// editor backup, and a hidden directory full of junk.
	for _, name := range []string{
		"half.mosd.tmp", "half.mosd.partial", ".hidden.mosd", "backup.mosd~", ".spool.json",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	hidden := filepath.Join(dir, ".staging")
	if err := os.MkdirAll(hidden, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(hidden, "x.mosd"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := ListCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "good.mosd" {
		t.Fatalf("ListCorpus = %v, want only good.mosd", paths)
	}
	// ScanCorpus must agree with ListCorpus on what a trace file is.
	var scanned []string
	if err := ScanCorpus(context.Background(), dir, func(p string) bool {
		scanned = append(scanned, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 1 || filepath.Base(scanned[0]) != "good.mosd" {
		t.Fatalf("ScanCorpus = %v, want only good.mosd", scanned)
	}
}

func TestStreamCorpusReportsDecodeErrors(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "good.mosd"), sampleJob()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.mosd"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ch, err := StreamCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	var good, bad int
	for e := range ch {
		if e.Err != nil {
			bad++
		} else {
			good++
		}
	}
	if good != 1 || bad != 1 {
		t.Fatalf("good=%d bad=%d", good, bad)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c!d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestStreamCorpusParallelOrderAndCompleteness(t *testing.T) {
	dir := t.TempDir()
	var want []string
	for i := 0; i < 40; i++ {
		j := sampleJob()
		j.JobID = uint64(i)
		name := filepath.Join(dir, "t"+itoa(i)+".mosd")
		if err := WriteFile(name, j); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	// A broken file must surface as an error entry in order too.
	bad := filepath.Join(dir, "zz_bad.mosd")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	want = append(want, bad)
	sortStrings(want)

	ch, err := StreamCorpusParallel(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	var errs int
	for e := range ch {
		got = append(got, e.Path)
		if e.Err != nil {
			errs++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d: %s vs %s", i, got[i], want[i])
		}
	}
	if errs != 1 {
		t.Fatalf("errs = %d", errs)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
