package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k gaussian-ish clusters of n points each, centered
// spread apart, and returns the points plus true labels.
func blobs(rng *rand.Rand, k, n int, spread, noise float64) ([]Point, []int) {
	var pts []Point
	var labels []int
	for c := 0; c < k; c++ {
		cx := float64(c) * spread
		cy := float64(c%2) * spread
		for i := 0; i < n; i++ {
			pts = append(pts, Point{cx + rng.NormFloat64()*noise, cy + rng.NormFloat64()*noise})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if Dist(a, b) != 5 || Dist2(a, b) != 25 {
		t.Fatal("distance")
	}
	if Dist(a, a) != 0 {
		t.Fatal("self distance")
	}
}

func TestMeanShiftSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, truth := blobs(rng, 3, 40, 10, 0.3)
	res, err := MeanShift(pts, MeanShiftConfig{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("found %d clusters, want 3", len(res.Centers))
	}
	if ari := AdjustedRandIndex(res.Labels, truth); ari < 0.99 {
		t.Fatalf("ARI = %g, want ~1", ari)
	}
}

func TestMeanShiftGaussianKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, truth := blobs(rng, 2, 30, 10, 0.3)
	res, err := MeanShift(pts, MeanShiftConfig{Bandwidth: 1.5, Kernel: GaussianKernel})
	if err != nil {
		t.Fatal(err)
	}
	if ari := AdjustedRandIndex(res.Labels, truth); ari < 0.95 {
		t.Fatalf("gaussian ARI = %g", ari)
	}
}

func TestMeanShiftSingleCluster(t *testing.T) {
	pts := []Point{{0, 0}, {0.1, 0}, {0, 0.1}, {0.05, 0.05}}
	res, err := MeanShift(pts, MeanShiftConfig{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 {
		t.Fatalf("centers = %d, want 1", len(res.Centers))
	}
	sizes := res.ClusterSizes()
	if sizes[0] != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestMeanShiftIdenticalPoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	res, err := MeanShift(pts, MeanShiftConfig{Bandwidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.Labels[0] != res.Labels[2] {
		t.Fatal("identical points must form one cluster")
	}
}

func TestMeanShiftErrors(t *testing.T) {
	if _, err := MeanShift([]Point{{1}}, MeanShiftConfig{Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := MeanShift([]Point{{1}}, MeanShiftConfig{Bandwidth: math.NaN()}); err == nil {
		t.Fatal("NaN bandwidth accepted")
	}
	if _, err := MeanShift([]Point{{1, 2}, {1}}, MeanShiftConfig{Bandwidth: 1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := MeanShift([]Point{{math.NaN(), 0}}, MeanShiftConfig{Bandwidth: 1}); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	res, err := MeanShift(nil, MeanShiftConfig{Bandwidth: 1})
	if err != nil || len(res.Labels) != 0 {
		t.Fatal("empty input should succeed with empty result")
	}
}

// Property: every point gets a label in range, and labels are dense.
func TestMeanShiftLabelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
		}
		res, err := MeanShift(pts, MeanShiftConfig{Bandwidth: 0.5 + r.Float64()*3})
		if err != nil || len(res.Labels) != n {
			return false
		}
		used := make([]bool, len(res.Centers))
		for _, l := range res.Labels {
			if l < 0 || l >= len(res.Centers) {
				return false
			}
			used[l] = true
		}
		for _, u := range used {
			if !u {
				return false // labels must be dense
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateBandwidth(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {10, 0}}
	bw := EstimateBandwidth(pts, 0.5)
	if bw <= 0 {
		t.Fatalf("bandwidth = %g", bw)
	}
	if EstimateBandwidth(pts[:1], 0.5) != 0 {
		t.Fatal("single point should give 0")
	}
	if got := EstimateBandwidth(pts, 0); got != 1 {
		t.Fatalf("quantile 0 = %g, want min distance 1", got)
	}
	if got := EstimateBandwidth(pts, 1); got != 10 {
		t.Fatalf("quantile 1 = %g, want max distance 10", got)
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, truth := blobs(rng, 3, 40, 10, 0.3)
	res, inertia, err := KMeans(pts, KMeansConfig{K: 3, Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if inertia <= 0 {
		t.Fatalf("inertia = %g", inertia)
	}
	if ari := AdjustedRandIndex(res.Labels, truth); ari < 0.99 {
		t.Fatalf("kmeans ARI = %g", ari)
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	res, _, err := KMeans(pts, KMeansConfig{K: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 2 {
		t.Fatalf("centers = %d, want <= 2", len(res.Centers))
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, _, err := KMeans([]Point{{1}}, KMeansConfig{K: 0}); err != ErrBadK {
		t.Fatal("K=0 accepted")
	}
	res, _, err := KMeans(nil, KMeansConfig{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatal("empty input")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := blobs(rng, 2, 30, 8, 0.5)
	a, ia, _ := KMeans(pts, KMeansConfig{K: 2, Seed: 42})
	b, ib, _ := KMeans(pts, KMeansConfig{K: 2, Seed: 42})
	if ia != ib || AdjustedRandIndex(a.Labels, b.Labels) != 1 {
		t.Fatal("same seed should give identical clustering")
	}
}

func TestGridQuantize(t *testing.T) {
	pts := []Point{{0.1, 0.1}, {0.2, 0.2}, {5.1, 5.1}}
	res, err := GridQuantize(pts, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] == res.Labels[2] {
		t.Fatalf("labels = %v", res.Labels)
	}
	// Boundary brittleness: points straddling a cell edge split even
	// though they are close — the weakness the ablation demonstrates.
	edge := []Point{{0.999, 0}, {1.001, 0}}
	res, err = GridQuantize(edge, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[1] {
		t.Fatal("grid should split straddling points (expected weakness)")
	}
}

func TestGridQuantizeErrors(t *testing.T) {
	if _, err := GridQuantize([]Point{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("cell dimension mismatch accepted")
	}
	if _, err := GridQuantize([]Point{{1}}, []float64{0}); err == nil {
		t.Fatal("zero cell accepted")
	}
	if _, err := GridQuantize([]Point{{1}}, []float64{-1}); err == nil {
		t.Fatal("negative cell accepted")
	}
	res, err := GridQuantize(nil, []float64{1})
	if err != nil || len(res.Labels) != 0 {
		t.Fatal("empty input")
	}
	// Negative coordinates must not collide with positive cells.
	res, err = GridQuantize([]Point{{-0.5}, {0.5}}, []float64{1})
	if err != nil || res.Labels[0] == res.Labels[1] {
		t.Fatal("negative cell collided with positive")
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, well separated pairs: silhouette near 1.
	pts := []Point{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	labels := []int{0, 0, 1, 1}
	if s := Silhouette(pts, labels); s < 0.9 {
		t.Fatalf("silhouette = %g, want ~1", s)
	}
	// Deliberately wrong labels: negative score.
	bad := []int{0, 1, 0, 1}
	if s := Silhouette(pts, bad); s >= 0 {
		t.Fatalf("bad labeling silhouette = %g, want < 0", s)
	}
	if Silhouette(pts, []int{0, 0, 0, 0}) != 0 {
		t.Fatal("single cluster should score 0")
	}
	if Silhouette(pts[:1], []int{0}) != 0 {
		t.Fatal("single point should score 0")
	}
}

func TestInertia(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}}
	res := &Result{Labels: []int{0, 0}, Centers: []Point{{1, 0}}}
	if got := Inertia(pts, res); got != 2 {
		t.Fatalf("inertia = %g, want 2", got)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	if ari := AdjustedRandIndex([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}); ari != 1 {
		t.Fatalf("relabeled identical partitions ARI = %g", ari)
	}
	if ari := AdjustedRandIndex([]int{0, 1, 0, 1}, []int{0, 0, 1, 1}); ari >= 0.5 {
		t.Fatalf("disagreeing partitions ARI = %g", ari)
	}
	if AdjustedRandIndex([]int{0}, []int{0, 1}) != 0 {
		t.Fatal("length mismatch should give 0")
	}
	if AdjustedRandIndex(nil, nil) != 0 {
		t.Fatal("empty should give 0")
	}
	if ari := AdjustedRandIndex([]int{0, 0, 0}, []int{0, 0, 0}); ari != 1 {
		t.Fatalf("trivial partitions ARI = %g, want 1", ari)
	}
}
