package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a leveled slog.Logger writing to w. format selects
// the handler: "text" (default) or "json". This is the single place the
// cmd/* binaries construct their loggers, so -log-level/-log-format
// behave identically everywhere.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
