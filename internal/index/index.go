// Package index maintains an inverted category index over stored
// categorization results: category → set of trace IDs, plus per-axis
// label counts. It answers boolean queries such as
//
//	periodic_minute AND write_on_end NOT insignificant_load
//
// where each bare term expands to the union of all canonical
// categories containing it (so "periodic_minute" matches both
// read_periodic_minute and write_periodic_minute). The index is
// rebuilt from the result store on startup and updated incrementally
// on ingest; all operations are safe for concurrent use.
package index

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Index is a concurrent inverted index from category to trace IDs.
type Index struct {
	mu      sync.RWMutex
	byCat   map[category.Category]map[store.TraceID]struct{}
	byTrace map[store.TraceID][]category.Category
}

// New returns an empty index.
func New() *Index {
	return &Index{
		byCat:   make(map[category.Category]map[store.TraceID]struct{}),
		byTrace: make(map[store.TraceID][]category.Category),
	}
}

// Add (re-)indexes one trace under its category set. Re-adding a
// trace replaces its previous postings, so re-categorization under a
// new configuration keeps the index consistent.
func (ix *Index) Add(id store.TraceID, cats category.Set) {
	sorted := cats.Sorted()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byTrace[id]; ok {
		ix.removeLocked(id, old)
	}
	ix.byTrace[id] = sorted
	for _, c := range sorted {
		posting, ok := ix.byCat[c]
		if !ok {
			posting = make(map[store.TraceID]struct{})
			ix.byCat[c] = posting
		}
		posting[id] = struct{}{}
	}
}

// AddCtx is Add wrapped in a request-trace span ("index.update") when
// ctx carries one; untraced contexts pay nothing beyond the nil check.
func (ix *Index) AddCtx(ctx context.Context, id store.TraceID, cats category.Set) {
	if _, _, traced := reqtrace.FromContext(ctx); !traced {
		ix.Add(id, cats)
		return
	}
	start := time.Now()
	ix.Add(id, cats)
	reqtrace.AddSpan(ctx, "index.update", start, time.Since(start),
		reqtrace.Int("categories", int64(len(cats))))
}

// Remove drops a trace from every posting list.
func (ix *Index) Remove(id store.TraceID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byTrace[id]; ok {
		ix.removeLocked(id, old)
		delete(ix.byTrace, id)
	}
}

func (ix *Index) removeLocked(id store.TraceID, cats []category.Category) {
	for _, c := range cats {
		if posting, ok := ix.byCat[c]; ok {
			delete(posting, id)
			if len(posting) == 0 {
				delete(ix.byCat, c)
			}
		}
	}
}

// Categories returns the indexed category set of one trace (nil when
// unknown).
func (ix *Index) Categories(id store.TraceID) []category.Category {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]category.Category(nil), ix.byTrace[id]...)
}

// Len returns the number of indexed traces.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byTrace)
}

// Count returns how many traces carry the exact category.
func (ix *Index) Count(c category.Category) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byCat[c])
}

// CategoryCount pairs a category with its posting size.
type CategoryCount struct {
	Category category.Category `json:"category"`
	Count    int               `json:"count"`
}

// AxisCounts returns the per-axis distribution of indexed categories,
// each axis sorted by decreasing count then name. This is the /v1/stats
// view of the corpus: Table I aggregated live.
func (ix *Index) AxisCounts() map[string][]CategoryCount {
	ix.mu.RLock()
	out := map[string][]CategoryCount{
		category.AxisTemporality.String(): {},
		category.AxisPeriodicity.String(): {},
		category.AxisMetadata.String():    {},
	}
	for c, posting := range ix.byCat {
		axis := c.Axis().String()
		out[axis] = append(out[axis], CategoryCount{Category: c, Count: len(posting)})
	}
	ix.mu.RUnlock()
	for _, counts := range out {
		sort.Slice(counts, func(i, j int) bool {
			if counts[i].Count != counts[j].Count {
				return counts[i].Count > counts[j].Count
			}
			return counts[i].Category < counts[j].Category
		})
	}
	return out
}

// Rebuild repopulates the index from every stored result under the
// given config fingerprint, replacing current contents atomically
// (queries running during a rebuild see the old state until the swap).
// It returns the number of traces indexed.
func (ix *Index) Rebuild(s *store.Store, fingerprint string) (int, error) {
	byCat := make(map[category.Category]map[store.TraceID]struct{})
	byTrace := make(map[store.TraceID][]category.Category)
	err := s.EachResult(fingerprint, func(id store.TraceID, res *core.Result) bool {
		sorted := res.Categories.Sorted()
		byTrace[id] = sorted
		for _, c := range sorted {
			posting, ok := byCat[c]
			if !ok {
				posting = make(map[store.TraceID]struct{})
				byCat[c] = posting
			}
			posting[id] = struct{}{}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	ix.mu.Lock()
	ix.byCat = byCat
	ix.byTrace = byTrace
	n := len(byTrace)
	ix.mu.Unlock()
	return n, nil
}
