package benchsuite

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/serve"
	"github.com/mosaic-hpc/mosaic/internal/store"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// The serve benchmarks pin the request-tracing overhead budget: the
// same warm cache-hit ingest is measured with tracing on (root span,
// decode/commit child spans, flight-recorder retention, latency
// exemplar) and off. Both land in BENCH_serve.json, so the regression
// gate catches the traced path drifting away from the untraced one —
// the tracing layer's contract is <5% on this path.

// The ingest payload is ingestTrace() — the same deterministic 200-record
// mid-size production-shaped log the decode/encode benchmarks pin — so
// the overhead ratio reflects what a real request pays, not a toy blob
// whose handler cost is all framing.

// ServeIngestWarm measures one warm cache-hit ingest per iteration
// through the full serve handler chain — request-ID middleware, trace
// middleware (or its identity twin), sniff, decode, content addressing,
// stored-result lookup, JSON response — with no network and no fsync in
// the way, so the traced/untraced delta is the tracing layer itself.
// ServeIngestObserved measures the same warm cache-hit ingest with the
// full cluster observability plane on versus off. On: the event
// journal tees every event into a CRC-framed append log, the
// burn-rate alert evaluator ticks aggressively (100ms, 150× the
// production rate), and runtime metrics are registered. Off: alerts
// disabled and the journal left unsunk. Tracing is enabled in both
// (the production default), so the delta isolates the plane itself.
// The contract is <5% on this path: events fire on state transitions
// rather than per request, and the evaluator samples counters on its
// own ticker, so a healthy request pays nothing.
func ServeIngestObserved(on bool) func(b *testing.B) {
	return func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		j := ingestTrace()
		blob, err := darshan.MarshalBinary(j)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{}.Normalized()
		res, err := core.Categorize(j, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.PutResult(store.HashBytes(blob), cfg.Fingerprint(), res); err != nil {
			b.Fatal(err)
		}
		scfg := serve.Config{
			Store: st, Workers: 1, QueueDepth: 16, NoBackfill: true,
			DisableAlerts: !on,
		}
		var sink *store.AppendLog
		if on {
			sink, err = store.OpenAppendLog(filepath.Join(b.TempDir(), "events.log"), false)
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			scfg.Events = events.NewLog(events.Config{Node: "bench", Sink: sink})
			scfg.AlertOptions = &telemetry.AlertOptions{Interval: 100 * time.Millisecond}
		}
		s, err := serve.New(scfg)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
			st.Close()
		}()
		h := s.Handler()
		rd := bytes.NewReader(nil)
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(blob)
			req := httptest.NewRequest("POST", "/v1/traces", rd)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code >= 300 {
				b.Fatalf("ingest answered %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
}

func ServeIngestWarm(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		j := ingestTrace()
		blob, err := darshan.MarshalBinary(j)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{}.Normalized()
		res, err := core.Categorize(j, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.PutResult(store.HashBytes(blob), cfg.Fingerprint(), res); err != nil {
			b.Fatal(err)
		}
		s, err := serve.New(serve.Config{
			Store: st, Workers: 1, QueueDepth: 16,
			NoBackfill: true, DisableTracing: !traced,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
			st.Close()
		}()
		h := s.Handler()
		rd := bytes.NewReader(nil)
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(blob)
			req := httptest.NewRequest("POST", "/v1/traces", rd)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code >= 300 {
				b.Fatalf("ingest answered %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
}
