package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// testJob builds a small valid write-on-end trace whose content
// address varies with seed.
func testJob(seed int) *darshan.Job {
	j := &darshan.Job{
		JobID:   uint64(7000 + seed),
		UID:     42,
		User:    "tester",
		Exe:     fmt.Sprintf("/apps/sim%d", seed),
		NProcs:  4,
		Start:   0,
		End:     100,
		Runtime: 100,
	}
	j.Records = []darshan.FileRecord{{
		Module: darshan.ModPOSIX,
		Path:   "/scratch/out.dat",
		Rank:   -1,
		C: darshan.Counters{
			Opens: 1, Closes: 1, Writes: 10, BytesWritten: 200 << 20,
			OpenStart: 1, OpenEnd: 2, WriteStart: 90, WriteEnd: 99,
			CloseStart: 99, CloseEnd: 100,
		},
	}}
	return j
}

func encodeJob(t *testing.T, j *darshan.Job) []byte {
	t.Helper()
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *store.Store) {
	t.Helper()
	if cfg.Store == nil {
		dir := t.TempDir()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfg.Store
}

func postBlob(t *testing.T, url string, blob []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/traces", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// waitResult polls /v1/results/{id} until it answers 200.
func waitResult(t *testing.T, url string, id store.TraceID) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getBody(t, url+"/v1/results/"+string(id))
		switch resp.StatusCode {
		case http.StatusOK:
			return body
		case http.StatusAccepted:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("result %s: unexpected status %d: %s", id, resp.StatusCode, body)
		}
	}
	t.Fatalf("result %s never materialized", id)
	return ""
}

func TestServeIngestResultQueryStats(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blob := encodeJob(t, testJob(1))
	resp, body := postBlob(t, ts.URL, blob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first ingest: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"accepted"`) {
		t.Fatalf("first ingest not accepted: %s", body)
	}
	id, _, err := store.TraceKey(testJob(1))
	if err != nil {
		t.Fatal(err)
	}

	res := waitResult(t, ts.URL, id)
	if !strings.Contains(res, "write_on_end") {
		t.Fatalf("result missing write_on_end label: %s", res)
	}

	// Same trace again: served from the store, no recomputation.
	resp, body = postBlob(t, ts.URL, blob)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"cached"`) {
		t.Fatalf("re-ingest: status %d, body %s", resp.StatusCode, body)
	}
	if got := s.cacheHits.Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := s.cacheMisses.Value(); got != 1 {
		t.Fatalf("cache misses = %d, want 1", got)
	}

	// The metric is also visible on the exposition endpoint.
	resp, metrics := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(metrics, "mosaic_serve_cache_hits_total 1") {
		t.Fatalf("/metrics missing cache hit counter:\n%s", metrics)
	}

	// Query over the live index.
	resp, q := getBody(t, ts.URL+"/v1/query?q=write_on_end+NOT+read_on_start")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query status %d: %s", resp.StatusCode, q)
	}
	if !strings.Contains(q, string(id)) {
		t.Fatalf("query result missing trace id: %s", q)
	}

	resp, st := getBody(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	for _, want := range []string{s.Fingerprint(), `"indexed_traces": 1`, "temporality"} {
		if !strings.Contains(st, want) {
			t.Fatalf("/v1/stats missing %q:\n%s", want, st)
		}
	}

	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestServeMultipartIngest(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i := 1; i <= 3; i++ {
		fw, err := mw.CreateFormFile("trace", fmt.Sprintf("job%d.mosd", i))
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(encodeJob(t, testJob(i)))
	}
	// One unreadable part rides along without sinking the request.
	fw, _ := mw.CreateFormFile("trace", "garbage.mosd")
	fw.Write([]byte("MOSDthis is not a trace"))
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/traces", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart ingest: status %d, body %s", resp.StatusCode, body)
	}
	if got := strings.Count(string(body), `"accepted"`); got != 3 {
		t.Fatalf("accepted %d/3 parts: %s", got, body)
	}
	if !strings.Contains(string(body), `"unreadable"`) {
		t.Fatalf("garbage part not flagged unreadable: %s", body)
	}
	for i := 1; i <= 3; i++ {
		id, _, _ := store.TraceKey(testJob(i))
		waitResult(t, ts.URL, id)
	}
}

func TestServeHTTPErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/results/zzz", http.StatusBadRequest},
		{"/v1/results/" + strings.Repeat("ab", 32), http.StatusNotFound},
		{"/v1/query", http.StatusBadRequest},
		{"/v1/query?q=%28broken", http.StatusBadRequest},
		{"/v1/query?q=no_such_cat_xyz", http.StatusBadRequest},
		{"/v1/query?q=write_on_end&limit=-1", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := getBody(t, ts.URL+tc.url)
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d (%s)", tc.url, resp.StatusCode, tc.want, body)
		}
	}

	// Unreadable raw body is reported per-item.
	resp, body := postBlob(t, ts.URL, []byte("not a trace at all"))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"unreadable"`) {
		t.Fatalf("garbage ingest: status %d, body %s", resp.StatusCode, body)
	}
	resp, body = postBlob(t, ts.URL, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d, body %s", resp.StatusCode, body)
	}
}

// blockingExec parks every Categorize call until released, so tests
// can hold the worker pool busy deterministically.
type blockingExec struct {
	release chan struct{}
	inner   engine.Local
}

func (b *blockingExec) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.inner.Categorize(ctx, j, cfg)
}

func (b *blockingExec) Concurrency() int { return 1 }

func TestServeBackpressure(t *testing.T) {
	exec := &blockingExec{release: make(chan struct{}), inner: engine.Local{Workers: 1}}
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Executor: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Worker blocked + queue depth 1: at most two distinct traces can be
	// absorbed, so the third must be pushed back with 429.
	var saw429 bool
	for i := 0; i < 3; i++ {
		resp, body := postBlob(t, ts.URL, encodeJob(t, testJob(100+i)))
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
			if !strings.Contains(string(body), `"rejected"`) {
				t.Fatalf("429 body lacks rejected item: %s", body)
			}
		default:
			t.Fatalf("ingest %d: unexpected status %d: %s", i, resp.StatusCode, body)
		}
	}
	if !saw429 {
		t.Fatal("queue never pushed back with 429")
	}

	close(exec.release)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after backpressure: %v", err)
	}
}

func TestServeGracefulDrainPreservesAcceptedTraces(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{Store: st, Workers: 2, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())

	const n = 8
	var ids []store.TraceID
	for i := 0; i < n; i++ {
		blob := encodeJob(t, testJob(200+i))
		resp, body := postBlob(t, ts.URL, blob)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, body)
		}
		id, _, err := store.TraceKey(testJob(200 + i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Drain immediately: every accepted trace must still be categorized.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	ts.Close()
	for _, id := range ids {
		if !st.HasResult(id, s.Fingerprint()) {
			t.Fatalf("accepted trace %s lost on drain", id)
		}
	}
	wantMatches, err := s.Index().Query("write_on_end")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the rebuilt index must be identical.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := New(Config{Store: st2, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.Index().Len(); got != n {
		t.Fatalf("reopened index holds %d traces, want %d", got, n)
	}
	gotMatches, err := s2.Index().Query("write_on_end")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMatches) != len(wantMatches) {
		t.Fatalf("reopened query = %d matches, want %d", len(gotMatches), len(wantMatches))
	}
	for i := range gotMatches {
		if gotMatches[i] != wantMatches[i] {
			t.Fatalf("reopened index diverges at %d: %s != %s", i, gotMatches[i], wantMatches[i])
		}
	}
	for _, id := range ids {
		cats := s2.Index().Categories(id)
		if len(cats) == 0 {
			t.Fatalf("reopened index lost categories of %s", id)
		}
	}
}

func TestServeBackfillHealsMissingResults(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash after durability but before categorization:
	// blobs in the store, no results.
	var ids []store.TraceID
	for i := 0; i < 5; i++ {
		id, _, err := st.PutTrace(testJob(300 + i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s, _ := newTestServer(t, Config{Store: st, Workers: 2, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, id := range ids {
		waitResult(t, ts.URL, id)
	}
	if got := s.Index().Len(); got != 5 {
		t.Fatalf("backfill indexed %d traces, want 5", got)
	}
	if got := s.cacheMisses.Value(); got != 5 {
		t.Fatalf("backfill categorized %d traces, want 5", got)
	}
}

func TestServeConcurrentIngestAndQuery(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const producers, perProducer = 6, 15
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Query/stat readers run concurrently with the ingest storm.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := getBody(t, ts.URL+"/v1/query?q=write_on_end")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("concurrent query: status %d: %s", resp.StatusCode, body)
					return
				}
				resp, _ = getBody(t, ts.URL+"/v1/stats")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("concurrent stats: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	var ingestWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		ingestWG.Add(1)
		go func(p int) {
			defer ingestWG.Done()
			for i := 0; i < perProducer; i++ {
				blob := encodeJob(t, testJob(1000+p*perProducer+i))
				for {
					resp, body := postBlob(t, ts.URL, blob)
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
						t.Errorf("concurrent ingest: status %d: %s", resp.StatusCode, body)
					}
					break
				}
			}
		}(p)
	}
	ingestWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := s.Index().Len(); got != producers*perProducer {
		t.Fatalf("indexed %d traces, want %d", got, producers*perProducer)
	}
}
