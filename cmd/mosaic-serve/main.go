// Command mosaic-serve runs the MOSAIC online analysis service: a
// long-lived HTTP server that ingests Darshan-like traces, categorizes
// them through the staged engine, and answers boolean category queries
// over the accumulated corpus.
//
//	POST /v1/traces        ingest traces (multipart file parts or raw body)
//	POST /v1/traces:batch  bulk ingest (multipart, or length-prefixed
//	                       application/x-mosaic-batch frames); the whole
//	                       batch is persisted with one group-committed
//	                       fsync before any item is acknowledged
//	GET  /v1/results/{id}  categorization of one trace by content address
//	GET  /v1/explain/{id}  decision provenance: why each category was (or
//	                       wasn't) assigned (?category= filters rules)
//	GET  /v1/query?q=...   boolean query, e.g. 'periodic_minute AND write_on_end'
//	GET  /v1/stats         store, index and queue statistics
//	GET  /metrics          Prometheus exposition (OpenMetrics with
//	                       trace-ID exemplars when Accept asks for it)
//	GET  /healthz          liveness
//	GET  /debug/requests   recent requests with per-phase latency
//	                       (?format=text for a table); /{id} for the
//	                       full span tree of one request
//
// Every request carries a correlation ID: a client-supplied
// X-Request-Id is kept, otherwise one is generated; the ID is echoed in
// the response and attached to all ingest/query/explain log lines.
// Every request is also traced end to end (W3C traceparent accepted and
// echoed): the span tree covers the HTTP edge, queue wait, engine
// stages, the group-committed store fsync and the index update, and the
// flight recorder retains the last -flight-keep completed requests —
// slow (-slow-dump-ms) or errored ones are dumped to -flight-dir as
// Chrome trace JSON. -no-request-traces switches all of it off.
//
// Results are stored content-addressed under the configuration
// fingerprint, so re-ingesting a trace (or restarting the server) never
// re-categorizes it: the store is the cache. SIGINT/SIGTERM drain
// gracefully — intake stops with 503, every accepted trace is finished
// (bounded by -drain-timeout), the store is synced, and the process
// exits 0. Accepted traces survive even a hard kill: blobs are durable
// before the ingest is acknowledged, and the next startup backfills any
// missing categorizations.
//
// Usage:
//
//	mosaic-serve -store ./data [-addr :8080] [-debug-addr :8081]
//	             [-workers N] [-queue 256] [-drain-timeout 30s]
//	             [-flight-dir ./flight] [-slow-dump-ms 250] [-slo-ms 500]
//	mosaic-serve -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/serve"
	"github.com/mosaic-hpc/mosaic/internal/store"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// parsePeers decodes the -peers flag: comma-separated
// id=rpcAddr[=httpAddr] entries.
func parsePeers(s string) ([]ring.Node, error) {
	var nodes []ring.Node
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, "=")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("malformed peer %q, want id=rpcAddr[=httpAddr]", entry)
		}
		n := ring.Node{ID: parts[0], Addr: parts[1]}
		if len(parts) == 3 {
			n.HTTPAddr = parts[2]
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no peers in %q", s)
	}
	return nodes, nil
}

// version is the build version, overridable at link time via
// -ldflags "-X main.version=...".
var version = "1.3.0"

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP address to serve the analysis API on")
		storeDir     = flag.String("store", "", "result store directory (required; created when missing)")
		workers      = flag.Int("workers", 2, "ingest workers draining the categorization queue")
		queueDepth   = flag.Int("queue", 256, "ingest queue depth; a full queue answers 429")
		maxUploadMB  = flag.Int64("max-upload-mb", 256, "largest accepted trace upload in MiB")
		cacheMB      = flag.Int64("cache-mb", 32, "store read-cache budget in MiB (0 disables)")
		syncWrites   = flag.Bool("sync", false, "fsync the store after every append (durable but slow)")
		debugAddr    = flag.String("debug-addr", "", "serve engine metrics, spans and pprof on this address (empty: disabled)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to finish queued traces on shutdown")
		explainOn    = flag.Bool("explain", true, "collect and store a decision-provenance record per trace, served on GET /v1/explain/{id}")
		explainM     = flag.Float64("explain-margin", 0.05, "near-miss margin for explanation evidence, as a fraction of each threshold")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
		showVersion  = flag.Bool("v", false, "print version and exit")

		noTraces   = flag.Bool("no-request-traces", false, "disable per-request tracing and the flight recorder")
		flightKeep = flag.Int("flight-keep", 64, "completed request traces retained for GET /debug/requests")
		flightDir  = flag.String("flight-dir", "", "directory receiving Chrome-trace dumps of slow or errored requests (empty: no dumps)")
		slowDumpMS = flag.Int64("slow-dump-ms", 0, "dump any request slower than this many milliseconds to -flight-dir (0: errors only)")
		sloMS      = flag.Int64("slo-ms", 0, "per-request latency SLO target in milliseconds; breaches count in mosaic_slo_latency_breaches_total (0: off)")

		eventsCap  = flag.Int("events-keep", 1024, "cluster events retained in memory for GET /v1/events")
		eventsFile = flag.String("events-file", "", "append-only file persisting the event journal across restarts (empty: memory only)")
		noAlerts   = flag.Bool("no-alerts", false, "disable the SLO burn-rate alert evaluator")
		diagDir    = flag.String("diag-dir", "", "directory receiving diagnostic bundles (CPU/heap profiles + flight traces) when an alert fires (empty: disabled)")

		nodeID     = flag.String("node", "", "this node's ID; enables cluster mode (must appear in -peers)")
		rpcAddr    = flag.String("rpc-addr", "", "TCP address for inbound cluster RPCs (required with -node)")
		peers      = flag.String("peers", "", "static cluster membership: comma-separated id=rpcAddr[=httpAddr] entries, identical on every node")
		replicas   = flag.Int("replicas", 2, "total copies of each trace, owner included (capped at the node count)")
		replicaAck = flag.Int("replica-ack", 1, "follower copies that must be durable before an ingest is acked (0: async replication)")
		vnodes     = flag.Int("vnodes", 128, "virtual nodes per member on the consistent-hash ring")

		sigMB   = flag.Int64("significance-mb", 100, "significance threshold in MB for read/write volumes")
		chunks  = flag.Int("chunks", 4, "number of temporal chunks")
		bw      = flag.Float64("bandwidth", 0.05, "Mean Shift bandwidth for periodicity detection")
		spikeHi = flag.Float64("spike-high", 250, "metadata high-spike threshold (req/s)")
		spike   = flag.Float64("spike", 50, "metadata spike threshold (req/s)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mosaic-serve -store DIR [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Printf("mosaic-serve %s\n", version)
		return
	}
	telemetry.SetBuildVersion(version)
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "mosaic-serve: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-serve:", err)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.SignificanceBytes = *sigMB << 20
	cfg.ChunkCount = *chunks
	cfg.MeanShiftBandwidth = *bw
	cfg.SpikeHighRate = *spikeHi
	cfg.SpikeRate = *spike

	var cacheBytes int64 = -1
	if *cacheMB > 0 {
		cacheBytes = *cacheMB << 20
	}
	st, err := store.Open(*storeDir, store.Options{CacheBytes: cacheBytes, Sync: *syncWrites})
	if err != nil {
		log.Error("opening store failed", "dir", *storeDir, "err", err)
		os.Exit(1)
	}
	sstats := st.Stats()
	log.Info("store opened", "dir", *storeDir,
		"traces", sstats.Traces, "results", sstats.Results,
		"segments", sstats.Segments, "dropped_tail_bytes", sstats.DroppedTailBytes)

	// One telemetry bundle hosts the serve metrics, the engine stage
	// metrics and the per-ingest spans; -debug-addr exposes all of it.
	tel := telemetry.New(telemetry.Config{Spans: true, SpanLimit: 4096, Logger: log})
	var flight *reqtrace.Recorder
	if !*noTraces {
		flight = reqtrace.NewRecorder(reqtrace.RecorderConfig{
			Capacity:      *flightKeep,
			Dir:           *flightDir,
			SlowThreshold: time.Duration(*slowDumpMS) * time.Millisecond,
			Log:           log,
		})
	}
	// The event journal: an in-memory ring behind GET /v1/events,
	// optionally persisted through a CRC-framed append-only log whose
	// surviving records are replayed as backlog on startup — node_down
	// and friends survive the restart they often explain.
	var (
		evSink  events.Sink
		backlog []events.Event
	)
	if *eventsFile != "" {
		elog, err := store.OpenAppendLog(*eventsFile, *syncWrites)
		if err != nil {
			log.Error("opening event journal failed", "path", *eventsFile, "err", err)
			st.Close()
			os.Exit(1)
		}
		defer elog.Close()
		var records [][]byte
		if err := elog.Replay(func(v []byte) bool {
			records = append(records, append([]byte(nil), v...))
			return true
		}); err != nil {
			log.Warn("event journal replay failed", "err", err)
		}
		backlog = events.DecodeBacklog(records, *eventsCap)
		evSink = elog
	}
	evLog := events.NewLog(events.Config{
		Capacity: *eventsCap, Node: *nodeID, Logger: log, Sink: evSink, Backlog: backlog,
	})

	scfg := serve.Config{
		Store:          st,
		Analysis:       cfg,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxUploadBytes: *maxUploadMB << 20,
		Telemetry:      tel,
		Log:            log,
		Explain:        *explainOn,
		ExplainMargin:  *explainM,
		Flight:         flight,
		DisableTracing: *noTraces,
		SLO:            time.Duration(*sloMS) * time.Millisecond,
		Events:         evLog,
		DisableAlerts:  *noAlerts,
		DiagDir:        *diagDir,
	}
	if *nodeID != "" {
		if *rpcAddr == "" || *peers == "" {
			log.Error("cluster mode needs -rpc-addr and -peers alongside -node")
			st.Close()
			os.Exit(2)
		}
		nodes, err := parsePeers(*peers)
		if err != nil {
			log.Error("parsing -peers failed", "err", err)
			st.Close()
			os.Exit(2)
		}
		scfg.Cluster = &ring.Config{
			Self:         *nodeID,
			Nodes:        nodes,
			VirtualNodes: *vnodes,
			Replication:  *replicas,
			ReplicaAck:   *replicaAck,
		}
	}
	srv, err := serve.New(scfg)
	if err != nil {
		log.Error("starting service failed", "err", err)
		st.Close()
		os.Exit(1)
	}
	if scfg.Cluster != nil {
		rl, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Error("cluster RPC listen failed", "addr", *rpcAddr, "err", err)
			st.Close()
			os.Exit(1)
		}
		info := srv.Cluster().Info()
		log.Info("cluster mode", "node", *nodeID, "rpc_addr", rl.Addr().String(),
			"members", len(info.Nodes), "replication", info.Replication,
			"replica_ack", info.ReplicaAck, "table_version", info.Version)
		go func() {
			if err := srv.ServeCluster(rl); err != nil {
				log.Error("cluster RPC server failed", "err", err)
			}
		}()
	}
	if *debugAddr != "" {
		// The flight recorder rides on the debug server too, next to
		// /metrics and pprof, so request introspection does not require
		// the API address.
		var extra []telemetry.Route
		if flight != nil {
			fh := flight.Handler()
			extra = append(extra,
				telemetry.Route{Pattern: "GET /debug/requests", Handler: fh},
				telemetry.Route{Pattern: "GET /debug/requests/{id}", Handler: fh})
		}
		dbg, err := telemetry.StartServer(*debugAddr, tel.Registry(), tel, log, extra...)
		if err != nil {
			log.Error("debug server failed to start", "addr", *debugAddr, "err", err)
			st.Close()
			os.Exit(1)
		}
		defer dbg.Close()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		st.Close()
		os.Exit(1)
	}
	// Log the *resolved* address: ":0" style flags resolve to a real port.
	log.Info("serving", "addr", l.Addr().String(),
		"fingerprint", srv.Fingerprint(), "workers", *workers,
		"queue", *queueDepth, "version", version)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	exit := 0
	select {
	case sig := <-sigc:
		log.Info("signal received, draining", "signal", sig.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		// Stop intake first, then finish every queued categorization.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("closing HTTP listener", "err", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("drain timed out; accepted traces will be backfilled on restart", "err", err)
		} else {
			log.Info("drained cleanly")
		}
		cancel()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			exit = 1
		}
	}
	if err := st.Close(); err != nil {
		log.Error("closing store failed", "err", err)
		exit = 1
	}
	os.Exit(exit)
}
