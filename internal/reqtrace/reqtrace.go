// Package reqtrace is MOSAIC's request-scoped tracing layer: a
// per-request span tree created at the HTTP edge and threaded via
// context.Context through every async boundary of the serve tier —
// queue admission, worker categorization, store group-commit, index
// update — plus a fixed-size flight recorder retaining the last N
// completed request traces and auto-dumping Chrome-trace JSON for
// requests that error or run slow.
//
// Like internal/telemetry it is stdlib-only and opt-in: a context
// without an active trace makes every StartSpan/AddSpan call a no-op
// with no allocation, so paths that do not enable tracing pay nothing.
//
// A request trace outlives its HTTP request: ingest acknowledges with
// 202 while categorization continues on a worker. The trace therefore
// completes by reference counting — the HTTP edge finishes the root
// span, each queued unit of async work holds a reference, and the
// trace finalizes (and reaches the flight recorder) when the root is
// finished and the last reference is released.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). It accepts
// any version byte except the reserved "ff" and requires non-zero
// trace and span IDs, per the spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	if len(h) > 55 && h[55] != '-' { // future versions may append fields
		return tid, sid, false
	}
	// Version 0xff is reserved; hex decoding is case-insensitive, so the
	// check must be too ("Ff" is just as reserved as "ff").
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[:2])); err != nil || ver[0] == 0xff {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set — the header echoed to (and propagated by) clients.
// One allocation: the hot path builds the 55-byte value in place.
func FormatTraceparent(tid TraceID, sid SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tid[:])
	b[35] = '-'
	hex.Encode(b[36:52], sid[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// idSeed randomizes generated trace IDs per process; the per-trace
// counter then guarantees uniqueness without per-request entropy reads.
var idSeed [16]byte

var idCtr atomic.Uint64

func init() {
	if _, err := rand.Read(idSeed[:]); err != nil {
		// Degraded but functional: IDs stay unique via the counter.
		binary.LittleEndian.PutUint64(idSeed[:8], uint64(time.Now().UnixNano()))
	}
}

// newTraceID returns a process-unique random-looking trace ID.
func newTraceID() TraceID {
	id := idSeed
	c := idCtr.Add(1)
	binary.BigEndian.PutUint64(id[8:], binary.BigEndian.Uint64(id[8:])^c)
	return id
}

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// Span is one completed timed unit of work inside a request trace.
type Span struct {
	ID     SpanID
	Parent SpanID // zero for the root's remote parent-less case
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
	Err    string
}

// maxSpans bounds one trace's span count so a pathological request
// cannot grow a trace without bound; spans past the cap are counted,
// not retained.
const maxSpans = 512

// inlineSpans and inlineAttrs size the scratch storage every live
// trace starts with: a typical ingest records ~10 spans (root, decode,
// two commits, queue wait, worker, engine stages, index update) with a
// couple of annotations each, so recording spans on the common request
// never touches the allocator.
const (
	inlineSpans = 12
	inlineAttrs = 24
)

// traceScratch is the recording buffer a live trace writes spans into.
// It is allocated separately from the Trace and dropped at finalize,
// when compactLocked copies the recorded spans into exact-size slices:
// the flight-recorder ring then retains ~¼ the memory per trace, which
// keeps the GC scan cost of a full 256-entry ring off the request hot
// path.
type traceScratch struct {
	spanBuf  [inlineSpans]Span
	arenaBuf [inlineAttrs]Attr
}

// scratchPool recycles recording buffers across requests: a scratch is
// owned by exactly one live trace (New → finalize), so the pool turns
// the largest per-request allocation into a reuse.
var scratchPool = sync.Pool{New: func() any { return new(traceScratch) }}

// Trace is one request's span tree, safe for concurrent use: the HTTP
// goroutine, queue workers and engine stage goroutines all record into
// it. It finalizes once — when FinishRoot has run and every Hold has
// been Released — and then invokes the OnDone hook (normally the
// flight recorder) exactly once.
type Trace struct {
	id           TraceID
	root         SpanID
	remoteParent SpanID // parent span from an incoming traceparent
	reqID        string
	method       string
	route        string
	start        time.Time
	tp           string  // cached traceparent value, built once in New
	rootRef      spanRef // context value for NewContext, zero-alloc

	spanCtr atomic.Uint64

	mu        sync.Mutex
	spans     []Span
	arena     []Attr // attribute storage shared by this trace's spans
	dropped   int
	refs      int
	rootEnded bool
	finished  bool
	status    int
	errMsg    string
	end       time.Time // latest recorded span end
	onDone    func(*Trace)
	scratch   *traceScratch // recording buffers; nil once compacted
}

// StartOptions configures a new request trace.
type StartOptions struct {
	// Traceparent is the incoming W3C header value; when valid its
	// trace ID is adopted and its span ID becomes the root's parent.
	// Invalid or empty values start a fresh trace.
	Traceparent string
	// RequestID is the X-Request-Id correlation ID.
	RequestID string
	// Method and Route name the root span ("POST /v1/traces").
	Method, Route string
	// Start is the request arrival time (zero: now).
	Start time.Time
	// OnDone runs exactly once when the trace finalizes; the flight
	// recorder's Complete is the usual target. It is invoked
	// synchronously from whichever goroutine releases the last
	// reference.
	OnDone func(*Trace)
}

// New starts a request trace holding one reference (released by
// FinishRoot).
func New(o StartOptions) *Trace {
	t := &Trace{
		reqID:  o.RequestID,
		method: o.Method,
		route:  o.Route,
		start:  o.Start,
		refs:   1,
		onDone: o.OnDone,
		status: -1,
	}
	if t.start.IsZero() {
		t.start = time.Now()
	}
	if tid, sid, ok := ParseTraceparent(o.Traceparent); ok {
		t.id = tid
		t.remoteParent = sid
	} else {
		t.id = newTraceID()
	}
	t.root = t.newSpanID()
	t.scratch = scratchPool.Get().(*traceScratch)
	t.spans = t.scratch.spanBuf[:0]
	t.arena = t.scratch.arenaBuf[:0]
	t.tp = FormatTraceparent(t.id, t.root)
	t.rootRef = spanRef{t: t, parent: t.root}
	return t
}

func (t *Trace) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.spanCtr.Add(1))
	return id
}

// ID returns the trace ID.
func (t *Trace) ID() TraceID { return t.id }

// Root returns the root span ID (the one echoed in traceparent).
func (t *Trace) Root() SpanID { return t.root }

// RequestID returns the correlation ID captured at start.
func (t *Trace) RequestID() string { return t.reqID }

// Start returns the request arrival time.
func (t *Trace) Start() time.Time { return t.start }

// Traceparent returns the outgoing traceparent header value for this
// trace's root span (cached — no per-call formatting).
func (t *Trace) Traceparent() string { return t.tp }

// IDString returns the trace ID as 32 hex characters without
// allocating: it is a slice of the cached traceparent value.
func (t *Trace) IDString() string { return t.tp[3:35] }

// SetError marks the whole request as errored (flight-recorder dump
// trigger), keeping the first message.
func (t *Trace) SetError(msg string) {
	t.mu.Lock()
	if t.errMsg == "" {
		t.errMsg = msg
	}
	t.mu.Unlock()
}

// Hold adds one reference for a unit of async work linked to the
// request (a queued categorization). Every Hold needs exactly one
// Release.
func (t *Trace) Hold() {
	t.mu.Lock()
	t.refs++
	t.mu.Unlock()
}

// Release drops one reference, finalizing the trace when it was the
// last and the root already finished.
func (t *Trace) Release() {
	t.mu.Lock()
	t.refs--
	done := t.refs == 0 && t.rootEnded && !t.finished
	if done {
		t.finished = true
		t.compactLocked()
	}
	hook := t.onDone
	t.mu.Unlock()
	if done && hook != nil {
		hook(t)
	}
}

// compactLocked moves the recorded spans out of the oversized scratch
// buffers into exact-size slices and drops the scratch, so a finalized
// trace retained by the flight recorder pins only what it used. Runs
// once, under t.mu, as the trace finalizes.
func (t *Trace) compactLocked() {
	if t.scratch == nil {
		return
	}
	sc := t.scratch
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	na := 0
	for i := range spans {
		na += len(spans[i].Attrs)
	}
	arena := make([]Attr, 0, na)
	for i := range spans {
		if len(spans[i].Attrs) == 0 {
			continue
		}
		off := len(arena)
		arena = append(arena, spans[i].Attrs...)
		spans[i].Attrs = arena[off:len(arena):len(arena)]
	}
	t.spans, t.arena, t.scratch = spans, arena, nil
	*sc = traceScratch{} // drop attr string refs before pooling
	scratchPool.Put(sc)
}

// FinishRoot records the root span (edge → response write), tags it
// with the HTTP status, and releases the reference New created. Async
// holders may still be running; the trace finalizes when the last one
// releases.
func (t *Trace) FinishRoot(status int, attrs ...Attr) {
	now := time.Now()
	t.mu.Lock()
	if !t.rootEnded {
		t.rootEnded = true
		t.status = status
		name := t.route
		if t.method != "" {
			name = t.method + " " + t.route
		}
		t.addLockedExtra(Span{
			ID: t.root, Parent: t.remoteParent, Name: name,
			Start: t.start, Dur: now.Sub(t.start),
		}, attrs, Attr{Key: "http.status", Value: statusString(status)})
	}
	t.mu.Unlock()
	t.Release()
}

// statusTab caches the decimal strings of common HTTP statuses so
// FinishRoot skips strconv on the hot path.
var statusTab [600]string

func init() {
	for _, c := range []int{200, 201, 202, 204, 206, 301, 302, 304, 400,
		401, 403, 404, 405, 409, 410, 413, 415, 422, 429, 500, 501, 502, 503, 504} {
		statusTab[c] = strconv.Itoa(c)
	}
}

func statusString(code int) string {
	if code >= 0 && code < len(statusTab) && statusTab[code] != "" {
		return statusTab[code]
	}
	return strconv.Itoa(code)
}

// addLocked appends one completed span, copying attrs into the trace's
// arena (so callers' attr slices never escape) and maintaining the
// trace envelope end. Callers hold t.mu.
func (t *Trace) addLocked(s Span, attrs []Attr) {
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	s.Attrs = t.claimAttrsLocked(attrs)
	t.spans = append(t.spans, s)
	if end := s.Start.Add(s.Dur); end.After(t.end) {
		t.end = end
	}
}

// addLockedExtra is addLocked with one extra attribute appended after
// attrs — it lands in the arena alongside them, so FinishRoot can tag
// the root span's status without building a combined slice first.
func (t *Trace) addLockedExtra(s Span, attrs []Attr, extra Attr) {
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	need := len(attrs) + 1
	if n := len(t.arena); n+need <= cap(t.arena) {
		t.arena = append(t.arena, attrs...)
		t.arena = append(t.arena, extra)
		s.Attrs = t.arena[n : n+need : n+need]
	} else {
		s.Attrs = append(append(make([]Attr, 0, need), attrs...), extra)
	}
	t.spans = append(t.spans, s)
	if end := s.Start.Add(s.Dur); end.After(t.end) {
		t.end = end
	}
}

// claimAttrsLocked copies attrs into the trace's inline arena, falling
// back to a plain heap copy once the arena is exhausted. Callers hold
// t.mu. The returned slice is capped at its length so a later SetAttr
// append cannot bleed into the next span's storage.
func (t *Trace) claimAttrsLocked(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	if n := len(t.arena); n+len(attrs) <= cap(t.arena) {
		t.arena = append(t.arena, attrs...)
		return t.arena[n:len(t.arena):len(t.arena)]
	}
	return append([]Attr(nil), attrs...)
}

// AddCompleted records an already-timed span under the given parent
// and returns its ID (for linking further children).
func (t *Trace) AddCompleted(parent SpanID, name string, start time.Time, dur time.Duration, attrs ...Attr) SpanID {
	id := t.newSpanID()
	t.mu.Lock()
	t.addLocked(Span{ID: id, Parent: parent, Name: name, Start: start, Dur: dur}, attrs)
	t.mu.Unlock()
	return id
}

// Status returns the recorded HTTP status (-1 before FinishRoot).
func (t *Trace) Status() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Err returns the request-level error message ("" when none).
func (t *Trace) Err() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg
}

// Duration returns the envelope duration: request arrival to the end
// of the latest recorded span (async work included).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return 0
	}
	return t.end.Sub(t.start)
}

// Errored reports whether the request should trigger an error dump: a
// 5xx status or an explicit SetError.
func (t *Trace) Errored() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg != "" || t.status >= 500
}

// Spans returns a copy of the recorded spans, in record order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded past the per-trace cap.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ---- context propagation ----

type ctxKey struct{}

// spanRef is the context value: the active trace plus the span that new
// children should parent under. It travels as a pointer — embedded in
// the Trace (root) or the ActiveSpan (children) — so deriving a traced
// context never boxes a value into an interface.
type spanRef struct {
	t      *Trace
	parent SpanID
}

// NewContext returns ctx carrying the trace with the root span as the
// current parent — the HTTP middleware's entry point.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &t.rootRef)
}

// ContextWithParent returns ctx carrying the trace with an explicit
// current parent span — how workers resume a request's trace on a
// fresh (non-request) context after crossing the queue boundary.
func ContextWithParent(ctx context.Context, t *Trace, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &spanRef{t: t, parent: parent})
}

// FromContext returns the active trace and current parent span, or
// (nil, zero, false) when the context is untraced.
func FromContext(ctx context.Context) (*Trace, SpanID, bool) {
	sc, ok := ctx.Value(ctxKey{}).(*spanRef)
	if !ok {
		return nil, SpanID{}, false
	}
	return sc.t, sc.parent, true
}

// spanInlineAttrs is the per-span inline annotation capacity; spans
// with more spill to the heap.
const spanInlineAttrs = 6

// ActiveSpan is an in-progress span. The zero of its pointer type is a
// valid no-op: every method tolerates a nil receiver, so call sites
// never branch on whether tracing is enabled. Attributes live in a
// fixed inline buffer until End copies them into the trace, so the
// variadic attr slices at call sites stay on the caller's stack.
type ActiveSpan struct {
	t        *Trace
	id       SpanID
	parent   SpanID
	name     string
	start    time.Time
	childRef spanRef // context value for descendants
	nattrs   int
	attrBuf  [spanInlineAttrs]Attr
	spill    []Attr // overflow past attrBuf (rare)
	err      string
}

// StartSpan opens a child span of the context's current parent and
// returns a context making the new span the parent for further
// descendants. On an untraced context it returns ctx unchanged and a
// nil span — no allocation, no clock read.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	sp := StartLeaf(ctx, name, attrs...)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, &sp.childRef), sp
}

// StartLeaf opens a child span without deriving a context — for spans
// that will have no traced descendants (a store commit, a decode). It
// skips StartSpan's context allocation; otherwise identical.
func StartLeaf(ctx context.Context, name string, attrs ...Attr) *ActiveSpan {
	sc, ok := ctx.Value(ctxKey{}).(*spanRef)
	if !ok {
		return nil
	}
	sp := &ActiveSpan{
		t: sc.t, id: sc.t.newSpanID(), parent: sc.parent,
		name: name, start: time.Now(),
	}
	sp.childRef = spanRef{t: sc.t, parent: sp.id}
	sp.SetAttr(attrs...)
	return sp
}

// SetAttr appends attributes to the span.
func (s *ActiveSpan) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	for _, a := range attrs {
		if s.nattrs < len(s.attrBuf) {
			s.attrBuf[s.nattrs] = a
			s.nattrs++
		} else {
			s.spill = append(s.spill, a)
		}
	}
}

// SetError marks the span (and its trace) errored.
func (s *ActiveSpan) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
	s.t.SetError(s.err)
}

// ID returns the span's ID (zero for the no-op span).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// End completes the span and records it into the trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	now := time.Now()
	attrs := s.attrBuf[:s.nattrs]
	if s.spill != nil {
		attrs = append(append([]Attr(nil), attrs...), s.spill...)
	}
	s.t.mu.Lock()
	s.t.addLocked(Span{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Dur: now.Sub(s.start), Err: s.err,
	}, attrs)
	s.t.mu.Unlock()
}

// AddSpan records an already-timed span under the context's current
// parent (queue waits, engine stage spans replayed from the
// SpanObserver seam). No-op on untraced contexts.
func AddSpan(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	sc, ok := ctx.Value(ctxKey{}).(*spanRef)
	if !ok {
		return
	}
	sc.t.AddCompleted(sc.parent, name, start, dur, attrs...)
}
