package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// KMeansConfig parametrizes KMeans, the ablation baseline against Mean
// Shift. Unlike Mean Shift it needs the number of clusters up front —
// exactly the property that makes it a poor fit for periodicity detection
// (the number of distinct periodic operations per trace is unknown), which
// the ablation bench quantifies.
type KMeansConfig struct {
	K        int   // number of clusters, must be >= 1
	MaxIter  int   // default 100
	Seed     int64 // seeding for k-means++ initialization
	Restarts int   // independent restarts, best inertia wins (default 1)
}

// ErrBadK reports a non-positive cluster count.
var ErrBadK = errors.New("cluster: k must be >= 1")

// KMeans runs Lloyd's algorithm with k-means++ initialization and returns
// the best result over the configured restarts along with its inertia
// (sum of squared distances to assigned centers).
func KMeans(points []Point, cfg KMeansConfig) (*Result, float64, error) {
	if cfg.K < 1 {
		return nil, 0, ErrBadK
	}
	if err := checkPoints(points); err != nil {
		return nil, 0, err
	}
	if len(points) == 0 {
		return &Result{}, 0, nil
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var best *Result
	bestInertia := math.Inf(1)
	for r := 0; r < cfg.Restarts; r++ {
		res, inertia := kmeansOnce(points, k, cfg.MaxIter, rng)
		if inertia < bestInertia {
			best, bestInertia = res, inertia
		}
	}
	return best, bestInertia, nil
}

func kmeansOnce(points []Point, k, maxIter int, rng *rand.Rand) (*Result, float64) {
	centers := kmeansPlusPlusInit(points, k, rng)
	labels := make([]int, len(points))
	dim := len(points[0])

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for ci, c := range centers {
				if d := Dist2(p, c); d < bd {
					bi, bd = ci, d
				}
			}
			if labels[i] != bi {
				labels[i] = bi
				changed = true
			}
		}
		// Recompute centers.
		sums := make([]Point, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make(Point, dim)
		}
		for i, p := range points {
			l := labels[i]
			counts[l]++
			for d := range p {
				sums[l][d] += p[d]
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its center to avoid dead clusters.
				centers[ci] = append(Point(nil), farthestPoint(points, centers, labels)...)
				changed = true
				continue
			}
			for d := range centers[ci] {
				centers[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += Dist2(p, centers[labels[i]])
	}
	return &Result{Labels: labels, Centers: centers}, inertia
}

func farthestPoint(points []Point, centers []Point, labels []int) Point {
	bi, bd := 0, -1.0
	for i, p := range points {
		d := Dist2(p, centers[labels[i]])
		if d > bd {
			bi, bd = i, d
		}
	}
	return points[bi]
}

func kmeansPlusPlusInit(points []Point, k int, rng *rand.Rand) []Point {
	centers := make([]Point, 0, k)
	centers = append(centers, append(Point(nil), points[rng.Intn(len(points))]...))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var sum float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := Dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining points coincide with existing centers.
			centers = append(centers, append(Point(nil), points[rng.Intn(len(points))]...))
			continue
		}
		target := rng.Float64() * sum
		var acc float64
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, append(Point(nil), points[pick]...))
	}
	return centers
}

// GridQuantize is the simplest possible grouping baseline: snap each point
// to a grid of the given cell size per dimension and give identical cells
// identical labels. It approximates "two segments are the same periodic
// operation if duration and volume round to the same bucket" — cheap but
// brittle at cell boundaries, which the ablation bench demonstrates.
func GridQuantize(points []Point, cell []float64) (*Result, error) {
	if err := checkPoints(points); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return &Result{}, nil
	}
	if len(cell) != len(points[0]) {
		return nil, ErrDimensionMismatch
	}
	for _, c := range cell {
		if c <= 0 || math.IsNaN(c) {
			return nil, errors.New("cluster: grid cell sizes must be positive")
		}
	}
	type key string
	seen := make(map[key]int)
	labels := make([]int, len(points))
	var centers []Point
	for i, p := range points {
		var kb []byte
		cellIdx := make([]int64, len(p))
		for d := range p {
			cellIdx[d] = int64(math.Floor(p[d] / cell[d]))
			for b := 0; b < 8; b++ {
				kb = append(kb, byte(cellIdx[d]>>(8*b)))
			}
		}
		k := key(kb)
		id, ok := seen[k]
		if !ok {
			id = len(centers)
			seen[k] = id
			ctr := make(Point, len(p))
			for d := range ctr {
				ctr[d] = (float64(cellIdx[d]) + 0.5) * cell[d]
			}
			centers = append(centers, ctr)
		}
		labels[i] = id
	}
	return &Result{Labels: labels, Centers: centers}, nil
}
