// Command mosaic-worker runs a distributed categorization worker: it
// listens for RPC connections from a mosaic master (see the
// examples/distributed program) and categorizes the traces it receives.
// This is the role Dispy workers played in the paper's Python
// implementation.
//
// The worker is observable and drains cleanly: -debug-addr serves
// Prometheus metrics (/metrics), liveness (/healthz) and pprof, and
// SIGINT/SIGTERM stop accepting, finish in-flight RPCs, log a drain
// line, and exit 0.
//
// Usage:
//
//	mosaic-worker [-listen :7464] [-debug-addr :8080]
//	              [-log-level info] [-log-format text] [-drain-timeout 10s]
//	mosaic-worker -v
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/dist"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// version is the worker build version, overridable at link time via
// -ldflags "-X main.version=...".
var version = "1.2.0"

func main() {
	var (
		listen       = flag.String("listen", ":7464", "TCP address to listen on")
		frame        = flag.Bool("frame", false, "speak the cluster's binary frame transport instead of net/rpc (masters dial with DialFrame)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /healthz and pprof on this address (empty: disabled)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight RPCs on shutdown")
		showVersion  = flag.Bool("v", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("mosaic-worker %s\n", version)
		return
	}
	telemetry.SetBuildVersion(version)
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaic-worker:", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	if *debugAddr != "" {
		dbg, err := telemetry.StartServer(*debugAddr, reg, nil, log)
		if err != nil {
			log.Error("debug server failed to start", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	// Log the *resolved* address: ":0" style flags resolve to a real port.
	log.Info("serving", "addr", l.Addr().String(), "frame", *frame, "version", version)

	// Both servers share the Serve/Shutdown shape; -frame selects the
	// cluster's binary frame transport over classic net/rpc.
	type worker interface {
		Serve(net.Listener) error
		Shutdown(context.Context) error
	}
	var srv worker
	if *frame {
		srv = dist.NewFrameServer(log, reg)
	} else {
		srv = dist.NewServer(log, reg)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("signal received, draining in-flight RPCs", "signal", sig.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("drain timed out, closing remaining connections", "err", err)
		} else {
			log.Info("drained cleanly, exiting")
		}
		<-errc // Serve returns once the listener closes
	case err := <-errc:
		if err != nil {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}
}
