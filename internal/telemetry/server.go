package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// EngineState is the /debug/engine JSON document: the live per-stage
// snapshot plus the slowest traces per stage.
type EngineState struct {
	Stages []any                  `json:"stages"` // []engine.StageSnapshot (kept as any to avoid a JSON-only import)
	Slow   map[string][]SlowEntry `json:"slow,omitempty"`
}

// NewMux builds the introspection handler set:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" liveness probe
//	/debug/engine  live engine stage snapshot + slow-trace log (JSON)
//	/debug/pprof/  net/http/pprof profiles
//
// t may be nil, in which case /debug/engine reports an empty state.
func NewMux(reg *Registry, t *Telemetry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/engine", func(w http.ResponseWriter, r *http.Request) {
		state := EngineState{Stages: []any{}}
		if t != nil {
			for _, s := range t.Stats().Snapshot() {
				state.Stages = append(state.Stages, s)
			}
			state.Slow = t.Slow().Snapshot()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(state)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection HTTP server.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the server down, draining in-flight requests briefly.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// StartServer binds addr and serves the introspection mux in a
// background goroutine. A nil log discards serve errors.
func StartServer(addr string, reg *Registry, t *Telemetry, log *slog.Logger) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, t), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			if log != nil {
				log.Error("debug server failed", "addr", addr, "err", err)
			}
		}
	}()
	if log != nil {
		log.Info("debug server listening", "addr", l.Addr().String())
	}
	return &Server{srv: srv, addr: l.Addr()}, nil
}
