package benchio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() File {
	return File{
		Go: "go1.x", OS: "linux", Arch: "amd64",
		Entries: []Entry{
			{Name: "BenchmarkB/sub", NsPerOp: 200, BytesPerOp: 64, AllocsPerOp: 2, Iterations: 100},
			{Name: "BenchmarkA", NsPerOp: 1000.5, BytesPerOp: 128, AllocsPerOp: 3, Iterations: 50},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Write sorts entries by name.
	if got.Entries[0].Name != "BenchmarkA" {
		t.Fatalf("entries not sorted: %+v", got.Entries)
	}
	if e, ok := got.Lookup("BenchmarkB/sub"); !ok || e.NsPerOp != 200 {
		t.Fatalf("lookup failed: %+v %v", e, ok)
	}
	if _, ok := got.Lookup("BenchmarkC"); ok {
		t.Fatal("lookup of missing entry succeeded")
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeRaw(path, `{"schema": 99, "entries": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("schema 99 accepted")
	}
}

func TestWriteGoBench(t *testing.T) {
	var b strings.Builder
	if err := WriteGoBench(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "BenchmarkA\t50\t1000.5 ns/op\t128 B/op\t3 allocs/op") {
		t.Fatalf("bad benchstat text:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "BenchmarkA") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	base := File{Entries: []Entry{
		{Name: "X", NsPerOp: 100},
		{Name: "Y", NsPerOp: 100},
		{Name: "Z", NsPerOp: 100},
	}}
	fresh := File{Entries: []Entry{
		{Name: "X", NsPerOp: 109}, // within 10%
		{Name: "Y", NsPerOp: 150}, // regression
		{Name: "W", NsPerOp: 1},   // new benchmark: ignored
	}}
	regs := Compare(base, fresh, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want regression for Y and missing Z, got %v", regs)
	}
	byName := map[string]Regression{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	if r := byName["Y"]; r.Missed || r.Ratio != 1.5 {
		t.Fatalf("Y regression wrong: %+v", r)
	}
	if r := byName["Z"]; !r.Missed || !strings.Contains(r.String(), "not measured") {
		t.Fatalf("Z should be reported missing: %+v", r)
	}
	if regs := Compare(base, base, 0); len(regs) != 0 {
		t.Fatalf("identical files must not regress: %v", regs)
	}
}

func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
