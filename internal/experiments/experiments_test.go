package experiments

import (
	"bytes"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/report"
)

// smallRun is shared by the table/figure tests; generating the corpus once
// keeps the suite fast.
var (
	smallRunOnce sync.Once
	smallRunVal  *CorpusRun
	smallRunErr  error
)

func smallRun(t *testing.T) *CorpusRun {
	t.Helper()
	smallRunOnce.Do(func() {
		smallRunVal, smallRunErr = Run(ScaledProfile(1, 250), core.DefaultConfig(), 0)
	})
	if smallRunErr != nil {
		t.Fatal(smallRunErr)
	}
	return smallRunVal
}

func TestRunProducesConsistentCounts(t *testing.T) {
	cr := smallRun(t)
	if cr.Funnel.Total == 0 || cr.Funnel.Valid == 0 {
		t.Fatalf("funnel = %+v", cr.Funnel)
	}
	if len(cr.Results) != cr.Funnel.UniqueApps {
		t.Fatalf("results %d != unique apps %d", len(cr.Results), cr.Funnel.UniqueApps)
	}
	if cr.Agg.Apps() != len(cr.Results) {
		t.Fatalf("aggregator apps %d", cr.Agg.Apps())
	}
	if cr.Agg.Runs() != cr.Funnel.Valid {
		t.Fatalf("aggregator runs %d != valid %d", cr.Agg.Runs(), cr.Funnel.Valid)
	}
	for _, r := range cr.Results {
		if r.Result == nil || r.Truth == nil {
			t.Fatal("missing result or truth")
		}
	}
}

func TestFig3FunnelShape(t *testing.T) {
	res := Fig3(ScaledProfile(2, 300))
	if res.Funnel.CorruptedFraction() < 0.25 || res.Funnel.CorruptedFraction() > 0.40 {
		t.Fatalf("corrupted fraction = %g, not Blue-Waters-shaped", res.Funnel.CorruptedFraction())
	}
	if res.Funnel.UniqueFraction() < 0.04 || res.Funnel.UniqueFraction() > 0.20 {
		t.Fatalf("unique fraction = %g", res.Funnel.UniqueFraction())
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}

func TestTable2Shape(t *testing.T) {
	cr := smallRun(t)
	res := Table2(cr)
	// Periodic writes: rare among applications, more common among runs.
	if res.WriteSingle.Periodic > 0.10 {
		t.Fatalf("single-run periodic = %g, should be rare", res.WriteSingle.Periodic)
	}
	if res.WriteAll.Periodic < res.WriteSingle.Periodic {
		t.Fatalf("all-runs periodic (%g) should exceed single-run (%g)",
			res.WriteAll.Periodic, res.WriteSingle.Periodic)
	}
	if res.WriteAll.Periodic < 0.02 || res.WriteAll.Periodic > 0.20 {
		t.Fatalf("all-runs periodic = %g, out of shape", res.WriteAll.Periodic)
	}
}

func TestTable3Shape(t *testing.T) {
	cr := smallRun(t)
	res := Table3(cr)
	// Single-run: insignificant dominates both directions (paper: 85/87%).
	if res.ReadSingle.Insignificant < 0.7 || res.WriteSingle.Insignificant < 0.7 {
		t.Fatalf("single-run insignificant: read %g write %g",
			res.ReadSingle.Insignificant, res.WriteSingle.Insignificant)
	}
	// All-runs: reads happen mostly on start, writes steadily or on end.
	if res.ReadAll.OnStart < res.ReadSingle.OnStart {
		t.Fatal("read on start should grow in the all-runs view")
	}
	if res.WriteAll.Steady < 0.15 {
		t.Fatalf("all-runs write steady = %g", res.WriteAll.Steady)
	}
	// Rows are distributions: every bucket within [0,1], sums ~<= 1.
	for _, row := range []struct{ r report.TemporalityRow }{
		{res.ReadSingle}, {res.ReadAll}, {res.WriteSingle}, {res.WriteAll},
	} {
		sum := row.r.Insignificant + row.r.OnStart + row.r.OnEnd + row.r.Steady + row.r.Others
		if sum < 0.9 || sum > 1.05 {
			t.Fatalf("temporality row does not sum to ~1: %+v (sum %g)", row.r, sum)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	cr := smallRun(t)
	res := Fig4(cr)
	// The all-runs view must be more metadata-intensive than single-run
	// (a few heavy apps run very often).
	if res.All[category.MetaHighSpike] <= res.Single[category.MetaHighSpike] {
		t.Fatalf("high spike: all %g <= single %g",
			res.All[category.MetaHighSpike], res.Single[category.MetaHighSpike])
	}
	if res.All[category.MetaHighSpike] < 0.3 {
		t.Fatalf("all-runs high spike = %g, out of shape", res.All[category.MetaHighSpike])
	}
}

func TestFig5Correlations(t *testing.T) {
	cr := smallRun(t)
	res := Fig5(cr)
	if res.Corr.ReadStartWritesEnd < 0.4 || res.Corr.ReadStartWritesEnd > 0.9 {
		t.Fatalf("P(we|rs) = %g, paper says 66%%", res.Corr.ReadStartWritesEnd)
	}
	if res.Corr.InsigReadAlsoInsigWrite < 0.7 {
		t.Fatalf("P(wi|ri) = %g, paper says 95%%", res.Corr.InsigReadAlsoInsigWrite)
	}
	if res.Corr.PeriodicWriteLowBusy < 0.8 {
		t.Fatalf("P(low|periodic) = %g, paper says 96%%", res.Corr.PeriodicWriteLowBusy)
	}
	if res.Pairs == 0 {
		t.Fatal("no Jaccard pairs above 1%")
	}
}

func TestAccuracyMeetsPaper(t *testing.T) {
	res, err := Accuracy(ScaledProfile(3, 250), core.DefaultConfig(), 256, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled < 200 {
		t.Fatalf("sampled only %d traces", res.Sampled)
	}
	if res.Accuracy < res.PaperAccuracy {
		t.Fatalf("accuracy %.2f below the paper's %.2f", res.Accuracy, res.PaperAccuracy)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}

func TestStabilityHigh(t *testing.T) {
	res, err := Stability(7, 2, 6, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range res.PerArchetype {
		if v < 0.8 {
			t.Errorf("archetype %s stability %.2f < 0.8", name, v)
		}
	}
}

func TestPerfScales(t *testing.T) {
	res, err := Perf(ScaledProfile(4, 120), core.DefaultConfig(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workers) != 2 || res.Apps == 0 {
		t.Fatalf("perf result = %+v", res)
	}
	if res.Speedup[0] != 1 {
		t.Fatalf("base speedup = %g", res.Speedup[0])
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}

func TestAblationDetectorComparison(t *testing.T) {
	res, err := Ablation(5, 12, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All detectors find simple periodicity.
	if res.DetectorRecall["meanshift"] < 0.9 {
		t.Fatalf("meanshift recall = %g", res.DetectorRecall["meanshift"])
	}
	// Only segmentation+clustering identifies BOTH of two interleaved
	// periodic operations — the paper's argument against pure frequency
	// techniques.
	if res.DetectorMixed["meanshift"] < 0.8 {
		t.Fatalf("meanshift mixed = %g", res.DetectorMixed["meanshift"])
	}
	if res.DetectorMixed["dft"] > 0 || res.DetectorMixed["autocorr"] > 0 {
		t.Fatalf("frequency detectors cannot report two periods: dft=%g autocorr=%g",
			res.DetectorMixed["dft"], res.DetectorMixed["autocorr"])
	}
	// Iterative spectral peeling narrows the gap but stays below the
	// segmentation detector (overlapping harmonics, volume blindness).
	if iter := res.DetectorMixed["dft-iter"]; iter <= 0 || iter >= res.DetectorMixed["meanshift"] {
		t.Fatalf("dft-iter mixed = %g, expected strictly between 0 and meanshift's %g",
			iter, res.DetectorMixed["meanshift"])
	}
	// Aggressive neighbor merging destroys periodicity.
	if res.MergeSweep["rf=0.1"] >= res.MergeSweep["rf=0.001 (paper)"] {
		t.Fatalf("merge sweep did not show degradation: %v", res.MergeSweep)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}
