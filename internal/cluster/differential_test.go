package cluster_test

// Differential tests of the accelerated Mean Shift path on realistic
// inputs: every generator archetype's segment features, embedded exactly
// as the production pipeline embeds them, clustered by the exact
// reference path and by each accelerated configuration.

import (
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// archetypeFeatures reproduces the pipeline's feature extraction (clip →
// merge → split → embed) for both directions of one generated run.
func archetypeFeatures(t *testing.T, arch gen.Archetype, seed int64) [][]cluster.Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := arch.Params(rng)
	b := gen.NewBuilder(rng, "bench", arch.Exe, uint64(seed)+1, p.Ranks, p.RuntimeBase)
	arch.Build(b, p)
	job := b.Job()
	var out [][]cluster.Point
	pol := interval.DefaultNeighborPolicy()
	for _, raw := range [][]interval.Interval{job.ReadIntervals(), job.WriteIntervals()} {
		ops := interval.Clip(raw, job.Runtime)
		merged := interval.Merge(ops, job.Runtime, pol)
		segs := segment.Split(merged, job.Runtime)
		if len(segs) < 2 {
			continue
		}
		cfg := segment.DefaultDetectConfig(job.Runtime)
		out = append(out, segment.Features(segs, cfg.Features))
	}
	return out
}

// TestArchetypesFlatAcceleratedIdentical: for every archetype and both
// directions, the accelerated flat-kernel clustering must be
// label-identical to the exact path.
func TestArchetypesFlatAcceleratedIdentical(t *testing.T) {
	for _, arch := range gen.DefaultArchetypes() {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				for di, pts := range archetypeFeatures(t, arch, seed) {
					exact, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{Bandwidth: 0.05, Exact: true})
					if err != nil {
						t.Fatal(err)
					}
					accel, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{Bandwidth: 0.05})
					if err != nil {
						t.Fatal(err)
					}
					if len(exact.Centers) != len(accel.Centers) {
						t.Fatalf("seed=%d dir=%d n=%d: centers %d vs %d",
							seed, di, len(pts), len(exact.Centers), len(accel.Centers))
					}
					for i := range exact.Labels {
						if exact.Labels[i] != accel.Labels[i] {
							t.Fatalf("seed=%d dir=%d n=%d: label %d differs (%d vs %d)",
								seed, di, len(pts), i, exact.Labels[i], accel.Labels[i])
						}
					}
				}
			}
		})
	}
}

// TestArchetypesBinSeedingAgreement: bin seeding must recover essentially
// the same grouping on every archetype's segment population. Tiny inputs
// are allowed a little slack (a one-point disagreement moves ARI a lot);
// populous ones must agree almost perfectly.
func TestArchetypesBinSeedingAgreement(t *testing.T) {
	var total, sum float64
	for _, arch := range gen.DefaultArchetypes() {
		for seed := int64(1); seed <= 3; seed++ {
			for di, pts := range archetypeFeatures(t, arch, seed) {
				exact, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{Bandwidth: 0.05, Exact: true})
				if err != nil {
					t.Fatal(err)
				}
				binned, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{Bandwidth: 0.05, BinSeeding: true})
				if err != nil {
					t.Fatal(err)
				}
				ari := cluster.AdjustedRandIndex(exact.Labels, binned.Labels)
				total++
				sum += ari
				floor := 0.99
				if len(pts) < 32 {
					floor = 0.8
				}
				if ari < floor {
					t.Errorf("%s seed=%d dir=%d n=%d: binned ARI %.4f < %.2f",
						arch.Name, seed, di, len(pts), ari, floor)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no archetype produced clusterable segments")
	}
	if mean := sum / total; mean < 0.99 {
		t.Fatalf("mean binned ARI %.4f < 0.99 over %d datasets", mean, int(total))
	}
}

// TestSegmentDetectAccelerationEquivalent: segment.Detect must return the
// same groups with and without a scratch, and near-identical groups with
// bin seeding, on the benchmark's two-train periodic trace.
func TestSegmentDetectAccelerationEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ops []interval.Interval
	for i := 0; i < 48; i++ {
		s := float64(i)*300 + rng.Float64()*10
		ops = append(ops, interval.Interval{Start: s, End: s + 15, Bytes: 1 << 30})
	}
	for i := 0; i < 20; i++ {
		s := float64(i)*730 + 50 + rng.Float64()*10
		ops = append(ops, interval.Interval{Start: s, End: s + 10, Bytes: 64 << 30})
	}
	interval.SortByStart(ops)
	segs := segment.Split(ops, 14600)

	base := segment.DefaultDetectConfig(14600)
	plain, err := segment.Detect(segs, base)
	if err != nil {
		t.Fatal(err)
	}

	withScratch := base
	withScratch.Scratch = cluster.NewScratch()
	scratched, err := segment.Detect(segs, withScratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(scratched) {
		t.Fatalf("scratch changed group count: %d vs %d", len(plain), len(scratched))
	}
	for i := range plain {
		if plain[i].Count != scratched[i].Count || plain[i].Period != scratched[i].Period {
			t.Fatalf("scratch changed group %d: %+v vs %+v", i, plain[i], scratched[i])
		}
	}

	binnedCfg := base
	binnedCfg.BinSeeding = true
	binned, err := segment.Detect(segs, binnedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(binned) != len(plain) {
		t.Fatalf("bin seeding changed group count: %d vs %d", len(binned), len(plain))
	}
	for i := range plain {
		if binned[i].Count != plain[i].Count {
			t.Fatalf("bin seeding changed group %d occurrence count: %d vs %d",
				i, binned[i].Count, plain[i].Count)
		}
	}
}
