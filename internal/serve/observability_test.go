package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/store"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

func getHealth(t *testing.T, url string) healthResponse {
	t.Helper()
	resp, body := getBody(t, url+"/v1/cluster/health")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/cluster/health: status %d: %s", resp.StatusCode, body)
	}
	var h healthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	return h
}

func getEvents(t *testing.T, url, params string) eventsResponse {
	t.Helper()
	resp, body := getBody(t, url+"/v1/events"+params)
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/events: status %d: %s", resp.StatusCode, body)
	}
	var er eventsResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	return er
}

func hasEvent(er eventsResponse, typ, peer string) bool {
	for _, e := range er.Events {
		if e.Type == typ && (peer == "" || e.Fields["peer"] == peer) {
			return true
		}
	}
	return false
}

// TestClusterHealthFailureDrill is the in-process version of the CI
// drill: a 3-node fleet reports ok from any vantage point, flips the
// rollup to degraded within the probe interval of a kill -9, journals
// node_down, and journals node_up when the member returns.
func TestClusterHealthFailureDrill(t *testing.T) {
	tc := startTestCluster(t, 3)
	entry, victim := tc.nodes[0], tc.nodes[2]

	// All three nodes answer a fleet-wide ok from any member.
	for _, nd := range tc.nodes {
		h := getHealth(t, nd.http.URL)
		if h.Status != ring.StatusHealthOK || len(h.Nodes) != 3 {
			t.Fatalf("initial health on %s: status=%s nodes=%d (%+v)", nd.id, h.Status, len(h.Nodes), h)
		}
		if h.Node != nd.id {
			t.Fatalf("health answered by %q, asked %s", h.Node, nd.id)
		}
	}

	victim.srv.Kill()
	victim.http.Close()

	// The rollup flips once the survivors' probes notice (50ms interval
	// in this harness); the dead member appears as down, not omitted.
	deadline := time.Now().Add(10 * time.Second)
	var h healthResponse
	for time.Now().Before(deadline) {
		h = getHealth(t, entry.http.URL)
		if h.Status == ring.StatusHealthDegraded {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.Status != ring.StatusHealthDegraded {
		t.Fatalf("rollup never flipped to degraded: %+v", h)
	}
	foundDown := false
	for _, n := range h.Nodes {
		if n.Node == victim.id {
			foundDown = n.Status == ring.StatusHealthDown
		}
	}
	if !foundDown {
		t.Fatalf("victim %s not reported down: %+v", victim.id, h.Nodes)
	}

	// The journal carries the transition.
	er := getEvents(t, entry.http.URL, "")
	if !hasEvent(er, events.TypeNodeDown, victim.id) {
		t.Fatalf("no node_down event for %s in journal: %+v", victim.id, er.Events)
	}
	downSeq := er.Last

	// Resurrect the victim: a fresh server with the same identity on the
	// same RPC address. The survivors' probes mark it up again.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	members := make([]ring.Node, len(tc.nodes))
	for i, nd := range tc.nodes {
		members[i] = ring.Node{ID: nd.id, Addr: nd.rpc.Addr().String()}
	}
	l, err := net.Listen("tcp", victim.rpc.Addr().String())
	if err != nil {
		t.Fatalf("rebinding victim RPC addr: %v", err)
	}
	reborn, err := New(Config{Store: st, Workers: 1, Cluster: &ring.Config{
		Self: victim.id, Nodes: members, Replication: 2, ReplicaAck: 1,
		ProbeInterval: 50 * time.Millisecond, RPCTimeout: 2 * time.Second,
		HintRetry: 100 * time.Millisecond, RepairAfter: 300 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	go reborn.ServeCluster(l) //nolint:errcheck
	t.Cleanup(func() { reborn.Kill() })

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Cursor pagination across the transition: resume after the
		// node_down page's last sequence.
		if er := getEvents(t, entry.http.URL, fmt.Sprintf("?since=%d", downSeq)); hasEvent(er, events.TypeNodeUp, victim.id) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	er = getEvents(t, entry.http.URL, fmt.Sprintf("?since=%d", downSeq))
	if !hasEvent(er, events.TypeNodeUp, victim.id) {
		t.Fatalf("no node_up event for %s after seq %d: %+v", victim.id, downSeq, er.Events)
	}
	// Every member's probe notices the resurrection within its own
	// interval; poll until the rollup recovers.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h = getHealth(t, entry.http.URL); h.Status == ring.StatusHealthOK {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rollup did not recover to ok: %+v", h)
}

// TestEventsEndpointFilters exercises pagination and severity filtering
// over a single node's journal.
func TestEventsEndpointFilters(t *testing.T) {
	s, _ := newTestServer(t, Config{DisableAlerts: true})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 10; i++ {
		sev := events.SevInfo
		if i%2 == 1 {
			sev = events.SevError
		}
		s.Events().Emit(sev, "test_event", fmt.Sprintf("event %d", i))
	}

	all := getEvents(t, ts.URL, "")
	if all.Count != 10 || len(all.Events) != 10 {
		t.Fatalf("want 10 events, got %d", all.Count)
	}
	errsOnly := getEvents(t, ts.URL, "?severity=error")
	if errsOnly.Count != 5 {
		t.Fatalf("severity=error: want 5, got %d", errsOnly.Count)
	}
	page1 := getEvents(t, ts.URL, "?limit=4")
	if page1.Count != 4 {
		t.Fatalf("limit=4: got %d", page1.Count)
	}
	page2 := getEvents(t, ts.URL, fmt.Sprintf("?since=%d", page1.Events[3].Seq))
	if page2.Count != 6 {
		t.Fatalf("resumed page: want the remaining 6, got %d", page2.Count)
	}
	if page2.Events[0].Seq != page1.Events[3].Seq+1 {
		t.Fatalf("cursor skipped: page1 ends %d, page2 starts %d",
			page1.Events[3].Seq, page2.Events[0].Seq)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/events?severity=nope"); resp.StatusCode != 400 {
		t.Fatalf("bad severity: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/events?since=x"); resp.StatusCode != 400 {
		t.Fatalf("bad since: status %d, want 400", resp.StatusCode)
	}
}

// TestSingleNodeHealth: the health document degrades gracefully to a
// one-node fleet outside cluster mode.
func TestSingleNodeHealth(t *testing.T) {
	s, _ := newTestServer(t, Config{DisableAlerts: true})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	h := getHealth(t, ts.URL)
	if h.Status != ring.StatusHealthOK || len(h.Nodes) != 1 {
		t.Fatalf("single-node health: %+v", h)
	}
	if h.Nodes[0].GoVersion == "" || h.Nodes[0].Goroutines < 1 {
		t.Fatalf("vitals missing: %+v", h.Nodes[0])
	}
}

// TestAlertFiresAndCapturesDiagBundle forces an SLO burn (every request
// breaches a 1ns target) and asserts the alert fires at /v1/alerts, is
// journaled, and leaves a pprof+trace diagnostic bundle on disk.
func TestAlertFiresAndCapturesDiagBundle(t *testing.T) {
	diagDir := t.TempDir()
	s, _ := newTestServer(t, Config{
		SLO:     time.Nanosecond, // everything breaches
		DiagDir: diagDir, DiagCPUProfile: 50 * time.Millisecond,
		AlertOptions: &telemetry.AlertOptions{
			Interval:   10 * time.Millisecond,
			FastWindow: 150 * time.Millisecond,
			SlowWindow: 600 * time.Millisecond,
		},
	})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive breaching traffic until the burn sustains across both
	// windows and the evaluator fires.
	deadline := time.Now().Add(15 * time.Second)
	fired := false
	for time.Now().Before(deadline) && !fired {
		for i := 0; i < 5; i++ {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		resp, body := getBody(t, ts.URL+"/v1/alerts")
		if resp.StatusCode != 200 {
			t.Fatalf("/v1/alerts: %d", resp.StatusCode)
		}
		var ar struct {
			Alerts []telemetry.AlertState `json:"alerts"`
		}
		if err := json.Unmarshal([]byte(body), &ar); err != nil {
			t.Fatal(err)
		}
		for _, st := range ar.Alerts {
			if st.Name == "http_slo_burn" && st.Active {
				fired = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !fired {
		t.Fatal("http_slo_burn never fired under a 1ns SLO")
	}
	if er := getEvents(t, ts.URL, "?severity=error"); !hasEvent(er, events.TypeAlertFired, "") {
		t.Fatalf("alert fire not journaled: %+v", er.Events)
	}

	// The bundle lands asynchronously (the CPU profile runs 50ms).
	wantSuffixes := []string{".cpu.pprof", ".heap.pprof", ".trace.json"}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got := map[string]bool{}
		entries, _ := os.ReadDir(diagDir)
		for _, e := range entries {
			for _, suf := range wantSuffixes {
				if strings.HasSuffix(e.Name(), suf) && strings.HasPrefix(e.Name(), "alert-http_slo_burn-") {
					got[suf] = true
				}
			}
		}
		if len(got) == len(wantSuffixes) {
			// Sanity: the profiles are non-empty files.
			for _, e := range entries {
				info, err := e.Info()
				if err != nil || info.Size() == 0 {
					t.Fatalf("empty bundle file %s", e.Name())
				}
			}
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	entries, _ := os.ReadDir(diagDir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	t.Fatalf("diag bundle incomplete after 10s: %v", names)
}

// TestClusterMetricsFederation asserts /v1/cluster/metrics merges every
// node's registry into one exposition, and ?node=1 keeps them separate
// under a node label.
func TestClusterMetricsFederation(t *testing.T) {
	tc := startTestCluster(t, 3)
	entry := tc.nodes[0]

	resp, body := getBody(t, entry.http.URL+"/v1/cluster/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/cluster/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"mosaic_build_info",
		"mosaic_runtime_goroutines",
		"mosaic_serve_queue_depth",
		"mosaic_cluster_metrics_partial 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("federated exposition missing %q:\n%.3000s", want, body)
		}
	}

	resp, body = getBody(t, entry.http.URL+"/v1/cluster/metrics?node=1")
	if resp.StatusCode != 200 {
		t.Fatalf("?node=1: %d", resp.StatusCode)
	}
	for _, nd := range tc.nodes {
		if !strings.Contains(body, fmt.Sprintf(`node=%q`, nd.id)) {
			t.Fatalf("per-node exposition missing node %s:\n%.3000s", nd.id, body)
		}
	}
}

// TestEventJournalPersistsThroughSink wires an AppendLog sink under the
// server's journal and asserts emitted events survive a reopen.
func TestEventJournalPersistsThroughSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	elog, err := store.OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ev := events.NewLog(events.Config{Sink: elog})
	s, _ := newTestServer(t, Config{Events: ev, DisableAlerts: true})
	s.Events().Emit(events.SevWarn, "test_persist", "before restart")
	shutdownServer(t, s)
	if err := elog.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := store.OpenAppendLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var records [][]byte
	if err := reopened.Replay(func(v []byte) bool {
		records = append(records, append([]byte(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	backlog := events.DecodeBacklog(records, 100)
	found := false
	for _, e := range backlog {
		if e.Type == "test_persist" {
			found = true
		}
	}
	if !found {
		t.Fatalf("persisted journal lost the event: %+v", backlog)
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
