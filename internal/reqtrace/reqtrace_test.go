package reqtrace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tid, sid, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid header rejected: %s", valid)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id = %s", tid)
	}
	if sid.String() != "b7ad6b7169203331" {
		t.Fatalf("span id = %s", sid)
	}
	// Future versions may append dash-separated fields.
	if _, _, ok := ParseTraceparent(valid + "-extra"); !ok {
		t.Fatal("future-version suffix rejected")
	}

	invalid := []string{
		"",
		"00",
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",         // bad version hex
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",         // reserved version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",         // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",         // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",         // bad trace hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333X-01",         // bad span hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0X",         // bad flags hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01X",        // junk without separator
		"000-af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",         // misplaced dashes
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",            // missing flags
		"00-0af7651916cd43dd8448eb211c80319cb7ad6b7169203331-0123456-011", // wrong layout, right length
	}
	for _, h := range invalid {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("invalid header accepted: %q", h)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tr := New(StartOptions{Method: "GET", Route: "/x"})
	h := tr.Traceparent()
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent does not parse: %s", h)
	}
	if tid != tr.ID() || sid != tr.Root() {
		t.Fatalf("round trip mismatch: %s", h)
	}
}

func TestTraceAdoptsIncomingTraceparent(t *testing.T) {
	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tr := New(StartOptions{Traceparent: in, Method: "POST", Route: "/v1/traces"})
	if tr.ID().String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("did not adopt incoming trace id: %s", tr.ID())
	}
	tr.FinishRoot(200)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Parent.String() != "b7ad6b7169203331" {
		t.Fatalf("root parent should be the remote span, got %s", spans[0].Parent)
	}

	fresh := New(StartOptions{Traceparent: "garbage"})
	if fresh.ID().IsZero() {
		t.Fatal("fresh trace has zero id")
	}
	if fresh.ID() == tr.ID() {
		t.Fatal("fresh trace reused adopted id")
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := newTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id after %d draws", i)
		}
		seen[id] = true
	}
}

func TestRefcountFinalizesOnce(t *testing.T) {
	var mu sync.Mutex
	done := 0
	tr := New(StartOptions{Method: "POST", Route: "/v1/traces", OnDone: func(*Trace) {
		mu.Lock()
		done++
		mu.Unlock()
	}})
	tr.Hold() // async work queued
	tr.FinishRoot(202)
	mu.Lock()
	if done != 0 {
		mu.Unlock()
		t.Fatal("finalized while async work still held a reference")
	}
	mu.Unlock()
	tr.Release()
	mu.Lock()
	defer mu.Unlock()
	if done != 1 {
		t.Fatalf("OnDone ran %d times, want 1", done)
	}
}

func TestRefcountManyHoldersRace(t *testing.T) {
	var calls int
	tr := New(StartOptions{OnDone: func(*Trace) { calls++ }})
	const holders = 32
	for i := 0; i < holders; i++ {
		tr.Hold()
	}
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.AddCompleted(tr.Root(), "work", time.Now(), time.Millisecond)
			tr.Release()
		}()
	}
	tr.FinishRoot(202)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("OnDone ran %d times, want 1", calls)
	}
	if got := len(tr.Spans()); got != holders+1 {
		t.Fatalf("spans = %d, want %d", got, holders+1)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(StartOptions{Method: "POST", Route: "/v1/traces"})
	ctx := NewContext(context.Background(), tr)

	got, parent, ok := FromContext(ctx)
	if !ok || got != tr || parent != tr.Root() {
		t.Fatal("FromContext did not return the trace rooted at the root span")
	}

	ctx2, sp := StartSpan(ctx, "store.commit", Str("kind", "traces"))
	if sp == nil {
		t.Fatal("traced context returned nil span")
	}
	_, parent2, _ := FromContext(ctx2)
	if parent2 != sp.ID() {
		t.Fatal("child context's parent is not the new span")
	}
	sp.SetAttr(Int("records", 3))
	sp.End()

	AddSpan(ctx2, "index.update", time.Now(), time.Millisecond)
	tr.FinishRoot(200)

	byName := map[string]Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	if byName["store.commit"].Parent != tr.Root() {
		t.Fatal("store.commit should parent off the root")
	}
	if byName["index.update"].Parent != byName["store.commit"].ID {
		t.Fatal("index.update should parent off store.commit")
	}
	var kind, records string
	for _, a := range byName["store.commit"].Attrs {
		switch a.Key {
		case "kind":
			kind = a.Value
		case "records":
			records = a.Value
		}
	}
	if kind != "traces" || records != "3" {
		t.Fatalf("attrs lost: kind=%q records=%q", kind, records)
	}
}

func TestUntracedContextIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan should return ctx unchanged")
	}
	if sp != nil {
		t.Fatal("untraced StartSpan should return a nil span")
	}
	// All nil-receiver methods must be safe no-ops.
	sp.SetAttr(Str("k", "v"))
	sp.SetError(errors.New("boom"))
	if !sp.ID().IsZero() {
		t.Fatal("nil span has a non-zero id")
	}
	sp.End()
	AddSpan(ctx, "y", time.Now(), time.Second)
	if _, _, ok := FromContext(ctx); ok {
		t.Fatal("background context claims a trace")
	}
}

func TestMaxSpansDropped(t *testing.T) {
	tr := New(StartOptions{})
	for i := 0; i < maxSpans+10; i++ {
		tr.AddCompleted(tr.Root(), "s", time.Now(), time.Microsecond)
	}
	tr.FinishRoot(200)
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("spans = %d, want cap %d", got, maxSpans)
	}
	// maxSpans AddCompleted kept, 10 dropped, plus the root dropped too.
	if got := tr.Dropped(); got != 11 {
		t.Fatalf("dropped = %d, want 11", got)
	}
}

func TestErroredAndDuration(t *testing.T) {
	tr := New(StartOptions{Method: "POST", Route: "/v1/traces"})
	if tr.Errored() {
		t.Fatal("new trace already errored")
	}
	tr.FinishRoot(500)
	if !tr.Errored() {
		t.Fatal("5xx status should mark the trace errored")
	}

	tr2 := New(StartOptions{})
	tr2.SetError("first")
	tr2.SetError("second")
	if tr2.Err() != "first" {
		t.Fatalf("SetError should keep the first message, got %q", tr2.Err())
	}
	if !tr2.Errored() {
		t.Fatal("explicit SetError should mark the trace errored")
	}

	// Envelope duration extends past the root when async spans land later.
	start := time.Now().Add(-time.Second)
	tr3 := New(StartOptions{Start: start})
	tr3.FinishRoot(202)
	rootDur := tr3.Duration()
	tr3.AddCompleted(tr3.Root(), "late", start.Add(2*time.Second), time.Second)
	if tr3.Duration() <= rootDur {
		t.Fatal("async span did not extend the envelope")
	}
	if tr3.Duration() != 3*time.Second {
		t.Fatalf("envelope = %v, want 3s", tr3.Duration())
	}
}

func TestFinishRootName(t *testing.T) {
	tr := New(StartOptions{Method: "POST", Route: "/v1/traces"})
	tr.FinishRoot(200)
	if n := tr.Spans()[0].Name; n != "POST /v1/traces" {
		t.Fatalf("root name = %q", n)
	}
	tr2 := New(StartOptions{Route: "/x"})
	tr2.FinishRoot(200)
	if n := tr2.Spans()[0].Name; n != "/x" {
		t.Fatalf("method-less root name = %q", n)
	}
	var status string
	for _, a := range tr.Spans()[0].Attrs {
		if a.Key == "http.status" {
			status = a.Value
		}
	}
	if status != "200" {
		t.Fatalf("http.status attr = %q", status)
	}
}

func TestAttrHelpers(t *testing.T) {
	if a := Str("k", "v"); a.Key != "k" || a.Value != "v" {
		t.Fatal("Str")
	}
	if a := Int("n", -7); a.Value != "-7" {
		t.Fatal("Int")
	}
	if !strings.HasPrefix(FormatTraceparent(TraceID{1}, SpanID{2}), "00-01000000") {
		t.Fatal("FormatTraceparent prefix")
	}
}
