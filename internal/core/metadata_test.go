package core

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// metaJob builds a job whose metadata events are fully controlled: each
// entry of bursts adds one record producing `count` requests at time `at`.
func metaJob(nprocs int32, runtime float64, bursts []darshan.MetaEvent) *darshan.Job {
	j := &darshan.Job{NProcs: nprocs, Runtime: runtime, Start: 0, End: int64(runtime)}
	for _, b := range bursts {
		j.Records = append(j.Records, darshan.FileRecord{
			Module: darshan.ModPOSIX,
			Path:   "/m",
			C: darshan.Counters{
				Opens:     b.Count, // all requests attributed to the open timestamp
				OpenStart: b.Time,
				OpenEnd:   b.Time,
			},
		})
	}
	return j
}

func classifyMeta(t *testing.T, j *darshan.Job) (category.Set, MetaReport) {
	t.Helper()
	cfg := DefaultConfig()
	return classifyMetadata(j, &cfg)
}

func TestMetadataInsignificantBelowRanks(t *testing.T) {
	// 10 requests < 64 ranks: insignificant by the paper's rule.
	j := metaJob(64, 100, []darshan.MetaEvent{{Time: 5, Count: 10}})
	cats, rep := classifyMeta(t, j)
	if !cats.Has(category.MetaInsignificantLoad) || len(cats) != 1 {
		t.Fatalf("cats = %v", cats)
	}
	if rep.TotalOps != 10 {
		t.Fatalf("total = %d", rep.TotalOps)
	}
}

func TestMetadataHighSpike(t *testing.T) {
	// 300 requests in one second >= 250: high spike.
	j := metaJob(64, 1000, []darshan.MetaEvent{{Time: 500, Count: 300}})
	cats, rep := classifyMeta(t, j)
	if !cats.Has(category.MetaHighSpike) {
		t.Fatalf("cats = %v", cats)
	}
	if cats.Has(category.MetaMultipleSpikes) || cats.Has(category.MetaHighDensity) {
		t.Fatalf("extra categories: %v", cats)
	}
	if rep.PeakRate != 300 || rep.HighSpikes != 1 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestMetadataSpikeThresholdBoundary(t *testing.T) {
	// 249 requests: below the high-spike threshold.
	j := metaJob(64, 1000, []darshan.MetaEvent{{Time: 500, Count: 249}})
	cats, _ := classifyMeta(t, j)
	if cats.Has(category.MetaHighSpike) {
		t.Fatalf("249 req/s flagged high spike: %v", cats)
	}
	// Exactly 250: flagged.
	j = metaJob(64, 1000, []darshan.MetaEvent{{Time: 500, Count: 250}})
	cats, _ = classifyMeta(t, j)
	if !cats.Has(category.MetaHighSpike) {
		t.Fatalf("250 req/s not flagged: %v", cats)
	}
}

func TestMetadataMultipleSpikes(t *testing.T) {
	// 5 spikes of 60 requests: multiple_spikes but not high spike and,
	// with a long runtime, not high density.
	var bursts []darshan.MetaEvent
	for i := 0; i < 5; i++ {
		bursts = append(bursts, darshan.MetaEvent{Time: float64(100 + i*100), Count: 60})
	}
	j := metaJob(64, 1000, bursts)
	cats, rep := classifyMeta(t, j)
	if !cats.Has(category.MetaMultipleSpikes) {
		t.Fatalf("cats = %v", cats)
	}
	if cats.Has(category.MetaHighSpike) || cats.Has(category.MetaHighDensity) {
		t.Fatalf("extra categories: %v (report %+v)", cats, rep)
	}
	if rep.SpikeCount != 5 {
		t.Fatalf("spikes = %d", rep.SpikeCount)
	}
}

func TestMetadataFourSpikesNotMultiple(t *testing.T) {
	var bursts []darshan.MetaEvent
	for i := 0; i < 4; i++ {
		bursts = append(bursts, darshan.MetaEvent{Time: float64(100 + i*100), Count: 60})
	}
	cats, _ := classifyMeta(t, metaJob(64, 1000, bursts))
	if cats.Has(category.MetaMultipleSpikes) {
		t.Fatalf("4 spikes flagged multiple: %v", cats)
	}
}

func TestMetadataHighDensity(t *testing.T) {
	// 20 bursts of 300 requests over 100s: mean 60 req/s >= 50 and >= 5
	// spikes: high density (plus high spike and multiple spikes).
	var bursts []darshan.MetaEvent
	for i := 0; i < 20; i++ {
		bursts = append(bursts, darshan.MetaEvent{Time: float64(i * 5), Count: 300})
	}
	j := metaJob(64, 100, bursts)
	cats, rep := classifyMeta(t, j)
	if !cats.HasAll(category.MetaHighDensity, category.MetaHighSpike, category.MetaMultipleSpikes) {
		t.Fatalf("cats = %v", cats)
	}
	if rep.MeanRate < 50 {
		t.Fatalf("mean rate = %g", rep.MeanRate)
	}
}

func TestMetadataDensityNeedsSpikes(t *testing.T) {
	// Sustained 60 req/s with no single second reaching 50... impossible
	// at 1s bins; instead: high mean but only 4 spike seconds and the
	// rest spread thin — must NOT be high density (needs >= 5 spikes).
	bursts := []darshan.MetaEvent{
		{Time: 1, Count: 3000}, {Time: 20, Count: 3000},
		{Time: 40, Count: 3000}, {Time: 60, Count: 3000},
	}
	j := metaJob(64, 100, bursts)
	cats, rep := classifyMeta(t, j)
	if cats.Has(category.MetaHighDensity) {
		t.Fatalf("density without enough spikes: %v (%+v)", cats, rep)
	}
	if !cats.Has(category.MetaHighSpike) {
		t.Fatalf("cats = %v", cats)
	}
}

func TestMetadataModerateLoadFallsBack(t *testing.T) {
	// More ops than ranks but no threshold crossed: insignificant load.
	j := metaJob(8, 1000, []darshan.MetaEvent{{Time: 10, Count: 20}, {Time: 500, Count: 20}})
	cats, _ := classifyMeta(t, j)
	if !cats.Has(category.MetaInsignificantLoad) || len(cats) != 1 {
		t.Fatalf("cats = %v", cats)
	}
}

func TestRateHistogramClampsOutOfRange(t *testing.T) {
	bins := rateHistogram([]darshan.MetaEvent{{Time: -5, Count: 10}, {Time: 1e9, Count: 20}}, 100)
	if bins[0] != 10 || bins[len(bins)-1] != 20 {
		t.Fatalf("clamping failed: first=%g last=%g", bins[0], bins[len(bins)-1])
	}
}

func TestRateHistogramCoalescesLongRuns(t *testing.T) {
	// A runtime beyond maxRateBins seconds coalesces bins but keeps
	// rates comparable: one burst of N requests within a coalesced bin
	// of k seconds reads as N/k req/s.
	runtime := float64(maxRateBins) * 4
	bins := rateHistogram([]darshan.MetaEvent{{Time: 8, Count: 400}}, runtime)
	if len(bins) != maxRateBins {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[2] != 100 { // 400 requests over a 4-second coalesced bin
		t.Fatalf("coalesced rate = %g, want 100", bins[2])
	}
}

func TestMetadataZeroRuntime(t *testing.T) {
	j := metaJob(1, 0.5, []darshan.MetaEvent{{Time: 0.1, Count: 300}})
	cats, rep := classifyMeta(t, j)
	if !cats.Has(category.MetaHighSpike) {
		t.Fatalf("sub-second run: %v %+v", cats, rep)
	}
}
