package benchsuite

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/index"
	"github.com/mosaic-hpc/mosaic/internal/segment"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Query benchmark corpus: one million traces drawn from a fixed pool of
// category profiles. The profile pool keeps setup memory flat (the
// engines never share sets between traces internally), while the per-
// trace profile assignment gives every posting list a realistic skew:
// a handful of dense behavioural categories, a long tail of mid-density
// ones, and one deliberately rare point-query target.
const (
	queryCorpusN    = 1 << 20
	queryProfiles   = 512
	queryCorpusSeed = 77
)

// queryDensity pins per-category probabilities inside a profile;
// categories not listed default to 5%. metadata_high_spike is excluded
// from random assignment entirely and instead forced into exactly two
// profiles below, so the point query stays rare (≈0.4%) by construction
// rather than by luck of the seed.
var queryDensity = map[category.Category]float64{
	"write_on_end":                0.15,
	"read_on_start":               0.08,
	"read_periodic_minute":        0.04,
	"write_periodic_minute":       0.04,
	"metadata_insignificant_load": 0.25,
	"metadata_high_spike":         0,
}

// The pinned query shapes. point hits one rare posting list; and_heavy
// intersects a substring-expanded term with a dense list under a dense
// negation; not_heavy keeps complements live through the whole plan so
// the lazy-NOT algebra (not the materialized universe) is what's
// measured; stats is the cached axis rollup behind /v1/stats.
const (
	queryPoint    = "metadata_high_spike"
	queryAndHeavy = "periodic_minute AND write_on_end AND NOT metadata_insignificant_load"
	queryNotHeavy = "NOT (write_on_end OR read_on_start) NOT metadata_high_spike"
)

// queryEntries lazily builds the shared corpus (IDs are zero-padded hex,
// so they arrive already in lexicographic order).
var queryEntries = sync.OnceValue(func() []index.Entry {
	rng := rand.New(rand.NewSource(queryCorpusSeed))
	all := category.All()
	profiles := make([]category.Set, queryProfiles)
	for i := range profiles {
		s := category.NewSet()
		for _, c := range all {
			p := 0.05
			if d, ok := queryDensity[c]; ok {
				p = d
			}
			if rng.Float64() < p {
				s.Add(c)
			}
		}
		profiles[i] = s
	}
	profiles[0].Add("metadata_high_spike")
	profiles[1].Add("metadata_high_spike")
	entries := make([]index.Entry, queryCorpusN)
	for i := range entries {
		entries[i] = index.Entry{
			ID:   store.TraceID(fmt.Sprintf("%064x", i)),
			Cats: profiles[rng.Intn(queryProfiles)],
		}
	}
	return entries
})

var queryEngine = sync.OnceValue(func() *index.Index {
	ix := index.New()
	ix.Load(queryEntries())
	return ix
})

var queryOracleIx = sync.OnceValue(func() *index.Oracle {
	or := index.NewOracle()
	for _, e := range queryEntries() {
		or.Add(e.ID, e.Cats)
	}
	return or
})

// querier is the surface both engines expose to the pinned benchmarks.
type querier interface {
	QueryIDs(string) ([]string, error)
	AxisCounts() map[string][]index.CategoryCount
}

// QueryBench returns the pinned query benchmark of the given kind
// ("point", "and_heavy", "not_heavy" or "stats") over the 1M-trace
// corpus, running on the posting-list engine or, with oracle set, on
// the map-based reference engine — the pre-rewrite evaluation strategy
// kept as the committed baseline the ≥10× contract is checked against.
func QueryBench(kind string, oracle bool) func(b *testing.B) {
	return func(b *testing.B) {
		var ix querier = queryEngine()
		if oracle {
			ix = queryOracleIx()
		}
		if kind == "stats" {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if axes := ix.AxisCounts(); len(axes) != 3 {
					b.Fatalf("%d axes", len(axes))
				}
			}
			return
		}
		var q string
		switch kind {
		case "point":
			q = queryPoint
		case "and_heavy":
			q = queryAndHeavy
		case "not_heavy":
			q = queryNotHeavy
		default:
			b.Fatalf("unknown query bench kind %q", kind)
		}
		ids, err := ix.QueryIDs(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(ids) == 0 {
			b.Fatalf("query %q matches nothing: corpus drifted", q)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.QueryIDs(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchResult fills one stored result the way production categorization
// does: chunk volumes, periodic groups, rate statistics and generator
// truth all ride along with the labels. Rebuild streams past everything
// but the labels; the payload size is what makes that skip matter.
func benchResult(i int, labels []string) *core.Result {
	res := &core.Result{
		JobID:   uint64(900000 + i),
		App:     "cam6.exe",
		User:    fmt.Sprintf("u%03d", i%97),
		NProcs:  512,
		Runtime: 3600,
		Labels:  labels,
		Truth: map[string]string{
			"archetype": "checkpointer-minute",
			"host":      fmt.Sprintf("h%04d", i%800),
			"lib_ver":   "3.4.4",
		},
	}
	for d, rep := range []*core.DirectionReport{&res.Read, &res.Write} {
		rep.TotalBytes = int64(1<<30 + i*4096 + d)
		rep.RawOps = 4000 + i%512
		rep.MergedOps = 60 + i%32
		rep.TemporalS = "steady"
		rep.BusyTime = 420.5
		rep.Chunks = make([]float64, 48)
		for k := range rep.Chunks {
			rep.Chunks[k] = float64((i+k*7919)%100000) / 3.0
		}
		rep.Groups = []segment.Group{{
			Count: 60, Period: 60.2, MeanBytes: 1 << 24, BusyRatio: 0.31,
			Segments: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		}}
	}
	res.Meta = core.MetaReport{TotalOps: 120000, PeakRate: 840, MeanRate: 33.3, SpikeCount: 12, HighSpikes: 2}
	return res
}

// QueryRebuild measures re-indexing from a 20k-result store: the
// engine's sequential labels-only scan versus the oracle's original
// random-read full-decode path.
func QueryRebuild(oracle bool) func(b *testing.B) {
	return func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		const fp = "cfg-benchquery000000"
		entries := queryEntries()[:20000]
		for i, e := range entries {
			if err := st.PutResult(e.ID, fp, benchResult(i, e.Cats.Strings())); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var n int
			var err error
			if oracle {
				n, err = index.NewOracle().Rebuild(st, fp)
			} else {
				n, err = index.New().Rebuild(st, fp)
			}
			if err != nil || n != len(entries) {
				b.Fatalf("rebuilt %d traces (want %d), err=%v", n, len(entries), err)
			}
		}
	}
}

// QueryMergeSorted measures the scatter-gather reduce: merging 32k
// sorted trace IDs split across k per-peer lists into one deduplicated
// result, with the destination reused the way the serve tier's pool
// does. k=2 and k=8 take the linear two-pointer path; k=32 takes the
// loser tree.
func QueryMergeSorted(k int) func(b *testing.B) {
	return func(b *testing.B) {
		const total = 1 << 15
		rng := rand.New(rand.NewSource(queryCorpusSeed))
		lists := make([][]string, k)
		for i := 0; i < total; i++ {
			p := rng.Intn(k)
			lists[p] = append(lists[p], fmt.Sprintf("%064x", rng.Intn(1<<30)))
		}
		for _, l := range lists {
			sort.Strings(l)
		}
		buf := make([]string, 0, total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = index.MergeSortedInto(buf[:0], lists...)
			if len(buf) == 0 {
				b.Fatal("empty merge")
			}
		}
	}
}
