// Package gen synthesizes Darshan-like traces with ground-truth labels.
//
// The MOSAIC paper evaluates on the 2019 Blue Waters corpus, which is not
// redistributable here and whose manual-validation labels were never
// published. This package substitutes a workload generator that emits the
// I/O motifs the paper (and the survey it cites, Bez et al. 2023) reports
// in production HPC applications: input reading at start, result writing
// at end, periodic checkpointing, steady streaming with files held open,
// metadata storms, rank desynchronization, repeated executions of the same
// application, and trace corruption. Every synthetic trace carries its
// intended category set in the job metadata, which makes the paper's
// manual-sampling accuracy protocol (Section IV-E) machine-checkable.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
)

// TruthKey is the job-metadata key under which the generator stores the
// intended categories (category.Set encoded with Set.String).
const TruthKey = "mosaic.truth"

// TruthPeriodKey stores the intended checkpoint period in seconds for
// periodic archetypes.
const TruthPeriodKey = "mosaic.truth.period"

// ArchetypeKey stores the archetype name that generated the trace.
const ArchetypeKey = "mosaic.archetype"

// Truth extracts the ground-truth category set from a generated job, or
// nil when the job carries no truth annotation.
func Truth(j *darshan.Job) category.Set {
	if j.Metadata == nil {
		return nil
	}
	s, ok := j.Metadata[TruthKey]
	if !ok {
		return nil
	}
	return category.ParseSet(s)
}

// Builder assembles one synthetic trace from I/O phases. All times are
// seconds from job start.
type Builder struct {
	job   *darshan.Job
	rng   *rand.Rand
	truth category.Set
	files int // counter for distinct synthetic file paths
}

// NewBuilder starts a trace for one execution.
func NewBuilder(rng *rand.Rand, user, exe string, jobID uint64, ranks int32, runtime float64) *Builder {
	start := int64(1546300800) + rng.Int63n(365*24*3600) // within 2019, like the dataset
	return &Builder{
		job: &darshan.Job{
			JobID:    jobID,
			UID:      uint32(1000 + hashString(user)%9000),
			User:     user,
			Exe:      exe,
			NProcs:   ranks,
			Start:    start,
			End:      start + int64(math.Ceil(runtime)),
			Runtime:  runtime,
			Metadata: map[string]string{},
		},
		rng:   rng,
		truth: category.NewSet(),
	}
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Label records intended categories in the ground truth.
func (b *Builder) Label(cs ...category.Category) { b.truth.Add(cs...) }

// Annotate stores an extra metadata key/value on the job.
func (b *Builder) Annotate(key, value string) { b.job.Metadata[key] = value }

// Runtime returns the job runtime.
func (b *Builder) Runtime() float64 { return b.job.Runtime }

// Rng exposes the builder's random source for archetype-level decisions.
func (b *Builder) Rng() *rand.Rand { return b.rng }

func (b *Builder) nextPath(prefix string) string {
	b.files++
	return fmt.Sprintf("/scratch/%s/%s.%06d", b.job.User, prefix, b.files)
}

// clampT keeps a timestamp within [0, runtime].
func (b *Builder) clampT(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > b.job.Runtime {
		return b.job.Runtime
	}
	return t
}

// BurstSpec describes one I/O phase executed by a set of ranks.
type BurstSpec struct {
	At       float64        // phase start, seconds
	Duration float64        // phase duration, seconds (per rank)
	Bytes    int64          // total bytes across all participating records
	Records  int            // number of file records emitted (≈ participating ranks)
	Desync   float64        // max per-record start jitter as a fraction of Duration
	Write    bool           // write phase (false: read)
	Shared   bool           // all records target the same shared file
	SeeksPer int64          // extra SEEKs per record beyond the implicit one
	Module   darshan.Module // I/O API of the records (default POSIX)
}

// Burst emits the records of one I/O phase. All ranks OPEN together at the
// phase start (the usual collective-open pattern, and what concentrates
// metadata requests into spikes); each record's transfer window then
// starts with its own desynchronization jitter and the CLOSE follows the
// transfer end. Desynchronization exercises MOSAIC's concurrent-operation
// merging without smearing the open spike.
func (b *Builder) Burst(s BurstSpec) {
	if s.Records <= 0 {
		s.Records = 1
	}
	if s.Duration <= 0 {
		s.Duration = 0.001
	}
	perRec := s.Bytes / int64(s.Records)
	rem := s.Bytes - perRec*int64(s.Records)
	sharedPath := ""
	if s.Shared {
		prefix := "in"
		if s.Write {
			prefix = "out"
		}
		sharedPath = b.nextPath(prefix)
	}
	for r := 0; r < s.Records; r++ {
		jitter := 0.0
		if s.Desync > 0 {
			jitter = b.rng.Float64() * s.Desync * s.Duration
		}
		start := b.clampT(s.At + jitter)
		end := b.clampT(start + s.Duration)
		if end <= start {
			end = b.clampT(start + 0.001)
		}
		bytes := perRec
		if r == 0 {
			bytes += rem
		}
		path := sharedPath
		if path == "" {
			prefix := "in"
			if s.Write {
				prefix = "out"
			}
			path = b.nextPath(prefix)
		}
		rec := darshan.FileRecord{
			Module: s.Module,
			Path:   path,
			Rank:   int32(r % int(b.job.NProcs)),
			C: darshan.Counters{
				Opens:      1,
				Closes:     1,
				Seeks:      1 + s.SeeksPer,
				OpenStart:  b.clampT(s.At - 0.01),
				OpenEnd:    b.clampT(s.At),
				CloseStart: end,
				CloseEnd:   b.clampT(end + 0.01),
			},
		}
		if s.Write {
			rec.C.Writes = max64(1, bytes/(1<<20))
			rec.C.BytesWritten = bytes
			rec.C.WriteStart = start
			rec.C.WriteEnd = end
		} else {
			rec.C.Reads = max64(1, bytes/(1<<20))
			rec.C.BytesRead = bytes
			rec.C.ReadStart = start
			rec.C.ReadEnd = end
		}
		b.job.Records = append(b.job.Records, rec)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Steady emits one whole-run record per participating rank: the file is
// opened near the start and closed near the end, with the transfer window
// spanning almost the entire execution. This reproduces the Blue Waters
// Darshan caveat (Section IV-A): activity aggregated between open and
// close collapses to a single interval and is categorized steady, even if
// the underlying accesses were periodic.
func (b *Builder) Steady(write bool, totalBytes int64, records int) {
	rt := b.job.Runtime
	b.Burst(BurstSpec{
		At:       0.005 * rt,
		Duration: 0.985 * rt,
		Bytes:    totalBytes,
		Records:  records,
		Desync:   0.01, // spreads the CLOSEs so only the collective OPEN spikes
		Write:    write,
	})
}

// PeriodicSpec describes a checkpoint-style periodic phase train.
type PeriodicSpec struct {
	Period    float64 // seconds between phase starts
	PhaseFrac float64 // phase duration as a fraction of the period (busy ratio)
	BytesPer  int64   // bytes per phase (across all records)
	Records   int     // records per phase
	Jitter    float64 // relative jitter on the period (e.g. 0.02)
	Write     bool
	StartAt   float64 // first phase start (default: one period in)
}

// Periodic emits a train of equally spaced bursts covering the run. It
// returns the number of phases emitted.
func (b *Builder) Periodic(s PeriodicSpec) int {
	rt := b.job.Runtime
	if s.Period <= 0 || s.Period >= rt {
		return 0
	}
	if s.PhaseFrac <= 0 {
		s.PhaseFrac = 0.05
	}
	at := s.StartAt
	if at <= 0 {
		at = s.Period * 0.5
	}
	n := 0
	for ; at+s.Period*s.PhaseFrac < rt; at += s.Period {
		t := at
		if s.Jitter > 0 {
			t += (b.rng.Float64()*2 - 1) * s.Jitter * s.Period
		}
		b.Burst(BurstSpec{
			At:       b.clampT(t),
			Duration: s.Period * s.PhaseFrac,
			Bytes:    jitterBytes(b.rng, s.BytesPer, 0.05),
			Records:  s.Records,
			Desync:   0.1,
			Write:    s.Write,
		})
		n++
	}
	return n
}

func jitterBytes(rng *rand.Rand, base int64, rel float64) int64 {
	if base <= 0 {
		return base
	}
	f := 1 + (rng.Float64()*2-1)*rel
	v := int64(float64(base) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// MetadataStorm emits metadata-only records spread over [from, to]: each
// record represents a rank churning through small file opens, with
// requests landing at the record's open timestamp.
func (b *Builder) MetadataStorm(from, to float64, records int, requestsPer int64) {
	if records <= 0 || to <= from {
		return
	}
	step := (to - from) / float64(records)
	for r := 0; r < records; r++ {
		t := b.clampT(from + (float64(r)+b.rng.Float64()*0.5)*step)
		rec := darshan.FileRecord{
			Module: darshan.ModPOSIX,
			Path:   b.nextPath("meta"),
			Rank:   int32(r % int(b.job.NProcs)),
			C: darshan.Counters{
				Opens:      requestsPer / 2,
				Closes:     requestsPer / 2,
				Seeks:      requestsPer - 2*(requestsPer/2),
				OpenStart:  t,
				OpenEnd:    b.clampT(t + 0.01),
				CloseStart: b.clampT(t + 0.5),
				CloseEnd:   b.clampT(t + 0.51),
			},
		}
		b.job.Records = append(b.job.Records, rec)
	}
}

// Job finalizes the trace: the ground-truth annotation is serialized into
// the metadata, and the assembled job is returned.
func (b *Builder) Job() *darshan.Job {
	b.job.Metadata[TruthKey] = b.truth.String()
	return b.job
}
