package core

import (
	"fmt"
	"math"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/dsp"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// clusterScratchPool hands each categorization worker a reusable bundle of
// clustering buffers. With it, the Mean Shift hot path allocates O(1) per
// trace regardless of segment count: feature embedding, grid index, seed
// trajectories, and mode-merge working sets all live in the scratch.
var clusterScratchPool = sync.Pool{New: func() any { return cluster.NewScratch() }}

// PeriodicityDetector selects the algorithm used for step (3)(a). The
// paper ships the segmentation + Mean Shift detector and names
// signal-processing techniques [24] as short-term future work; this
// implementation provides both, plus a hybrid that cross-checks the
// segmentation result with the spectrum.
type PeriodicityDetector uint8

// Available periodicity detectors.
const (
	// DetectMeanShift is the paper's detector: segmentation + Mean Shift
	// clustering. Detects multiple interleaved periodic operations.
	DetectMeanShift PeriodicityDetector = iota
	// DetectDFT is the frequency-technique baseline: binned byte-rate
	// signal, periodogram, dominant-peak test. Single period only.
	DetectDFT
	// DetectHybrid runs Mean Shift and keeps only groups whose period is
	// corroborated by a spectral peak, falling back to the DFT result
	// when segmentation finds nothing (e.g. heavily smeared traces).
	DetectHybrid
)

// String implements fmt.Stringer.
func (d PeriodicityDetector) String() string {
	switch d {
	case DetectMeanShift:
		return "meanshift"
	case DetectDFT:
		return "dft"
	case DetectHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("PeriodicityDetector(%d)", uint8(d))
	}
}

// periodicityTrace collects the detector evidence discarded by the plain
// path: which algorithm ran, the segmentation clustering trace, and the
// spectral detection (when the dft or hybrid detector consulted it). A
// nil trace costs a pointer check per call site.
type periodicityTrace struct {
	Detector string
	Seg      segment.DetectTrace
	Spectral dsp.Detection
}

// detectPeriodicity dispatches on the configured detector and returns the
// periodic groups of one direction. tr, when non-nil, receives the
// detection evidence; results are identical either way.
func detectPeriodicity(merged []interval.Interval, runtime float64, cfg *Config, tr *periodicityTrace) ([]segment.Group, error) {
	if tr != nil {
		tr.Detector = cfg.PeriodicityDetector.String()
	}
	switch cfg.PeriodicityDetector {
	case DetectDFT:
		det := dsp.DetectPeriodicity(merged, runtime, dsp.DetectorConfig{})
		if tr != nil {
			tr.Spectral = det
		}
		return dftGroupsFrom(det, merged, runtime), nil
	case DetectHybrid:
		groups, err := meanShiftGroups(merged, runtime, cfg, tr)
		if err != nil {
			return nil, err
		}
		if len(groups) == 0 {
			det := dsp.DetectPeriodicity(merged, runtime, dsp.DetectorConfig{})
			if tr != nil {
				tr.Spectral = det
			}
			return dftGroupsFrom(det, merged, runtime), nil
		}
		det := dsp.DetectPeriodicity(merged, runtime, dsp.DetectorConfig{})
		if tr != nil {
			tr.Spectral = det
		}
		if !det.Periodic {
			return groups, nil
		}
		// Keep groups compatible with the dominant spectral period or
		// one of its harmonics; drop the rest as likely noise.
		kept := groups[:0]
		for _, g := range groups {
			if harmonicOf(g.Period, det.Period, 0.25) {
				kept = append(kept, g)
			}
		}
		if len(kept) == 0 {
			return groups, nil // spectrum disagrees entirely: trust segmentation
		}
		return kept, nil
	default: // DetectMeanShift
		return meanShiftGroups(merged, runtime, cfg, tr)
	}
}

func meanShiftGroups(merged []interval.Interval, runtime float64, cfg *Config, tr *periodicityTrace) ([]segment.Group, error) {
	segs := segment.Split(merged, runtime)
	sc := clusterScratchPool.Get().(*cluster.Scratch)
	defer clusterScratchPool.Put(sc)
	dc := segment.DetectConfig{
		Bandwidth:    cfg.MeanShiftBandwidth,
		Kernel:       cfg.MeanShiftKernel,
		MinGroupSize: cfg.MinGroupSize,
		MinCoverage:  cfg.MinGroupCoverage,
		Features: segment.FeatureConfig{
			Runtime:        runtime,
			VolumeLogScale: cfg.VolumeLogScale,
		},
		Scratch: sc,
	}
	if tr != nil {
		dc.Trace = &tr.Seg
	}
	return segment.Detect(segs, dc)
}

// dftGroups runs the spectral detector and adapts its result (see
// dftGroupsFrom).
func dftGroups(merged []interval.Interval, runtime float64) []segment.Group {
	return dftGroupsFrom(dsp.DetectPeriodicity(merged, runtime, dsp.DetectorConfig{}), merged, runtime)
}

// dftGroupsFrom adapts a frequency-domain detection into the Group shape
// so the rest of the pipeline (category assignment, reporting) is
// agnostic to the detector.
func dftGroupsFrom(det dsp.Detection, merged []interval.Interval, runtime float64) []segment.Group {
	if !det.Periodic || det.Period <= 0 {
		return nil
	}
	count := int(runtime / det.Period)
	if count < 2 {
		return nil
	}
	var bytes, busy float64
	for _, op := range merged {
		bytes += float64(op.Bytes)
		busy += op.Duration()
	}
	return []segment.Group{{
		Count:     count,
		Period:    det.Period,
		Magnitude: category.MagnitudeOf(det.Period),
		MeanBytes: bytes / float64(count),
		BusyRatio: busy / runtime,
	}}
}

// harmonicOf reports whether a is within tol of b, b/2, b/3, 2b or 3b.
func harmonicOf(a, b, tol float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	for _, m := range []float64{1, 0.5, 1.0 / 3, 2, 3} {
		if math.Abs(a-b*m)/(b*m) <= tol {
			return true
		}
	}
	return false
}
