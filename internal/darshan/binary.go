package darshan

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary codec for Darshan-like logs. Real Darshan logs are a compressed
// binary container (zlib regions indexed by a header); we reproduce the
// same architecture with a small header followed by a gzip-compressed
// little-endian body. The format is versioned and self-describing enough
// for the corpus reader to reject foreign files cheaply.
//
// Layout:
//
//	magic   [4]byte  "MOSD"
//	version uint16   (current: 1)
//	flags   uint16   (bit 0: body is gzip-compressed)
//	body    — little-endian fields, see encodeBody
//
// Strings are length-prefixed (uint32 + raw bytes). All multi-byte values
// are little-endian.

// Magic identifies MOSAIC Darshan-like binary logs.
var Magic = [4]byte{'M', 'O', 'S', 'D'}

// FormatVersion is the current binary format version. Version 2 added
// optional DXT segment lists per record; version 1 files remain readable.
const FormatVersion uint16 = 2

// minFormatVersion is the oldest version the reader accepts.
const minFormatVersion uint16 = 1

const flagGzip uint16 = 1 << 0

// Limits protecting the decoder against corrupted or hostile inputs.
const (
	maxStringLen  = 1 << 20 // 1 MiB per string
	maxRecords    = 1 << 26 // 64M records per job
	maxMetaPairs  = 1 << 16
	maxDXTPerList = 1 << 24 // 16M traced segments per record
)

// ErrBadMagic reports that a stream does not start with the MOSD magic.
var ErrBadMagic = errors.New("darshan: bad magic (not a MOSAIC binary log)")

// ErrBadVersion reports an unsupported format version.
var ErrBadVersion = errors.New("darshan: unsupported format version")

// WriteBinary encodes the job to w in the binary log format, compressing
// the body with gzip.
func WriteBinary(w io.Writer, j *Job) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], FormatVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], flagGzip)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	zw := gzip.NewWriter(bw)
	e := &encoder{w: zw}
	e.encodeBody(j)
	if e.err != nil {
		return e.err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary decodes one job from r. It validates the container framing
// but not the semantic content; callers run Validate separately so that
// corruption statistics can be collected (the paper's step 1).
func ReadBinary(r io.Reader) (*Job, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("darshan: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("darshan: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint16(hdr[0:2])
	flags := binary.LittleEndian.Uint16(hdr[2:4])
	if version < minFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	var body io.Reader = br
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("darshan: opening gzip body: %w", err)
		}
		defer zr.Close()
		body = zr
	}
	d := &decoder{r: bufio.NewReader(body), version: version}
	j := d.decodeBody()
	if d.err != nil {
		return nil, d.err
	}
	// Drain the remainder of the body: for gzip this forces the CRC32
	// trailer check, so silently truncated files are rejected.
	if _, err := io.Copy(io.Discard, d.r); err != nil {
		return nil, fmt.Errorf("darshan: corrupted body trailer: %w", err)
	}
	return j, nil
}

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) u32(v uint32) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	_, e.err = e.w.Write(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	if e.err != nil {
		return
	}
	if len(s) > maxStringLen {
		e.err = fmt.Errorf("darshan: string too long (%d bytes)", len(s))
		return
	}
	e.u32(uint32(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *encoder) encodeBody(j *Job) {
	e.u64(j.JobID)
	e.u32(j.UID)
	e.str(j.User)
	e.str(j.Exe)
	e.u32(uint32(j.NProcs))
	e.i64(j.Start)
	e.i64(j.End)
	e.f64(j.Runtime)

	e.u32(uint32(len(j.Metadata)))
	// Metadata keys are emitted sorted so that encoding is a pure function
	// of the Job value: same corpus seed ⇒ byte-identical .mosd files.
	keys := make([]string, 0, len(j.Metadata))
	for k := range j.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.str(k)
		e.str(j.Metadata[k])
	}

	e.u32(uint32(len(j.Records)))
	for i := range j.Records {
		r := &j.Records[i]
		e.u32(uint32(r.Module))
		e.str(r.Path)
		e.u32(uint32(r.Rank))
		c := &r.C
		for _, v := range []int64{c.Opens, c.Closes, c.Seeks, c.Stats, c.Reads, c.Writes, c.BytesRead, c.BytesWritten} {
			e.i64(v)
		}
		for _, v := range []float64{c.OpenStart, c.OpenEnd, c.ReadStart, c.ReadEnd, c.WriteStart, c.WriteEnd, c.CloseStart, c.CloseEnd} {
			e.f64(v)
		}
		e.dxtList(r.DXTReads)
		e.dxtList(r.DXTWrites)
	}
}

func (e *encoder) dxtList(events []DXTEvent) {
	e.u32(uint32(len(events)))
	for _, ev := range events {
		e.f64(ev.Start)
		e.f64(ev.End)
		e.i64(ev.Offset)
		e.i64(ev.Length)
	}
}

type decoder struct {
	r       io.Reader
	err     error
	version uint16
	buf     [8]byte
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.buf[:4]); err != nil {
		d.fail(fmt.Errorf("darshan: truncated body: %w", err))
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.buf[:8]); err != nil {
		d.fail(fmt.Errorf("darshan: truncated body: %w", err))
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("darshan: string length %d exceeds limit", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(fmt.Errorf("darshan: truncated string: %w", err))
		return ""
	}
	return string(b)
}

func (d *decoder) dxtList() []DXTEvent {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxDXTPerList {
		d.fail(fmt.Errorf("darshan: DXT list length %d exceeds limit", n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]DXTEvent, 0, min(n, 4096))
	for i := uint32(0); i < n; i++ {
		var ev DXTEvent
		ev.Start = d.f64()
		ev.End = d.f64()
		ev.Offset = d.i64()
		ev.Length = d.i64()
		if d.err != nil {
			return nil
		}
		out = append(out, ev)
	}
	return out
}

func (d *decoder) decodeBody() *Job {
	j := &Job{}
	j.JobID = d.u64()
	j.UID = d.u32()
	j.User = d.str()
	j.Exe = d.str()
	j.NProcs = int32(d.u32())
	j.Start = d.i64()
	j.End = d.i64()
	j.Runtime = d.f64()

	nMeta := d.u32()
	if d.err != nil {
		return nil
	}
	if nMeta > maxMetaPairs {
		d.fail(fmt.Errorf("darshan: metadata pair count %d exceeds limit", nMeta))
		return nil
	}
	if nMeta > 0 {
		j.Metadata = make(map[string]string, nMeta)
		for i := uint32(0); i < nMeta; i++ {
			k := d.str()
			v := d.str()
			if d.err != nil {
				return nil
			}
			j.Metadata[k] = v
		}
	}

	nRec := d.u32()
	if d.err != nil {
		return nil
	}
	if nRec > maxRecords {
		d.fail(fmt.Errorf("darshan: record count %d exceeds limit", nRec))
		return nil
	}
	if nRec == 0 {
		return j
	}
	j.Records = make([]FileRecord, 0, min(nRec, 4096))
	for i := uint32(0); i < nRec; i++ {
		var r FileRecord
		r.Module = Module(d.u32())
		r.Path = d.str()
		r.Rank = int32(d.u32())
		c := &r.C
		ints := []*int64{&c.Opens, &c.Closes, &c.Seeks, &c.Stats, &c.Reads, &c.Writes, &c.BytesRead, &c.BytesWritten}
		for _, p := range ints {
			*p = d.i64()
		}
		floats := []*float64{&c.OpenStart, &c.OpenEnd, &c.ReadStart, &c.ReadEnd, &c.WriteStart, &c.WriteEnd, &c.CloseStart, &c.CloseEnd}
		for _, p := range floats {
			*p = d.f64()
		}
		if d.version >= 2 {
			r.DXTReads = d.dxtList()
			r.DXTWrites = d.dxtList()
		}
		if d.err != nil {
			return nil
		}
		j.Records = append(j.Records, r)
	}
	return j
}

// MarshalBinary returns the binary log encoding of the job as bytes.
func MarshalBinary(j *Job) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, j); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary parses a binary-log-encoded job.
func UnmarshalBinary(data []byte) (*Job, error) {
	return ReadBinary(bytes.NewReader(data))
}
