package index

import (
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Sorted-set algebra over []uint32 ordinal postings. Every operation
// appends into a caller-supplied destination (typically a pooled
// scratch buffer) and never mutates its inputs, so borrowed
// generation postings can flow through untouched.

// gallopRatio is the size imbalance at which the merge algorithms
// switch from linear scanning to exponential (galloping) search over
// the larger list.
const gallopRatio = 32

// advance returns the smallest i >= lo with s[i] >= x, galloping
// forward then binary-searching the final range.
func advance(s []uint32, lo int, x uint32) int {
	bound := 1
	for lo+bound < len(s) && s[lo+bound] < x {
		bound <<= 1
	}
	hi := lo + bound
	if hi > len(s) {
		hi = len(s)
	}
	lo += bound >> 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectInto appends a ∩ b to dst.
func intersectInto(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j = advance(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// unionInto appends a ∪ b to dst.
func unionInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// subtractInto appends a \ b to dst.
func subtractInto(dst, a, b []uint32) []uint32 {
	if len(b) == 0 {
		return append(dst, a...)
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j = advance(b, j, x)
			if j == len(b) || b[j] != x {
				dst = append(dst, x)
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return append(dst, a[i:]...)
}

// complementInto appends [0,n) \ a to dst — the lazy-NOT
// materialization against the implicit universe.
func complementInto(dst, a []uint32, n uint32) []uint32 {
	next := uint32(0)
	for _, x := range a {
		for ; next < x; next++ {
			dst = append(dst, next)
		}
		next = x + 1
	}
	for ; next < n; next++ {
		dst = append(dst, next)
	}
	return dst
}

// scratch is the pooled per-query workspace: a free list of ordinal
// buffers for the set algebra, node/estimate buffers for AND
// reordering, and delta-overlay state. A warm query allocates nothing
// but its final output.
type scratch struct {
	bufs  [][]uint32
	nodes []*planNode
	ests  []int
	seen  map[store.TraceID]struct{}
	ids   []string
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	// Drop string references so pooled scratch doesn't pin trace IDs.
	clear(sc.ids[:cap(sc.ids)])
	sc.ids = sc.ids[:0]
	sc.nodes = sc.nodes[:0]
	sc.ests = sc.ests[:0]
	if sc.seen != nil {
		clear(sc.seen)
	}
	scratchPool.Put(sc)
}

func (sc *scratch) get() []uint32 {
	if n := len(sc.bufs); n > 0 {
		b := sc.bufs[n-1]
		sc.bufs = sc.bufs[:n-1]
		return b[:0]
	}
	return make([]uint32, 0, 1024)
}

func (sc *scratch) put(b []uint32) {
	if b != nil {
		sc.bufs = append(sc.bufs, b)
	}
}

func (sc *scratch) seenMap() map[store.TraceID]struct{} {
	if sc.seen == nil {
		sc.seen = make(map[store.TraceID]struct{})
	}
	return sc.seen
}
