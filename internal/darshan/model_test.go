package darshan

import (
	"testing"
)

func sampleJob() *Job {
	return &Job{
		JobID:   7,
		UID:     1001,
		User:    "alice",
		Exe:     "/apps/bin/lammps -in run.in",
		NProcs:  64,
		Start:   1_550_000_000,
		End:     1_550_003_600,
		Runtime: 3600,
		Records: []FileRecord{
			{
				Module: ModPOSIX, Path: "/scratch/in.dat", Rank: SharedRank,
				C: Counters{
					Opens: 64, Closes: 64, Seeks: 64,
					Reads: 100, BytesRead: 1 << 30,
					OpenStart: 1, OpenEnd: 2, ReadStart: 2, ReadEnd: 60,
					CloseStart: 61, CloseEnd: 62,
				},
			},
			{
				Module: ModPOSIX, Path: "/scratch/out.dat", Rank: 0,
				C: Counters{
					Opens: 1, Closes: 1, Seeks: 2,
					Writes: 50, BytesWritten: 2 << 30,
					OpenStart: 3000, OpenEnd: 3001, WriteStart: 3001, WriteEnd: 3100,
					CloseStart: 3101, CloseEnd: 3102,
				},
			},
		},
		Metadata: map[string]string{"k": "v"},
	}
}

func TestModuleString(t *testing.T) {
	cases := map[Module]string{
		ModPOSIX: "POSIX", ModMPIIO: "MPI-IO", ModSTDIO: "STDIO", Module(9): "Module(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Module(%d).String() = %q, want %q", m, got, want)
		}
	}
	if Module(9).Valid() {
		t.Error("Module(9) should be invalid")
	}
	if !ModSTDIO.Valid() {
		t.Error("ModSTDIO should be valid")
	}
}

func TestAppName(t *testing.T) {
	j := sampleJob()
	if got := j.AppName(); got != "lammps" {
		t.Fatalf("AppName = %q, want lammps (args must be stripped)", got)
	}
	j2 := &Job{Exe: "simulation"}
	if got := j2.AppName(); got != "simulation" {
		t.Fatalf("AppName = %q", got)
	}
	if sampleJob().AppKey() == (&Job{User: "bob", Exe: "/apps/bin/lammps"}).AppKey() {
		t.Fatal("different users must have different app keys")
	}
}

func TestTotals(t *testing.T) {
	j := sampleJob()
	if got := j.TotalBytesRead(); got != 1<<30 {
		t.Fatalf("TotalBytesRead = %d", got)
	}
	if got := j.TotalBytesWritten(); got != 2<<30 {
		t.Fatalf("TotalBytesWritten = %d", got)
	}
	wantMeta := int64(64+64+64) + int64(1+1+2)
	if got := j.TotalMetaOps(); got != wantMeta {
		t.Fatalf("TotalMetaOps = %d, want %d", got, wantMeta)
	}
	if j.Weight() != j.TotalBytesRead()+j.TotalBytesWritten()+j.TotalMetaOps() {
		t.Fatal("Weight mismatch")
	}
}

func TestReadWriteIntervals(t *testing.T) {
	j := sampleJob()
	reads := j.ReadIntervals()
	if len(reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(reads))
	}
	if reads[0].Start != 2 || reads[0].End != 60 || reads[0].Bytes != 1<<30 {
		t.Fatalf("read interval = %v", reads[0])
	}
	if reads[0].Meta != 64+64 { // opens + seeks
		t.Fatalf("read interval meta = %d", reads[0].Meta)
	}
	writes := j.WriteIntervals()
	if len(writes) != 1 || writes[0].Start != 3001 || writes[0].Bytes != 2<<30 {
		t.Fatalf("write intervals = %v", writes)
	}
}

func TestMetaEvents(t *testing.T) {
	j := sampleJob()
	events := j.MetaEvents()
	// Each record emits an open-side and a close-side event.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	var total int64
	for _, e := range events {
		total += e.Count
	}
	if total != j.TotalMetaOps() {
		t.Fatalf("event counts %d != total meta ops %d", total, j.TotalMetaOps())
	}
}

func TestCloneIsDeep(t *testing.T) {
	j := sampleJob()
	cp := j.Clone()
	cp.Records[0].C.BytesRead = 999
	cp.Metadata["k"] = "changed"
	if j.Records[0].C.BytesRead == 999 {
		t.Fatal("Clone shares records")
	}
	if j.Metadata["k"] == "changed" {
		t.Fatal("Clone shares metadata")
	}
}

func TestJobString(t *testing.T) {
	s := sampleJob().String()
	for _, want := range []string{"lammps", "alice", "nprocs=64"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCountersPredicates(t *testing.T) {
	var c Counters
	if c.HasRead() || c.HasWrite() {
		t.Fatal("zero counters should have no activity")
	}
	c.BytesRead = 1
	if !c.HasRead() {
		t.Fatal("BytesRead > 0 should imply HasRead")
	}
	c2 := Counters{Writes: 1}
	if !c2.HasWrite() {
		t.Fatal("Writes > 0 should imply HasWrite")
	}
}
