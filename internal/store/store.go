// Package store is MOSAIC's durable, content-addressed result store:
// the persistence layer that turns one-shot corpus runs into an
// incrementally updated service.
//
// Traces are keyed by the SHA-256 of their canonical binary encoding
// (darshan.WriteBinary is a pure function of the Job value, so the
// same trace always hashes the same). Categorization results are
// keyed by (trace hash, Config fingerprint): re-analyzing an
// unchanged trace under an unchanged effective configuration is a
// cache hit, and changing any threshold naturally invalidates every
// stored result without touching the trace blobs.
//
// On disk the store is an append-only segment log (numbered *.seg
// files, CRC-framed records) plus an in-memory key → location index
// rebuilt by scanning the segments on Open. Appends are crash-safe:
// a torn tail (kill mid-append) fails its CRC or length check on
// recovery and only the torn frame is dropped — every fully written
// record survives. Hot values are served from a byte-bounded LRU
// cache so memory stays flat regardless of store size.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
)

// TraceID is the content address of one trace: the lowercase hex
// SHA-256 of its canonical binary encoding.
type TraceID string

// Valid reports whether the ID is a well-formed SHA-256 hex digest.
func (id TraceID) Valid() bool {
	if len(id) != sha256.Size*2 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// HashBytes returns the content address of an encoded trace blob.
func HashBytes(data []byte) TraceID {
	sum := sha256.Sum256(data)
	return TraceID(hex.EncodeToString(sum[:]))
}

// TraceKey canonically encodes a job and returns its content address
// alongside the encoding, so callers that go on to persist the blob
// do not encode twice.
func TraceKey(j *darshan.Job) (TraceID, []byte, error) {
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return "", nil, fmt.Errorf("store: encoding trace: %w", err)
	}
	return HashBytes(data), data, nil
}

// Record kinds in the segment log.
const (
	kindTrace   byte = 1
	kindResult  byte = 2
	kindExplain byte = 3
)

// Frame layout: [u32 payloadLen][payload][u32 crc32(payload)] with
// payload = [u8 kind][u16 keyLen][key][value], all little-endian.
const (
	frameHeaderLen  = 4
	framePayloadMin = 1 + 2
	frameCRCLen     = 4
	maxFrameLen     = 1 << 30 // 1 GiB per record, matching darshan's decoder limits
	maxKeyLen       = 1 << 10
)

// Options tunes a store. The zero value selects sane defaults.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size (<= 0: 64 MiB).
	MaxSegmentBytes int64
	// CacheBytes bounds the in-memory value cache (0: 32 MiB; < 0:
	// cache disabled). The key → location index is always resident.
	CacheBytes int64
	// Sync fsyncs after every append. Durability against power loss at
	// the cost of write latency; without it the log is still
	// crash-consistent (torn tails are dropped on recovery).
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	return o
}

// loc addresses one stored value inside a segment.
type loc struct {
	seg    int
	valOff int64
	valLen int
}

// Stats is a point-in-time view of a store.
type Stats struct {
	Traces           int   `json:"traces"`
	Results          int   `json:"results"`
	Explanations     int   `json:"explanations"`
	Segments         int   `json:"segments"`
	DiskBytes        int64 `json:"disk_bytes"`
	CacheItems       int   `json:"cache_items"`
	CacheBytes       int64 `json:"cache_bytes"`
	Hits             int64 `json:"hits"`   // GetResult found a stored result
	Misses           int64 `json:"misses"` // GetResult found nothing
	RecoveredFrames  int   `json:"recovered_frames"`
	DroppedTailBytes int64 `json:"dropped_tail_bytes"`
}

// Store is a content-addressed trace/result store backed by an
// append-only segment log. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex // guards index, segment bookkeeping, appends
	index   map[string]loc
	readers []*os.File // one read handle per segment, index = segment number - 1
	active  *os.File   // append handle of the last segment
	size    int64      // bytes in the active segment
	closed  bool

	traces   int
	results  int
	explains int

	cache *lru

	hits, misses     atomic.Int64
	recoveredFrames  int
	droppedTailBytes int64
}

// Open opens (creating if necessary) the store rooted at dir and
// rebuilds the in-memory index from the segment log. Torn tails from
// a crashed writer are detected by CRC/length validation and dropped;
// everything before them is recovered.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]loc),
		cache: newLRU(opts.CacheBytes),
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// segPath names segment n (1-based).
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d.seg", n))
}

// recover scans every segment in order, rebuilding the index. The
// last segment becomes the active one; if its tail is torn it is
// truncated to the last valid frame so appends resume cleanly.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return s.openSegment(1)
	}
	for i, name := range names {
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %w", name, err)
		}
		s.readers = append(s.readers, f)
		good, dropped, err := s.scanSegment(i+1, f)
		if err != nil {
			return err
		}
		s.droppedTailBytes += dropped
		last := i == len(names)-1
		if dropped > 0 && last {
			if err := os.Truncate(filepath.Join(s.dir, name), good); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", name, err)
			}
		}
		if last {
			w, err := os.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: reopening %s for append: %w", name, err)
			}
			s.active = w
			s.size = good
		}
	}
	return nil
}

// scanSegment walks one segment's frames, indexing each valid record.
// It returns the offset of the last valid frame end and how many
// trailing bytes were dropped as torn.
func (s *Store) scanSegment(seg int, f *os.File) (good int64, dropped int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("store: stat segment %d: %w", seg, err)
	}
	fileSize := info.Size()
	var off int64
	var hdr [frameHeaderLen]byte
	for {
		if off+frameHeaderLen > fileSize {
			break // clean end (off == fileSize) or torn length prefix
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, 0, fmt.Errorf("store: reading segment %d at %d: %w", seg, off, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n < framePayloadMin || n > maxFrameLen || off+frameHeaderLen+n+frameCRCLen > fileSize {
			break // torn or garbage tail
		}
		buf := make([]byte, n+frameCRCLen)
		if _, err := f.ReadAt(buf, off+frameHeaderLen); err != nil {
			return 0, 0, fmt.Errorf("store: reading segment %d frame at %d: %w", seg, off, err)
		}
		payload := buf[:n]
		want := binary.LittleEndian.Uint32(buf[n:])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn frame: checksum of a partial write never matches
		}
		kind := payload[0]
		keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
		if keyLen > maxKeyLen || framePayloadMin+int64(keyLen) > n || (kind != kindTrace && kind != kindResult && kind != kindExplain) {
			break // structurally invalid: treat like a torn tail
		}
		key := string(payload[3 : 3+keyLen])
		s.indexPut(key, loc{
			seg:    seg,
			valOff: off + frameHeaderLen + framePayloadMin + int64(keyLen),
			valLen: int(n) - framePayloadMin - keyLen,
		})
		s.recoveredFrames++
		off += frameHeaderLen + n + frameCRCLen
	}
	return off, fileSize - off, nil
}

// indexPut records a key's location, maintaining the
// trace/result/explanation counters (last write wins, matching log
// replay order).
func (s *Store) indexPut(key string, l loc) {
	if _, exists := s.index[key]; !exists {
		switch {
		case strings.HasPrefix(key, "t/"):
			s.traces++
		case strings.HasPrefix(key, "e/"):
			s.explains++
		default:
			s.results++
		}
	}
	s.index[key] = l
}

// openSegment creates segment n and makes it active.
func (s *Store) openSegment(n int) error {
	path := s.segPath(n)
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close()
		return fmt.Errorf("store: opening segment %s: %w", path, err)
	}
	if s.active != nil {
		s.active.Close() // seal previous segment; its reader stays open
	}
	s.active = w
	s.readers = append(s.readers, r)
	s.size = 0
	return nil
}

// append writes one framed record and indexes it. Callers hold s.mu.
func (s *Store) append(kind byte, key string, value []byte) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key too long (%d bytes)", len(key))
	}
	payloadLen := framePayloadMin + len(key) + len(value)
	if payloadLen > maxFrameLen {
		return fmt.Errorf("store: record too large (%d bytes)", payloadLen)
	}
	frame := make([]byte, frameHeaderLen+payloadLen+frameCRCLen)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payloadLen))
	frame[4] = kind
	binary.LittleEndian.PutUint16(frame[5:7], uint16(len(key)))
	copy(frame[7:], key)
	copy(frame[7+len(key):], value)
	payload := frame[frameHeaderLen : frameHeaderLen+payloadLen]
	binary.LittleEndian.PutUint32(frame[frameHeaderLen+payloadLen:], crc32.ChecksumIEEE(payload))

	if _, err := s.active.Write(frame); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.opts.Sync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.indexPut(key, loc{
		seg:    len(s.readers),
		valOff: s.size + frameHeaderLen + framePayloadMin + int64(len(key)),
		valLen: len(value),
	})
	s.size += int64(len(frame))
	if s.size >= s.opts.MaxSegmentBytes {
		if err := s.openSegment(len(s.readers) + 1); err != nil {
			return err
		}
	}
	return nil
}

// readValue fetches a value by location, via the LRU cache.
func (s *Store) readValue(key string, l loc) ([]byte, error) {
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	s.mu.RLock()
	if l.seg < 1 || l.seg > len(s.readers) {
		s.mu.RUnlock()
		return nil, fmt.Errorf("store: invalid segment %d for key %q", l.seg, key)
	}
	r := s.readers[l.seg-1]
	s.mu.RUnlock()
	buf := make([]byte, l.valLen)
	if _, err := r.ReadAt(buf, l.valOff); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: reading %q: %w", key, err)
	}
	s.cache.put(key, buf)
	return buf, nil
}

func traceKeyOf(id TraceID) string              { return "t/" + string(id) }
func resultKeyOf(id TraceID, fp string) string  { return "r/" + string(id) + "/" + fp }
func explainKeyOf(id TraceID, fp string) string { return "e/" + string(id) + "/" + fp }

// PutTraceBytes stores an encoded trace blob under its content
// address. It returns the address and whether the blob was already
// present (content addressing makes re-ingest idempotent).
func (s *Store) PutTraceBytes(data []byte) (TraceID, bool, error) {
	id := HashBytes(data)
	key := traceKeyOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return id, true, nil
	}
	if err := s.append(kindTrace, key, data); err != nil {
		return id, false, err
	}
	return id, false, nil
}

// PutTrace canonically encodes and stores a job.
func (s *Store) PutTrace(j *darshan.Job) (TraceID, bool, error) {
	_, data, err := TraceKey(j)
	if err != nil {
		return "", false, err
	}
	return s.PutTraceBytes(data)
}

// HasTrace reports whether a trace blob is stored.
func (s *Store) HasTrace(id TraceID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[traceKeyOf(id)]
	return ok
}

// GetTraceBytes returns the stored encoding of a trace, or (nil,
// false) when absent.
func (s *Store) GetTraceBytes(id TraceID) ([]byte, bool, error) {
	key := traceKeyOf(id)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	v, err := s.readValue(key, l)
	return v, err == nil, err
}

// GetTrace decodes a stored trace.
func (s *Store) GetTrace(id TraceID) (*darshan.Job, bool, error) {
	data, ok, err := s.GetTraceBytes(id)
	if err != nil || !ok {
		return nil, ok, err
	}
	j, err := darshan.UnmarshalBinary(data)
	if err != nil {
		return nil, true, fmt.Errorf("store: decoding trace %s: %w", id, err)
	}
	return j, true, nil
}

// PutResult stores one categorization result under (trace, config
// fingerprint). Re-putting the same key appends a new frame and the
// index moves to it (last write wins, also on recovery replay).
func (s *Store) PutResult(id TraceID, fp string, res *core.Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result %s: %w", id, err)
	}
	key := resultKeyOf(id, fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(kindResult, key, data); err != nil {
		return err
	}
	s.cache.put(key, data)
	return nil
}

// PutExplanation stores the decision-provenance record of (trace,
// config fingerprint) — the same key scheme as results, under its own
// record kind, so explanation and result always pair up. It returns
// the serialized size, which feeds the explanation-size telemetry.
func (s *Store) PutExplanation(id TraceID, fp string, e *explain.Explanation) (int, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: encoding explanation %s: %w", id, err)
	}
	key := explainKeyOf(id, fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(kindExplain, key, data); err != nil {
		return 0, err
	}
	s.cache.put(key, data)
	return len(data), nil
}

// GetExplanation returns the stored explanation of (trace,
// fingerprint), reporting found-ness. Explanation lookups do not feed
// the result hit/miss counters.
func (s *Store) GetExplanation(id TraceID, fp string) (*explain.Explanation, bool, error) {
	key := explainKeyOf(id, fp)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := s.readValue(key, l)
	if err != nil {
		return nil, false, err
	}
	var e explain.Explanation
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, fmt.Errorf("store: decoding explanation %s: %w", id, err)
	}
	return &e, true, nil
}

// HasExplanation reports whether an explanation is stored without
// reading it.
func (s *Store) HasExplanation(id TraceID, fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[explainKeyOf(id, fp)]
	return ok
}

// decodeResult parses a stored result and rehydrates the fields that
// do not survive JSON (the category set and the temporal kind are
// serialized as strings).
func decodeResult(data []byte) (*core.Result, error) {
	var res core.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("store: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	res.Read.Temporal = temporalKindOf(res.Read.TemporalS)
	res.Write.Temporal = temporalKindOf(res.Write.TemporalS)
	return &res, nil
}

// temporalKindOf is the inverse of category.TemporalKind.String.
func temporalKindOf(s string) category.TemporalKind {
	for _, k := range category.TemporalKinds() {
		if k.String() == s {
			return k
		}
	}
	return category.Insignificant
}

// GetResult returns the stored categorization of (trace, fingerprint),
// reporting found-ness. Hits and misses feed Stats, the basis of the
// serving layer's cache hit-rate metrics.
func (s *Store) GetResult(id TraceID, fp string) (*core.Result, bool, error) {
	key := resultKeyOf(id, fp)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return nil, false, nil
	}
	data, err := s.readValue(key, l)
	if err != nil {
		return nil, false, err
	}
	res, err := decodeResult(data)
	if err != nil {
		return nil, false, err
	}
	s.hits.Add(1)
	return res, true, nil
}

// HasResult reports whether a result is stored without reading it (no
// hit/miss accounting).
func (s *Store) HasResult(id TraceID, fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[resultKeyOf(id, fp)]
	return ok
}

// EachResult calls fn for every stored result under the given config
// fingerprint, in lexicographic trace-ID order (deterministic, so
// index rebuilds are reproducible). fn returning false stops early.
func (s *Store) EachResult(fp string, fn func(TraceID, *core.Result) bool) error {
	suffix := "/" + fp
	s.mu.RLock()
	keys := make([]string, 0, s.results)
	for k := range s.index {
		if strings.HasPrefix(k, "r/") && strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		s.mu.RLock()
		l, ok := s.index[key]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		data, err := s.readValue(key, l)
		if err != nil {
			return err
		}
		res, err := decodeResult(data)
		if err != nil {
			return err
		}
		id := TraceID(strings.TrimSuffix(strings.TrimPrefix(key, "r/"), suffix))
		if !fn(id, res) {
			return nil
		}
	}
	return nil
}

// EachTraceID calls fn for every stored trace blob's content address,
// in lexicographic order. fn returning false stops early.
func (s *Store) EachTraceID(fn func(TraceID) bool) {
	s.mu.RLock()
	ids := make([]string, 0, s.traces)
	for k := range s.index {
		if strings.HasPrefix(k, "t/") {
			ids = append(ids, strings.TrimPrefix(k, "t/"))
		}
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		if !fn(TraceID(id)) {
			return
		}
	}
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Traces:           s.traces,
		Results:          s.results,
		Explanations:     s.explains,
		Segments:         len(s.readers),
		RecoveredFrames:  s.recoveredFrames,
		DroppedTailBytes: s.droppedTailBytes,
	}
	for i, r := range s.readers {
		if i == len(s.readers)-1 {
			st.DiskBytes += s.size
		} else if info, err := r.Stat(); err == nil {
			st.DiskBytes += info.Size()
		}
	}
	s.mu.RUnlock()
	st.CacheItems, st.CacheBytes = s.cache.stats()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	return st
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || s.closed {
		return nil
	}
	return s.active.Sync()
}

// Close flushes and closes every file handle. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.active.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
