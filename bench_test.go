package mosaic_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section IV), plus component-level micro-benchmarks of each
// pipeline stage. The `cmd/mosaic-bench` binary prints the actual
// paper-vs-measured comparison tables; these testing.B targets measure
// the cost of regenerating each artifact and are the entry point
// `go test -bench=.` exercises.
//
//	BenchmarkFig3Funnel              — pre-processing funnel (Figure 3)
//	BenchmarkTable2Periodicity       — periodic write detection (Table II)
//	BenchmarkTable3Temporality       — temporality distribution (Table III)
//	BenchmarkFig4Metadata            — metadata categories (Figure 4)
//	BenchmarkFig5Jaccard             — Jaccard correlation matrix (Figure 5)
//	BenchmarkAccuracySampling        — Section IV-E sampled accuracy
//	BenchmarkPipelineParallel/*      — Section IV-E throughput scaling
//	BenchmarkAblationDetectors       — Mean Shift vs DFT vs autocorrelation

import (
	"context"
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic"
	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/dsp"
	"github.com/mosaic-hpc/mosaic/internal/experiments"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

const benchApps = 120 // corpus scale for whole-pipeline benches

func benchProfile(seed int64) gen.Profile {
	return experiments.ScaledProfile(seed, benchApps)
}

// benchCorpusRun caches one corpus run across benchmarks that only differ
// in which table they derive.
var benchCR *experiments.CorpusRun

func corpusRun(b *testing.B) *experiments.CorpusRun {
	b.Helper()
	if benchCR == nil {
		cr, err := experiments.Run(benchProfile(1), core.DefaultConfig(), 0)
		if err != nil {
			b.Fatal(err)
		}
		benchCR = cr
	}
	return benchCR
}

func BenchmarkFig3Funnel(b *testing.B) {
	p := benchProfile(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(p)
		if res.Funnel.Total == 0 {
			b.Fatal("empty funnel")
		}
	}
}

func BenchmarkTable2Periodicity(b *testing.B) {
	cr := corpusRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(cr)
		if res.WriteAll.Periodic <= 0 {
			b.Fatal("no periodic writes detected")
		}
	}
}

func BenchmarkTable3Temporality(b *testing.B) {
	cr := corpusRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(cr)
		if res.ReadSingle.Insignificant == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig4Metadata(b *testing.B) {
	cr := corpusRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(cr)
		if len(res.All) == 0 {
			b.Fatal("empty distribution")
		}
	}
}

func BenchmarkFig5Jaccard(b *testing.B) {
	cr := corpusRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(cr)
		if res.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkAccuracySampling(b *testing.B) {
	p := benchProfile(3)
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Accuracy(p, cfg, 64, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Sampled == 0 {
			b.Fatal("nothing sampled")
		}
	}
}

// BenchmarkPipelineParallel measures categorization throughput at several
// worker counts over the same deduplicated corpus (Section IV-E scaling).
func BenchmarkPipelineParallel(b *testing.B) {
	cr := corpusRun(b)
	jobs := make([]*mosaic.Job, 0, len(cr.Results))
	for _, r := range cr.Results {
		// Re-categorize the representative run of each app.
		_ = r
	}
	// Regenerate the representative jobs from the plan to avoid holding
	// results: plan a fresh corpus and take the first run of each app.
	corpus := gen.Plan(benchProfile(1))
	for _, app := range corpus.Apps {
		jobs = append(jobs, corpus.GenerateRun(app, 0).Job)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(itoaB(workers)+"workers", func(b *testing.B) {
			cfg := core.DefaultConfig()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mosaic.CategorizeAll(context.Background(), jobs, mosaic.Options{Config: cfg, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
		})
	}
}

// BenchmarkCategorizeSingle measures the per-trace pipeline cost on the
// flagship checkpointing trace.
func BenchmarkCategorizeSingle(b *testing.B) {
	arch, _ := gen.ArchetypeByName("checkpointer-minute")
	rng := rand.New(rand.NewSource(1))
	p := arch.Params(rng)
	builder := gen.NewBuilder(rng, "u", arch.Exe, 1, p.Ranks, p.RuntimeBase)
	arch.Build(builder, p)
	job := builder.Job()
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Categorize(job, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerging measures the two merging algorithms (Section III-B2) on
// a heavily desynchronized trace.
func BenchmarkMerging(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ops := make([]interval.Interval, 0, 4096)
	for i := 0; i < 4096; i++ {
		s := rng.Float64() * 86400
		ops = append(ops, interval.Interval{Start: s, End: s + rng.Float64()*120, Bytes: rng.Int63n(1 << 30)})
	}
	pol := interval.DefaultNeighborPolicy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := interval.Merge(ops, 86400, pol); len(out) == 0 {
			b.Fatal("merge lost everything")
		}
	}
}

// BenchmarkMeanShift measures the clustering step on a realistic segment
// population (two interleaved periodic trains plus noise).
func BenchmarkMeanShift(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var ops []interval.Interval
	for i := 0; i < 48; i++ {
		s := float64(i)*300 + rng.Float64()*10
		ops = append(ops, interval.Interval{Start: s, End: s + 15, Bytes: 1 << 30})
	}
	for i := 0; i < 20; i++ {
		s := float64(i)*730 + 50 + rng.Float64()*10
		ops = append(ops, interval.Interval{Start: s, End: s + 10, Bytes: 64 << 30})
	}
	interval.SortByStart(ops)
	segs := segment.Split(ops, 14600)
	cfg := segment.DefaultDetectConfig(14600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := segment.Detect(segs, cfg)
		if err != nil || len(groups) < 2 {
			b.Fatalf("groups=%v err=%v", groups, err)
		}
	}
}

// BenchmarkAblationDetectors compares the cost of the three periodicity
// detectors on the same trace (quality comparison lives in
// cmd/mosaic-bench -exp ablation).
func BenchmarkAblationDetectors(b *testing.B) {
	var ops []interval.Interval
	for i := 0; i < 50; i++ {
		s := float64(i)*100 + 50
		ops = append(ops, interval.Interval{Start: s, End: s + 5, Bytes: 1 << 30})
	}
	const runtime = 5050.0
	b.Run("meanshift", func(b *testing.B) {
		segs := segment.Split(ops, runtime)
		cfg := segment.DefaultDetectConfig(runtime)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g, err := segment.Detect(segs, cfg); err != nil || len(g) == 0 {
				b.Fatal("detection failed")
			}
		}
	})
	b.Run("dft", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !dsp.DetectPeriodicity(ops, runtime, dsp.DetectorConfig{}).Periodic {
				b.Fatal("dft missed")
			}
		}
	})
	b.Run("autocorr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !dsp.DetectByAutocorrelation(ops, runtime, dsp.DetectorConfig{}).Periodic {
				b.Fatal("autocorr missed")
			}
		}
	})
}

// BenchmarkGenerateTrace measures synthetic trace generation, the corpus
// substrate all experiments stand on.
func BenchmarkGenerateTrace(b *testing.B) {
	corpus := gen.Plan(benchProfile(6))
	app := corpus.Apps[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := corpus.GenerateRun(app, i)
		if run.Job == nil {
			b.Fatal("nil job")
		}
	}
}

// BenchmarkStability measures the Section III-B1 stability experiment.
func BenchmarkStability(b *testing.B) {
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Stability(int64(i), 1, 4, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerArchetype) == 0 {
			b.Fatal("no stability data")
		}
	}
}

// Aggregation-only benchmark: how fast the Jaccard matrix digests results.
func BenchmarkAggregatorObserve(b *testing.B) {
	cr := corpusRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := mosaic.NewAggregator()
		for _, r := range cr.Results {
			agg.Add(r.Result, r.Runs)
		}
		if agg.Apps() == 0 {
			b.Fatal("empty aggregator")
		}
	}
	_ = category.All
}

func itoaB(v int) string {
	var b [8]byte
	i := len(b)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// BenchmarkDXTExperiment measures the hidden-periodicity experiment: the
// Section IV-A caveat quantified with and without extended tracing.
func BenchmarkDXTExperiment(b *testing.B) {
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.DXT(int64(i), 6, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.DXTRecall == 0 {
			b.Fatal("DXT recall zero")
		}
	}
}

// BenchmarkSchedComparison measures the FCFS vs category-aware scheduling
// simulation (the Section V application).
func BenchmarkSchedComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sched(int64(i), 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.StallReduction <= 0 {
			b.Fatal("no stall reduction measured")
		}
	}
}
