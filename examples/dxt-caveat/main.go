// DXT caveat: demonstrate the paper's Section IV-A limitation and its
// resolution. A simulation that checkpoints into files held open for the
// whole run produces a single aggregate record per file in a
// Blue-Waters-style Darshan log: MOSAIC must categorize it write_steady,
// even though the application is periodic. The same trace collected with
// the DXT module carries per-operation segments, and the periodicity is
// recovered.
//
//	go run ./examples/dxt-caveat
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/mosaic-hpc/mosaic"
)

func buildTrace(withDXT bool) *mosaic.Job {
	rng := rand.New(rand.NewSource(7))
	b := mosaic.NewTraceBuilder(rng, "carol", "/apps/bin/gromacs", 1, 64, 7200)
	// 1 GiB checkpoint every 10 minutes into 8 files held open all run.
	b.SteadyHiddenPeriodic(true /*write*/, 600, 0.05, 1<<30, 8, withDXT)
	return b.Job()
}

func main() {
	cfg := mosaic.DefaultConfig()

	for _, mode := range []struct {
		name    string
		withDXT bool
	}{
		{"aggregate-only (Blue Waters style)", false},
		{"DXT extended tracing enabled", true},
	} {
		job := buildTrace(mode.withDXT)
		res, err := mosaic.Categorize(job, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", mode.name)
		fmt.Printf("categories: %v\n", res.Labels)
		if res.Write.Periodic() {
			fmt.Printf("periodic write detected: period %.0fs, %d occurrences\n",
				res.Write.DominantPeriod(), res.Write.Groups[0].Count)
		} else {
			fmt.Println("no periodicity detected (hidden by open-to-close aggregation)")
		}
		mosaic.WriteTimeline(os.Stdout, job, res, cfg)
		fmt.Println()
	}

	fmt.Println("The paper (Section IV-A): \"It is likely that the majority of")
	fmt.Println("[write_steady] behaviors are, in fact, periodic.\" With DXT the")
	fmt.Println("hidden structure is measurable — run `mosaic-bench -exp dxt` for")
	fmt.Println("the quantified version of this demonstration.")
}
