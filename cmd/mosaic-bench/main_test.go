package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEachExperimentSmall(t *testing.T) {
	// Exercise every experiment selector at a tiny scale; "all" is the
	// union and covered implicitly.
	for _, exp := range []string{"fig3", "table2", "table3", "fig4", "fig5", "accuracy", "stability", "perf", "dxt", "sched", "ablation"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 80, 1, 2, 32, "", ""); err != nil {
				t.Fatalf("experiment %s: %v", exp, err)
			}
		})
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("table3", 80, 1, 2, 16, dir, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"export.json", "categories.csv", "jaccard.csv", "apps.csv", "heatmap.png", "metadata.png"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
	}
}
